"""Figure 11c: commit-parallelism-aware NCI (NCI+ILP).

Paper: naively spreading NCI samples over the n next-committing
instructions makes things *worse* (9.3% -> 19.3% average) because a
sample taken during a long-latency stall is then shared with innocent
co-committing instructions.  Commit-parallelism attribution only helps
when the base attribution is principled, as in TIP.
"""

import statistics

from repro.analysis import Granularity
from repro.workloads.suite import BENCHMARKS

from conftest import write_artifact

POLICIES = ["NCI+ILP", "NCI", "TIP-ILP", "TIP"]


def _distributions(suite_result):
    return {policy: [suite_result[name].error(policy,
                                              Granularity.INSTRUCTION)
                     for name in BENCHMARKS]
            for policy in POLICIES}


def _render(distributions):
    lines = ["== Figure 11c: NCI+ILP box-plot summary ==",
             f"{'policy':<8} {'min':>8} {'q1':>8} {'median':>8} "
             f"{'q3':>8} {'max':>8} {'mean':>8}"]
    for policy, values in distributions.items():
        ordered = sorted(values)
        q1, median, q3 = statistics.quantiles(ordered, n=4)
        lines.append(
            f"{policy:<8} {ordered[0]:>7.2%} {q1:>7.2%} {median:>7.2%} "
            f"{q3:>7.2%} {ordered[-1]:>7.2%} "
            f"{statistics.mean(ordered):>7.2%}")
    return "\n".join(lines)


def test_fig11c_nci_ilp(benchmark, suite_result):
    distributions = benchmark.pedantic(_distributions,
                                       args=(suite_result,), rounds=1,
                                       iterations=1)
    text = _render(distributions)
    print("\n" + text)
    write_artifact("fig11c_nci_ilp.txt", text)

    means = {policy: statistics.mean(values)
             for policy, values in distributions.items()}
    # The headline inversion: NCI+ILP is worse than plain NCI.
    assert means["NCI+ILP"] > means["NCI"]
    # And dramatically worse than TIP, which applies ILP correctly.
    assert means["NCI+ILP"] > 5 * means["TIP"]
    # The ordering of the whole panel matches the paper.
    assert means["NCI+ILP"] > means["NCI"] >= means["TIP-ILP"] - 1e-9
    assert means["TIP-ILP"] > means["TIP"]
