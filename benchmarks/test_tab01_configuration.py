"""Table 1: the simulated BOOM configuration.

Regenerates the configuration table from :class:`CoreConfig` and checks
it against the paper's numbers.
"""

from repro.cpu.config import CoreConfig

from conftest import write_artifact


def _render(config: CoreConfig) -> str:
    memory = config.memory
    rows = [
        ("Core", "OoO BOOM-style, 4-wide commit"),
        ("Front-end", f"{config.fetch_width}-wide fetch, "
                      f"{config.fetch_buffer_entries}-entry fetch buffer, "
                      f"{config.decode_width}-wide decode, TAGE predictor, "
                      f"max {config.max_outstanding_branches} outstanding "
                      "branches"),
        ("Execute", f"{config.rob_entries}-entry ROB, "
                    f"{config.mem_iq_entries}-entry "
                    f"{config.mem_issue_width}-issue MEM queue, "
                    f"{config.int_iq_entries}-entry "
                    f"{config.int_issue_width}-issue INT queue, "
                    f"{config.fp_iq_entries}-entry "
                    f"{config.fp_issue_width}-issue FP queue"),
        ("LSU", f"{config.load_queue_entries}+"
                f"{config.store_queue_entries}-entry load/store queues"),
        ("L1", f"{memory.l1i_size // 1024} KB {memory.l1i_assoc}-way "
               f"I-cache, {memory.l1d_size // 1024} KB "
               f"{memory.l1d_assoc}-way D-cache w/ {memory.l1d_mshrs} "
               "MSHRs, next-line prefetcher"),
        ("L2/LLC", f"{memory.l2_size // 1024} KB {memory.l2_assoc}-way L2 "
                   f"w/ {memory.l2_mshrs} MSHRs, "
                   f"{memory.llc_size // (1024 * 1024)} MB "
                   f"{memory.llc_assoc}-way LLC w/ {memory.llc_mshrs} "
                   "MSHRs"),
        ("TLB", f"{memory.dtlb_entries}-entry fully-assoc L1 D-TLB, "
                f"{memory.itlb_entries}-entry fully-assoc L1 I-TLB, "
                f"{memory.l2tlb_entries}-entry direct-mapped L2 TLB, "
                "HW page-table walker"),
        ("Memory", f"{memory.dram_latency}-cycle DRAM w/ bandwidth "
                   "queueing"),
        ("OS", "miniature kernel: demand paging via page-fault handler"),
    ]
    width = max(len(part) for part, _ in rows)
    lines = ["== Table 1: simulated configuration =="]
    lines += [f"{part:<{width}}  {desc}" for part, desc in rows]
    return "\n".join(lines)


def test_tab01_configuration(benchmark):
    config = benchmark.pedantic(CoreConfig.boom_4wide, rounds=1,
                                iterations=1)
    table = _render(config)
    print("\n" + table)
    write_artifact("tab01_configuration.txt", table)

    # The Table 1 numbers.
    assert config.fetch_width == 8
    assert config.fetch_buffer_entries == 32
    assert config.decode_width == 4
    assert config.commit_width == 4
    assert config.rob_entries == 128
    assert config.mem_iq_entries == 24 and config.mem_issue_width == 2
    assert config.int_iq_entries == 40 and config.int_issue_width == 4
    assert config.fp_iq_entries == 32 and config.fp_issue_width == 2
    assert config.max_outstanding_branches == 20
    memory = config.memory
    assert memory.l1i_size == 32 * 1024 and memory.l1i_assoc == 8
    assert memory.l1d_size == 32 * 1024 and memory.l1d_mshrs == 8
    assert memory.l2_size == 512 * 1024 and memory.l2_mshrs == 12
    assert memory.llc_size == 4 * 1024 * 1024 and memory.llc_mshrs == 8
    assert memory.itlb_entries == 32 and memory.dtlb_entries == 32
    assert memory.l2tlb_entries == 512
    assert memory.next_line_prefetcher
