"""Ablations of the design choices DESIGN.md calls out.

Not paper figures -- these validate that the substrate's mechanisms are
load-bearing: the next-line prefetcher, memory-ordering speculation, the
flush refill penalty behind the Imagick second-order effect, and the
store write-buffer that produces the Store-stall cycle-stack component.
"""

from repro.core.samples import Category
from repro.cpu.config import CoreConfig
from repro.harness import default_profilers, run_workload
from repro.workloads import (build_imagick, build_workload, k_icache,
                             k_stream_load, k_stream_store)

from conftest import write_artifact


def _run(workload, config=None, period=31):
    from repro.harness import run_experiment
    return run_experiment(workload.program, default_profilers(period),
                          config=config,
                          premapped_data=workload.premapped)


def test_ablation_next_line_prefetcher(benchmark):
    """Disabling the L1 next-line prefetcher must slow a dependent
    sequential walk down and grow the load-stall component.  (On
    independent streams the 128-entry ROB already issues demand loads
    blocks ahead, so next-line prefetch is moot there -- the dependent
    walk is where it pays.)"""
    def _measure():
        from repro.workloads import k_pointer_chase
        workload = build_workload(
            "walk", [k_pointer_chase("k", 3000, 0x20_0000, 8192,
                                     sequential=True)])
        on = _run(workload, CoreConfig.boom_4wide())
        config_off = CoreConfig.boom_4wide()
        config_off.memory.next_line_prefetcher = False
        off = _run(workload, config_off)
        return on, off

    on, off = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = (f"== ablation: next-line prefetcher ==\n"
            f"cycles with prefetcher:    {on.stats.cycles}\n"
            f"cycles without prefetcher: {off.stats.cycles}\n"
            f"slowdown without: "
            f"{off.stats.cycles / on.stats.cycles:.2f}x")
    print("\n" + text)
    write_artifact("ablation_prefetcher.txt", text)
    assert off.stats.cycles > 1.1 * on.stats.cycles
    assert off.cycle_stack().fraction(Category.LOAD_STALL) > \
        on.cycle_stack().fraction(Category.LOAD_STALL)


def test_ablation_ordering_violations(benchmark):
    """With memory-dependence speculation disabled at detection level,
    no ordering mini-exceptions occur (and results stay correct because
    the detector is what guarantees replay)."""
    def _measure():
        from repro.isa import assemble
        from repro.cpu import Machine
        source = """
        .data 0x2100 0
        .func main
            addi x1, x0, 0x2000
            addi x9, x0, 60
        outer:
            lw   x2, 0x2100(x0)
            mul  x3, x2, x2
            mul  x3, x3, x3
            add  x4, x1, x3
            sw   x9, 0(x4)
            lw   x6, 0x2000(x0)
            addi x9, x9, -1
            bne  x9, x0, outer
            halt
        """
        program = assemble(source)
        machine = Machine(program,
                          premapped_data=[(0x2000, 0x2110)])
        machine.run()
        return machine.stats

    stats = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = (f"== ablation: memory-ordering speculation ==\n"
            f"ordering flushes taken: {stats.ordering_flushes}")
    print("\n" + text)
    write_artifact("ablation_ordering.txt", text)
    assert stats.ordering_flushes >= 1


def test_ablation_flush_refill_penalty(benchmark):
    """The Imagick speedup's second-order component scales with the
    front-end refill cost of a pipeline flush."""
    def _measure():
        speedups = {}
        for penalty in (0, 4, 10):
            config = CoreConfig.boom_4wide()
            config.flush_refill_penalty = penalty
            orig = _run(build_imagick(False, pixels=400,
                                      morph_iters=500), config)
            opt = _run(build_imagick(True, pixels=400,
                                     morph_iters=500), config)
            speedups[penalty] = orig.stats.cycles / opt.stats.cycles
        return speedups

    speedups = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = "== ablation: flush refill penalty vs Imagick speedup ==\n"
    text += "\n".join(f"penalty {p:>2}: speedup {s:.2f}x"
                      for p, s in speedups.items())
    print("\n" + text)
    write_artifact("ablation_flush_penalty.txt", text)
    assert speedups[0] < speedups[4] < speedups[10]
    assert speedups[0] > 1.2  # flushes hurt even with free refill


def test_ablation_store_buffer(benchmark):
    """A smaller store write-buffer increases Store-stall time on
    streaming stores (the source of Figure 7's Store component)."""
    def _measure():
        workload = build_workload(
            "stores", [k_stream_store("k", 1200, 0x80_0000,
                                      4 * 1024 * 1024)])
        fractions = {}
        for entries in (2, 8, 32):
            config = CoreConfig.boom_4wide()
            config.store_buffer_entries = entries
            result = _run(workload, config)
            fractions[entries] = result.cycle_stack().fraction(
                Category.STORE_STALL)
        return fractions

    fractions = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = "== ablation: store write-buffer size ==\n"
    text += "\n".join(f"{e:>2} entries: store-stall {f:.1%}"
                      for e, f in fractions.items())
    print("\n" + text)
    write_artifact("ablation_store_buffer.txt", text)
    assert fractions[2] > fractions[32]


def test_ablation_icache_footprint(benchmark):
    """Front-end drain time appears once the code footprint exceeds the
    32 KB L1 I-cache -- the mechanism behind the Drained state."""
    def _measure():
        fractions = {}
        # Enough iterations that the cold first pass is amortised; the
        # small footprint then runs from the L1I while the large one
        # keeps evicting itself.
        for funcs, insts, iters in ((6, 200, 40), (16, 520, 2)):
            workload = build_workload(
                f"code{funcs}", [k_icache("k", iters, funcs=funcs,
                                          insts_per_func=insts)])
            result = _run(workload)
            fractions[funcs * insts * 4] = \
                result.cycle_stack().fraction(Category.FRONTEND)
        return fractions

    fractions = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = "== ablation: code footprint vs front-end stalls ==\n"
    text += "\n".join(f"{size // 1024:>3} KB text: front-end {f:.1%}"
                      for size, f in fractions.items())
    print("\n" + text)
    write_artifact("ablation_icache.txt", text)
    small, large = sorted(fractions)
    assert fractions[large] > fractions[small] + 0.05
