"""Figure 11a: instruction-level error versus sampling frequency.

Paper: error decreases with sampling frequency for all profilers, most
strongly at low frequencies; TIP keeps improving beyond the 4 kHz
default while NCI and TIP-ILP saturate at their systematic floors.
The frequency labels map onto sampling periods anchored at
4 kHz = the default period (see conftest).
"""

import pytest

from repro.analysis import Granularity

from conftest import FREQUENCY_PERIODS, SWEEP_BENCHMARKS, write_artifact

POLICIES = ("NCI", "TIP-ILP", "TIP")


def _sweep_table(frequency_sweep):
    """policy -> frequency label -> average error over the sweep set."""
    table = {policy: {} for policy in POLICIES}
    for label in FREQUENCY_PERIODS:
        for policy in POLICIES:
            name = f"{policy}@{label}"
            errors = [frequency_sweep[bench].error(
                name, Granularity.INSTRUCTION)
                for bench in SWEEP_BENCHMARKS]
            table[policy][label] = sum(errors) / len(errors)
    return table


def _render(table):
    labels = list(FREQUENCY_PERIODS)
    lines = ["== Figure 11a: error vs sampling frequency ==",
             f"{'policy':<8} " + " ".join(f"{l:>8}" for l in labels)]
    for policy, row in table.items():
        lines.append(f"{policy:<8} "
                     + " ".join(f"{row[l]:>7.2%}" for l in labels))
    return "\n".join(lines)


def test_fig11a_sampling_rate(benchmark, frequency_sweep):
    table = benchmark.pedantic(_sweep_table, args=(frequency_sweep,),
                               rounds=1, iterations=1)
    text = _render(table)
    print("\n" + text)
    write_artifact("fig11a_sampling_rate.txt", text)

    # Error decreases (weakly) from 100 Hz to 20 kHz for every profiler.
    for policy in POLICIES:
        assert table[policy]["100 Hz"] > table[policy]["20 kHz"], policy
        assert table[policy]["1 kHz"] >= table[policy]["10 kHz"] - 0.01

    # TIP keeps improving measurably beyond the 4 kHz default...
    tip_gain = table["TIP"]["4 kHz"] - table["TIP"]["20 kHz"]
    assert tip_gain > 0.0
    # ...while NCI's improvement beyond 4 kHz is bounded by its
    # systematic floor (it cannot approach zero).
    assert table["NCI"]["20 kHz"] > 5 * table["TIP"]["20 kHz"]
    # Relative saturation: NCI keeps most of its 4 kHz error at 20 kHz,
    # TIP sheds a larger share of its (already small) error.
    nci_kept = table["NCI"]["20 kHz"] / table["NCI"]["4 kHz"]
    tip_kept = table["TIP"]["20 kHz"] / max(table["TIP"]["4 kHz"], 1e-12)
    assert nci_kept > tip_kept
