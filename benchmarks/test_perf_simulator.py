"""Throughput benchmarks of the substrate itself.

Not paper figures -- these measure the simulator's own performance
(cycles/second with and without attached profilers), which bounds how
large the reproduced experiments can be and quantifies the cost of
out-of-band trace processing (the paper's CPU-side framework had the
same concern: "on-the-fly processing with only minimal simulation
slowdown").

Each benchmark runs against one Compute-class and one Stall-class
workload so regressions on either side of the paper's taxonomy are
caught: the compute workload exercises the steady-state loop memoizer
and the issue/commit pipeline, the stall workload exercises the
event-driven stall fast-forward and the memory hierarchy.
"""

import pytest

from repro.cpu.machine import Machine
from repro.harness import default_profilers, run_experiment
from repro.workloads import build_workload, k_int_ilp, k_stream_load


def _compute_workload():
    """Compute-bound: wide integer ILP loops, no memory pressure."""
    return build_workload("perf_compute", [
        k_int_ilp("compute", 1000, width=6),
    ])


def _stall_workload():
    """Stall-bound: strided streaming loads that miss the caches."""
    return build_workload("perf_stall", [
        k_stream_load("stream", 250, 0x20_0000, 256 * 1024),
    ])


WORKLOADS = {
    "compute": _compute_workload,
    "stall": _stall_workload,
}


@pytest.fixture(params=sorted(WORKLOADS))
def workload(request):
    return WORKLOADS[request.param]()


def test_simulator_throughput_bare(benchmark, workload):
    """Core simulation speed with no observers attached."""

    def run():
        machine = Machine(workload.program,
                          premapped_data=workload.premapped)
        return machine.run().cycles

    cycles = benchmark(run)
    assert cycles > 1000


def test_simulator_throughput_with_profilers(benchmark, workload):
    """Simulation speed with Oracle + six profilers out-of-band."""

    def run():
        result = run_experiment(workload.program, default_profilers(31),
                                premapped_data=workload.premapped)
        return result.stats.cycles

    cycles = benchmark(run)
    assert cycles > 1000


def test_profiler_overhead_is_bounded(benchmark, workload):
    """Attaching the full profiler line-up costs less than ~6x bare
    simulation (the paper's out-of-band processing keeps up with the
    FPGA similarly)."""
    import time

    def timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    def bare():
        Machine(workload.program,
                premapped_data=workload.premapped).run()

    def full():
        run_experiment(workload.program, default_profilers(31),
                       premapped_data=workload.premapped)

    bare_time = min(timed(bare) for _ in range(2))
    full_time = benchmark.pedantic(lambda: timed(full), rounds=1,
                                   iterations=1)
    assert full_time < 8 * bare_time
