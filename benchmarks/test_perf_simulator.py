"""Throughput benchmarks of the substrate itself.

Not paper figures -- these measure the simulator's own performance
(cycles/second with and without attached profilers), which bounds how
large the reproduced experiments can be and quantifies the cost of
out-of-band trace processing (the paper's CPU-side framework had the
same concern: "on-the-fly processing with only minimal simulation
slowdown").
"""

import pytest

from repro.cpu.machine import Machine
from repro.harness import default_profilers, run_experiment
from repro.workloads import build_workload, k_int_ilp, k_stream_load


def _workload():
    return build_workload("perf", [
        k_int_ilp("compute", 800, width=6),
        k_stream_load("stream", 250, 0x20_0000, 256 * 1024),
    ])


def test_simulator_throughput_bare(benchmark):
    """Core simulation speed with no observers attached."""
    workload = _workload()

    def run():
        machine = Machine(workload.program,
                          premapped_data=workload.premapped)
        return machine.run().cycles

    cycles = benchmark(run)
    assert cycles > 1000


def test_simulator_throughput_with_profilers(benchmark):
    """Simulation speed with Oracle + six profilers out-of-band."""
    workload = _workload()

    def run():
        result = run_experiment(workload.program, default_profilers(31),
                                premapped_data=workload.premapped)
        return result.stats.cycles

    cycles = benchmark(run)
    assert cycles > 1000


def test_profiler_overhead_is_bounded(benchmark):
    """Attaching the full profiler line-up costs less than ~6x bare
    simulation (the paper's out-of-band processing keeps up with the
    FPGA similarly)."""
    import time
    workload = _workload()

    def timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    def bare():
        Machine(workload.program,
                premapped_data=workload.premapped).run()

    def full():
        run_experiment(workload.program, default_profilers(31),
                       premapped_data=workload.premapped)

    bare_time = min(timed(bare) for _ in range(2))
    full_time = benchmark.pedantic(lambda: timed(full), rounds=1,
                                   iterations=1)
    assert full_time < 8 * bare_time
