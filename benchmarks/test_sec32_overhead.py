"""Section 3.2: TIP overhead analysis.

Paper numbers regenerated here: 57 B of profiler storage on the 4-wide
core; 88 B TIP samples versus 56 B non-ILP samples (40 B perf metadata
plus payload); 352 KB/s versus 224 KB/s at perf's default 4 kHz; and
~179 GB/s for an Oracle that traces every cycle -- the several orders of
magnitude that make Oracle impractical and TIP practical.  The measured
per-sample payloads of our own profilers are checked against the model.
"""

from repro.core.overhead import summarize
from repro.core.sampling import DEFAULT_FREQUENCY_HZ
from repro.cpu.config import CoreConfig

from conftest import write_artifact


def _summary():
    return summarize(CoreConfig.boom_4wide(),
                     frequency_hz=DEFAULT_FREQUENCY_HZ)


def _render(summary):
    return "\n".join([
        "== Section 3.2: TIP overhead analysis ==",
        f"profiler storage:        {summary.storage_bytes} B "
        "(paper: 57 B)",
        f"TIP sample record:       {summary.tip_sample_bytes} B "
        "(paper: 88 B)",
        f"baseline sample record:  {summary.baseline_sample_bytes} B "
        "(paper: 56 B)",
        f"TIP data rate @4 kHz:    "
        f"{summary.tip_rate_bytes_per_s / 1000:.0f} KB/s (paper: 352)",
        f"baseline rate @4 kHz:    "
        f"{summary.baseline_rate_bytes_per_s / 1000:.0f} KB/s "
        "(paper: 224)",
        f"Oracle trace rate:       "
        f"{summary.oracle_rate_bytes_per_s / 1e9:.1f} GB/s (paper: 179)",
        f"TIP reduction vs Oracle: "
        f"{summary.reduction_vs_oracle:.1e}x",
    ])


def test_sec32_overhead(benchmark, suite_result):
    summary = benchmark.pedantic(_summary, rounds=1, iterations=1)
    text = _render(summary)
    print("\n" + text)
    write_artifact("sec32_overhead.txt", text)

    assert summary.storage_bytes == 57
    assert summary.tip_sample_bytes == 88
    assert summary.baseline_sample_bytes == 56
    assert summary.tip_rate_bytes_per_s == 352_000
    assert summary.baseline_rate_bytes_per_s == 224_000
    assert abs(summary.oracle_rate_bytes_per_s - 179.2e9) < 1e9
    assert summary.reduction_vs_oracle > 1e5

    # Cross-check the model against the simulated profilers: a TIP
    # sample carries up to commit-width addresses, a baseline sample one.
    tip = suite_result["exchange2"].profilers["TIP"]
    max_addrs = max(len(s.weights) for s in tip.samples)
    assert 1 < max_addrs <= 4
    nci = suite_result["exchange2"].profilers["NCI"]
    assert all(len(s.weights) <= 1 for s in nci.samples)


def test_sec32_measured_sampling_overhead(benchmark):
    """The paper measures the *runtime* cost of sample collection on real
    hardware: 1.0% with PEBS-sized (56 B) samples, 1.1% with TIP-sized
    (88 B) samples.  We reproduce the experiment on the simulated core:
    interrupt-driven collection with a real handler writing 2 vs 6
    payload words, at a sampling period scaled so the handler runs about
    as often, relative to run length, as 4 kHz does in the paper."""
    from repro.cpu.machine import Machine
    from repro.workloads import build_workload, k_int_ilp, k_stream_load

    def _measure():
        workload = build_workload("w", [
            k_int_ilp("compute", 2500, width=6),
            k_stream_load("stream", 700, 0x20_0000, 256 * 1024),
        ], rounds=2)

        def run(perf_sampling):
            machine = Machine(workload.program,
                              premapped_data=workload.premapped,
                              perf_sampling=perf_sampling)
            machine.run()
            return machine.stats

        base = run(None)
        period = 4001
        small = run((period, 2))   # 56 B samples
        large = run((period, 6))   # 88 B samples
        return (base, small, large)

    base, small, large = benchmark.pedantic(_measure, rounds=1,
                                            iterations=1)
    small_overhead = small.cycles / base.cycles - 1.0
    large_overhead = large.cycles / base.cycles - 1.0
    text = ("== Section 3.2: measured sampling overhead ==\n"
            f"baseline:            {base.cycles} cycles\n"
            f"56 B samples:        {small.cycles} cycles "
            f"(+{small_overhead:.2%}, paper: +1.0%)\n"
            f"88 B samples:        {large.cycles} cycles "
            f"(+{large_overhead:.2%}, paper: +1.1%)\n"
            f"interrupts taken:    {large.sampling_interrupts}")
    print("\n" + text)
    write_artifact("sec32_measured_overhead.txt", text)

    # Low-single-digit percent overhead; the bigger sample costs no less.
    assert 0.0 < small_overhead < 0.08
    assert 0.0 < large_overhead < 0.08
    assert large_overhead >= small_overhead - 0.005
