"""Figure 7: normalised commit cycle stacks and benchmark classes.

Paper: every benchmark's cycles split into Execution / ALU / Load /
Store stall / Front-end / Mispredict / Misc. flush, and the stacks
classify the suite into 6 Compute, 8 Flush and 13 Stall benchmarks.
"""

from repro.analysis import render_stacks_table
from repro.core.samples import Category
from repro.workloads.suite import BENCHMARKS, PAPER_CLASSES

from conftest import write_artifact


def _stacks(suite_result):
    return {name: suite_result[name].cycle_stack() for name in BENCHMARKS}


def test_fig07_cycle_stacks(benchmark, suite_result):
    stacks = benchmark.pedantic(_stacks, args=(suite_result,), rounds=1,
                                iterations=1)
    table = render_stacks_table(stacks,
                                title="Figure 7: cycle stacks at commit")
    print("\n" + table)
    write_artifact("fig07_cycle_stacks.txt", table)

    # Every benchmark lands in the paper's class.
    for name in BENCHMARKS:
        assert stacks[name].classify() == PAPER_CLASSES[name], name

    # Spot checks on the paper's stand-out stacks.
    # lbm: load stalls dominate (paper: 66.2% loads + 15.6% FU stalls).
    lbm = stacks["lbm"]
    assert lbm.fraction(Category.LOAD_STALL) > 0.25
    # imagick: large Misc. flush component.
    assert stacks["imagick"].fraction(Category.MISC_FLUSH) > 0.10
    # exchange2: committing most of the time.
    assert stacks["exchange2"].fraction(Category.EXECUTION) > 0.6
    # Stacks are normalised: components sum to one.
    for name in BENCHMARKS:
        assert abs(sum(stacks[name].normalized().values()) - 1.0) < 1e-6
