"""Shared fixtures for the per-figure/table benchmark harness.

One simulation of the 27-benchmark suite drives every profiler
configuration out-of-band (the paper runs up to 19 per simulation); the
per-figure benchmark modules then regenerate their table/figure from the
cached results.  Set ``REPRO_BENCH_SCALE`` to trade fidelity for wall
time (default 0.6; the paper-shape assertions hold from ~0.3 up).

Rendered tables are also written to ``benchmarks/out/`` so the results
can be inspected after a run (they back EXPERIMENTS.md).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.harness import (ProfilerConfig, default_profilers, run_suite,
                           run_workload)
from repro.workloads import build_imagick, build_suite

#: Iteration multiplier for the suite workloads.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.6"))
#: Default sampling period; stands in for the paper's 4 kHz default the
#: same way their 4 kHz stands in for one sample per 800k cycles.
PERIOD = 13
#: Sampling-frequency sweep of Figure 11a: label -> period, anchored at
#: 4 kHz = PERIOD.
FREQUENCY_PERIODS = {
    "100 Hz": 520, "1 kHz": 52, "4 kHz": 13, "10 kHz": 5, "20 kHz": 3,
}
#: Benchmarks used for the per-frequency sweep (two per class).
SWEEP_BENCHMARKS = ["exchange2", "namd", "imagick", "gcc", "lbm", "mcf"]

OUT_DIR = pathlib.Path(__file__).parent / "out"


def write_artifact(name: str, text: str) -> None:
    """Persist a rendered table next to the benchmarks."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / name).write_text(text + "\n")


#: The aliasing-prone period used for the Figure 11b comparison: loop
#: bodies settle into power-of-two cycle counts, so a period of 16 can
#: phase-lock onto them (Shannon-Nyquist), while the prime default
#: cannot.
ALIASING_PERIOD = 16


def _suite_profilers():
    return default_profilers(PERIOD) + [
        ProfilerConfig("NCI+ILP", PERIOD),
        ProfilerConfig("TIP", PERIOD, mode="random", seed=1,
                       label="TIP-random"),
        ProfilerConfig("TIP", ALIASING_PERIOD, label="TIP-p16"),
        ProfilerConfig("TIP", ALIASING_PERIOD, mode="random", seed=1,
                       label="TIP-r16"),
    ]


@pytest.fixture(scope="session")
def suite_result():
    """The full 27-benchmark suite, simulated once."""
    return run_suite(profilers=_suite_profilers(), scale=SCALE,
                     verbose=True)


@pytest.fixture(scope="session")
def imagick_pair():
    """Original and optimized Imagick case-study runs (Section 6)."""
    orig = run_workload(build_imagick(optimized=False),
                        default_profilers(PERIOD))
    opt = run_workload(build_imagick(optimized=True),
                       default_profilers(PERIOD))
    return orig, opt


@pytest.fixture(scope="session")
def frequency_sweep():
    """Figure 11a: the same runs sampled at five frequencies at once."""
    configs = []
    for label, period in FREQUENCY_PERIODS.items():
        for policy in ("NCI", "TIP-ILP", "TIP"):
            configs.append(ProfilerConfig(policy, period,
                                          label=f"{policy}@{label}"))
    workloads = build_suite(SWEEP_BENCHMARKS, scale=SCALE)
    return {workload.name: run_workload(workload, configs)
            for workload in workloads}
