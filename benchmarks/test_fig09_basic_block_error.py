"""Figure 9: basic-block-level profile error (LCI/NCI/TIP-ILP/TIP).

Paper: TIP 0.7% and TIP-ILP 1.2% are accurate, NCI reasonable at 2.3%,
LCI inaccurate at 11.9% (up to 56.1% on lbm) because it attributes
stalls on long-latency loads to the last-committed instruction, which
sits in the preceding basic block whenever the loop nest has internal
control flow.  Software/Dispatch (29.9% / 22.4%) are reported in the
text only.
"""

from repro.analysis import Granularity, render_error_table

from conftest import write_artifact

SHOWN = ["LCI", "NCI", "TIP-ILP", "TIP"]
TEXT_ONLY = ["Software", "Dispatch"]


def _errors(suite_result):
    table = suite_result.errors(Granularity.BASIC_BLOCK,
                                SHOWN + TEXT_ONLY)
    averages = suite_result.average_errors(Granularity.BASIC_BLOCK,
                                           SHOWN + TEXT_ONLY)
    return table, averages


def test_fig09_basic_block_error(benchmark, suite_result):
    table, averages = benchmark.pedantic(_errors, args=(suite_result,),
                                         rounds=1, iterations=1)
    shown = {b: {p: row[p] for p in SHOWN} for b, row in table.items()}
    text = render_error_table(shown,
                              title="Figure 9: basic-block-level error")
    text += ("\n(text-only, as in the paper: Software "
             f"{averages['Software']:.1%}, Dispatch "
             f"{averages['Dispatch']:.1%} average)")
    print("\n" + text)
    write_artifact("fig09_basic_block_error.txt", text)

    # TIP and TIP-ILP stay accurate; NCI reasonable.
    assert averages["TIP"] < 0.03
    assert averages["TIP-ILP"] < 0.08
    assert averages["NCI"] < 0.12
    # LCI falls off a cliff at this granularity.
    assert averages["LCI"] > 2 * averages["NCI"]
    # The lbm pathology: stalls land in the preceding block.
    assert table["lbm"]["LCI"] > 0.15
    assert table["lbm"]["LCI"] > 5 * table["lbm"]["TIP"]
    # Software/Dispatch are far off the accurate profilers, hence
    # text-only.  (In our runs LCI's pointer-chase pathologies make it
    # even worse than Software at this level; the paper has Software
    # worst -- either way all three dwarf NCI/TIP.)
    assert averages["Software"] > 2 * averages["NCI"]
    assert averages["Dispatch"] > 2 * averages["NCI"]


def test_fig09_block_vs_function_error_grows(benchmark, suite_result):
    """Section 5.1: error increases from function to basic-block level
    for every profiler (lbm's LCI being the striking example)."""
    def _compare():
        func = suite_result.average_errors(Granularity.FUNCTION, SHOWN)
        block = suite_result.average_errors(Granularity.BASIC_BLOCK,
                                            SHOWN)
        return func, block

    func, block = benchmark.pedantic(_compare, rounds=1, iterations=1)
    for policy in SHOWN:
        assert block[policy] >= func[policy] - 1e-9, policy
    lbm_func = suite_result["lbm"].error("LCI", Granularity.FUNCTION)
    lbm_block = suite_result["lbm"].error("LCI", Granularity.BASIC_BLOCK)
    assert lbm_block > lbm_func + 0.1
