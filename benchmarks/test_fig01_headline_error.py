"""Figure 1: headline instruction-level profile error.

Paper: average errors of 61.8% (Software), 53.1% (Dispatch), 55.4%
(LCI), 9.3% (NCI) versus 1.6% for TIP; on the flush-intensive Imagick,
NCI hits 21.0% while TIP stays below 5%.  We assert the *shape*: the
ordering of the profilers, an order-of-magnitude gap between TIP and the
skid/tag-based profilers, and NCI's Imagick pathology.
"""

from repro.analysis import Granularity, render_error_table
from repro.analysis.error import error_reduction

from conftest import write_artifact

POLICIES = ["Software", "Dispatch", "LCI", "NCI", "TIP"]


def _figure1(suite_result):
    averages = suite_result.average_errors(Granularity.INSTRUCTION,
                                           POLICIES)
    imagick = suite_result["imagick"].errors(Granularity.INSTRUCTION)
    imagick = {p: imagick[p] for p in POLICIES}
    return averages, imagick


def test_fig01_headline_error(benchmark, suite_result):
    averages, imagick = benchmark.pedantic(
        _figure1, args=(suite_result,), rounds=1, iterations=1)

    table = render_error_table(
        {"average (Fig 1a)": averages, "imagick (Fig 1b)": imagick},
        title="Figure 1: instruction-level profile error")
    factors = error_reduction(averages)
    table += "\nerror vs TIP: " + ", ".join(
        f"{p} {factors[p]:.1f}x" for p in POLICIES if p != "TIP")
    print("\n" + table)
    write_artifact("fig01_headline_error.txt", table)

    # TIP is the most accurate and small in absolute terms.
    assert averages["TIP"] < 0.05
    for policy in ("Software", "Dispatch", "LCI", "NCI"):
        assert averages[policy] > averages["TIP"]
    # NCI is far better than the skid/tag/external profilers...
    for policy in ("Software", "Dispatch", "LCI"):
        assert averages[policy] > averages["NCI"]
        assert averages[policy] > 0.25
    # ...but TIP still beats NCI by a large factor (paper: 5.8x).
    assert averages["NCI"] / averages["TIP"] > 3.0
    # Imagick is an NCI pathology (paper: 21% vs 5%).
    assert imagick["NCI"] > 0.15
    assert imagick["TIP"] < 0.05
