"""Ablation: profiler error versus commit width.

Not a paper figure, but a direct consequence of its analysis: NCI's
ILP-blindness misattributes 1 - 1/n of every Computing cycle, so its
instruction-level error on compute-bound code should *grow* with commit
width, while TIP (which splits the sample across the commit group) is
width-agnostic.  A 1-wide core commits one instruction per cycle, so
there NCI and TIP coincide on Computing cycles.
"""

from repro.analysis import Granularity
from repro.cpu.config import CoreConfig
from repro.harness import default_profilers, run_experiment
from repro.workloads import build_workload, k_int_ilp

from conftest import write_artifact


def _config(width: int) -> CoreConfig:
    return CoreConfig(
        fetch_width=2 * width, fetch_buffer_entries=8 * width,
        decode_width=width, commit_width=width, frontend_latency=3,
        rob_entries=32 * width, int_iq_entries=10 * width,
        int_issue_width=width, mem_iq_entries=6 * width,
        mem_issue_width=max(1, width // 2), fp_iq_entries=8 * width,
        fp_issue_width=max(1, width // 2))


def test_ablation_commit_width(benchmark):
    def _measure():
        workload = build_workload(
            "compute", [k_int_ilp("k", 2500, width=7)], rounds=2)
        table = {}
        for width in (1, 2, 4):
            result = run_experiment(
                workload.program,
                default_profilers(13, policies=("NCI", "TIP")),
                config=_config(width),
                premapped_data=workload.premapped)
            table[width] = {
                "NCI": result.error("NCI", Granularity.INSTRUCTION),
                "TIP": result.error("TIP", Granularity.INSTRUCTION),
                "ipc": result.stats.ipc,
            }
        return table

    table = benchmark.pedantic(_measure, rounds=1, iterations=1)
    lines = ["== ablation: commit width vs profiler error ==",
             f"{'width':>5} {'IPC':>6} {'NCI':>8} {'TIP':>8}"]
    for width, row in table.items():
        lines.append(f"{width:>5} {row['ipc']:>6.2f} {row['NCI']:>7.2%} "
                     f"{row['TIP']:>7.2%}")
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact("ablation_commit_width.txt", text)

    # Wider commit -> more ILP for NCI to misattribute.
    assert table[4]["NCI"] > table[1]["NCI"] + 0.05
    # TIP stays accurate at every width.
    for width, row in table.items():
        assert row["TIP"] < 0.05, width
        assert row["TIP"] < row["NCI"] + 1e-9
    # Sanity: the wider cores actually commit wider.
    assert table[4]["ipc"] > 1.5 * table[1]["ipc"]