"""Figure 8: function-level profile error for all six profilers.

Paper: TIP 0.3%, TIP-ILP 0.4%, NCI 0.6%, LCI 1.6% -- all accurate --
while Software (9.1%) and Dispatch (5.8%) are much worse because tagging
at fetch/dispatch biases samples towards instructions stuck behind
long-latency stalls.  Also folds in the Section 5.2 validation check:
the Software-vs-NCI gap is of the same order as on real hardware.
"""

from repro.analysis import Granularity, render_error_table
from repro.workloads.suite import BENCHMARKS

from conftest import write_artifact

POLICIES = ["Software", "Dispatch", "LCI", "NCI", "TIP-ILP", "TIP"]


def _errors(suite_result):
    table = suite_result.errors(Granularity.FUNCTION, POLICIES)
    averages = suite_result.average_errors(Granularity.FUNCTION, POLICIES)
    return table, averages


def test_fig08_function_error(benchmark, suite_result):
    table, averages = benchmark.pedantic(_errors, args=(suite_result,),
                                         rounds=1, iterations=1)
    text = render_error_table(table,
                              title="Figure 8: function-level error")
    print("\n" + text)
    write_artifact("fig08_function_error.txt", text)

    # All commit-based profilers are accurate at function level.
    for policy in ("TIP", "TIP-ILP", "NCI", "LCI"):
        assert averages[policy] < 0.05, (policy, averages)
    # TIP is the best.
    for policy in POLICIES:
        assert averages["TIP"] <= averages[policy] + 1e-9
    # Software and Dispatch are clearly worse than the commit samplers.
    commit_worst = max(averages[p] for p in ("TIP", "TIP-ILP", "NCI"))
    assert averages["Software"] > commit_worst
    assert averages["Dispatch"] > commit_worst
    # Per-benchmark errors are valid fractions.
    for row in table.values():
        for value in row.values():
            assert 0.0 <= value <= 1.0


def test_sec52_validation_software_vs_nci(benchmark, suite_result):
    """Section 5.2 validation: the relative Software-NCI difference is
    large at instruction level and small at function level, matching the
    perf-vs-PEBS measurement on real hardware (69%/57% and 4%/7%)."""
    def _gaps():
        instruction = suite_result.average_errors(
            Granularity.INSTRUCTION, ("Software", "NCI"))
        function = suite_result.average_errors(
            Granularity.FUNCTION, ("Software", "NCI"))
        return (instruction["Software"] - instruction["NCI"],
                function["Software"] - function["NCI"])

    inst_gap, func_gap = benchmark.pedantic(_gaps, rounds=1, iterations=1)
    text = (f"== Section 5.2 validation ==\n"
            f"Software-NCI gap, instruction level: {inst_gap:.2%} "
            f"(paper ballpark: 57-69%)\n"
            f"Software-NCI gap, function level:    {func_gap:.2%} "
            f"(paper ballpark: 4-7%)")
    print("\n" + text)
    write_artifact("sec52_validation.txt", text)
    assert inst_gap > 0.15
    assert abs(func_gap) < 0.10
