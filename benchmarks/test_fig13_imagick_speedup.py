"""Figure 13: Imagick original vs optimized time breakdown, and the
1.93x speedup.

Paper: replacing frflags/fsflags with nops eliminates the Misc. flush
time entirely, and the speedup (1.93x) far exceeds the Amdahl estimate
from the flush time alone (1.28x) because removing the flushes restores
the processor's ability to hide latencies; IPC improves from 1.2 to 2.3
and the caller MeanShiftImage gets faster too.
"""

from repro.analysis import Granularity, render_stacks_table
from repro.core.samples import Category

from conftest import write_artifact

HOT_FUNCTIONS = ["MeanShiftImage", "floor", "ceil", "MorphologyApply"]


def _breakdown(orig, opt):
    rows = {}
    for label, result in (("Orig.", orig), ("Opt.", opt)):
        stacks = result.function_stacks()
        for func in HOT_FUNCTIONS:
            rows[f"{func} ({label})"] = stacks[func]
    return rows


def test_fig13_imagick_speedup(benchmark, imagick_pair):
    orig, opt = imagick_pair
    rows = benchmark.pedantic(_breakdown, args=(orig, opt), rounds=1,
                              iterations=1)
    text = render_stacks_table(
        rows, title="Figure 13: per-function time breakdown")
    speedup = orig.stats.cycles / opt.stats.cycles
    flush_fraction = orig.cycle_stack().fraction(Category.MISC_FLUSH)
    amdahl = 1.0 / (1.0 - flush_fraction)
    text += (f"\nspeedup: {speedup:.2f}x (paper: 1.93x); "
             f"Amdahl estimate from flush time alone: {amdahl:.2f}x; "
             f"IPC {orig.stats.ipc:.2f} -> {opt.stats.ipc:.2f} "
             "(paper: 1.2 -> 2.3)")
    print("\n" + text)
    write_artifact("fig13_imagick_speedup.txt", text)

    # The headline speedup, same ballpark as the paper's 1.93x.
    assert 1.6 <= speedup <= 2.4
    # Second-order effect: speedup beats the Amdahl estimate.
    assert speedup > amdahl + 0.2
    # Flush time disappears entirely in the optimized version.
    orig_stacks = {f: rows[f"{f} (Orig.)"] for f in HOT_FUNCTIONS}
    opt_stacks = {f: rows[f"{f} (Opt.)"] for f in HOT_FUNCTIONS}
    for func in ("ceil", "floor"):
        assert orig_stacks[func].totals.get(Category.MISC_FLUSH, 0) > 0
        assert opt_stacks[func].totals.get(Category.MISC_FLUSH, 0) == 0
    # IPC improves substantially (paper: 1.2 -> 2.3).
    assert opt.stats.ipc > 1.5 * orig.stats.ipc
    # The caller speeds up too (reduced stalls carry over).
    orig_msi = orig_stacks["MeanShiftImage"].total
    opt_msi = opt_stacks["MeanShiftImage"].total
    assert opt_msi < orig_msi
    # MorphologyApply is untouched by the fix: its time barely moves.
    morph_ratio = (opt_stacks["MorphologyApply"].total
                   / orig_stacks["MorphologyApply"].total)
    assert 0.8 <= morph_ratio <= 1.2
