"""Figure 11b: periodic versus random sampling.

Paper: random sampling lowers TIP's average instruction-level error
(1.6% -> 1.1%); the effect concentrates on a handful of stall-intensive
benchmarks with repetitive time-varying behaviour (streamcluster, lbm,
fotonik -- "cf. Shannon-Nyquist"), while most benchmarks barely move.
Periodic sampling is kept as the default because it is simpler in
hardware.

We reproduce the mechanism at two periods: an aliasing-prone period
(16 cycles -- loop bodies settle into power-of-two cycle counts and
periodic sampling phase-locks onto them) where random sampling wins
clearly and the repetitive streaming benchmarks improve most, and the
prime default period where periodic sampling is already effectively
anti-aliased and the two modes coincide.
"""

from repro.analysis import Granularity, render_error_table
from repro.workloads.suite import BENCHMARKS

from conftest import write_artifact

#: The repetitive stall-intensive benchmarks the paper calls out.
REPETITIVE = ["lbm", "fotonik3d", "streamcluster", "namd", "roms",
              "bwaves"]


def _errors(suite_result):
    table = {}
    for name in BENCHMARKS:
        result = suite_result[name]
        table[name] = {
            "periodic@16": result.error("TIP-p16",
                                        Granularity.INSTRUCTION),
            "random@16": result.error("TIP-r16",
                                      Granularity.INSTRUCTION),
            "periodic@13": result.error("TIP", Granularity.INSTRUCTION),
            "random@13": result.error("TIP-random",
                                      Granularity.INSTRUCTION),
        }
    count = len(table)
    averages = {mode: sum(row[mode] for row in table.values()) / count
                for mode in next(iter(table.values()))}
    return table, averages


def test_fig11b_random_sampling(benchmark, suite_result):
    table, averages = benchmark.pedantic(_errors, args=(suite_result,),
                                         rounds=1, iterations=1)
    text = render_error_table(
        table, title="Figure 11b: periodic vs random sampling (TIP)")
    text += ("\nAt the aliasing-prone period, random sampling wins on "
             "average, driven by the\nrepetitive stall-intensive "
             "benchmarks; at the prime default period periodic\n"
             "sampling is already effectively anti-aliased.")
    print("\n" + text)
    write_artifact("fig11b_random_sampling.txt", text)

    # The paper's direction: random sampling beats periodic on average
    # when periodic sampling can alias.
    assert averages["random@16"] < averages["periodic@16"]
    # The win concentrates on repetitive benchmarks (paper names
    # streamcluster, lbm, fotonik).
    big_wins = [name for name in REPETITIVE
                if table[name]["periodic@16"]
                - table[name]["random@16"] > 0.05]
    assert len(big_wins) >= 2, table
    # Most benchmarks barely move at the default period.
    close = sum(1 for row in table.values()
                if abs(row["periodic@13"] - row["random@13"]) < 0.03)
    assert close >= len(table) * 2 // 3
    # Both modes keep TIP accurate at the default period.
    assert averages["periodic@13"] < 0.05
    assert averages["random@13"] < 0.05