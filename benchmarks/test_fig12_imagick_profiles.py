"""Figure 12: Imagick function- and instruction-level profiles.

Paper: the function-level profile (TIP, NCI and Oracle all agree) shows
ceil is hot but not why; at the instruction level TIP attributes most of
ceil's time to the frflags/fsflags CSR pair (which flush the BOOM
pipeline) while NCI blames downstream instructions -- so only TIP's
profile points at the fix.
"""

from repro.analysis import Granularity, render_profile_table

from conftest import write_artifact


def _profiles(orig):
    function = {
        "Oracle": orig.oracle_profile(Granularity.FUNCTION),
        "TIP": orig.profile("TIP", Granularity.FUNCTION),
        "NCI": orig.profile("NCI", Granularity.FUNCTION),
    }
    program = orig.program
    ceil = next(f for f in program.functions if f.name == "ceil")

    def within_ceil(profile):
        inside = {addr: t for addr, t in profile.items()
                  if isinstance(addr, int) and ceil.contains(addr)}
        total = sum(inside.values()) or 1.0
        return {addr: t / total for addr, t in inside.items()}

    instruction = {
        "Oracle": within_ceil(
            orig.oracle_profile(Granularity.INSTRUCTION)),
        "TIP": within_ceil(orig.profile("TIP", Granularity.INSTRUCTION)),
        "NCI": within_ceil(orig.profile("NCI", Granularity.INSTRUCTION)),
    }
    return function, instruction


def test_fig12_imagick_profiles(benchmark, imagick_pair):
    orig, _ = imagick_pair
    function, instruction = benchmark.pedantic(
        _profiles, args=(orig,), rounds=1, iterations=1)

    text = render_profile_table(
        function, title="Figure 12 (top): Imagick function profile")
    text += "\n\n" + render_profile_table(
        instruction, program=orig.program, top=14,
        title="Figure 12 (bottom): instruction profile within ceil")
    print("\n" + text)
    write_artifact("fig12_imagick_profiles.txt", text)

    # ceil and floor are hot (paper: each ~22% of runtime).
    for func in ("ceil", "floor"):
        assert function["Oracle"][func] > 0.10, func
    # Function-level: TIP and NCI both match Oracle (the profile is
    # accurate yet inconclusive).
    for name in ("TIP", "NCI"):
        for func in ("MeanShiftImage", "ceil", "floor",
                     "MorphologyApply"):
            assert abs(function[name][func]
                       - function["Oracle"][func]) < 0.05

    program = orig.program
    csr_addrs = {i.addr for i in program.instructions
                 if i.op.value in ("frflags", "fsflags")}

    def csr_share(profile):
        return sum(t for addr, t in profile.items() if addr in csr_addrs)

    # Instruction-level: TIP (like Oracle) puts most of ceil on the CSR
    # pair; NCI puts it elsewhere.
    assert csr_share(instruction["Oracle"]) > 0.4
    assert csr_share(instruction["TIP"]) > 0.4
    assert csr_share(instruction["NCI"]) < 0.2
    # NCI's hottest ceil instruction is NOT a CSR instruction.
    nci_hottest = max(instruction["NCI"], key=instruction["NCI"].get)
    assert nci_hottest not in csr_addrs
