"""Figure 10: instruction-level profile error (NCI/TIP-ILP/TIP).

Paper: TIP is the only accurate profiler at this granularity (1.6%
average, max 5.0% on gcc) versus TIP-ILP 7.2% and NCI 9.3%; Software,
Dispatch and LCI (61.8% / 53.1% / 55.4%) are omitted from the figure.
The flush-intensive benchmarks separate NCI from TIP-ILP (correct flush
attribution); the compute-intensive ones separate TIP-ILP from TIP
(commit-ILP accounting).
"""

from repro.analysis import Granularity, render_error_table
from repro.workloads.suite import PAPER_CLASSES

from conftest import write_artifact

SHOWN = ["NCI", "TIP-ILP", "TIP"]
TEXT_ONLY = ["Software", "Dispatch", "LCI"]


def _errors(suite_result):
    table = suite_result.errors(Granularity.INSTRUCTION,
                                SHOWN + TEXT_ONLY)
    averages = suite_result.average_errors(Granularity.INSTRUCTION,
                                           SHOWN + TEXT_ONLY)
    return table, averages


def _class_average(table, policy, klass):
    rows = [row[policy] for name, row in table.items()
            if PAPER_CLASSES[name] == klass]
    return sum(rows) / len(rows)


def test_fig10_instruction_error(benchmark, suite_result):
    table, averages = benchmark.pedantic(_errors, args=(suite_result,),
                                         rounds=1, iterations=1)
    shown = {b: {p: row[p] for p in SHOWN} for b, row in table.items()}
    text = render_error_table(shown,
                              title="Figure 10: instruction-level error")
    text += ("\n(omitted, as in the paper: Software "
             f"{averages['Software']:.1%}, Dispatch "
             f"{averages['Dispatch']:.1%}, LCI "
             f"{averages['LCI']:.1%} average)")
    print("\n" + text)
    write_artifact("fig10_instruction_error.txt", text)

    # TIP is the only accurate profiler at the instruction level.
    assert averages["TIP"] < 0.05
    assert averages["TIP-ILP"] > 2 * averages["TIP"]
    assert averages["NCI"] >= averages["TIP-ILP"] - 1e-9
    # The omitted profilers are catastrophically wrong.
    for policy in TEXT_ONLY:
        assert averages[policy] > 0.25
    # TIP is best on every single benchmark.
    for name, row in table.items():
        for policy in SHOWN:
            assert row["TIP"] <= row[policy] + 0.01, (name, policy)


def test_fig10_where_the_gaps_come_from(benchmark, suite_result):
    """NCI vs TIP-ILP separates on Flush benchmarks; TIP-ILP vs TIP
    separates on Compute benchmarks (Section 5.1)."""
    def _gaps():
        table = suite_result.errors(Granularity.INSTRUCTION, SHOWN)
        return (
            _class_average(table, "NCI", "Flush")
            - _class_average(table, "TIP-ILP", "Flush"),
            _class_average(table, "TIP-ILP", "Compute")
            - _class_average(table, "TIP", "Compute"),
        )

    flush_gap, compute_gap = benchmark.pedantic(_gaps, rounds=1,
                                                iterations=1)
    text = (f"== Figure 10 gap decomposition ==\n"
            f"NCI - TIP-ILP on Flush benchmarks:   {flush_gap:+.2%}\n"
            f"TIP-ILP - TIP on Compute benchmarks: {compute_gap:+.2%}")
    print("\n" + text)
    write_artifact("fig10_gap_decomposition.txt", text)
    assert flush_gap > 0.02     # flush attribution matters on Flush class
    assert compute_gap > 0.05   # ILP accounting matters on Compute class
