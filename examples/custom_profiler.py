#!/usr/bin/env python
"""Extending the framework: write and evaluate your own profiler policy.

Implements two custom policies on the commit-stage trace API:

* ``OldestCommitted`` -- like LCI but reports the *oldest* instruction of
  the most recent commit group;
* ``HeadAlways`` -- always reports the head of the ROB, ignoring commit
  groups and flushes entirely.

Both plug into the same harness as TIP and get judged by the same
Oracle-based error metric, demonstrating how to prototype a new hardware
sampling policy in a few lines.

Run:  python examples/custom_profiler.py
"""

from typing import Optional

from repro import Granularity
from repro.analysis import profile_error, render_error_table
from repro.core import OracleProfiler, SampleSchedule, TipProfiler
from repro.core.profiler import Outcome, SamplingProfiler
from repro.cpu import Machine
from repro.cpu.trace import CycleRecord
from repro.workloads import build_workload, k_csr_flush, k_int_ilp, \
    k_stream_load

PERIOD = 13


class OldestCommittedProfiler(SamplingProfiler):
    """Report the oldest instruction of the latest commit group."""

    name = "OldestCommit"

    def __init__(self, schedule):
        super().__init__(schedule)
        self._last: Optional[int] = None

    def _update_state(self, record: CycleRecord) -> None:
        if record.committed:
            self._last = record.committed[0].addr

    def _attribute(self, record: CycleRecord) -> Optional[Outcome]:
        if self._last is None:
            return None
        return [(self._last, 1.0)], None

    def _resolve(self, record: CycleRecord) -> Optional[Outcome]:
        if record.committed:
            return [(record.committed[0].addr, 1.0)], None
        return None


class HeadAlwaysProfiler(SamplingProfiler):
    """Report the ROB head; fall back to the last head when empty."""

    name = "HeadAlways"

    def __init__(self, schedule):
        super().__init__(schedule)
        self._last_head: Optional[int] = None

    def _update_state(self, record: CycleRecord) -> None:
        if record.rob_head is not None:
            self._last_head = record.rob_head

    def _attribute(self, record: CycleRecord) -> Optional[Outcome]:
        if self._last_head is None:
            return None
        return [(self._last_head, 1.0)], None

    def _resolve(self, record: CycleRecord) -> Optional[Outcome]:
        if record.rob_head is not None:
            return [(record.rob_head, 1.0)], None
        return None


def main() -> None:
    workload = build_workload("demo", [
        k_int_ilp("compute", 1500, width=6),
        k_stream_load("stream", 500, 0x20_0000, 1024 * 1024),
        k_csr_flush("round", 300),
    ], rounds=2)

    machine = Machine(workload.program,
                      premapped_data=workload.premapped)
    oracle = OracleProfiler(machine.image,
                            watch_schedules=[SampleSchedule(PERIOD)])
    profilers = {
        "TIP": TipProfiler(SampleSchedule(PERIOD), machine.image),
        "OldestCommit": OldestCommittedProfiler(SampleSchedule(PERIOD)),
        "HeadAlways": HeadAlwaysProfiler(SampleSchedule(PERIOD)),
    }
    machine.attach(oracle)
    for profiler in profilers.values():
        machine.attach(profiler)
    machine.run()

    from repro.analysis import Symbolizer
    symbolizer = Symbolizer(machine.image)
    errors = {"demo": {
        name: profile_error(profiler, oracle.report, symbolizer,
                            Granularity.INSTRUCTION)
        for name, profiler in profilers.items()
    }}
    print(render_error_table(errors, title="instruction-level error"))
    print("\nHeadAlways gets stalls right but misattributes flushes and")
    print("commit ILP; OldestCommit behaves like a biased LCI.  Neither")
    print("matches TIP -- but both took ~30 lines to evaluate.")


if __name__ == "__main__":
    main()
