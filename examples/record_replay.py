#!/usr/bin/env python
"""Record once, analyze forever (the FireSim methodology).

Simulates a workload a single time while serializing its commit-stage
trace to a compact binary file, then replays that file through fresh
profiler configurations -- different policies, sampling periods, and
modes -- without ever re-simulating.  This is exactly how the paper
evaluates 19 profiler configurations per FPGA run.

Run:  python examples/record_replay.py
"""

import io
import time

from repro.analysis import Granularity, Symbolizer, profile_error, \
    render_error_table
from repro.core import (NciProfiler, OracleProfiler, SampleSchedule,
                        TipProfiler)
from repro.cpu import Machine, TraceWriter, replay_trace
from repro.workloads import build_workload, k_branchy, k_csr_flush, \
    k_int_ilp, k_stream_load


def main() -> None:
    workload = build_workload("record-me", [
        k_int_ilp("compute", 1500, width=6),
        k_stream_load("stream", 500, 0x20_0000, 1024 * 1024),
        k_csr_flush("round", 300),
        k_branchy("branchy", 400, 0x40_0000),
    ])

    print("=== record: one simulation, trace to bytes ===")
    machine = Machine(workload.program,
                      premapped_data=workload.premapped)
    buffer = io.BytesIO()
    machine.attach(TraceWriter(buffer, banks=4))
    start = time.perf_counter()
    stats = machine.run()
    sim_time = time.perf_counter() - start
    trace = buffer.getvalue()
    print(f"simulated {stats.cycles} cycles in {sim_time:.2f}s; "
          f"trace is {len(trace)} bytes "
          f"({len(trace) / stats.cycles:.1f} B/cycle)\n")

    print("=== replay: many profiler configurations, no re-simulation ===")
    symbolizer = Symbolizer(machine.image)
    errors = {}
    for period in (7, 13, 53, 211):
        oracle = OracleProfiler(machine.image,
                                watch_schedules=[SampleSchedule(period)])
        tip = TipProfiler(SampleSchedule(period), machine.image)
        nci = NciProfiler(SampleSchedule(period))
        start = time.perf_counter()
        replay_trace(trace, oracle, tip, nci)
        replay_time = time.perf_counter() - start
        oracle.report.total_cycles = stats.cycles
        errors[f"period {period}"] = {
            "TIP": profile_error(tip, oracle.report, symbolizer,
                                 Granularity.INSTRUCTION),
            "NCI": profile_error(nci, oracle.report, symbolizer,
                                 Granularity.INSTRUCTION),
        }
        print(f"  period {period:>3}: replay took {replay_time:.2f}s")

    print()
    print(render_error_table(errors,
                             title="instruction error vs period (replayed)"))
    print("\nNCI saturates at its systematic floor; TIP keeps improving —")
    print("Figure 11a, regenerated from one recorded trace.")


if __name__ == "__main__":
    main()
