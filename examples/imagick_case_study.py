#!/usr/bin/env python
"""The Section 6 case study, end to end.

Profiles the Imagick stand-in with TIP and NCI, shows why the
function-level profile is inconclusive, how TIP pinpoints the
``frflags``/``fsflags`` CSR instructions inside ``ceil``/``floor`` while
NCI blames innocent instructions, then applies the paper's fix (replace
the CSR pair with ``nop``) and measures the speedup.

Run:  python examples/imagick_case_study.py
"""

from repro import Granularity, default_profilers
from repro.analysis import (render_cycle_stack, render_profile_table,
                            render_stacks_table)
from repro.harness import run_workload
from repro.workloads import build_imagick


def _instruction_profile_within(result, function_name, profiler):
    program = result.program
    func = next(f for f in program.functions if f.name == function_name)
    profile = result.profile(profiler, Granularity.INSTRUCTION)
    within = {addr: t for addr, t in profile.items()
              if isinstance(addr, int) and func.contains(addr)}
    total = sum(within.values()) or 1.0
    return {addr: t / total for addr, t in within.items()}


def main() -> None:
    print("=== step 1: profile the original Imagick ===")
    orig = run_workload(build_imagick(optimized=False),
                        default_profilers(period=19))

    profiles = {"Oracle": orig.oracle_profile(Granularity.FUNCTION),
                "TIP": orig.profile("TIP", Granularity.FUNCTION),
                "NCI": orig.profile("NCI", Granularity.FUNCTION)}
    print(render_profile_table(profiles, title="function-level profile"))
    print("\nThe function profile shows ceil/floor are hot but not WHY --")
    print("'developers use functions to organize functionality, not")
    print("performance'.\n")

    print("=== step 2: drill into ceil at the instruction level ===")
    for profiler in ("TIP", "NCI"):
        ceil_profile = _instruction_profile_within(orig, "ceil", profiler)
        print(render_profile_table({profiler: ceil_profile},
                                   program=orig.program,
                                   title=f"{profiler}: time within ceil"))
        print()
    print("TIP puts the time on frflags/fsflags (which flush the BOOM")
    print("pipeline); NCI attributes it to whatever commits next.\n")

    print("=== step 3: apply the fix (CSR pair -> nop) and re-measure ===")
    opt = run_workload(build_imagick(optimized=True),
                       default_profilers(period=19))
    speedup = orig.stats.cycles / opt.stats.cycles
    print(render_stacks_table({
        "original": orig.cycle_stack(),
        "optimized": opt.cycle_stack(),
    }, title="cycle stacks before/after (Figure 13)"))
    print(f"\nspeedup: {speedup:.2f}x (paper: 1.93x)")
    print(f"IPC: {orig.stats.ipc:.2f} -> {opt.stats.ipc:.2f} "
          "(paper: 1.2 -> 2.3)")


if __name__ == "__main__":
    main()
