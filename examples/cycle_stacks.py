#!/usr/bin/env python
"""Figure 7 in miniature: commit cycle stacks for a slice of the suite.

Simulates a few representative benchmarks from each class and prints
their normalised cycle stacks plus the Compute/Flush/Stall classification
the paper derives from them.

Run:  python examples/cycle_stacks.py [benchmark ...]
"""

import sys

from repro.analysis import render_stacks_table
from repro.harness import default_profilers, run_workload
from repro.workloads import build
from repro.workloads.suite import PAPER_CLASSES

DEFAULT_PICKS = ["exchange2", "namd", "imagick", "blackscholes",
                 "lbm", "mcf"]


def main() -> None:
    names = sys.argv[1:] or DEFAULT_PICKS
    stacks = {}
    for name in names:
        workload = build(name, scale=0.4)
        print(f"simulating {name} ...", flush=True)
        result = run_workload(workload, default_profilers(period=31))
        stacks[name] = result.cycle_stack()
    print()
    print(render_stacks_table(stacks, title="cycle stacks (Figure 7)"))
    print()
    for name in names:
        got = stacks[name].classify()
        want = PAPER_CLASSES.get(name, "?")
        marker = "matches" if got == want else "DIFFERS from"
        print(f"  {name}: classified {got}, {marker} the paper ({want})")


if __name__ == "__main__":
    main()
