#!/usr/bin/env python
"""Quickstart: profile a small program with TIP and the baselines.

Assembles a toy program with a hot (cache-missing) loop and a compute
loop, runs it once on the simulated 4-wide BOOM core with all profilers
attached out-of-band, and prints each profiler's view of where the time
went next to the Oracle's ground truth.

Run:  python examples/quickstart.py
"""

from repro import Granularity, default_profilers, run_experiment
from repro.analysis import render_error_table, render_profile_table
from repro.isa import assemble

SOURCE = """
.entry main
.func main
main:
    jal  x1, hot_loop
    jal  x1, compute
    halt

# Streams through a 1 MB buffer: most time is load stalls.
.func hot_loop
hot_loop:
    addi x5, x0, 0
    addi x6, x0, 3000
hot_L:
    ld   x7, 0x200000(x5)
    add  x9, x9, x7
    addi x5, x5, 16
    andi x5, x5, 1048575
    addi x6, x6, -1
    bne  x6, x0, hot_L
    jalr x0, x1, 0

# Independent integer work: commits at full width.
.func compute
compute:
    addi x6, x0, 3000
comp_L:
    add  x10, x10, x6
    add  x11, x11, x6
    add  x12, x12, x6
    xor  x13, x13, x10
    addi x6, x6, -1
    bne  x6, x0, comp_L
    jalr x0, x1, 0
"""


def main() -> None:
    program = assemble(SOURCE, name="quickstart")
    result = run_experiment(
        program,
        default_profilers(period=13),
        premapped_data=[(0x200000, 0x200000 + 1048576)],
    )

    print(f"ran {result.stats.committed} instructions in "
          f"{result.stats.cycles} cycles (IPC {result.stats.ipc:.2f})\n")

    profiles = {"Oracle": result.oracle_profile(Granularity.FUNCTION)}
    for name in result.profilers:
        profiles[name] = result.profile(name, Granularity.FUNCTION)
    print(render_profile_table(profiles, title="function-level profile"))
    print()

    for granularity in Granularity:
        errors = {"quickstart": {name: result.error(name, granularity)
                                 for name in result.profilers}}
        print(render_error_table(errors,
                                 title=f"{granularity.value}-level error"))
        print()

    print("Note how every profiler is fine at the function level, but only")
    print("TIP stays accurate at the instruction level -- the paper's")
    print("central result.")


if __name__ == "__main__":
    main()
