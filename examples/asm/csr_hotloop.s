# The Imagick anti-pattern, reduced: a hot loop calling a helper that
# brackets its work with FP-status CSR accesses.  On BOOM every
# ``frflags``/``fsflags`` flushes the pipeline on commit, so the flush
# cost recurs once per loop iteration even though the helper itself is
# loop-free (paper Section 6).
#
#   $ python -m repro lint examples/asm/csr_hotloop.s
#
# reports warning[L001] at both CSR instructions with a `nop` fix-hint.

.entry main
.func main
main:
    addi x5, x0, 0
    addi x6, x0, 64
loop:
    fld  f1, 0x200000(x5)
    jal  x2, round_guarded
    fadd f4, f4, f3
    addi x5, x5, 8
    andi x5, x5, 511
    addi x6, x6, -1
    bne  x6, x0, loop
    halt

.func round_guarded
round_guarded:
    frflags x7              # L001: flush-on-commit, called from loop
    fcvt.w.d x8, f1
    fcvt.d.w f2, x8
    fmv  f3, f2
    fsflags x7              # L001: flush-on-commit, called from loop
    jalr x0, x2, 0
