# A computation whose result no path ever reads.  Liveness analysis
# (may-backward, call-conservative) proves x2 dead immediately after
# the write, so the instruction only costs issue bandwidth.
#
#   $ python -m repro lint examples/asm/dead_store.s
#
# reports warning[L010] at the first `addi`.

.entry main
.func main
main:
    addi x2, x0, 7          # L010: x2 is never read afterwards
    addi x1, x0, 3
count:
    addi x1, x1, -1
    bne  x1, x0, count
    halt
