# A clean streaming kernel: no flush-inducing instructions, every block
# reachable, every function properly terminated.
#
#   $ python -m repro lint examples/asm/streaming_clean.s
#
# reports no diagnostics.

.entry main
.func main
main:
    addi x5, x0, 0
    addi x6, x0, 128
    jal  x1, accumulate
    halt

.func accumulate
accumulate:
acc_loop:
    fld  f1, 0x200000(x5)
    fld  f2, 0x200008(x5)
    fmadd f4, f1, f2, f4
    fadd f5, f5, f1
    addi x5, x5, 16
    andi x5, x5, 1023
    addi x6, x6, -1
    bne  x6, x0, acc_loop
    jalr x0, x1, 0
