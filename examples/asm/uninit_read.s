# Reading a register the entry function never wrote.  The simulator
# happily returns the reset value (zero), which is exactly why such
# bugs survive testing -- the linter's definite-assignment analysis
# proves no path from the entry point initialises x5 before the read.
#
#   $ python -m repro lint examples/asm/uninit_read.s
#
# reports warning[L009] at the `add`, and warning[L018] at the `beq`:
# the reset state makes x3 provably zero, so the branch is always
# taken -- the abstract interpreter proves the fall-through dead.

.entry main
.func main
main:
    add  x3, x5, x5         # L009: x5 is read before any write
    beq  x3, x0, done
    nop
done:
    halt
