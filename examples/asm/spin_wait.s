# A spin-wait loop polling a value loaded once, outside the loop.
# Nothing in the loop body redefines the exit condition, so under the
# functional model (`--sim fast`, no asynchronous events) the loop can
# never quiesce: reaching definitions show the branch operand's only
# definition site lies outside the loop.
#
#   $ python -m repro lint examples/asm/spin_wait.s
#
# reports warning[L013] at the loop header.

.entry main
.func main
main:
    addi x9, x0, 0x400
    addi x6, x0, 0
    lw   x5, 0(x9)          # the flag is only ever read here
wait:
    addi x6, x6, 1
    bne  x5, x0, wait       # L013: x5 is never redefined in the body
    halt

.data 0x400 1
