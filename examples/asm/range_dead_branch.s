# A countdown by two from an odd start: the counter walks 7, 5, 3, 1,
# -1, ... and never equals zero, so the `bne` exit is dead and the loop
# spins forever.  Constant propagation cannot prove this (the counter
# is not a constant), but the congruence domain knows the counter is
# always odd while the exit needs it even.
#
#   $ python -m repro lint examples/asm/range_dead_branch.s
#
# reports warning[L018] at the `bne` (the exit path is provably dead)
# and warning[L013] at the loop (with its only exit discounted, no
# time-driven exit remains).

.entry main
.func main
main:
    addi x5, x0, 7          # odd start
spin:
    addi x5, x5, -2         # parity never changes
    bne  x5, x0, spin       # L018: always taken; L013: loop never exits
    halt
