# A function that pushes a stack frame and returns without popping it.
# x31 is the stack pointer by convention; the engine tracks it as an
# offset from the function-entry value and proves the return leaves it
# 16 bytes low on every path.
#
#   $ python -m repro lint examples/asm/stack_imbalance.s
#
# reports warning[L016] at the `jalr`.

.entry main
.func main
main:
    addi x31, x0, 0x1000    # set up the stack
    jal  x1, leaky
    halt

.func leaky
leaky:
    addi x31, x31, -16      # push a frame...
    sd   x5, 0(x31)
    ld   x5, 0(x31)
    jalr x0, x1, 0          # L016: ...and never pop it
