# The Section 6 anti-pattern in its direct, multi-block form: an FP
# status read inside a loop whose operands never change across
# iterations.  The syntactic rule (L001) flags the CSR access because
# it sits in a loop; the dataflow rule (L012) additionally proves it
# loop-invariant -- reaching definitions show every operand is
# supplied from outside the loop body -- so hoisting is safe.
#
#   $ python -m repro lint examples/asm/loop_invariant_csr.s
#
# reports warning[L001] and warning[L012] at the `frflags`.

.entry main
.func main
main:
    addi x1, x0, 8
    addi x2, x0, 0
    addi x5, x0, 3
scan:
    frflags x7              # L001 + L012: loop-invariant CSR access
    beq  x1, x5, skip
    addi x2, x2, 1
skip:
    addi x1, x1, -1
    bne  x1, x0, scan
    halt
