# A doubleword load from an address that is provably == 3 (mod 8).
# The congruence domain tracks address residues through arithmetic, so
# the misalignment is caught even though the address is never a single
# constant the const-propagation rules could see.
#
#   $ python -m repro lint examples/asm/misaligned_load.s
#
# reports warning[L015] at the `ld`.

.entry main
.func main
main:
    addi x5, x0, 0x400
    addi x5, x5, 3          # base slips off the word boundary
    ld   x6, 0(x5)          # L015: address == 3 (mod 8), needs 0
    halt

.data 0x400 7
