# A branch whose outcome constant propagation decides at lint time:
# x1 is provably zero, so `beq x1, x0` is always taken and the
# fall-through arm can never execute.  The block is structurally
# reachable (L003 stays quiet) -- only the conditional-constant
# analysis can prove it dead.
#
#   $ python -m repro lint examples/asm/const_dead_branch.s
#
# reports warning[L011] at the fall-through block.

.entry main
.func main
main:
    addi x1, x0, 0
    addi x9, x0, 0x400
    beq  x1, x0, fast       # always taken: x1 == 0 on every path
    addi x2, x0, 1          # L011: const-proven unreachable
    sw   x2, 0(x9)
fast:
    halt
