# A loop-invariant FP status read whose value is *really used*: every
# iteration stores the saved flags to memory, so the save/restore pair
# removal (repro optimize's first choice) does not apply -- the value
# flows to a store, not to an fsflags restore.  The hoist does: the
# dataflow engine proves the frflags loop-invariant, the loop body
# writes neither fflags nor x7, and the defining block dominates the
# loop exit, so the optimizer synthesizes a preheader and moves the
# read there.  One flush per loop entry instead of one per iteration.
#
#   $ python -m repro lint examples/asm/hoistable_flush.s
#   $ python -m repro optimize examples/asm/hoistable_flush.s
#
# lint reports warning[L001] and warning[L012] at the `frflags`;
# optimize applies hoist-invariant-flush [L012].

.entry main
.func main
main:
    addi x1, x0, 8          # loop counter
    addi x2, x0, 4096       # output cursor
loop:
    frflags x7              # L001 + L012: invariant, but value is used
    sw   x7, 0(x2)          # ... so the pair removal cannot apply
    addi x2, x2, 8
    addi x1, x1, -1
    bne  x1, x0, loop
    halt
