# A callee that overwrites callee-saved x28 and returns without
# restoring it.  The engine tracks saved-register slots through the
# stack frame, so a proper spill/reload would silence the rule -- this
# function simply never saves the register.
#
#   $ python -m repro lint examples/asm/stack_clobber.s
#
# reports warning[L017] at the `jalr`.

.entry main
.func main
main:
    addi x28, x0, 41        # the caller's state x28 should survive
    jal  x1, helper
    sd   x28, 0x400(x0)     # ... but stores 10, not 41
    halt

.func helper
helper:
    addi x28, x0, 5         # clobbers callee-saved x28
    addi x28, x28, 5
    jalr x0, x1, 0          # L017: returns without restoring it

.data 0x400 0
