# A store whose every possible address misses the data image.  The
# guest memory model silently accepts writes to unmapped addresses, so
# the bug produces no fault -- the value simply vanishes.  The abstract
# interpreter proves the address range [0x4008, 0x4008] is disjoint
# from the declared data word at 0x400 and flags the store.
#
#   $ python -m repro lint examples/asm/oob_store.s
#
# reports warning[L014] at the `sd`.

.entry main
.func main
main:
    addi x5, x0, 0x4000     # off by a factor of 16: meant 0x400
    addi x6, x0, 7
    sd   x6, 8(x5)          # L014: provably outside the data image
    halt

.data 0x400 1
