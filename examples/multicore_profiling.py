#!/usr/bin/env python
"""Multi-core profiling and perf-style sample buffers (Section 3.2).

Runs two cores -- one compute-bound, one memory-bound -- each with its
own TIP unit, merges their sample streams into a system-wide profile
(like merging per-CPU perf buffers), and shows the raw binary sample
records TIP would hand to perf (88 B each: 40 B metadata + 4 addresses
+ cycle counter + flags CSR).

Run:  python examples/multicore_profiling.py
"""

from repro.analysis import Granularity, render_profile_table
from repro.core import PerfSession
from repro.harness import MulticoreSession
from repro.workloads import build_workload, k_fp_ilp, k_stream_load


def main() -> None:
    core0 = build_workload("encoder", [
        k_fp_ilp("transform", 2000, width=4),
    ])
    core1 = build_workload("database", [
        k_stream_load("scan", 900, 0x20_0000, 2 * 1024 * 1024,
                      stride=16),
    ])

    print("simulating two cores ...")
    session = MulticoreSession([core0, core1], period=31).run()

    for core in session.sessions:
        print(f"  core {core.core_id} ({core.workload.name}): "
              f"{core.cycles} cycles, "
              f"IPC {core.machine.stats.ipc:.2f}, "
              f"{len(core.tip.samples)} TIP samples")

    per_core = session.per_core_profiles(Granularity.FUNCTION)
    print()
    print(render_profile_table(
        {f"core {cid}": profile for cid, profile in per_core.items()},
        title="per-core function profiles"))

    system = session.system_profile(Granularity.FUNCTION, tag_core=True)
    labelled = {f"cpu{core}/{sym}": value
                for (core, sym), value in system.items()}
    print()
    print(render_profile_table({"system": labelled},
                               title="merged system profile"))

    print()
    print("=== raw perf buffers ===")
    for core in session.sessions:
        perf = PerfSession(core.tip, banks=4)
        buffer = perf.drain()
        print(f"core {core.core_id}: {len(core.tip.samples)} samples x "
              f"{perf.bytes_per_sample} B = {len(buffer)} B")
        reconstructed = perf.profile()
        direct = core.tip.profile()
        matches = all(abs(reconstructed[a] - t) < 1e-9
                      for a, t in direct.items())
        print(f"  post-processing the raw buffer reproduces the profile: "
              f"{matches}")


if __name__ == "__main__":
    main()
