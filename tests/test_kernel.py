"""Kernel model tests."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.program import KERNEL_TEXT_BASE
from repro.kernel import KERNEL_DATA_BASE, Kernel, build_handler_program
from repro.mem.tlb import vpn_of


def test_handler_program_shape():
    handler = build_handler_program()
    assert handler.text_lo == KERNEL_TEXT_BASE
    assert handler.functions[0].name == "__pf_handler"
    # Ends with sret.
    assert handler.instructions[-1].op.value == "sret"


def test_handler_initial_data():
    handler = build_handler_program()
    assert handler.data[KERNEL_DATA_BASE + 0x100] == 1


def test_boot_maps_text_and_data():
    kernel = Kernel()
    app = assemble(".func main\n    halt\n.data 0x2000 1\n")
    image = kernel.boot(app, premapped_data=[(0x5000, 0x6000)])
    table = kernel.page_table
    assert table.is_mapped(vpn_of(app.text_lo))
    assert table.is_mapped(vpn_of(KERNEL_TEXT_BASE))
    assert table.is_mapped(vpn_of(KERNEL_DATA_BASE))
    assert table.is_mapped(vpn_of(0x2000))   # .data words
    assert table.is_mapped(vpn_of(0x5000))   # premapped range
    assert not table.is_mapped(vpn_of(0x100_0000))
    # Merged image contains both texts.
    assert image.fetch(app.entry) is not None
    assert image.fetch(kernel.handler_entry) is not None


def test_on_page_fault_installs_page():
    kernel = Kernel()
    entry = kernel.on_page_fault(0x123, cycle=50)
    assert entry == kernel.handler_entry
    assert kernel.page_table.is_mapped(0x123)
    assert kernel.faults == [(0x123, 50)]


def test_handler_preserves_clobbered_registers():
    """End-to-end: registers x28-x31 survive a page fault."""
    from conftest import run_asm
    machine, _ = run_asm("""
    .func main
        addi x28, x0, 1111
        addi x29, x0, 2222
        addi x30, x0, 3333
        addi x31, x0, 4444
        lw   x1, 0x100000(x0)
        add  x5, x28, x29
        add  x6, x30, x31
        add  x7, x5, x6
        sw   x7, 0x3000(x0)
        halt
    """, premapped=[(0x3000, 0x3008)])
    assert machine.stats.exceptions == 1
    assert machine.core.memory.get(0x3000) == 1111 + 2222 + 3333 + 4444
