"""``# lint: ignore[...]`` pragma tests: assembler plumbing, linter
suppression, the ``--no-ignores`` override, and the structured fix-hint
JSON payload."""

import json

import pytest

from repro.cli import main
from repro.isa.assembler import assemble
from repro.lint import FixHint, lint_program

FLUSHY = """
.entry main
.func main
main:
    addi x1, x0, 4
loop:
    frflags x7{pragma}
    addi x1, x1, -1
    bne  x1, x0, loop
    halt
"""


def _flushy(pragma=""):
    return assemble(FLUSHY.format(pragma=pragma), name="flushy")


def test_assembler_records_bare_pragma():
    program = _flushy("   # lint: ignore")
    (rules,) = program.ignores.values()
    assert rules == frozenset({"*"})


def test_assembler_records_rule_list():
    program = _flushy("   # lint: ignore[L001, L012]")
    (rules,) = program.ignores.values()
    assert rules == frozenset({"L001", "L012"})


def test_no_pragma_no_ignores():
    assert _flushy().ignores == {}


def test_pragma_suppresses_matching_rules():
    loud = lint_program(_flushy())
    assert {d.rule for d in loud.diagnostics} >= {"L001", "L012"}
    quiet = lint_program(_flushy("   # lint: ignore[L001, L012]"))
    assert {d.rule for d in quiet.diagnostics} == \
        {d.rule for d in loud.diagnostics} - {"L001", "L012"}
    assert quiet.suppressed == 2


def test_bare_pragma_suppresses_everything_at_that_line():
    report = lint_program(_flushy("   # lint: ignore"))
    addr = next(iter(_flushy().ignores), None) or \
        next(iter(lint_program(_flushy()).diagnostics)).addr
    assert all(d.addr != addr for d in report.diagnostics)


def test_pragma_does_not_hide_other_rules():
    report = lint_program(_flushy("   # lint: ignore[L010]"))
    assert {d.rule for d in report.diagnostics} >= {"L001", "L012"}
    assert report.suppressed == 0


def test_honor_ignores_false_reports_everything():
    program = _flushy("   # lint: ignore")
    report = lint_program(program, honor_ignores=False)
    assert {d.rule for d in report.diagnostics} >= {"L001", "L012"}
    assert report.suppressed == 0


def test_suppressed_count_rendered():
    report = lint_program(_flushy("   # lint: ignore[L001, L012]"))
    assert "2 suppressed" in report.render()
    assert report.to_dict()["suppressed"] == 2


def test_editor_preserves_ignores():
    from repro.isa import ProgramEditor
    program = _flushy("   # lint: ignore[L001]")
    (addr,) = program.ignores
    rebuilt = ProgramEditor(program).build()
    assert rebuilt.ignores == {addr: frozenset({"L001"})}


# -- CLI ---------------------------------------------------------------------

@pytest.fixture
def pragma_file(tmp_path):
    path = tmp_path / "flushy.s"
    path.write_text(FLUSHY.format(
        pragma="   # lint: ignore[L001, L012]"))
    return str(path)


def test_cli_lint_honors_pragma(pragma_file, capsys):
    assert main(["lint", pragma_file, "--strict"]) == 0
    assert "2 suppressed" in capsys.readouterr().out


def test_cli_lint_no_ignores_overrides(pragma_file, capsys):
    assert main(["lint", pragma_file, "--strict",
                 "--no-ignores"]) == 1
    out = capsys.readouterr().out
    assert "L001" in out and "L012" in out


def test_cli_json_includes_fix_payload(tmp_path, capsys):
    path = tmp_path / "flushy.s"
    path.write_text(FLUSHY.format(pragma=""))
    assert main(["lint", str(path), "--format", "json"]) == 0
    (report,) = json.loads(capsys.readouterr().out)
    fixes = {d["rule"]: d.get("fix") for d in report["diagnostics"]}
    assert fixes["L001"]["action"] == "nop"
    assert fixes["L012"]["action"] == "hoist"
    assert fixes["L012"]["addrs"] and fixes["L012"]["header"]
    assert report["suppressed"] == 0


def test_fix_hint_round_trip():
    hint = FixHint(action="hoist", text="move it", addrs=(0x10008,),
                   header=0x10008)
    assert hint.to_dict() == {"action": "hoist", "text": "move it",
                              "addrs": ["0x10008"],
                              "header": "0x10008"}
