"""Property-based round-trip tests for the job server.

Hypothesis drives random batches of small jobs -- duplicate-heavy, to
exercise coalescing under concurrent submission -- against one shared
server and checks the two core service invariants:

* every served report is bit-identical to a direct, in-process
  ``execute_job`` run of the same spec;
* the server never runs more simulations than there are distinct
  simulation keys (duplicates coalesce, cache hits replay).
"""

from __future__ import annotations

import json
import tempfile
import threading

import pytest
from conftest import COUNT_LOOP
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import JobSpec, execute_job, job_key
from repro.serve.testing import running_server

#: The spec pool: small distinct programs x replay periods.  Batches
#: drawn from a small pool repeat often, which is the point.
SPEC_POOL = [(n, period) for n in (11, 23, 37) for period in (5, 7)]


def make_spec(n: int, period: int) -> JobSpec:
    return JobSpec.for_source(COUNT_LOOP.format(n=n),
                              name=f"loop{n}.s", period=period,
                              policies=("TIP", "NCI"))


@pytest.fixture(scope="module")
def served():
    """(handle, direct-report memo, sim-key memo) shared per module."""
    with tempfile.TemporaryDirectory(prefix="repro-serve-prop-") \
            as cache:
        with running_server(cache=cache, workers=2) as handle:
            yield handle, {}, set()


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(batch=st.lists(st.sampled_from(SPEC_POOL),
                      min_size=1, max_size=4))
def test_round_trip_is_bit_identical_and_dedup_is_sound(
        served, batch):
    handle, direct_memo, sim_keys = served
    specs = [make_spec(n, period) for n, period in batch]
    outputs = [None] * len(specs)
    errors = []

    def one(i: int) -> None:
        try:
            client = handle.client(timeout=120)
            job, _coalesced = client.submit(specs[i])
            outputs[i] = (job, client.wait(job, timeout=120)["report"])
        except Exception as exc:  # pragma: no cover - test plumbing
            errors.append(f"client {i}: {exc!r}")

    threads = [threading.Thread(target=one, args=(i,))
               for i in range(len(specs))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120)
    assert not errors

    for (n, period), (job, report) in zip(batch, outputs):
        sim_key, key = job_key(make_spec(n, period))
        sim_keys.add(sim_key)
        if key not in direct_memo:
            direct_memo[key] = execute_job(
                make_spec(n, period), cache_dir=None)["report"]
        assert json.dumps(dict(report, cached=False), sort_keys=True) \
            == json.dumps(dict(direct_memo[key], cached=False),
                          sort_keys=True), \
            f"served report for n={n} period={period} diverged"
        # Equal specs coalesce onto the same job id, always.
        assert job == handle.server._by_key[key].id

    # Global invariant, across every example so far: simulations
    # never exceed distinct simulation keys.
    stats = handle.client().stats()
    assert stats["cache"]["simulations"] <= len(sim_keys)
