"""Disassembler tests, including assemble/disassemble round trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble
from repro.isa.disasm import disassemble, format_instruction
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op

SOURCE = """
.entry main
.func main
main:
    addi x1, x0, 100
    lui  x2, 16
loop:
    lw   x3, 0x2000(x1)
    fld  f1, -8(x1)
    fadd f2, f1, f1
    fmadd f3, f1, f2, f2
    sw   x3, 0(x1)
    fsd  f2, 8(x1)
    amoadd x4, x3, 0(x1)
    beq  x1, x2, done
    bne  x3, x0, loop
    frflags x5
    fsflags x5
    fence
    jal  x1, helper
done:
    halt
.func helper
helper:
    fsqrt f4, f1
    fcvt.w.d x6, f4
    jalr x0, x1, 0
.data 0x2000 3.5
"""


def test_round_trip_program():
    original = assemble(SOURCE)
    text = disassemble(original)
    rebuilt = assemble(text)
    assert len(rebuilt) == len(original)
    for a, b in zip(original.instructions, rebuilt.instructions):
        assert a.op is b.op
        assert a.rd == b.rd
        assert a.sources == b.sources
        assert a.imm == b.imm
        assert a.addr == b.addr
    assert rebuilt.entry == original.entry
    assert [f.name for f in rebuilt.functions] == \
        [f.name for f in original.functions]
    assert rebuilt.data == original.data


def test_format_uses_labels_for_branches():
    program = assemble(SOURCE)
    labels = {addr: name for name, addr in program.labels.items()}
    branch = next(i for i in program.instructions if i.op is Op.BEQ)
    assert "done" in format_instruction(branch, labels)


def test_format_nop_and_halt():
    assert format_instruction(Instruction(Op.NOP)) == "nop"
    assert format_instruction(Instruction(Op.HALT)) == "halt"
    assert format_instruction(Instruction(Op.FENCE)) == "fence"


def test_with_addresses():
    program = assemble(".func main\n    nop\n    halt\n")
    text = disassemble(program, with_addresses=True)
    assert "0x010000:" in text


_SIMPLE_OPS = [Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.MUL, Op.DIV,
               Op.FADD, Op.FMUL, Op.FDIV]


@given(op=st.sampled_from(_SIMPLE_OPS),
       rd=st.integers(1, 31), rs1=st.integers(0, 31),
       rs2=st.integers(0, 31))
@settings(max_examples=80)
def test_round_trip_random_alu(op, rd, rs1, rs2):
    fp = op in (Op.FADD, Op.FMUL, Op.FDIV)
    offset = 32 if fp else 0
    rd_reg = rd + offset if fp else rd
    sources = (rs1 + offset if fp else rs1, rs2 + offset if fp else rs2)
    inst = Instruction(op, rd_reg, sources, 0, 0x10000)
    text = f".func f\n    {format_instruction(inst)}\n"
    rebuilt = assemble(text).instructions[0]
    assert rebuilt.op is inst.op
    assert rebuilt.rd == inst.rd
    assert rebuilt.sources == inst.sources


@given(imm=st.integers(-(1 << 16), 1 << 16), rd=st.integers(1, 31),
       rs1=st.integers(0, 31))
@settings(max_examples=60)
def test_round_trip_random_immediates(imm, rd, rs1):
    inst = Instruction(Op.ADDI, rd, (rs1,), imm, 0x10000)
    text = f".func f\n    {format_instruction(inst)}\n"
    rebuilt = assemble(text).instructions[0]
    assert rebuilt.imm == imm
    assert rebuilt.rd == rd


@given(imm=st.integers(-1024, 1024), rd=st.integers(1, 31),
       base=st.integers(1, 31))
@settings(max_examples=60)
def test_round_trip_random_loads(imm, rd, base):
    inst = Instruction(Op.LD, rd, (base,), imm, 0x10000)
    text = f".func f\n    {format_instruction(inst)}\n"
    rebuilt = assemble(text).instructions[0]
    assert rebuilt.imm == imm
    assert rebuilt.sources == (base,)
