"""Regenerate the golden parallel-replay trace and expected profiles.

Run from the repository root::

    PYTHONPATH=src python tests/data/make_golden.py

Produces ``golden.tiptrace`` (a chunk-indexed v2 commit trace of
``golden.s``) and ``golden_expected.json`` (per-profiler sample
checksums and instruction-level profiles from a *serial* replay).  The
differential test asserts that serial and sharded replays of the
checked-in trace reproduce these values exactly, so regenerating the
files is only legitimate after an intentional change to the trace
format, the golden program, or a profiler's attribution policy.
"""

import io
import json
import os

from repro.analysis.profiles import profile_checksum
from repro.cpu.machine import Machine
from repro.cpu.tracefile import TraceWriterV2
from repro.harness.experiment import ProfilerConfig
from repro.isa import assemble
from repro.kernel import Kernel
from repro.parallel.shard import replay_serial

HERE = os.path.dirname(os.path.abspath(__file__))

#: Sampling parameters of the golden run (prime period, fixed seed).
PERIOD = 23
MODE = "random"
SEED = 2021
CHUNK_CYCLES = 256

#: All seven sampling policies of the paper's comparison.
SEVEN_POLICIES = ("Software", "Dispatch", "LCI", "NCI", "NCI+ILP",
                  "TIP-ILP", "TIP")


def golden_configs():
    return [ProfilerConfig(policy, PERIOD, MODE, SEED)
            for policy in SEVEN_POLICIES]


def main():
    with open(os.path.join(HERE, "golden.s")) as handle:
        source = handle.read()
    program = assemble(source, name="golden.s")
    machine = Machine(program)
    buffer = io.BytesIO()
    machine.attach(TraceWriterV2(buffer, machine.config.rob_banks,
                                 chunk_cycles=CHUNK_CYCLES))
    stats = machine.run()
    trace = buffer.getvalue()
    with open(os.path.join(HERE, "golden.tiptrace"), "wb") as out:
        out.write(trace)

    image = Kernel().boot(program)
    outcome = replay_serial(trace, image, golden_configs())
    expected = {
        "period": PERIOD,
        "mode": MODE,
        "seed": SEED,
        "chunk_cycles": CHUNK_CYCLES,
        "cycles": outcome.cycles,
        "committed": stats.committed,
        "profilers": {},
        "oracle_profile": {hex(addr): weight for addr, weight
                           in sorted(outcome.oracle.profile.items())},
    }
    for name, profiler in outcome.profilers.items():
        expected["profilers"][name] = {
            "checksum": profile_checksum(profiler.samples),
            "samples": len(profiler.samples),
            "profile": {hex(addr): weight for addr, weight
                        in sorted(profiler.profile().items())},
        }
    with open(os.path.join(HERE, "golden_expected.json"), "w") as out:
        json.dump(expected, out, indent=2, sort_keys=True)
        out.write("\n")
    print(f"golden trace: {len(trace)} bytes, {outcome.cycles} cycles, "
          f"{stats.committed} instructions")


if __name__ == "__main__":
    main()
