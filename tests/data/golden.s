; Golden workload for the parallel-replay differential harness.
; Deliberately exercises every commit-stage state: wide commit,
; dependence stalls, load stalls, mispredicted branches, a CSR flush
; and a front-end drain -- so every profiler's shard carry state is
; covered by the golden trace.
.data 0x2000 1
.entry main
.func main
main:
    addi x1, x0, 0
    addi x2, x0, 160
outer:
    lw   x3, 0x2000(x1)
    andi x4, x1, 7
    beq  x4, x0, flush
    add  x5, x5, x3
    add  x6, x6, x5
    add  x7, x7, x6
    jal  x9, leaf
    addi x1, x1, 4
    andi x1, x1, 255
    addi x2, x2, -1
    bne  x2, x0, outer
    lw   x10, 0x100000(x0)
    halt
flush:
    frflags x8
    jal  x9, leaf
    addi x1, x1, 4
    andi x1, x1, 255
    addi x2, x2, -1
    bne  x2, x0, outer
    lw   x10, 0x100000(x0)
    halt

.func leaf
leaf:
    addi x11, x11, 1
    xor  x12, x12, x11
    jalr x0, x9, 0
