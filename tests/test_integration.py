"""End-to-end integration tests: the paper's headline claims in miniature.

These run real workloads through the full pipeline (core -> trace ->
profilers -> error metric) and assert the *shape* results of Section 5.
"""

import pytest

from repro.analysis import Granularity
from repro.harness import ProfilerConfig, default_profilers, run_workload
from repro.workloads import (build_workload, k_branchy, k_csr_flush,
                             k_int_ilp, k_pointer_chase, k_stream_load)


@pytest.fixture(scope="module")
def mixed_result():
    workload = build_workload("mixed", [
        k_int_ilp("compute", 1200, width=6),
        k_stream_load("stream", 400, 0x20_0000, 1024 * 1024),
        k_csr_flush("round", 250),
        k_branchy("branchy", 400, 0x40_0000, taken_bias=0.5),
    ], rounds=2)
    return run_workload(workload, default_profilers(13))


def test_tip_is_most_accurate_at_instruction_level(mixed_result):
    errors = mixed_result.errors(Granularity.INSTRUCTION)
    for name, error in errors.items():
        if name != "TIP":
            assert errors["TIP"] <= error, (name, errors)


def test_tip_instruction_error_is_small(mixed_result):
    assert mixed_result.error("TIP", Granularity.INSTRUCTION) < 0.05


def test_commit_profilers_accurate_at_function_level(mixed_result):
    errors = mixed_result.errors(Granularity.FUNCTION)
    for name in ("TIP", "TIP-ILP", "NCI", "LCI"):
        assert errors[name] < 0.08, errors


def test_software_dispatch_worse_than_commit_based(mixed_result):
    """Figure 8: tagging at fetch/dispatch creates significant bias."""
    errors = mixed_result.errors(Granularity.INSTRUCTION)
    commit_best = min(errors["TIP"], errors["NCI"])
    assert errors["Software"] > commit_best
    assert errors["Dispatch"] > commit_best


def test_error_grows_with_finer_granularity(mixed_result):
    """Section 5.1: error is higher at finer granularities."""
    for name in ("TIP", "NCI", "LCI"):
        func = mixed_result.error(name, Granularity.FUNCTION)
        block = mixed_result.error(name, Granularity.BASIC_BLOCK)
        inst = mixed_result.error(name, Granularity.INSTRUCTION)
        assert func <= block + 1e-9
        assert block <= inst + 1e-9


def test_tip_ilp_beats_nci_on_flush_heavy_code():
    """Figure 10: correct flush attribution separates TIP-ILP from NCI."""
    workload = build_workload("flushy", [k_csr_flush("round", 900)],
                              rounds=2)
    result = run_workload(workload, default_profilers(13))
    errors = result.errors(Granularity.INSTRUCTION)
    assert errors["TIP-ILP"] < errors["NCI"]


def test_nci_ilp_worse_than_nci_on_stalls():
    """Figure 11c: naively adding ILP-awareness to NCI *increases* error
    because stall samples are spread over innocent instructions."""
    workload = build_workload("stally", [
        k_pointer_chase("chase", 700, 0x20_0000, 32 * 1024),
    ], rounds=2)
    configs = default_profilers(13, policies=("NCI", "NCI+ILP", "TIP"))
    result = run_workload(workload, configs)
    errors = result.errors(Granularity.INSTRUCTION)
    assert errors["NCI+ILP"] > errors["NCI"]
    assert errors["TIP"] < errors["NCI"]


def test_higher_sampling_rate_reduces_tip_error():
    """Figure 11a: TIP keeps improving with sampling frequency."""
    workload = build_workload("comp", [k_int_ilp("k", 2500, width=6)],
                              rounds=2)
    configs = [ProfilerConfig("TIP", 97, label="TIP@97"),
               ProfilerConfig("TIP", 7, label="TIP@7")]
    result = run_workload(workload, configs)
    sparse = result.error("TIP@97", Granularity.INSTRUCTION)
    dense = result.error("TIP@7", Granularity.INSTRUCTION)
    assert dense < sparse


def test_oracle_total_matches_cycle_count(mixed_result):
    total = sum(mixed_result.oracle.profile.values())
    assert total == pytest.approx(mixed_result.stats.cycles, rel=0.02)


def test_sampled_time_covers_run(mixed_result):
    tip = mixed_result.profilers["TIP"]
    assert tip.sampled_cycles <= mixed_result.stats.cycles
    assert tip.sampled_cycles >= 0.9 * mixed_result.stats.cycles
