"""Functional correctness of the out-of-order core.

These tests run small programs to completion and check the architectural
results -- registers and memory -- independent of timing.
"""

import pytest

from repro.isa.instruction import Register
from conftest import run_asm


def _mem(machine, addr):
    return machine.core.memory.get(addr)


def test_arithmetic_results():
    machine, _ = run_asm("""
    .func main
        addi x1, x0, 6
        addi x2, x0, 7
        mul  x3, x1, x2
        sw   x3, 0x3000(x0)
        halt
    """, premapped=[(0x3000, 0x3008)])
    assert _mem(machine, 0x3000) == 42


def test_loop_sums_correctly():
    machine, _ = run_asm("""
    .func main
        addi x1, x0, 0
        addi x2, x0, 0
    loop:
        addi x1, x1, 1
        add  x2, x2, x1
        addi x3, x0, 100
        bne  x1, x3, loop
        sw   x2, 0x3000(x0)
        halt
    """, premapped=[(0x3000, 0x3008)])
    assert _mem(machine, 0x3000) == 5050


def test_load_reads_initial_data():
    machine, _ = run_asm("""
    .data 0x2000 123
    .func main
        lw   x1, 0x2000(x0)
        addi x1, x1, 1
        sw   x1, 0x2008(x0)
        halt
    """, premapped=[(0x2000, 0x2010)])
    assert _mem(machine, 0x2008) == 124


def test_store_to_load_forwarding_value():
    machine, _ = run_asm("""
    .func main
        addi x1, x0, 77
        sw   x1, 0x2000(x0)
        lw   x2, 0x2000(x0)
        addi x2, x2, 1
        sw   x2, 0x2008(x0)
        halt
    """, premapped=[(0x2000, 0x2010)])
    assert _mem(machine, 0x2008) == 78


def test_call_and_return():
    machine, _ = run_asm("""
    .entry main
    .func main
    main:
        addi x5, x0, 10
        jal  x1, double
        sw   x5, 0x3000(x0)
        halt
    .func double
    double:
        add  x5, x5, x5
        jalr x0, x1, 0
    """, premapped=[(0x3000, 0x3008)])
    assert _mem(machine, 0x3000) == 20


def test_nested_calls():
    machine, _ = run_asm("""
    .entry main
    .func main
    main:
        addi x5, x0, 1
        jal  x1, outer
        sw   x5, 0x3000(x0)
        halt
    .func outer
    outer:
        addi x5, x5, 10
        jal  x2, inner
        addi x5, x5, 100
        jalr x0, x1, 0
    .func inner
    inner:
        addi x5, x5, 1000
        jalr x0, x2, 0
    """, premapped=[(0x3000, 0x3008)])
    assert _mem(machine, 0x3000) == 1111


def test_fp_computation():
    machine, _ = run_asm("""
    .data 0x2000 1.5
    .data 0x2008 2.5
    .func main
        fld  f1, 0x2000(x0)
        fld  f2, 0x2008(x0)
        fadd f3, f1, f2
        fmul f4, f3, f3
        fsd  f4, 0x2010(x0)
        halt
    """, premapped=[(0x2000, 0x2020)])
    assert _mem(machine, 0x2010) == 16.0


def test_x0_is_hardwired_zero():
    machine, _ = run_asm("""
    .func main
        addi x0, x0, 99
        add  x1, x0, x0
        sw   x1, 0x3000(x0)
        halt
    """, premapped=[(0x3000, 0x3008)])
    assert _mem(machine, 0x3000) == 0


def test_data_dependent_branches():
    machine, _ = run_asm("""
    .data 0x2000 5
    .func main
        lw   x1, 0x2000(x0)
        addi x2, x0, 10
        blt  x1, x2, less
        addi x3, x0, 111
        sw   x3, 0x3000(x0)
        halt
    less:
        addi x3, x0, 222
        sw   x3, 0x3000(x0)
        halt
    """, premapped=[(0x2000, 0x2008), (0x3000, 0x3008)])
    assert _mem(machine, 0x3000) == 222


def test_amoadd_atomic_update():
    machine, _ = run_asm("""
    .data 0x2000 10
    .func main
        addi x1, x0, 0x2000
        addi x2, x0, 5
        amoadd x3, x2, 0(x1)
        sw   x3, 0x3000(x0)
        halt
    """, premapped=[(0x2000, 0x2008), (0x3000, 0x3008)])
    assert _mem(machine, 0x2000) == 15   # memory updated
    assert _mem(machine, 0x3000) == 10   # old value returned


def test_fence_is_transparent_architecturally():
    machine, _ = run_asm("""
    .func main
        addi x1, x0, 3
        fence
        addi x1, x1, 4
        sw   x1, 0x3000(x0)
        halt
    """, premapped=[(0x3000, 0x3008)])
    assert _mem(machine, 0x3000) == 7


def test_stats_count_commits():
    machine, collector = run_asm("""
    .func main
        nop
        nop
        nop
        halt
    """)
    # 4 program instructions committed (handler not invoked).
    assert machine.stats.committed == 4
    total_trace_commits = sum(len(r.committed) for r in collector.records)
    assert total_trace_commits == 4


def test_ipc_bounded_by_commit_width():
    machine, _ = run_asm("""
    .func main
        addi x1, x0, 0
        addi x2, x0, 2000
    loop:
        add  x3, x3, x1
        add  x4, x4, x1
        add  x5, x5, x1
        addi x1, x1, 1
        bne  x1, x2, loop
        halt
    """)
    assert 0.0 < machine.stats.ipc <= machine.config.commit_width
