"""Workload generator and suite tests."""

import pytest

from repro.harness import default_profilers, run_workload
from repro.workloads.generator import (build_workload, k_branchy, k_calls,
                                       k_csr_flush, k_dep_chain, k_fault,
                                       k_fp_div, k_fp_ilp, k_icache,
                                       k_int_ilp, k_pointer_chase,
                                       k_serialize, k_stream_load,
                                       k_stream_store)
from repro.workloads.suite import (BENCHMARKS, PAPER_CLASSES, build,
                                   build_suite, workload_names)


def _run(workload, period=31):
    return run_workload(workload, default_profilers(period))


def test_suite_has_27_benchmarks():
    assert len(BENCHMARKS) == 27
    assert workload_names() == BENCHMARKS
    assert set(PAPER_CLASSES.values()) == {"Compute", "Flush", "Stall"}


def test_unknown_benchmark_raises():
    with pytest.raises(ValueError, match="unknown benchmark"):
        build("nonesuch")


def test_all_workloads_assemble():
    for name in BENCHMARKS:
        workload = build(name, scale=0.05)
        assert len(workload.program) > 10
        assert workload.program.functions


def test_build_suite_subset():
    suite = build_suite(["lbm", "mcf"], scale=0.05)
    assert [w.name for w in suite] == ["lbm", "mcf"]


def test_int_ilp_kernel_runs_wide():
    workload = build_workload("t", [k_int_ilp("k", 2000, width=7)])
    result = _run(workload)
    assert result.stats.ipc > 1.8


def test_pointer_chase_kernel_is_slow():
    workload = build_workload(
        "t", [k_pointer_chase("k", 500, 0x20_0000, 64 * 1024)])
    result = _run(workload)
    assert result.stats.ipc < 0.5
    from repro.core.samples import Category
    stack = result.cycle_stack()
    assert stack.fraction(Category.LOAD_STALL) > 0.4


def test_pointer_chase_visits_whole_cycle():
    kernel = k_pointer_chase("k", 10, 0x1000, 16, seed=1)
    # The data words form one cycle over all 16 entries.
    seen = set()
    addr = 0x1000
    for _ in range(16):
        seen.add(addr)
        addr = int(kernel.data[addr])
    assert len(seen) == 16
    assert addr == 0x1000


def test_csr_flush_kernel_flushes():
    workload = build_workload("t", [k_csr_flush("k", 300)])
    result = _run(workload)
    assert result.stats.csr_flushes >= 600  # frflags + fsflags per iter
    from repro.core.samples import Category
    assert result.cycle_stack().fraction(Category.MISC_FLUSH) > 0.1


def test_branchy_kernel_mispredicts():
    workload = build_workload(
        "t", [k_branchy("k", 1500, 0x20_0000, taken_bias=0.5)])
    result = _run(workload)
    assert result.stats.branch_mispredicts > 150


def test_branchy_biased_predictable():
    workload = build_workload(
        "t", [k_branchy("k", 1500, 0x20_0000, taken_bias=1.0)])
    result = _run(workload)
    assert result.stats.branch_mispredicts < 100


def test_fault_kernel_takes_page_faults():
    workload = build_workload("t", [k_fault("k", 8, 0x200_0000)])
    result = _run(workload)
    assert result.stats.exceptions == 8  # one first-touch fault per page


def test_fault_pages_stay_mapped_across_rounds():
    workload = build_workload("t", [k_fault("k", 8, 0x200_0000)], rounds=2)
    result = _run(workload)
    assert result.stats.exceptions == 8  # second round faults nothing


def test_serialize_kernel():
    workload = build_workload(
        "t", [k_serialize("k", 100, 0x12_0000)], rounds=1)
    result = _run(workload)
    assert result.stats.cycles > 100 * 10  # full drains per iteration


def test_stream_store_kernel_generates_store_stalls():
    workload = build_workload(
        "t", [k_stream_store("k", 1200, 0x80_0000, 4 * 1024 * 1024)],
        rounds=1)
    result = _run(workload)
    from repro.core.samples import Category
    assert result.cycle_stack().fraction(Category.STORE_STALL) > 0.2


def test_icache_kernel_has_frontend_stalls():
    workload = build_workload(
        "t", [k_icache("k", 2, funcs=14, insts_per_func=520)], rounds=1)
    result = _run(workload)
    from repro.core.samples import Category
    assert result.cycle_stack().fraction(Category.FRONTEND) > 0.1


def test_workload_premapped_regions_propagate():
    workload = build_workload(
        "t", [k_stream_load("k", 100, 0x20_0000, 64 * 1024)])
    assert (0x20_0000, 0x20_0000 + 64 * 1024) in workload.premapped


def test_rounds_multiply_work():
    one = build_workload("t", [k_int_ilp("k", 500)], rounds=1)
    two = build_workload("t2", [k_int_ilp("k", 500)], rounds=2)
    r1 = _run(one)
    r2 = _run(two)
    assert r2.stats.committed > 1.8 * r1.stats.committed


def test_recursive_kernel_returns_correctly():
    from repro.workloads import k_recursive
    workload = build_workload("t", [k_recursive("k", 150, depth=10)])
    result = _run(workload)
    # Every call returns: the program halts and commits all levels
    # (each iteration runs ~10 levels x ~6 instructions).
    assert result.stats.committed > 150 * 30
    # Deep call/return chains stay well-predicted via the RAS.
    mispredict_rate = (result.stats.branch_mispredicts
                       / max(result.stats.committed, 1))
    assert mispredict_rate < 0.02
