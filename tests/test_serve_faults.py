"""Fault-injection tests: the server under worker crashes, hangs,
slow starts, per-job timeouts and client disconnects.

All faults are injected through :class:`repro.serve.testing.FaultyPool`
-- real worker processes that really die or hang -- so these tests
verify the daemon's isolation story, not a mock of it.
"""

from __future__ import annotations

import http.client
import threading
import time
from dataclasses import replace

import pytest
from conftest import COUNT_LOOP

from repro.serve import JobSpec
from repro.serve.client import JobFailed
from repro.serve.testing import Fault, FaultyPool, running_server


def loop_spec(n: int = 40, **kwargs) -> JobSpec:
    return JobSpec.for_source(COUNT_LOOP.format(n=n),
                              name=f"loop{n}.s", period=7,
                              policies=("TIP",), **kwargs)


def wait_until(predicate, timeout: float = 30.0,
               interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def test_crash_on_first_attempt_retries_to_success():
    pool = FaultyPool(workers=1, retries=1,
                      faults=(Fault("crash",
                                    attempts=frozenset({0})),))
    with running_server(pool=pool, cache=None) as handle:
        client = handle.client()
        info = client.submit_and_wait(loop_spec(), timeout=120)
        events = list(client.stream(info["job"]))
    assert info["state"] == "done" and info["report"] is not None
    assert info["attempts"] == 2
    kinds = [event["event"] for event in events]
    assert kinds == ["queued", "running", "retry", "running", "done"]
    retry = next(e for e in events if e["event"] == "retry")
    assert retry["cause"] == "crash"
    assert pool.crashes == 1 and pool.injected[0][2] == "crash"


def test_persistent_crash_reports_error_to_all_waiters():
    pool = FaultyPool(workers=1, retries=1,
                      faults=(Fault("crash"),))
    spec = loop_spec(n=50)
    failures = [None, None]

    with running_server(pool=pool, cache=None) as handle:

        def waiter(i: int) -> None:
            client = handle.client(timeout=120)
            job = client.submit(spec)[0]
            try:
                client.wait(job, timeout=120)
            except JobFailed as exc:
                failures[i] = exc

        threads = [threading.Thread(target=waiter, args=(i,))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        stats = handle.client().stats()

        # The failed key was released: fixing the fault and
        # resubmitting gets a fresh, successful run.
        pool.faults.clear()
        client = handle.client()
        job2 = client.submit(spec)[0]
        assert client.wait(job2, timeout=120)["state"] == "done"

    for failure in failures:
        assert isinstance(failure, JobFailed)
        assert failure.error["kind"] == "crash"
        assert failure.error["attempts"] == 2
    assert failures[0].job == failures[1].job
    assert stats["jobs"]["error"] == 1
    assert stats["dedup"]["coalesced"] == 1


def test_job_timeout_kills_the_hung_worker():
    pool = FaultyPool(workers=1, retries=0, faults=(Fault("hang"),))
    spec = replace(loop_spec(), timeout=1.0)
    with running_server(pool=pool, cache=None) as handle:
        client = handle.client()
        job = client.submit(spec)[0]
        with pytest.raises(JobFailed) as failed:
            client.wait(job, timeout=60)
        assert wait_until(lambda: pool.active == 0)
    assert failed.value.error["kind"] == "timeout"
    assert pool.timeouts == 1
    assert pool.spawned == 1  # the worker really started, then died


def test_cancel_kills_the_inflight_worker():
    pool = FaultyPool(workers=1, retries=0, faults=(Fault("hang"),))
    with running_server(pool=pool, cache=None) as handle:
        client = handle.client()
        job = client.submit(loop_spec(n=60))[0]
        # Let the worker actually start before cancelling it.
        assert wait_until(lambda: pool.active == 1)
        reply = client.cancel(job)
        assert reply["cancelled"] and reply["state"] == "cancelled"
        assert wait_until(lambda: pool.active == 0)
    assert pool.cancelled == 1


def test_slow_start_fault_delays_but_completes():
    pool = FaultyPool(workers=1,
                      faults=(Fault("slow-start", delay=0.4),))
    with running_server(pool=pool, cache=None) as handle:
        client = handle.client()
        start = time.monotonic()
        info = client.submit_and_wait(loop_spec(n=20), timeout=120)
        elapsed = time.monotonic() - start
    assert info["state"] == "done"
    assert elapsed >= 0.4
    assert pool.injected == [(info["job"], 0, "slow-start")]


def test_client_disconnect_mid_stream_leaks_nothing():
    pool = FaultyPool(workers=1,
                      faults=(Fault("slow-start", delay=1.5),))
    spec = loop_spec(n=30)
    with running_server(pool=pool, cache=None) as handle:
        client = handle.client()
        job = client.submit(spec)[0]
        # Open a raw event stream, read the first event, hang up.
        conn = http.client.HTTPConnection(*handle.address, timeout=30)
        conn.request("GET", f"/jobs/{job}/events")
        response = conn.getresponse()
        assert response.status == 200
        first = response.readline()
        assert b'"queued"' in first
        server = handle.server
        assert wait_until(lambda: server.streams_open == 1)
        conn.close()

        # The abandoned stream unwinds; the job is unaffected and
        # still runs to completion for the patient client.
        assert wait_until(lambda: server.streams_open == 0)
        info = client.wait(job, timeout=120)
        assert info["state"] == "done"
        stats = handle.client().stats()
    assert stats["streams"]["open"] == 0
    assert stats["streams"]["served"] >= 1
    # The only open connection is the /stats request itself.
    assert stats["connections"]["open"] == 1


def test_faults_can_target_specific_jobs():
    spec_ok = loop_spec(n=21)
    spec_bad = loop_spec(n=22)
    from repro.serve import job_key
    bad_id_prefix = job_key(spec_bad)[1][:12]
    pool = FaultyPool(workers=2, retries=0,
                      faults=(Fault("crash", match=bad_id_prefix),))
    with running_server(pool=pool, cache=None) as handle:
        client = handle.client()
        ok_job = client.submit(spec_ok)[0]
        bad_job = client.submit(spec_bad)[0]
        assert client.wait(ok_job, timeout=120)["state"] == "done"
        with pytest.raises(JobFailed):
            client.wait(bad_job, timeout=120)
    assert [entry[0] for entry in pool.injected] == [bad_job]
