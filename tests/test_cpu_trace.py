"""Trace record and collector tests, plus trace invariants on real runs."""

import pytest

from repro.cpu.trace import (CommittedInst, CycleRecord, TraceCollector,
                             replay)
from conftest import make_record, run_asm


def test_collector_stores_records():
    collector = TraceCollector()
    records = [make_record(0), make_record(1)]
    replay(records, collector)
    assert len(collector) == 2
    assert collector.final_cycle == 1
    assert [r.cycle for r in collector] == [0, 1]


def test_replay_empty():
    collector = TraceCollector()
    replay([], collector)
    assert collector.final_cycle == 0


def test_committed_inst_repr_flags():
    inst = CommittedInst(0x1000, 0, True, False)
    assert "M" in repr(inst)


@pytest.fixture(scope="module")
def loop_trace():
    _, collector = run_asm("""
    .func main
        addi x1, x0, 0
        addi x2, x0, 200
    loop:
        lw   x3, 0x2000(x1)
        add  x4, x4, x3
        addi x1, x1, 8
        andi x1, x1, 1023
        addi x2, x2, -1
        bne  x2, x0, loop
        frflags x5
        halt
    """, premapped=[(0x2000, 0x2400)])
    return collector


def test_invariant_commits_in_program_order(loop_trace):
    for record in loop_trace.records:
        banks = [c.bank for c in record.committed]
        assert len(set(banks)) == len(banks)  # one commit per bank


def test_invariant_commit_width_bound(loop_trace):
    for record in loop_trace.records:
        assert len(record.committed) <= 4


def test_invariant_rob_head_none_iff_empty(loop_trace):
    for record in loop_trace.records:
        assert (record.rob_head is None) == record.rob_empty


def test_invariant_dispatch_width_bound(loop_trace):
    for record in loop_trace.records:
        assert len(record.dispatched) <= 4


def test_invariant_exception_implies_empty(loop_trace):
    for record in loop_trace.records:
        if record.exception is not None:
            assert record.rob_empty


def test_every_static_instruction_commits(loop_trace):
    committed_addrs = {c.addr for r in loop_trace.records
                       for c in r.committed}
    # The loop body instructions all appear.
    assert len(committed_addrs) >= 8
