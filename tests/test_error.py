"""Profile error metric tests."""

import pytest

from repro.analysis.error import (error_reduction, overlap, profile_error,
                                  per_sample_error)
from repro.analysis.symbols import Granularity, Symbolizer
from repro.core.oracle import OracleProfiler
from repro.core.sampling import SampleSchedule
from repro.core.baselines import LciProfiler, NciProfiler
from repro.core.tip import TipProfiler
from repro.cpu.trace import replay
from tests.test_oracle import BR, I1, I3, I5, LOAD, PROGRAM
from conftest import make_record


def test_overlap_identical():
    assert overlap({"a": 0.5, "b": 0.5}, {"a": 0.5, "b": 0.5}) == 1.0


def test_overlap_disjoint():
    assert overlap({"a": 1.0}, {"b": 1.0}) == 0.0


def test_overlap_partial():
    assert overlap({"a": 0.7, "b": 0.3}, {"a": 0.4, "c": 0.6}) == \
        pytest.approx(0.4)


def test_overlap_symmetry():
    a = {"x": 0.2, "y": 0.8}
    b = {"x": 0.5, "z": 0.5}
    assert overlap(a, b) == overlap(b, a)


def _run_with_oracle(records, profiler_cls, period=1, needs_program=True):
    schedule = SampleSchedule(period)
    profiler = (profiler_cls(schedule, PROGRAM) if needs_program
                else profiler_cls(schedule))
    oracle = OracleProfiler(PROGRAM,
                            watch_schedules=[SampleSchedule(period)])
    replay(records, oracle, profiler)
    oracle.report.total_cycles = len(records)
    return profiler, oracle.report


STALL_TRACE = (
    [make_record(0, committed=[(I1, False, False)], rob_head=LOAD)]
    + [make_record(c, rob_head=LOAD) for c in range(1, 41)]
    + [make_record(41, committed=[(LOAD, False, False), (I3, False, False)])]
)


def test_tip_error_zero_at_period_one():
    """Sampling every cycle, TIP reproduces Oracle exactly."""
    profiler, report = _run_with_oracle(STALL_TRACE, TipProfiler)
    sym = Symbolizer(PROGRAM)
    error = profile_error(profiler, report, sym, Granularity.INSTRUCTION)
    assert error == pytest.approx(0.0, abs=1e-9)


def test_lci_error_large_on_stall():
    profiler, report = _run_with_oracle(STALL_TRACE, LciProfiler,
                                        needs_program=False)
    sym = Symbolizer(PROGRAM)
    error = profile_error(profiler, report, sym, Granularity.INSTRUCTION)
    # LCI puts the 40 stall cycles on I1: nearly everything is wrong.
    assert error > 0.9


def test_lci_error_zero_at_function_level():
    profiler, report = _run_with_oracle(STALL_TRACE, LciProfiler,
                                        needs_program=False)
    sym = Symbolizer(PROGRAM)
    error = profile_error(profiler, report, sym, Granularity.FUNCTION)
    assert error == pytest.approx(0.0, abs=1e-9)  # same function


def test_nci_more_accurate_than_lci_on_stall():
    nci, report = _run_with_oracle(STALL_TRACE, NciProfiler,
                                   needs_program=False)
    lci, _ = _run_with_oracle(STALL_TRACE, LciProfiler,
                              needs_program=False)
    sym = Symbolizer(PROGRAM)
    nci_err = profile_error(nci, report, sym, Granularity.INSTRUCTION)
    lci_err = profile_error(lci, report, sym, Granularity.INSTRUCTION)
    assert nci_err < lci_err


def test_error_bounded():
    for cls, needs in ((TipProfiler, True), (NciProfiler, False),
                       (LciProfiler, False)):
        profiler, report = _run_with_oracle(STALL_TRACE, cls,
                                            needs_program=needs)
        sym = Symbolizer(PROGRAM)
        error = profile_error(profiler, report, sym,
                              Granularity.INSTRUCTION)
        assert 0.0 <= error <= 1.0


def test_sparser_sampling_increases_unsystematic_error():
    tip_dense, report_dense = _run_with_oracle(STALL_TRACE, TipProfiler,
                                               period=1)
    tip_sparse, report_sparse = _run_with_oracle(STALL_TRACE, TipProfiler,
                                                 period=17)
    sym = Symbolizer(PROGRAM)
    dense = profile_error(tip_dense, report_dense, sym,
                          Granularity.INSTRUCTION)
    sparse = profile_error(tip_sparse, report_sparse, sym,
                           Granularity.INSTRUCTION)
    assert sparse >= dense


def test_per_sample_error_requires_watched_schedule():
    profiler = TipProfiler(SampleSchedule(5), PROGRAM)
    oracle = OracleProfiler(PROGRAM)  # no watch schedules
    replay(STALL_TRACE, oracle, profiler)
    sym = Symbolizer(PROGRAM)
    with pytest.raises(ValueError, match="did not watch"):
        per_sample_error(profiler, oracle.report, sym,
                         Granularity.INSTRUCTION)


def test_per_sample_error_zero_for_tip_dense():
    profiler, report = _run_with_oracle(STALL_TRACE, TipProfiler)
    sym = Symbolizer(PROGRAM)
    error = per_sample_error(profiler, report, sym,
                             Granularity.INSTRUCTION)
    assert error == pytest.approx(0.0, abs=1e-9)


def test_error_reduction_factors():
    factors = error_reduction({"TIP": 0.016, "NCI": 0.093}, "TIP")
    assert factors["NCI"] == pytest.approx(5.8125)
    assert factors["TIP"] == 1.0


def test_error_reduction_zero_reference():
    factors = error_reduction({"TIP": 0.0, "NCI": 0.1}, "TIP")
    assert factors["NCI"] == float("inf")
