"""Control-flow graph construction tests (repro.lint.cfg)."""

from repro.isa.assembler import assemble
from repro.lint import build_cfg

LOOP_CALL = """
.entry main
.func main
main:
    addi x1, x0, 0
    addi x2, x0, 10
loop:
    jal  x5, helper
    addi x1, x1, 1
    bne  x1, x2, loop
    halt

.func helper
helper:
    addi x3, x3, 1
    jalr x0, x5, 0
"""

DIAMOND = """
.entry main
.func main
main:
    addi x1, x0, 1
    bne  x1, x0, right
    addi x2, x0, 2
    jal  x0, join
right:
    addi x3, x0, 3
join:
    halt
"""


def _cfg(source):
    program = assemble(source, name="cfg-test")
    return program, build_cfg(program)


def test_blocks_split_at_leaders():
    program, cfg = _cfg(LOOP_CALL)
    starts = {b.start for b in cfg.blocks}
    # Leaders: entry, the branch target `loop`, the instruction after
    # each control transfer, and the `helper` function entry.
    assert program.entry in starts
    assert program.labels["loop"] in starts
    assert program.labels["helper"] in starts
    assert cfg.functions.keys() == {"main", "helper"}


def test_edges_follow_branch_semantics():
    program, cfg = _cfg(LOOP_CALL)
    call_block = cfg.block_of(program.labels["loop"])
    # `jal x5` is a call: records the callee, falls through to the
    # return site instead of linking an intra-function edge to it.
    assert call_block.call_targets == [program.labels["helper"]]
    assert len(call_block.successors) == 1

    branch_block = cfg.blocks[call_block.successors[0]]
    assert branch_block.terminator.op.value == "bne"
    # Conditional branch: taken edge back to the header + fall-through.
    assert set(branch_block.successors) == {
        call_block.index, branch_block.index + 1}

    ret_block = cfg.block_of(program.labels["helper"])
    assert ret_block.successors == []  # jalr x0 is a return
    assert not ret_block.falls_off


def test_predecessors_mirror_successors():
    _program, cfg = _cfg(LOOP_CALL)
    for block in cfg.blocks:
        for succ in block.successors:
            assert block.index in cfg.blocks[succ].predecessors


def test_reachability_crosses_calls():
    _program, cfg = _cfg(LOOP_CALL)
    assert cfg.reachable == set(range(len(cfg.blocks)))


def test_unreachable_block_detected():
    program, cfg = _cfg("""
.entry main
.func main
main:
    jal  x0, out
    addi x1, x1, 1
out:
    halt
""")
    dead = cfg.block_of(program.entry + 4)
    assert dead.index not in cfg.reachable
    assert cfg.block_of(program.labels["out"]).index in cfg.reachable


def test_natural_loop_and_body():
    program, cfg = _cfg(LOOP_CALL)
    assert len(cfg.loops) == 1
    loop = cfg.loops[0]
    header = cfg.block_index_of(program.labels["loop"])
    assert loop.function == "main"
    assert loop.header == header
    assert header in loop
    # Body: the call block and the increment/branch block; not the
    # preamble, not the halt.
    assert cfg.block_index_of(program.entry) not in loop.body
    assert len(loop.body) == 2


def test_dominators_diamond():
    program, cfg = _cfg(DIAMOND)
    dom = cfg.dominators("main")
    entry = cfg.block_index_of(program.entry)
    right = cfg.block_index_of(program.labels["right"])
    join = cfg.block_index_of(program.labels["join"])
    assert dom[entry] == {entry}
    # Neither arm dominates the join; only the entry (and itself) do.
    assert dom[join] == {entry, join}
    assert dom[right] == {entry, right}


def test_loop_called_functions_transitive():
    program, cfg = _cfg(LOOP_CALL)
    header_addr = program.labels["loop"]
    assert cfg.loop_called == {"helper": header_addr}


def test_hot_context():
    program, cfg = _cfg(LOOP_CALL)
    header_addr = program.labels["loop"]
    # Inside the loop body itself.
    assert cfg.hot_context(header_addr) == ("loop", header_addr)
    # Inside a function called from the loop (the Imagick shape).
    assert cfg.hot_context(program.labels["helper"]) == \
        ("called-from-loop", header_addr)
    # The preamble runs once.
    assert cfg.hot_context(program.entry) is None


def test_block_lookup_boundaries():
    program, cfg = _cfg(LOOP_CALL)
    assert cfg.block_index_of(program.entry) is not None
    assert cfg.block_index_of(program.entry + 2) is None  # unaligned
    assert cfg.block_index_of(program.text_hi) is None  # off the end
    assert cfg.block_of(0) is None
