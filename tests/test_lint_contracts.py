"""The observer-contract conformance checker (C001-C005).

The shipped tree must be clean (the checker gates CI), and each
contract must catch a seeded violation written to a temp file.
"""

import os

import repro
from repro.lint import CONTRACT_RULES, check_observer_contracts

REPRO_SRC = os.path.dirname(repro.__file__)


def _check(tmp_path, source, name="seeded.py"):
    path = tmp_path / name
    path.write_text(source)
    return check_observer_contracts([str(path)])


def _rules(report):
    return [d.rule for d in report.diagnostics]


# -- the shipped tree is its own conformance fixture --------------------------


def test_shipped_profilers_are_clean():
    report = check_observer_contracts([REPRO_SRC])
    assert report.diagnostics == [], report.render()
    assert report.classes_checked >= 10
    assert report.files_checked >= 40


def test_contract_rule_table_is_complete():
    assert set(CONTRACT_RULES) == {"C001", "C002", "C003", "C004",
                                   "C005"}


# -- C001 block-native pairing ------------------------------------------------


def test_c001_block_native_without_hooks(tmp_path):
    report = _check(tmp_path, """
class BrokenBlockNative(TraceObserver):
    block_native = True

    def on_block(self, start, instructions, cycles):
        pass

    def on_stall_run(self, record, count):
        pass
""")
    assert _rules(report) == ["C001"]
    diag = report.diagnostics[0]
    assert not report.ok
    assert "_block_attribute" in diag.message


def test_c001_hooks_without_block_native_claim(tmp_path):
    report = _check(tmp_path, """
class ForgotTheFlag(TraceObserver):
    block_native = False

    def _block_attribute(self, *a):
        return []

    def _block_scan_resolve(self, *a):
        return []

    def _block_resolve_outcome(self, *a):
        self.done = True
""")
    assert _rules(report) == ["C001"]
    assert report.ok  # warning, not error: the claim is just missing
    assert "ignore" in report.diagnostics[0].message


def test_c001_clean_block_native(tmp_path):
    report = _check(tmp_path, """
class GoodBlockNative(TraceObserver):
    block_native = True

    def on_block(self, start, instructions, cycles):
        self.cycles = cycles

    def on_stall_run(self, record, count):
        self.cycles = count

    def _block_attribute(self, *a):
        return []

    def _block_scan_resolve(self, *a):
        return []

    def _block_resolve_outcome(self, *a):
        self.done = True
""")
    assert report.diagnostics == []


# -- C002 batched-stall pairing -----------------------------------------------


def test_c002_on_block_without_on_stall_run(tmp_path):
    report = _check(tmp_path, """
class HalfBlockNative(TraceObserver):
    def on_block(self, start, instructions, cycles):
        self.cycles = cycles
""")
    assert _rules(report) == ["C002"]
    assert "on_stall_run" in report.diagnostics[0].message


def test_c002_inherited_on_stall_run_satisfies(tmp_path):
    report = _check(tmp_path, """
class Derived(SamplingProfiler):
    def on_block(self, start, instructions, cycles):
        self.cycles = cycles
""")
    assert "C002" not in _rules(report)


def test_c002_local_pairing_satisfies(tmp_path):
    report = _check(tmp_path, """
class Paired(TraceObserver):
    def on_block(self, start, instructions, cycles):
        self.cycles = cycles

    def on_stall_run(self, record, count):
        self.cycles = count
""")
    assert report.diagnostics == []


# -- C005 batched-period pairing ----------------------------------------------


def test_c005_on_cycle_run_without_on_stall_run(tmp_path):
    report = _check(tmp_path, """
class HalfBatched(TraceObserver):
    def on_cycle(self, record):
        self.last = record.cycle

    def on_cycle_run(self, records, repeats):
        self.last = records[-1].cycle + (repeats - 1) * len(records)
""")
    assert _rules(report) == ["C005"]
    assert report.ok  # warning: stalls still work via the on_cycle loop
    assert "on_stall_run" in report.diagnostics[0].message


def test_c005_no_per_cycle_fallback_is_an_error(tmp_path):
    report = _check(tmp_path, """
class BatchOnly(TraceObserver):
    def on_cycle_run(self, records, repeats):
        self.count = repeats * len(records)
""")
    assert _rules(report) == ["C005"]
    assert not report.ok  # error: stall runs would raise


def test_c005_local_pairing_satisfies(tmp_path):
    report = _check(tmp_path, """
class FullyBatched(TraceObserver):
    def on_cycle_run(self, records, repeats):
        self.count = repeats * len(records)

    def on_stall_run(self, record, count):
        self.count = count
""")
    assert report.diagnostics == []


def test_c005_inherited_on_stall_run_satisfies(tmp_path):
    report = _check(tmp_path, """
class Base(TraceObserver):
    def on_stall_run(self, record, count):
        self.count = count

class Derived(Base):
    def on_cycle(self, record):
        self.last = record.cycle

    def on_cycle_run(self, records, repeats):
        self.count = repeats * len(records)
""")
    assert "C005" not in _rules(report)


# -- C003 shard protocol completeness -----------------------------------------


def test_c003_shard_legs_without_merge_side(tmp_path):
    report = _check(tmp_path, """
class ShardNoMerge(TraceObserver):
    def begin_shard(self, index, count):
        self.shard = index

    def snapshot(self):
        return {}
""")
    assert _rules(report) == ["C003"]
    assert "absorb" in report.diagnostics[0].message


def test_c003_merge_without_shard_legs(tmp_path):
    report = _check(tmp_path, """
class MergeNoShard(TraceObserver):
    def absorb(self, snapshots, total_cycles):
        self.total = total_cycles
""")
    assert _rules(report) == ["C003"]
    assert "begin_shard" in report.diagnostics[0].message


def test_c003_complete_protocol_is_clean(tmp_path):
    report = _check(tmp_path, """
class FullShard(TraceObserver):
    def begin_shard(self, index, count):
        self.shard = index

    def snapshot(self):
        return {}

    def absorb(self, snapshots, total_cycles):
        self.total = total_cycles
""")
    assert report.diagnostics == []


# -- C004 shared-state hazards ------------------------------------------------


def test_c004_class_attr_mutation_in_shard_method(tmp_path):
    report = _check(tmp_path, """
class Tally(TraceObserver):
    totals = {}

    def on_cycle(self, record):
        Tally.totals[record.cycle] = 1

    def on_finish(self, final_cycle):
        type(self).count = final_cycle
""")
    assert _rules(report) == ["C004", "C004"]


def test_c004_module_global_mutation(tmp_path):
    report = _check(tmp_path, """
SAMPLES = []

class Leaky(TraceObserver):
    def on_cycle(self, record):
        SAMPLES.append(record.cycle)
""")
    assert _rules(report) == ["C004"]
    assert "SAMPLES" in report.diagnostics[0].message


def test_c004_mutable_class_literal_via_self(tmp_path):
    report = _check(tmp_path, """
class SharedDefault(TraceObserver):
    seen = []

    def on_cycle(self, record):
        self.seen.append(record.cycle)
""")
    assert _rules(report) == ["C004"]


def test_c004_instance_state_is_fine(tmp_path):
    report = _check(tmp_path, """
class PerInstance(TraceObserver):
    def __init__(self):
        self.seen = []

    def on_cycle(self, record):
        self.seen.append(record.cycle)
""")
    assert report.diagnostics == []


def test_c004_merge_side_methods_are_exempt(tmp_path):
    report = _check(tmp_path, """
MERGED = []

class Merger(TraceObserver):
    def begin_shard(self, index, count):
        self.shard = index

    def snapshot(self):
        return {}

    def absorb(self, snapshots, total_cycles):
        MERGED.extend(snapshots)
""")
    assert report.diagnostics == []


def test_c004_suppression_comment(tmp_path):
    report = _check(tmp_path, """
REGISTRY = []

class Registered(TraceObserver):
    def on_cycle(self, record):
        REGISTRY.append(record.cycle)  # lint: shared-ok
""")
    assert report.diagnostics == []


def test_c004_ignores_non_observer_classes(tmp_path):
    report = _check(tmp_path, """
CACHE = {}

class JustAHelper:
    def remember(self, key, value):
        CACHE[key] = value
""")
    assert report.diagnostics == []
    assert report.classes_checked == 0


def test_duck_typed_observer_is_still_checked(tmp_path):
    """Two or more locally defined hook methods make a class
    observer-like even without a framework base."""
    report = _check(tmp_path, """
EVENTS = []

class DuckObserver:
    def on_cycle(self, record):
        EVENTS.append(record.cycle)

    def on_finish(self, final_cycle):
        pass
""")
    assert report.classes_checked == 1
    assert _rules(report) == ["C004"]


# -- C000 and reporting mechanics ---------------------------------------------


def test_c000_parse_failure(tmp_path):
    report = _check(tmp_path, "def broken(:\n")
    assert _rules(report) == ["C000"]
    assert not report.ok


def test_directory_walk_skips_pycache(tmp_path):
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("def broken(:\n")
    (tmp_path / "ok.py").write_text("class Plain:\n    pass\n")
    report = check_observer_contracts([str(tmp_path)])
    assert report.diagnostics == []
    assert report.files_checked == 1


def test_report_to_dict_and_render(tmp_path):
    report = _check(tmp_path, """
class HalfBlockNative(TraceObserver):
    def on_block(self, start, instructions, cycles):
        self.cycles = cycles
""")
    data = report.to_dict()
    assert data["errors"] + data["warnings"] == 1
    assert data["diagnostics"][0]["rule"] == "C002"
    assert data["diagnostics"][0]["path"].endswith("seeded.py")
    assert data["diagnostics"][0]["line"] is not None
    rendered = report.render()
    assert "C002" in rendered and "seeded.py" in rendered
