"""Microarchitectural event behaviour: flushes, stalls, exceptions.

These tests check the *trace-visible* behaviour the profilers depend on:
mispredicted-branch commits, CSR flush-on-commit, empty-ROB episodes,
page-fault exceptions running the kernel handler, serialization, and
memory-ordering replays.
"""

import pytest

from repro.cpu.config import CoreConfig
from repro.isa.program import KERNEL_TEXT_BASE
from conftest import run_asm


def test_mispredicted_branch_flagged_in_trace():
    machine, collector = run_asm("""
    .data 0x2000 1
    .data 0x2008 0
    .func main
        addi x1, x0, 0
        addi x2, x0, 64
    loop:
        andi x3, x1, 8
        lw   x4, 0x2000(x3)
        beq  x4, x0, skip
        addi x5, x5, 1
    skip:
        addi x1, x1, 1
        bne  x1, x2, loop
        halt
    """, premapped=[(0x2000, 0x2010)])
    assert machine.stats.branch_mispredicts > 0
    flagged = [c for r in collector.records for c in r.committed
               if c.mispredicted]
    assert flagged


def test_csr_commit_flushes_pipeline():
    machine, collector = run_asm("""
    .func main
        addi x1, x0, 0
        addi x2, x0, 20
    loop:
        frflags x3
        addi x1, x1, 1
        bne  x1, x2, loop
        halt
    """)
    assert machine.stats.csr_flushes >= 20
    flush_commits = [c for r in collector.records for c in r.committed
                     if c.flushes]
    assert len(flush_commits) >= 20
    # Each flush empties the ROB: there must be empty cycles afterwards.
    empty = sum(1 for r in collector.records if r.rob_empty)
    assert empty >= 20


def test_flush_commits_alone_and_stops_group():
    _, collector = run_asm("""
    .func main
        addi x1, x0, 1
        addi x2, x0, 2
        fsflags x1
        addi x3, x0, 3
        addi x4, x0, 4
        halt
    """)
    for record in collector.records:
        flushing = [c for c in record.committed if c.flushes]
        if flushing:
            # The flushing instruction is the youngest commit that cycle.
            assert record.committed[-1].flushes


def test_page_fault_runs_handler_and_reexecutes():
    machine, collector = run_asm("""
    .func main
        lw   x1, 0x100000(x0)
        addi x1, x1, 5
        sw   x1, 0x3000(x0)
        halt
    """, premapped=[(0x3000, 0x3008)])
    assert machine.stats.exceptions == 1
    assert machine.kernel.faults
    # The handler's instructions committed (addresses in kernel text).
    handler_commits = [c for r in collector.records for c in r.committed
                       if c.addr >= KERNEL_TEXT_BASE]
    assert handler_commits
    # The faulting load eventually re-executed: result stored.
    assert machine.core.memory.get(0x3000) == 5
    # An exception event appeared in the trace.
    assert any(r.exception is not None and not r.exception_is_ordering
               for r in collector.records)


def test_page_fault_only_once_per_page():
    machine, _ = run_asm("""
    .func main
        lw   x1, 0x100000(x0)
        lw   x2, 0x100008(x0)
        lw   x3, 0x100100(x0)
        halt
    """)
    assert machine.stats.exceptions == 1


def test_serialized_fence_drains_rob():
    machine, collector = run_asm("""
    .func main
        addi x1, x0, 10
        addi x2, x0, 20
        fence
        addi x3, x0, 30
        halt
    """)
    # Find the fence dispatch cycle; the ROB must have been empty just
    # before it entered.
    fence_addr = machine.image.labels["main"] + 8
    dispatch_cycles = [r.cycle for r in collector.records
                       if fence_addr in r.dispatched]
    assert len(dispatch_cycles) == 1
    record = collector.records[dispatch_cycles[0]]
    assert list(record.dispatched) == [fence_addr]  # dispatched alone


def test_ordering_violation_replays_load(tiny_config):
    """A load issued past an older store to the same address must replay
    (mini-exception) and still produce the right value."""
    config = CoreConfig.boom_4wide()
    machine, collector = run_asm("""
    .data 0x2000 1
    .func main
        addi x1, x0, 0x2000
        lw   x2, 0x2100(x0)
        mul  x3, x2, x2
        mul  x3, x3, x3
        add  x4, x1, x3
        sw   x5, 0(x4)
        lw   x6, 0x2000(x0)
        add  x7, x6, x0
        sw   x7, 0x3000(x0)
        halt
    .data 0x2100 0
    """, config=config, premapped=[(0x2000, 0x2110), (0x3000, 0x3008)])
    # The store address resolves late (mul chain); the younger load to
    # 0x2000 executes early and reads stale data, then replays.
    assert machine.stats.ordering_flushes >= 1
    assert machine.core.memory.get(0x3000) == 0  # x5 == 0 was stored
    assert any(r.exception_is_ordering for r in collector.records)


def test_empty_rob_on_startup_counts_as_drain():
    _, collector = run_asm(".func main\n    halt\n")
    first = collector.records[0]
    assert first.rob_empty
    assert not first.committed


def test_trace_cycles_are_contiguous():
    _, collector = run_asm("""
    .func main
        addi x1, x0, 5
        halt
    """)
    cycles = [r.cycle for r in collector.records]
    assert cycles == list(range(len(cycles)))


def test_head_banks_consistent_with_rob_head():
    _, collector = run_asm("""
    .func main
        addi x1, x0, 0
        addi x2, x0, 50
    loop:
        lw   x3, 0x2000(x1)
        add  x4, x4, x3
        addi x1, x1, 8
        andi x1, x1, 255
        bne  x2, x1, check
    check:
        addi x2, x2, -1
        bne  x2, x0, loop
        halt
    """, premapped=[(0x2000, 0x2200)])
    for record in collector.records:
        if record.rob_head is not None:
            entry = record.head_banks[record.oldest_bank]
            assert entry is not None
            assert entry.addr == record.rob_head


def test_max_cycles_raises():
    from repro.cpu.core import SimulationError
    import pytest as _pytest
    with _pytest.raises(SimulationError):
        run_asm("""
        .func main
        spin:
            beq x0, x0, spin
            halt
        """, max_cycles=2000)
