"""Imagick case-study tests (Section 6)."""

import pytest

from repro.analysis import Granularity
from repro.core.samples import Category
from repro.harness import default_profilers, run_workload
from repro.workloads.imagick import build_imagick


@pytest.fixture(scope="module")
def imagick_runs():
    orig = build_imagick(optimized=False, pixels=400, morph_iters=500)
    opt = build_imagick(optimized=True, pixels=400, morph_iters=500)
    return (run_workload(orig, default_profilers(19)),
            run_workload(opt, default_profilers(19)))


def test_same_layout_both_variants():
    orig = build_imagick(optimized=False, pixels=10, morph_iters=10)
    opt = build_imagick(optimized=True, pixels=10, morph_iters=10)
    assert [i.addr for i in orig.program.instructions] == \
        [i.addr for i in opt.program.instructions]
    assert [f.name for f in orig.program.functions] == \
        [f.name for f in opt.program.functions]


def test_optimized_replaces_csr_with_nop():
    orig = build_imagick(optimized=False, pixels=10, morph_iters=10)
    opt = build_imagick(optimized=True, pixels=10, morph_iters=10)
    orig_ops = [i.op.value for i in orig.program.instructions]
    opt_ops = [i.op.value for i in opt.program.instructions]
    assert "frflags" in orig_ops and "fsflags" in orig_ops
    assert "frflags" not in opt_ops and "fsflags" not in opt_ops
    substituted = sum(1 for a, b in zip(orig_ops, opt_ops)
                      if a != b and b == "nop")
    assert substituted == 4  # two per rounding function


def test_expected_functions_present():
    workload = build_imagick(pixels=10, morph_iters=10)
    names = {f.name for f in workload.program.functions}
    assert {"main", "MeanShiftImage", "ceil", "floor",
            "MorphologyApply"} <= names


def test_original_flushes_optimized_does_not(imagick_runs):
    orig, opt = imagick_runs
    assert orig.stats.csr_flushes > 1000
    assert opt.stats.csr_flushes == 0
    orig_flush = orig.cycle_stack().fraction(Category.MISC_FLUSH)
    opt_flush = opt.cycle_stack().fraction(Category.MISC_FLUSH)
    assert orig_flush > 0.1
    assert opt_flush < 0.01


def test_speedup_close_to_paper(imagick_runs):
    """The paper reports 1.93x; we require the same ballpark."""
    orig, opt = imagick_runs
    speedup = orig.stats.cycles / opt.stats.cycles
    assert 1.5 <= speedup <= 2.5


def test_speedup_exceeds_amdahl_estimate(imagick_runs):
    """Section 6: the speedup is larger than the flush time alone
    explains, because removing flushes restores latency hiding."""
    orig, opt = imagick_runs
    flush_fraction = orig.cycle_stack().fraction(Category.MISC_FLUSH)
    amdahl = 1.0 / (1.0 - flush_fraction)
    speedup = orig.stats.cycles / opt.stats.cycles
    assert speedup > amdahl


def test_ipc_improves(imagick_runs):
    orig, opt = imagick_runs
    assert opt.stats.ipc > orig.stats.ipc * 1.3


def test_tip_attributes_ceil_time_to_csr_instructions(imagick_runs):
    """Figure 12: TIP pinpoints frflags/fsflags inside ceil."""
    orig, _ = imagick_runs
    program = orig.program
    tip_profile = orig.profile("TIP", Granularity.INSTRUCTION)
    csr_addrs = [i.addr for i in program.instructions
                 if i.op.value in ("frflags", "fsflags")]
    ceil = next(f for f in program.functions if f.name == "ceil")
    ceil_time = {addr: t for addr, t in tip_profile.items()
                 if isinstance(addr, int) and ceil.contains(addr)}
    assert ceil_time
    csr_share = sum(t for addr, t in ceil_time.items()
                    if addr in csr_addrs) / sum(ceil_time.values())
    assert csr_share > 0.4  # "most of the time in ceil" on the CSR pair


def test_nci_misses_the_csr_instructions(imagick_runs):
    """Figure 12: NCI attributes the flush time elsewhere."""
    orig, _ = imagick_runs
    program = orig.program
    nci_profile = orig.profile("NCI", Granularity.INSTRUCTION)
    csr_addrs = {i.addr for i in program.instructions
                 if i.op.value in ("frflags", "fsflags")}
    ceil = next(f for f in program.functions if f.name == "ceil")
    ceil_time = {addr: t for addr, t in nci_profile.items()
                 if isinstance(addr, int) and ceil.contains(addr)}
    csr_share = (sum(t for addr, t in ceil_time.items()
                     if addr in csr_addrs)
                 / max(sum(ceil_time.values()), 1e-12))
    assert csr_share < 0.2


def test_function_level_profiles_agree(imagick_runs):
    """Figure 12 (1): at the function level both TIP and NCI look fine,
    which is exactly why the function profile is inconclusive."""
    orig, _ = imagick_runs
    tip_err = orig.error("TIP", Granularity.FUNCTION)
    nci_err = orig.error("NCI", Granularity.FUNCTION)
    assert tip_err < 0.05
    assert nci_err < 0.05
