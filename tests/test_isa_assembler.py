"""Unit tests for the assembler."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instruction import INSTRUCTION_BYTES, Register
from repro.isa.opcodes import Op
from repro.isa.program import TEXT_BASE


def test_simple_program():
    program = assemble("""
    .entry main
    .func main
    main:
        addi x1, x0, 5
        halt
    """)
    assert len(program) == 2
    assert program.entry == TEXT_BASE
    inst = program.instructions[0]
    assert inst.op is Op.ADDI
    assert inst.rd == 1
    assert inst.imm == 5


def test_addresses_are_sequential():
    program = assemble("add x1, x2, x3\nadd x4, x5, x6\nhalt\n")
    addrs = [inst.addr for inst in program.instructions]
    assert addrs == [TEXT_BASE + i * INSTRUCTION_BYTES for i in range(3)]


def test_forward_and_backward_labels():
    program = assemble("""
    start:
        beq x1, x2, end
        bne x1, x0, start
    end:
        halt
    """)
    beq, bne, halt = program.instructions
    assert beq.imm == halt.addr
    assert bne.imm == beq.addr


def test_load_store_operands():
    program = assemble("""
        lw  x5, 16(x6)
        sw  x7, -8(x8)
    """)
    load, store = program.instructions
    assert load.rd == 5
    assert load.sources == (6,)
    assert load.imm == 16
    assert store.rd is None
    assert store.sources == (8, 7)  # (base, data)
    assert store.imm == -8


def test_fp_registers():
    program = assemble("fadd f1, f2, f3\nfld f4, 0(x5)\n")
    fadd, fld = program.instructions
    assert fadd.rd == Register.f(1)
    assert fadd.sources == (Register.f(2), Register.f(3))
    assert fld.rd == Register.f(4)


def test_jal_jalr():
    program = assemble("""
    main:
        jal  x1, func
        halt
    func:
        jalr x0, x1, 0
    """)
    jal = program.instructions[0]
    jalr = program.instructions[2]
    assert jal.imm == program.labels["func"]
    assert jalr.sources == (1,)


def test_functions_have_ranges():
    program = assemble("""
    .func a
    a:
        nop
        nop
    .func b
    b:
        halt
    """)
    funcs = {f.name: f for f in program.functions}
    assert funcs["a"].hi == funcs["b"].lo
    assert funcs["a"].contains(TEXT_BASE)
    assert not funcs["a"].contains(funcs["b"].lo)


def test_data_directive():
    program = assemble(".data 0x2000 3.5\nhalt\n")
    assert program.data[0x2000] == 3.5


def test_comments_and_blank_lines():
    program = assemble("""
    # a comment
    nop   ; trailing comment

    halt
    """)
    assert len(program) == 2


def test_unknown_mnemonic_raises():
    with pytest.raises(AssemblerError, match="unknown mnemonic"):
        assemble("bogus x1, x2, x3\n")


def test_undefined_label_raises():
    with pytest.raises(ValueError, match="undefined label"):
        assemble("beq x1, x2, nowhere\nhalt\n")


def test_bad_register_raises():
    with pytest.raises(AssemblerError):
        assemble("add x1, y2, x3\n")


def test_wrong_operand_count_raises():
    with pytest.raises(AssemblerError):
        assemble("add x1, x2\n")


def test_duplicate_label_raises():
    with pytest.raises(AssemblerError, match="duplicate label"):
        assemble("a:\nnop\na:\nhalt\n")


def test_immediate_ops():
    program = assemble("slli x1, x2, 4\nlui x3, 0x12\n")
    slli, lui = program.instructions
    assert slli.imm == 4
    assert lui.imm == 0x12


def test_csr_and_system_ops():
    program = assemble("frflags x5\nfsflags x6\nfence\nsret\n")
    frflags, fsflags, fence, sret = program.instructions
    assert frflags.rd == 5
    assert fsflags.sources == (6,)
    assert fence.flushes_on_commit is False
    assert fence.is_serializing
    assert sret.flushes_on_commit


def test_amoadd():
    program = assemble("amoadd x5, x6, 0(x7)\n")
    amo = program.instructions[0]
    assert amo.rd == 5
    assert amo.sources == (7, 6)
    assert amo.is_load and amo.is_store and amo.is_serializing


def test_custom_base_address():
    program = assemble("halt\n", base=0x8_0000)
    assert program.text_lo == 0x8_0000
