"""Golden tests per lint rule: one trigger and one near-miss each."""

from repro.isa.assembler import assemble
from repro.isa.program import FunctionSymbol, Program
from repro.lint import (DEFAULT_RULES, Linter, RULES_BY_ID,
                        STRUCTURAL_RULE_IDS, Severity, lint_program)
from repro.workloads.imagick import build_imagick


def _lint(source):
    return lint_program(assemble(source, name="rule-test"))


def _rules(report):
    return {d.rule for d in report.diagnostics}


# -- L001 flush-in-loop -----------------------------------------------------------

def test_l001_flush_in_loop_trigger():
    report = _lint("""
.entry main
.func main
main:
    addi x1, x0, 8
loop:
    frflags x7
    addi x1, x1, -1
    bne  x1, x0, loop
    halt
""")
    hits = report.by_rule("L001")
    assert len(hits) == 1
    assert hits[0].severity is Severity.WARNING
    assert "frflags" in hits[0].message
    assert "nop" in hits[0].fix_hint


def test_l001_near_miss_outside_loop():
    report = _lint("""
.entry main
.func main
main:
    frflags x7
    addi x1, x0, 8
loop:
    addi x1, x1, -1
    bne  x1, x0, loop
    halt
""")
    assert report.by_rule("L001") == []


def test_l001_imagick_golden():
    """The paper's Section 6 case study, address for address."""
    report = lint_program(build_imagick().program)
    hits = report.by_rule("L001")
    assert {d.addr for d in hits} == {0x10050, 0x10074, 0x1007c, 0x100a0}
    assert {d.function for d in hits} == {"ceil", "floor"}
    assert all("called from the loop" in d.message for d in hits)
    assert all("nop" in d.fix_hint for d in hits)
    assert report.ok  # warnings only


def test_l001_imagick_optimized_is_clean():
    report = lint_program(build_imagick(optimized=True).program)
    assert report.diagnostics == []


# -- L002 serialize-in-loop -------------------------------------------------------

def test_l002_serialize_in_loop_trigger():
    report = _lint("""
.entry main
.func main
main:
    addi x1, x0, 8
    addi x9, x0, 4096
loop:
    fence
    amoadd x7, x1, 0(x9)
    addi x1, x1, -1
    bne  x1, x0, loop
    halt
""")
    hits = report.by_rule("L002")
    assert {d.message.split()[0] for d in hits} == {"fence", "amoadd"}


def test_l002_near_miss_outside_loop():
    report = _lint("""
.entry main
.func main
main:
    fence
    halt
""")
    assert report.by_rule("L002") == []


# -- L003 unreachable-block -------------------------------------------------------

def test_l003_unreachable_trigger():
    report = _lint("""
.entry main
.func main
main:
    jal  x0, out
    addi x1, x1, 1
out:
    halt
""")
    hits = report.by_rule("L003")
    assert len(hits) == 1
    assert hits[0].severity is Severity.ERROR
    assert not report.ok


def test_l003_near_miss_all_reachable():
    report = _lint("""
.entry main
.func main
main:
    jal  x0, out
out:
    halt
""")
    assert report.by_rule("L003") == []


# -- L004 fall-through-off-text ---------------------------------------------------

def test_l004_falls_off_text_trigger():
    report = _lint("""
.entry main
.func main
main:
    addi x1, x0, 1
    addi x2, x1, 2
""")
    hits = report.by_rule("L004")
    assert len(hits) == 1
    assert hits[0].severity is Severity.ERROR


def test_l004_near_miss_ends_with_halt():
    report = _lint("""
.entry main
.func main
main:
    addi x1, x0, 1
    halt
""")
    assert report.by_rule("L004") == []


# -- L005 zero-register-write -----------------------------------------------------

def test_l005_zero_write_trigger():
    report = _lint("""
.entry main
.func main
main:
    add  x0, x1, x2
    halt
""")
    hits = report.by_rule("L005")
    assert len(hits) == 1
    assert "discarded" in hits[0].message


def test_l005_near_miss_control_and_nop():
    report = _lint("""
.entry main
.func main
main:
    nop
    jal  x0, out
out:
    halt
""")
    assert report.by_rule("L005") == []


# -- L006 function-overlap --------------------------------------------------------

def _with_functions(source, functions):
    base = assemble(source, name="overlap-test")
    return Program(base.instructions, functions, base.entry,
                   labels=base.labels, name="overlap-test")


OVERLAP_SRC = """
.entry main
.func main
main:
    addi x1, x0, 1
    addi x2, x0, 2
    addi x3, x0, 3
    halt
"""


def test_l006_overlap_trigger():
    program = _with_functions(OVERLAP_SRC, [
        FunctionSymbol("a", 0x10000, 0x1000c),
        FunctionSymbol("b", 0x10008, 0x10010),  # overlaps a's last inst
    ])
    report = lint_program(program)
    hits = report.by_rule("L006")
    assert len(hits) == 1
    assert "'b'" in hits[0].message and "'a'" in hits[0].message
    assert hits[0].severity is Severity.ERROR


def test_l006_near_miss_adjacent():
    program = _with_functions(OVERLAP_SRC, [
        FunctionSymbol("a", 0x10000, 0x10008),
        FunctionSymbol("b", 0x10008, 0x10010),  # touches, no overlap
    ])
    assert lint_program(program).by_rule("L006") == []


# -- L007 call-return-mismatch ----------------------------------------------------

def test_l007_call_into_middle_trigger():
    report = _lint("""
.entry main
.func main
main:
    jal  x5, inner
    halt

.func helper
helper:
    addi x3, x3, 1
inner:
    addi x3, x3, 2
    jalr x0, x5, 0
""")
    hits = report.by_rule("L007")
    assert len(hits) == 1
    assert "middle" in hits[0].message


def test_l007_link_register_mismatch_trigger():
    report = _lint("""
.entry main
.func main
main:
    jal  x9, helper
    halt

.func helper
helper:
    addi x3, x3, 1
    jalr x0, x5, 0
""")
    hits = report.by_rule("L007")
    assert len(hits) == 1
    assert "x9" in hits[0].message and "x5" in hits[0].message


def test_l007_near_miss_matching_call():
    report = _lint("""
.entry main
.func main
main:
    jal  x5, helper
    halt

.func helper
helper:
    addi x3, x3, 1
    jalr x0, x5, 0
""")
    assert report.by_rule("L007") == []


# -- L008 implicit-fall-through ---------------------------------------------------

def test_l008_fall_into_next_function_trigger():
    report = _lint("""
.entry main
.func main
main:
    jal  x5, first
    halt

.func first
first:
    addi x3, x3, 1

.func second
second:
    addi x4, x4, 1
    jalr x0, x5, 0
""")
    hits = report.by_rule("L008")
    assert len(hits) == 1
    assert "'first'" in hits[0].message and "'second'" in hits[0].message


def test_l008_near_miss_explicit_return():
    report = _lint("""
.entry main
.func main
main:
    jal  x5, first
    halt

.func first
first:
    addi x3, x3, 1
    jalr x0, x5, 0

.func second
second:
    addi x4, x4, 1
    jalr x0, x5, 0
""")
    assert report.by_rule("L008") == []
    # `second` is never called: that is L003's finding, not L008's.
    assert report.by_rule("L003") != []


# -- framework --------------------------------------------------------------------

def test_rule_registry_consistent():
    ids = [rule.rule_id for rule in DEFAULT_RULES]
    assert len(ids) == len(set(ids))
    assert set(RULES_BY_ID) == set(ids)
    for rule_id in STRUCTURAL_RULE_IDS:
        assert RULES_BY_ID[rule_id].severity is Severity.ERROR


def test_structural_linter_ignores_warnings():
    # A program full of warnings but structurally sound passes the
    # generator self-check rule set.
    source = """
.entry main
.func main
main:
    addi x1, x0, 8
loop:
    frflags x7
    add  x0, x1, x1
    addi x1, x1, -1
    bne  x1, x0, loop
    halt
"""
    program = assemble(source, name="warn-test")
    assert not Linter.structural().run(program).diagnostics
    assert lint_program(program).diagnostics  # default set still warns


def test_report_sorted_errors_first():
    report = _lint("""
.entry main
.func main
main:
    add  x0, x1, x1
    jal  x0, out
    addi x1, x1, 1
out:
    halt
""")
    severities = [d.severity for d in report.diagnostics]
    assert severities == sorted(severities, key=lambda s: -s.rank)
    assert report.to_dict()["errors"] == len(report.errors)
