"""Unit tests for Program and ProgramBuilder."""

import pytest

from repro.isa.instruction import Register
from repro.isa.opcodes import Op
from repro.isa.program import (FunctionSymbol, Program, ProgramBuilder,
                               TEXT_BASE)


def _two_inst_program():
    builder = ProgramBuilder()
    builder.func("main")
    builder.emit(Op.NOP)
    builder.emit(Op.HALT)
    return builder.build()


def test_builder_produces_program():
    program = _two_inst_program()
    assert len(program) == 2
    assert program.entry == TEXT_BASE
    assert program.function_of(TEXT_BASE).name == "main"


def test_fetch_by_address():
    program = _two_inst_program()
    assert program.fetch(TEXT_BASE).op is Op.NOP
    assert program.fetch(TEXT_BASE + 4).op is Op.HALT
    assert program.fetch(TEXT_BASE + 8) is None
    assert TEXT_BASE in program
    assert TEXT_BASE + 2 not in program  # misaligned


def test_builder_forward_label_resolution():
    builder = ProgramBuilder()
    builder.func("main")
    builder.emit(Op.BEQ, None, (1, 2), target="skip")
    builder.emit(Op.NOP)
    builder.label("skip")
    builder.emit(Op.HALT)
    program = builder.build()
    assert program.instructions[0].imm == TEXT_BASE + 8


def test_builder_undefined_target_raises():
    builder = ProgramBuilder()
    builder.func("main")
    builder.emit(Op.JAL, 1, (), target="missing")
    with pytest.raises(ValueError, match="undefined label"):
        builder.build()


def test_builder_entry_label():
    builder = ProgramBuilder()
    builder.func("boot")
    builder.emit(Op.NOP)
    builder.func("main")
    builder.emit(Op.HALT)
    builder.entry("main")
    program = builder.build()
    assert program.entry == TEXT_BASE + 4


def test_empty_program_rejected():
    with pytest.raises(ValueError):
        Program([], [], TEXT_BASE)


def test_bad_entry_rejected():
    builder = ProgramBuilder()
    builder.func("main")
    builder.emit(Op.HALT)
    program = builder.build()
    with pytest.raises(ValueError):
        Program(program.instructions, program.functions, 0xDEAD)


def test_merged_with():
    app = _two_inst_program()
    kernel_builder = ProgramBuilder(base=0x8_0000)
    kernel_builder.func("handler")
    kernel_builder.emit(Op.SRET)
    kernel = kernel_builder.build()
    image = app.merged_with(kernel)
    assert len(image) == 3
    assert image.entry == app.entry
    assert image.function_of(0x8_0000).name == "handler"


def test_merged_overlap_rejected():
    a = _two_inst_program()
    b = _two_inst_program()
    with pytest.raises(ValueError, match="overlap"):
        a.merged_with(b)


def test_text_bounds():
    program = _two_inst_program()
    assert program.text_lo == TEXT_BASE
    assert program.text_hi == TEXT_BASE + 8


def test_function_symbol_contains():
    func = FunctionSymbol("f", 0x100, 0x110)
    assert func.contains(0x100)
    assert func.contains(0x10C)
    assert not func.contains(0x110)


def test_data_word():
    builder = ProgramBuilder()
    builder.func("main")
    builder.emit(Op.HALT)
    builder.word(0x2000, 1.25)
    program = builder.build()
    assert program.data[0x2000] == 1.25


def test_register_helpers():
    assert Register.parse("x5") == 5
    assert Register.parse("f3") == 35
    assert Register.name(5) == "x5"
    assert Register.name(35) == "f3"
    assert Register.is_fp(35)
    assert not Register.is_fp(5)
    with pytest.raises(ValueError):
        Register.parse("q1")
    with pytest.raises(ValueError):
        Register.x(32)


def test_interpreter_basics():
    from repro.isa import assemble, run_reference
    program = assemble("""
    .func main
        addi x1, x0, 6
        addi x2, x0, 7
        mul  x3, x1, x2
        sw   x3, 0x2000(x0)
        halt
    """)
    result = run_reference(program)
    assert result.regs[3] == 42
    assert result.memory[0x2000] == 42
    assert result.instructions_executed == 5


def test_interpreter_fell_off_text():
    from repro.isa import Interpreter, InterpreterError, assemble
    import pytest as _pytest
    program = assemble(".func main\n    nop\n    nop\n")
    interp = Interpreter(program)
    interp.step()
    interp.step()
    with _pytest.raises(InterpreterError, match="fell off"):
        interp.step()


def test_interpreter_runaway_guard():
    from repro.isa import InterpreterError, assemble, run_reference
    import pytest as _pytest
    program = assemble(".func main\nspin:\n    beq x0, x0, spin\n    halt\n")
    with _pytest.raises(InterpreterError, match="did not halt"):
        run_reference(program, max_instructions=100)
