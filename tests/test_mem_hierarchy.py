"""Unit tests for the assembled memory hierarchy."""

import pytest

from repro.mem.hierarchy import MemoryConfig, MemoryHierarchy
from repro.mem.tlb import PAGE_SIZE


def _hierarchy():
    hierarchy = MemoryHierarchy(MemoryConfig())
    hierarchy.page_table.map_range(0, 16 * 1024 * 1024)
    return hierarchy


def test_llc_hit_costs_about_forty_cycles():
    """Section 2.2: an L1 miss served by the LLC costs ~40 cycles."""
    hierarchy = _hierarchy()
    addr = 0x8000
    cold = hierarchy.data_access(addr, 0)          # fills all levels
    assert cold.served_by == "DRAM"
    # Evict from L1 and L2 but not the LLC: 64 KB spacing aliases in the
    # 64-set L1 and 1024-set L2 but lands in distinct LLC sets.
    span = 64 * 1024
    cycle = 1000
    for i in range(1, 18):
        hierarchy.data_access(addr + i * span, cycle)
        cycle += 500
    result = hierarchy.data_access(addr, cycle + 10_000)
    assert result.served_by == "LLC"
    assert 30 <= result.latency <= 55


def test_l1_hit_is_fast():
    hierarchy = _hierarchy()
    hierarchy.data_access(0x4000, 0)
    hit = hierarchy.data_access(0x4000, 500)
    assert hit.served_by == "L1D"
    assert hit.latency <= 3


def test_inst_fetch_separate_from_data():
    hierarchy = _hierarchy()
    hierarchy.inst_fetch(0x4000, 0)
    assert hierarchy.l1i.stats.accesses == 1
    assert hierarchy.l1d.stats.accesses == 0


def test_unmapped_data_access_faults():
    hierarchy = MemoryHierarchy(MemoryConfig())
    result = hierarchy.data_access(0x5_0000, 0)
    assert result.fault


def test_unmapped_fetch_faults():
    hierarchy = MemoryHierarchy(MemoryConfig())
    result = hierarchy.inst_fetch(0x5_0000, 0)
    assert result.fault


def test_shared_l2_between_i_and_d():
    hierarchy = _hierarchy()
    hierarchy.inst_fetch(0x6000, 0)
    # A data access to the same line hits in the shared L2.
    result = hierarchy.data_access(0x6000, 1000)
    assert result.served_by == "L2"


def test_reset():
    hierarchy = _hierarchy()
    hierarchy.data_access(0x4000, 0)
    hierarchy.reset()
    assert hierarchy.l1d.stats.accesses == 0
    result = hierarchy.data_access(0x4000, 0)
    assert result.served_by == "DRAM"


def test_config_defaults_match_table1():
    cfg = MemoryConfig()
    assert cfg.l1i_size == 32 * 1024 and cfg.l1i_assoc == 8
    assert cfg.l1d_size == 32 * 1024 and cfg.l1d_assoc == 8
    assert cfg.l1d_mshrs == 8
    assert cfg.l2_size == 512 * 1024 and cfg.l2_mshrs == 12
    assert cfg.llc_size == 4 * 1024 * 1024 and cfg.llc_mshrs == 8
    assert cfg.itlb_entries == 32 and cfg.dtlb_entries == 32
    assert cfg.l2tlb_entries == 512
