"""Unit tests for opcode metadata."""

import pytest

from repro.isa.opcodes import (CONTROL_KINDS, Kind, MNEMONICS, Op,
                               OPCODE_TABLE, Unit, info_for)


def test_every_opcode_has_metadata():
    for op in Op:
        info = info_for(op)
        assert info.latency >= 1
        assert info.mnemonic


def test_mnemonic_map_is_bijective():
    assert len(MNEMONICS) == len(OPCODE_TABLE)
    for mnemonic, op in MNEMONICS.items():
        assert info_for(op).mnemonic == mnemonic


def test_csr_instructions_flush_on_commit():
    for op in (Op.FRFLAGS, Op.FSFLAGS, Op.CSRRW, Op.SRET, Op.ECALL):
        assert info_for(op).flushes_on_commit


def test_serializing_instructions():
    assert info_for(Op.FENCE).serializing
    assert info_for(Op.AMOADD).serializing
    assert not info_for(Op.ADD).serializing


def test_branch_units():
    for op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE):
        assert info_for(op).unit is Unit.BRANCH
        assert info_for(op).kind is Kind.BRANCH


def test_memory_ops_use_mem_unit():
    for op in (Op.LW, Op.LD, Op.FLD, Op.SW, Op.SD, Op.FSD, Op.AMOADD):
        assert info_for(op).unit is Unit.MEM


def test_long_latency_ops():
    assert info_for(Op.DIV).latency > info_for(Op.MUL).latency
    assert info_for(Op.MUL).latency > info_for(Op.ADD).latency
    assert info_for(Op.FDIV).latency > info_for(Op.FADD).latency
    assert info_for(Op.FSQRT).latency >= info_for(Op.FDIV).latency


def test_fp_ops_write_fp_registers():
    assert info_for(Op.FADD).writes_fp
    assert not info_for(Op.FADD).writes_int
    # FP compares produce integer results.
    assert info_for(Op.FEQ).writes_int
    assert not info_for(Op.FEQ).writes_fp


def test_control_kinds_cover_all_block_terminators():
    assert Kind.BRANCH in CONTROL_KINDS
    assert Kind.CALL in CONTROL_KINDS
    assert Kind.RETURN in CONTROL_KINDS
    assert Kind.HALT in CONTROL_KINDS


def test_source_counts():
    assert info_for(Op.ADD).num_sources == 2
    assert info_for(Op.ADDI).num_sources == 1
    assert info_for(Op.FMADD).num_sources == 3
    assert info_for(Op.LUI).num_sources == 0
