"""Unit tests for the cache model."""

import pytest

from repro.mem.cache import Cache, MainMemory


def _l1(mshrs=4, size=1024, assoc=2, block=64, hit=2, dram_latency=100):
    dram = MainMemory(latency=dram_latency, cycles_per_access=0)
    return Cache("L1", size, assoc, block, hit, mshrs, dram), dram


def test_cold_miss_then_hit():
    cache, _ = _l1()
    miss = cache.access(0x1000, cycle=0)
    assert not miss.hit
    assert miss.latency >= 100
    hit = cache.access(0x1008, cycle=miss.latency)  # same block
    assert hit.hit
    assert hit.latency == 2


def test_lru_eviction():
    cache, _ = _l1(size=256, assoc=2, block=64)  # 2 sets
    # Three blocks mapping to set 0: 0, 128, 256 (block numbers 0, 2, 4).
    cache.access(0 * 64, 0)
    cache.access(2 * 64, 200)
    cache.access(4 * 64, 400)   # evicts block 0
    assert not cache.contains(0)
    assert cache.contains(2 * 64)
    assert cache.contains(4 * 64)
    result = cache.access(0, 600)
    assert not result.hit


def test_lru_touch_refreshes():
    cache, _ = _l1(size=256, assoc=2, block=64)
    cache.access(0 * 64, 0)
    cache.access(2 * 64, 200)
    cache.access(0 * 64, 400)   # touch block 0: now MRU
    cache.access(4 * 64, 600)   # evicts block 2
    assert cache.contains(0)
    assert not cache.contains(2 * 64)


def test_mshr_coalescing():
    cache, dram = _l1(mshrs=4)
    first = cache.access(0x1000, 0)
    second = cache.access(0x1000, 1)  # same block, while miss in flight
    assert cache.stats.coalesced == 1
    assert second.latency <= first.latency
    assert dram.accesses == 1  # only one fill request


def test_mshr_exhaustion_queues():
    cache, _ = _l1(mshrs=2, size=4096, assoc=8)
    lat_a = cache.access(0 * 64, 0).latency
    lat_b = cache.access(16 * 64, 0).latency
    lat_c = cache.access(32 * 64, 0).latency  # queued behind a free MSHR
    assert lat_c > max(lat_a, lat_b)
    assert cache.stats.mshr_stall_cycles > 0


def test_mshrs_expire_over_time():
    cache, _ = _l1(mshrs=1)
    cache.access(0 * 64, 0)
    # Long after the fill, a new miss should not see MSHR pressure.
    result = cache.access(16 * 64, 10_000)
    assert cache.stats.mshr_stall_cycles == 0
    assert result.latency >= 100


def test_next_line_prefetch():
    dram = MainMemory(latency=100, cycles_per_access=0)
    cache = Cache("L1", 1024, 2, 64, 2, 4, dram, prefetch_next_line=True)
    cache.access(0, 0)
    assert cache.contains(64)  # next block prefetched
    assert cache.stats.prefetches == 1
    hit = cache.access(64, 200)
    assert hit.hit


def test_stats_accounting():
    cache, _ = _l1()
    cache.access(0, 0)
    cache.access(0, 200)
    cache.access(4096, 400)
    assert cache.stats.accesses == 3
    assert cache.stats.hits == 1
    assert cache.stats.misses == 2
    assert cache.stats.miss_rate == pytest.approx(2 / 3)


def test_geometry_validation():
    dram = MainMemory()
    with pytest.raises(ValueError):
        Cache("bad", 1000, 3, 64, 1, 4, dram)


def test_dram_bandwidth_queueing():
    dram = MainMemory(latency=50, cycles_per_access=10)
    first = dram.access(0, 0)
    second = dram.access(64, 0)
    third = dram.access(128, 0)
    assert first.latency == 50
    assert second.latency == 60
    assert third.latency == 70


def test_dram_queue_drains():
    dram = MainMemory(latency=50, cycles_per_access=10)
    dram.access(0, 0)
    later = dram.access(64, 1000)
    assert later.latency == 50


def test_reset_clears_state():
    cache, _ = _l1()
    cache.access(0, 0)
    cache.reset()
    assert cache.stats.accesses == 0
    assert not cache.contains(0)
