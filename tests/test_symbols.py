"""Symbolizer tests: basic-block recovery and granularity mapping."""

import pytest

from repro.analysis.symbols import (Granularity, OFF_TEXT, Symbolizer,
                                    UNKNOWN_FUNCTION)
from repro.isa.assembler import assemble

PROGRAM = assemble("""
.entry main
.func main
main:
    addi x1, x0, 0
    addi x2, x0, 10
loop:
    addi x1, x1, 1
    beq  x1, x2, done
    add  x3, x3, x1
    bne  x1, x0, loop
done:
    jal  x1, helper
    halt
.func helper
helper:
    add x4, x4, x4
    jalr x0, x1, 0
""")

SYM = Symbolizer(PROGRAM)
ADDRS = [inst.addr for inst in PROGRAM.instructions]


def test_instruction_granularity_is_identity():
    for addr in ADDRS:
        assert SYM.instruction(addr) == addr


def test_off_text_instruction():
    assert SYM.instruction(0xDEAD000) == OFF_TEXT


def test_function_mapping():
    assert SYM.function(ADDRS[0]) == "main"
    assert SYM.function(ADDRS[-1]) == "helper"


def test_function_off_text():
    assert SYM.function(0xDEAD000) == OFF_TEXT


def test_basic_block_leaders():
    # Leaders: main (entry), loop (branch target), after beq, done
    # (branch target), after bne(=done? no: bne's follower is done),
    # after jal, helper, after jalr (none: end).
    labels = PROGRAM.labels
    assert SYM.basic_block(labels["main"]) == labels["main"]
    assert SYM.basic_block(labels["main"] + 4) == labels["main"]
    assert SYM.basic_block(labels["loop"]) == labels["loop"]
    assert SYM.basic_block(labels["done"]) == labels["done"]
    assert SYM.basic_block(labels["helper"]) == labels["helper"]


def test_block_boundary_after_branch():
    labels = PROGRAM.labels
    beq_addr = labels["loop"] + 4
    after_beq = beq_addr + 4
    assert SYM.basic_block(beq_addr) == labels["loop"]
    assert SYM.basic_block(after_beq) == after_beq  # new block


def test_instructions_in_same_straightline_block():
    labels = PROGRAM.labels
    # add (after beq) and bne share a block.
    after_beq = labels["loop"] + 8
    bne_addr = labels["loop"] + 12
    assert SYM.basic_block(after_beq) == SYM.basic_block(bne_addr)


def test_aggregate_collapses_weights():
    labels = PROGRAM.labels
    weights = [(labels["main"], 0.25), (labels["main"] + 4, 0.25),
               (labels["helper"], 0.5)]
    by_func = SYM.aggregate(weights, Granularity.FUNCTION)
    assert by_func == {"main": 0.5, "helper": 0.5}


def test_symbol_dispatch():
    addr = ADDRS[0]
    assert SYM.symbol(addr, Granularity.INSTRUCTION) == addr
    assert SYM.symbol(addr, Granularity.BASIC_BLOCK) == addr
    assert SYM.symbol(addr, Granularity.FUNCTION) == "main"


def test_num_basic_blocks():
    assert SYM.num_basic_blocks >= 5


def test_unknown_function_for_uncovered_text():
    from repro.isa.program import Program
    # Build a program whose instructions are outside any function.
    from repro.isa.opcodes import Op
    from repro.isa.program import ProgramBuilder
    builder = ProgramBuilder()
    builder.emit(Op.NOP)
    builder.emit(Op.HALT)
    program = builder.build()
    sym = Symbolizer(program)
    assert sym.function(program.text_lo) == UNKNOWN_FUNCTION
