"""Trace serialization tests: record once, analyze many times."""

import io

import pytest

from repro.core.oracle import OracleProfiler
from repro.core.sampling import SampleSchedule
from repro.core.tip import TipProfiler
from repro.cpu.machine import Machine
from repro.cpu.trace import TraceCollector
from repro.cpu.tracefile import (TraceWriter, read_trace, replay_trace)
from repro.isa import assemble
from repro.workloads import build_workload, k_csr_flush, k_int_ilp

SRC = """
.data 0x2000 1
.func main
    addi x1, x0, 0
    addi x2, x0, 120
loop:
    lw   x3, 0x2000(x1)
    andi x1, x1, 255
    frflags x5
    addi x1, x1, 8
    addi x2, x2, -1
    bne  x2, x0, loop
    lw   x9, 0x100000(x0)
    halt
"""


@pytest.fixture(scope="module")
def recorded():
    program = assemble(SRC)
    machine = Machine(program, premapped_data=[(0x2000, 0x2200)])
    buffer = io.BytesIO()
    writer = TraceWriter(buffer, banks=4)
    collector = TraceCollector()
    machine.attach(writer)
    machine.attach(collector)
    machine.run()
    return buffer.getvalue(), collector, machine


def test_round_trip_every_field(recorded):
    data, collector, _ = recorded
    decoded = list(read_trace(io.BytesIO(data)))
    assert len(decoded) == len(collector.records)
    for original, copy in zip(collector.records, decoded):
        assert copy.cycle == original.cycle
        assert copy.rob_empty == original.rob_empty
        assert copy.rob_head == original.rob_head
        assert copy.exception == original.exception
        assert copy.exception_is_ordering == original.exception_is_ordering
        assert copy.dispatch_pc == original.dispatch_pc
        assert copy.fetch_pc == original.fetch_pc
        assert copy.oldest_bank == original.oldest_bank
        assert tuple(copy.dispatched) == tuple(original.dispatched)
        assert len(copy.committed) == len(original.committed)
        for a, b in zip(original.committed, copy.committed):
            assert (a.addr, a.bank, a.mispredicted, a.flushes) == \
                (b.addr, b.bank, b.mispredicted, b.flushes)


def test_replay_reproduces_oracle_exactly(recorded):
    data, _, machine = recorded
    live_oracle = OracleProfiler(machine.image)
    from repro.cpu.trace import replay as replay_records
    # Replay from the binary stream and compare against a live pass.
    replayed_oracle = OracleProfiler(machine.image)
    replay_trace(data, replayed_oracle)
    collector_oracle = OracleProfiler(machine.image)
    # Fresh simulation for the live reference.
    rerun = Machine(assemble(SRC), premapped_data=[(0x2000, 0x2200)])
    rerun.attach(collector_oracle)
    rerun.run()
    assert replayed_oracle.report.profile == collector_oracle.report.profile
    assert replayed_oracle.report.category_totals == \
        collector_oracle.report.category_totals


def test_replay_drives_profilers(recorded):
    data, _, machine = recorded
    tip = TipProfiler(SampleSchedule(7), machine.image)
    cycles = replay_trace(data, tip)
    assert cycles > 0
    assert tip.samples
    assert tip.profile()


def test_replay_from_file(tmp_path, recorded):
    data, _, machine = recorded
    path = tmp_path / "run.tiptrace"
    path.write_bytes(data)
    tip = TipProfiler(SampleSchedule(11), machine.image)
    replay_trace(str(path), tip)
    assert tip.samples


def test_bad_magic_rejected():
    with pytest.raises(ValueError, match="not a TIP trace"):
        list(read_trace(io.BytesIO(b"BOGUS123" + b"\x04")))


def test_truncated_stream_rejected(recorded):
    data, _, _ = recorded
    with pytest.raises((ValueError, struct_error_types())):
        list(read_trace(io.BytesIO(data[:len(data) // 2 + 1])))


def struct_error_types():
    import struct
    return struct.error


def test_compactness(recorded):
    """The binary trace is far smaller than the in-memory records."""
    data, collector, _ = recorded
    per_cycle = len(data) / len(collector.records)
    assert per_cycle < 64  # bytes/cycle, vs ~56 B the paper assumes


# -- property-based round trip -------------------------------------------------

from hypothesis import given, settings, strategies as st


@st.composite
def _random_records(draw):
    from conftest import make_record
    length = draw(st.integers(1, 30))
    records = []
    for cycle in range(length):
        n_commits = draw(st.integers(0, 4))
        committed = [(draw(st.integers(0, 1 << 48)) & ~3,
                      draw(st.booleans()), draw(st.booleans()))
                     for _ in range(n_commits)]
        rob_head = (draw(st.integers(0, 1 << 48)) & ~3
                    if draw(st.booleans()) else None)
        exception = (draw(st.integers(0, 1 << 48)) & ~3
                     if rob_head is None and not committed
                     and draw(st.booleans()) else None)
        dispatched = [draw(st.integers(0, 1 << 48)) & ~3
                      for _ in range(draw(st.integers(0, 4)))]
        records.append(make_record(
            cycle, committed=committed, rob_head=rob_head,
            exception=exception,
            exception_is_ordering=draw(st.booleans()),
            dispatched=dispatched,
            dispatch_pc=(draw(st.integers(0, 1 << 48)) & ~3
                         if draw(st.booleans()) else None),
            fetch_pc=draw(st.integers(0, 1 << 48)) & ~3,
            banks=4))
    return records


@given(records=_random_records())
@settings(max_examples=40, deadline=None)
def test_property_round_trip(records):
    buffer = io.BytesIO()
    writer = TraceWriter(buffer, banks=4)
    for record in records:
        writer.on_cycle(record)
    writer.on_finish(records[-1].cycle)
    decoded = list(read_trace(io.BytesIO(buffer.getvalue())))
    assert len(decoded) == len(records)
    for original, copy in zip(records, decoded):
        assert copy.fetch_pc == original.fetch_pc
        assert copy.rob_head == original.rob_head
        assert copy.exception == original.exception
        assert tuple(copy.dispatched) == tuple(original.dispatched)
        assert [c.addr for c in copy.committed] == \
            [c.addr for c in original.committed]
        assert [c.mispredicted for c in copy.committed] == \
            [c.mispredicted for c in original.committed]
