"""Trace serialization tests: record once, analyze many times."""

import io

import pytest

from repro.core.oracle import OracleProfiler
from repro.core.sampling import SampleSchedule
from repro.core.tip import TipProfiler
from repro.cpu.machine import Machine
from repro.cpu.trace import TraceCollector
from repro.cpu.tracefile import (TraceWriter, read_trace, replay_trace)
from repro.isa import assemble
from repro.workloads import build_workload, k_csr_flush, k_int_ilp

SRC = """
.data 0x2000 1
.func main
    addi x1, x0, 0
    addi x2, x0, 120
loop:
    lw   x3, 0x2000(x1)
    andi x1, x1, 255
    frflags x5
    addi x1, x1, 8
    addi x2, x2, -1
    bne  x2, x0, loop
    lw   x9, 0x100000(x0)
    halt
"""


@pytest.fixture(scope="module")
def recorded():
    program = assemble(SRC)
    machine = Machine(program, premapped_data=[(0x2000, 0x2200)])
    buffer = io.BytesIO()
    writer = TraceWriter(buffer, banks=4)
    collector = TraceCollector()
    machine.attach(writer)
    machine.attach(collector)
    machine.run()
    return buffer.getvalue(), collector, machine


def test_round_trip_every_field(recorded):
    data, collector, _ = recorded
    decoded = list(read_trace(io.BytesIO(data)))
    assert len(decoded) == len(collector.records)
    for original, copy in zip(collector.records, decoded):
        assert copy.cycle == original.cycle
        assert copy.rob_empty == original.rob_empty
        assert copy.rob_head == original.rob_head
        assert copy.exception == original.exception
        assert copy.exception_is_ordering == original.exception_is_ordering
        assert copy.dispatch_pc == original.dispatch_pc
        assert copy.fetch_pc == original.fetch_pc
        assert copy.oldest_bank == original.oldest_bank
        assert tuple(copy.dispatched) == tuple(original.dispatched)
        assert len(copy.committed) == len(original.committed)
        for a, b in zip(original.committed, copy.committed):
            assert (a.addr, a.bank, a.mispredicted, a.flushes) == \
                (b.addr, b.bank, b.mispredicted, b.flushes)


def test_replay_reproduces_oracle_exactly(recorded):
    data, _, machine = recorded
    live_oracle = OracleProfiler(machine.image)
    from repro.cpu.trace import replay as replay_records
    # Replay from the binary stream and compare against a live pass.
    replayed_oracle = OracleProfiler(machine.image)
    replay_trace(data, replayed_oracle)
    collector_oracle = OracleProfiler(machine.image)
    # Fresh simulation for the live reference.
    rerun = Machine(assemble(SRC), premapped_data=[(0x2000, 0x2200)])
    rerun.attach(collector_oracle)
    rerun.run()
    assert replayed_oracle.report.profile == collector_oracle.report.profile
    assert replayed_oracle.report.category_totals == \
        collector_oracle.report.category_totals


def test_replay_drives_profilers(recorded):
    data, _, machine = recorded
    tip = TipProfiler(SampleSchedule(7), machine.image)
    cycles = replay_trace(data, tip)
    assert cycles > 0
    assert tip.samples
    assert tip.profile()


def test_replay_from_file(tmp_path, recorded):
    data, _, machine = recorded
    path = tmp_path / "run.tiptrace"
    path.write_bytes(data)
    tip = TipProfiler(SampleSchedule(11), machine.image)
    replay_trace(str(path), tip)
    assert tip.samples


def test_bad_magic_rejected():
    with pytest.raises(ValueError, match="not a TIP trace"):
        list(read_trace(io.BytesIO(b"BOGUS123" + b"\x04")))


def test_truncated_stream_rejected(recorded):
    data, _, _ = recorded
    with pytest.raises((ValueError, struct_error_types())):
        list(read_trace(io.BytesIO(data[:len(data) // 2 + 1])))


def struct_error_types():
    import struct
    return struct.error


def test_compactness(recorded):
    """The binary trace is far smaller than the in-memory records."""
    data, collector, _ = recorded
    per_cycle = len(data) / len(collector.records)
    assert per_cycle < 64  # bytes/cycle, vs ~56 B the paper assumes


# -- property-based round trip -------------------------------------------------

from hypothesis import given, settings, strategies as st


@st.composite
def _random_records(draw):
    from conftest import make_record
    length = draw(st.integers(1, 30))
    records = []
    for cycle in range(length):
        n_commits = draw(st.integers(0, 4))
        committed = [(draw(st.integers(0, 1 << 48)) & ~3,
                      draw(st.booleans()), draw(st.booleans()))
                     for _ in range(n_commits)]
        rob_head = (draw(st.integers(0, 1 << 48)) & ~3
                    if draw(st.booleans()) else None)
        exception = (draw(st.integers(0, 1 << 48)) & ~3
                     if rob_head is None and not committed
                     and draw(st.booleans()) else None)
        dispatched = [draw(st.integers(0, 1 << 48)) & ~3
                      for _ in range(draw(st.integers(0, 4)))]
        records.append(make_record(
            cycle, committed=committed, rob_head=rob_head,
            exception=exception,
            exception_is_ordering=draw(st.booleans()),
            dispatched=dispatched,
            dispatch_pc=(draw(st.integers(0, 1 << 48)) & ~3
                         if draw(st.booleans()) else None),
            fetch_pc=draw(st.integers(0, 1 << 48)) & ~3,
            banks=4))
    return records


@given(records=_random_records())
@settings(max_examples=40, deadline=None)
def test_property_round_trip(records):
    buffer = io.BytesIO()
    writer = TraceWriter(buffer, banks=4)
    for record in records:
        writer.on_cycle(record)
    writer.on_finish(records[-1].cycle)
    decoded = list(read_trace(io.BytesIO(buffer.getvalue())))
    assert len(decoded) == len(records)
    for original, copy in zip(records, decoded):
        assert copy.fetch_pc == original.fetch_pc
        assert copy.rob_head == original.rob_head
        assert copy.exception == original.exception
        assert tuple(copy.dispatched) == tuple(original.dispatched)
        assert [c.addr for c in copy.committed] == \
            [c.addr for c in original.committed]
        assert [c.mispredicted for c in copy.committed] == \
            [c.mispredicted for c in original.committed]


# -- format v2: chunk-indexed traces --------------------------------------------

from repro.cpu.tracefile import (ChunkCarry, TraceWriterV2,
                                 convert_v1_to_v2, read_chunk,
                                 read_index)


def _records_equal(a, b):
    assert a.cycle == b.cycle
    assert a.rob_empty == b.rob_empty
    assert a.rob_head == b.rob_head
    assert a.exception == b.exception
    assert a.exception_is_ordering == b.exception_is_ordering
    assert a.dispatch_pc == b.dispatch_pc
    assert a.fetch_pc == b.fetch_pc
    assert a.oldest_bank == b.oldest_bank
    assert tuple(a.dispatched) == tuple(b.dispatched)
    assert [(c.addr, c.bank, c.mispredicted, c.flushes)
            for c in a.committed] == \
        [(c.addr, c.bank, c.mispredicted, c.flushes)
         for c in b.committed]


def _write_v2(records, chunk_cycles, compress):
    buffer = io.BytesIO()
    writer = TraceWriterV2(buffer, banks=4, chunk_cycles=chunk_cycles,
                           compress=compress)
    for record in records:
        writer.on_cycle(record)
    writer.on_finish(records[-1].cycle if records else 0)
    return buffer.getvalue()


@given(records=_random_records(),
       chunk_cycles=st.integers(1, 40),
       compress=st.booleans())
@settings(max_examples=40, deadline=None)
def test_property_v2_round_trip(records, chunk_cycles, compress):
    """v2 streams decode identically across chunk sizes/compression."""
    data = _write_v2(records, chunk_cycles, compress)
    decoded = list(read_trace(io.BytesIO(data)))
    assert len(decoded) == len(records)
    for original, copy in zip(records, decoded):
        _records_equal(original, copy)


@given(records=_random_records(),
       chunk_cycles=st.integers(1, 40),
       compress=st.booleans())
@settings(max_examples=40, deadline=None)
def test_property_v2_index_and_chunks(records, chunk_cycles, compress):
    """The chunk directory tiles the trace: dense cycle ranges, carry
    state derivable from the record prefix, chunk payloads decodable in
    isolation."""
    data = _write_v2(records, chunk_cycles, compress)
    index = read_index(data)
    assert index.banks == 4
    assert index.compressed == compress
    assert index.chunk_cycles == chunk_cycles
    assert index.total_records == len(records)

    rebuilt = []
    expected_start = 0
    reference = ChunkCarry()
    for chunk in index.chunks:
        assert chunk.start_cycle == expected_start
        assert 0 < chunk.n_records <= chunk_cycles
        expected_start += chunk.n_records
        # The header carry equals the carry at the chunk's first cycle.
        carry = chunk.carry
        assert (carry.oir_addr, carry.oir_flag, carry.oir_kind,
                carry.last_committed, carry.drain_pending) == \
            (reference.oir_addr, reference.oir_flag, reference.oir_kind,
             reference.last_committed, reference.drain_pending)
        chunk_records = read_chunk(data, index, chunk)
        for record in chunk_records:
            reference.update(record)
        rebuilt.extend(chunk_records)
    assert len(rebuilt) == len(records)
    for original, copy in zip(records, rebuilt):
        _records_equal(original, copy)


@given(records=_random_records(),
       chunk_cycles=st.integers(1, 40),
       compress=st.booleans())
@settings(max_examples=30, deadline=None)
def test_property_v1_to_v2_conversion_preserves_records(
        records, chunk_cycles, compress):
    v1 = io.BytesIO()
    writer = TraceWriter(v1, banks=4)
    for record in records:
        writer.on_cycle(record)
    writer.on_finish(records[-1].cycle)

    v2 = io.BytesIO()
    converted = convert_v1_to_v2(v1.getvalue(), v2,
                                 chunk_cycles=chunk_cycles,
                                 compress=compress)
    assert converted == len(records)
    decoded = list(read_trace(io.BytesIO(v2.getvalue())))
    assert len(decoded) == len(records)
    for original, copy in zip(records, decoded):
        _records_equal(original, copy)


def test_read_index_rejects_v1(recorded):
    data, _, _ = recorded
    with pytest.raises(ValueError, match="v1"):
        read_index(data)


def test_convert_rejects_v2():
    data = _write_v2([], 8, False)

    with pytest.raises(ValueError, match="not format v1"):
        convert_v1_to_v2(data, io.BytesIO())


def test_v2_replay_drives_profilers(recorded):
    """A v2 re-encoding of a v1 trace replays identically."""
    data, _, machine = recorded
    v2 = io.BytesIO()
    convert_v1_to_v2(data, v2, chunk_cycles=64)
    v1_tip = TipProfiler(SampleSchedule(7), machine.image)
    v2_tip = TipProfiler(SampleSchedule(7), machine.image)
    assert replay_trace(data, v1_tip) == \
        replay_trace(v2.getvalue(), v2_tip)
    assert [(s.cycle, s.weights) for s in v1_tip.samples] == \
        [(s.cycle, s.weights) for s in v2_tip.samples]


def test_v2_compression_shrinks_trace(recorded):
    data, _, _ = recorded
    plain, packed = io.BytesIO(), io.BytesIO()
    convert_v1_to_v2(data, plain, chunk_cycles=256, compress=False)
    convert_v1_to_v2(data, packed, chunk_cycles=256, compress=True)
    assert len(packed.getvalue()) < len(plain.getvalue()) / 2


# -- format v3: zero-copy columnar traces ---------------------------------------

import os
import tempfile

from repro.cpu.tracefile import (TraceReaderV2, TraceReaderV3,
                                 TraceWriterV3, convert_trace,
                                 open_reader)


def _write_v3(records, chunk_cycles, compress):
    buffer = io.BytesIO()
    writer = TraceWriterV3(buffer, banks=4, chunk_cycles=chunk_cycles,
                           compress=compress)
    for record in records:
        writer.on_cycle(record)
    writer.on_finish(records[-1].cycle if records else 0)
    return buffer.getvalue()


@given(records=_random_records(),
       chunk_cycles=st.integers(1, 40),
       compress=st.booleans())
@settings(max_examples=40, deadline=None)
def test_property_v3_mmap_round_trip(records, chunk_cycles, compress):
    """An mmap-ed v3 file decodes to exactly what the v2 path yields,
    and the layout invariants hold: 8-aligned chunk payloads, raw size
    equal to payload size unless zlib ran."""
    data = _write_v3(records, chunk_cycles, compress)
    via_v2 = list(read_trace(io.BytesIO(
        _write_v2(records, chunk_cycles, compress))))
    fd, path = tempfile.mkstemp(suffix=".tiptrace")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        with TraceReaderV3(path) as reader:
            assert reader.index.total_records == len(records)
            for chunk in reader.index.chunks:
                assert chunk.offset % 8 == 0
                if not compress:
                    assert chunk.payload_bytes == chunk.raw_bytes
            decoded = list(reader.records())
    finally:
        os.unlink(path)
    assert len(decoded) == len(records) == len(via_v2)
    for original, copy in zip(records, decoded):
        _records_equal(original, copy)
    for original, copy in zip(via_v2, decoded):
        _records_equal(original, copy)


def test_v3_empty_trace():
    """A v3 trace with zero records is just the 16-byte header."""
    data = _write_v3([], 8, False)
    assert len(data) == 16
    with TraceReaderV3(data) as reader:
        assert reader.index.total_records == 0
        assert reader.index.chunks == []
        assert list(reader.records()) == []


def test_v3_single_cycle_chunks():
    """chunk_cycles=1 degenerates to one record per chunk."""
    from conftest import make_record
    records = [make_record(c, fetch_pc=0x1000 + 4 * c, banks=4)
               for c in range(5)]
    data = _write_v3(records, 1, False)
    with TraceReaderV3(data) as reader:
        assert len(reader.index.chunks) == 5
        assert all(chunk.n_records == 1
                   for chunk in reader.index.chunks)
        decoded = list(reader.records())
    for original, copy in zip(records, decoded):
        _records_equal(original, copy)


def test_v3_stall_run_split_across_chunks():
    """A batched stall run ending mid-chunk splits losslessly."""
    from conftest import make_record
    stall = make_record(0, rob_head=0x4000, fetch_pc=0x4000, banks=4)
    tail = make_record(0, committed=[(0x4000, False, False)],
                       fetch_pc=0x4004, banks=4)
    buffer = io.BytesIO()
    writer = TraceWriterV3(buffer, banks=4, chunk_cycles=4)
    writer.on_stall_run(stall, 10)  # spans chunks 0..2
    writer.on_cycle(tail)
    writer.on_finish(10)
    with TraceReaderV3(buffer.getvalue()) as reader:
        assert [chunk.n_records for chunk in reader.index.chunks] == \
            [4, 4, 3]
        decoded = list(reader.records())
    assert len(decoded) == 11
    # Cycles are reconstructed densely from the chunk start; every
    # other field round-trips the run's template record.
    expected = [make_record(c, rob_head=0x4000, fetch_pc=0x4000,
                            banks=4) for c in range(10)]
    expected.append(make_record(10, committed=[(0x4000, False, False)],
                                fetch_pc=0x4004, banks=4))
    for original, copy in zip(expected, decoded):
        _records_equal(original, copy)


def test_v3_zlib_fallback_decodes_identically(recorded):
    """Compressed v3 traces lose zero-copy but not correctness."""
    data, collector, _ = recorded
    plain, packed = io.BytesIO(), io.BytesIO()
    convert_trace(data, plain, version=3, chunk_cycles=256)
    convert_trace(data, packed, version=3, chunk_cycles=256,
                  compress=True)
    assert len(packed.getvalue()) < len(plain.getvalue()) / 2
    with TraceReaderV3(packed.getvalue()) as reader:
        decoded = list(reader.records())
    assert len(decoded) == len(collector.records)
    for original, copy in zip(collector.records, decoded):
        _records_equal(original, copy)


def test_open_reader_dispatches_on_magic(recorded):
    data, _, _ = recorded
    v2, v3 = io.BytesIO(), io.BytesIO()
    convert_trace(data, v2, version=2)
    convert_trace(data, v3, version=3)
    with open_reader(v2.getvalue()) as reader:
        assert isinstance(reader, TraceReaderV2)
    with open_reader(v3.getvalue()) as reader:
        assert isinstance(reader, TraceReaderV3)
    with pytest.raises(ValueError):
        open_reader(data)  # v1 has no chunk index


# -- conversion round trips -----------------------------------------------------


def test_convert_v1_to_v3_preserves_records(recorded):
    data, collector, _ = recorded
    v3 = io.BytesIO()
    converted = convert_trace(data, v3, version=3, chunk_cycles=64)
    assert converted == len(collector.records)
    decoded = list(read_trace(io.BytesIO(v3.getvalue())))
    assert len(decoded) == len(collector.records)
    for original, copy in zip(collector.records, decoded):
        _records_equal(original, copy)


def test_convert_round_trips_are_byte_identical(recorded):
    """v2 -> v3 -> v2 and v3 -> v2 -> v3 reproduce the input bytes
    exactly when the chunk parameters match."""
    data, _, _ = recorded
    v2 = io.BytesIO()
    convert_trace(data, v2, version=2, chunk_cycles=64)
    v3 = io.BytesIO()
    convert_trace(v2.getvalue(), v3, version=3, chunk_cycles=64)
    v2_again = io.BytesIO()
    convert_trace(v3.getvalue(), v2_again, version=2, chunk_cycles=64)
    assert v2_again.getvalue() == v2.getvalue()
    v3_again = io.BytesIO()
    convert_trace(v2_again.getvalue(), v3_again, version=3,
                  chunk_cycles=64)
    assert v3_again.getvalue() == v3.getvalue()


@given(records=_random_records(),
       chunk_cycles=st.integers(1, 40),
       compress=st.booleans())
@settings(max_examples=30, deadline=None)
def test_property_v2_v3_conversion_round_trip(records, chunk_cycles,
                                              compress):
    v2 = _write_v2(records, chunk_cycles, compress)
    v3 = io.BytesIO()
    convert_trace(v2, v3, version=3, chunk_cycles=chunk_cycles,
                  compress=compress)
    assert v3.getvalue() == _write_v3(records, chunk_cycles, compress)
    back = io.BytesIO()
    convert_trace(v3.getvalue(), back, version=2,
                  chunk_cycles=chunk_cycles, compress=compress)
    assert back.getvalue() == v2


def test_v3_replay_drives_profilers(recorded):
    """A v3 re-encoding of a v1 trace replays identically."""
    data, _, machine = recorded
    v3 = io.BytesIO()
    convert_trace(data, v3, version=3, chunk_cycles=64)
    v1_tip = TipProfiler(SampleSchedule(7), machine.image)
    v3_tip = TipProfiler(SampleSchedule(7), machine.image)
    assert replay_trace(data, v1_tip) == \
        replay_trace(v3.getvalue(), v3_tip)
    assert [(s.cycle, s.weights) for s in v1_tip.samples] == \
        [(s.cycle, s.weights) for s in v3_tip.samples]
