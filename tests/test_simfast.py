"""Simulation fast path + content-addressed cache tests.

The contract under test: ``sim="fast"``, paranoid mode and a
simulation-cache hit all produce results bit-identical to plain
single-stepping -- the same v2 trace bytes and the same profiler
reports, floating point included.
"""

import io
import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import (Machine, MaxCyclesExceeded, TraceWriter,
                       TraceWriterV2, shifted_record)
from repro.cpu.tracefile import replay_trace
from repro.cpu.trace import TraceCollector
from repro.harness.experiment import default_profilers
from repro.harness.runner import run_suite, run_workload
from repro.simfast import SimCache, resolve_cache
from repro.simfast.bench import _result_checksum
from repro.workloads.suite import build_suite

from conftest import make_record
from test_differential import DATA_BASE, DATA_WORDS, _generate_program

#: Strided loads thrash the data cache, so most cycles are memory
#: stalls -- the fast path's best case.
STALL_HEAVY = """
.func main
    addi x1, x0, 0
    addi x2, x0, 120
loop:
    lw   x3, 0x2000(x1)
    add  x4, x4, x3
    addi x1, x1, 512
    andi x1, x1, 65535
    addi x2, x2, -1
    bne  x2, x0, loop
    halt
"""
STALL_HEAVY_MAP = [(0x2000, 0x2000 + 65536 + 8)]


def _random_program(seed: int):
    from repro.isa.assembler import assemble
    rng = random.Random(seed)
    program = assemble(_generate_program(rng), name=f"fuzz-{seed}")
    for i in range(DATA_WORDS):
        program.data[DATA_BASE + 8 * i] = rng.randint(-100, 100)
    return program


def _trace_of(program, sim, paranoid=False, premapped=None,
              writer_cls=TraceWriterV2):
    machine = Machine(program, premapped_data=premapped or
                      [(DATA_BASE, DATA_BASE + 8 * DATA_WORDS)])
    buffer = io.BytesIO()
    machine.attach(writer_cls(buffer, machine.config.rob_banks))
    stats = machine.run(2_000_000, sim=sim, paranoid=paranoid)
    return buffer.getvalue(), stats


# -- fast-forward vs single-stepping ----------------------------------------------


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_fast_step_traces_byte_identical(seed):
    program = _random_program(seed)
    step_trace, step_stats = _trace_of(program, "step")
    fast_trace, fast_stats = _trace_of(program, "fast")
    assert step_trace == fast_trace
    assert step_stats.cycles == fast_stats.cycles
    assert step_stats.committed == fast_stats.committed
    assert step_stats.commit_hist == fast_stats.commit_hist


@pytest.mark.parametrize("seed", range(4))
def test_paranoid_mode_passes(seed):
    """Cross-checked fast-forwarding agrees with stepping everywhere."""
    program = _random_program(seed)
    step_trace, _ = _trace_of(program, "step")
    paranoid_trace, _ = _trace_of(program, "fast", paranoid=True)
    assert step_trace == paranoid_trace


def test_fast_forward_fires_on_stall_heavy_program():
    from repro.isa.assembler import assemble
    program = assemble(STALL_HEAVY, name="stall-heavy")
    step_trace, step_stats = _trace_of(program, "step",
                                       premapped=STALL_HEAVY_MAP)
    fast_trace, fast_stats = _trace_of(program, "fast",
                                       premapped=STALL_HEAVY_MAP)
    assert fast_trace == step_trace
    assert fast_stats.fast_forwarded > 0
    # The v1 (flat) writer batches stall runs too.
    v1_step, _ = _trace_of(program, "step", premapped=STALL_HEAVY_MAP,
                           writer_cls=TraceWriter)
    v1_fast, _ = _trace_of(program, "fast", premapped=STALL_HEAVY_MAP,
                           writer_cls=TraceWriter)
    assert v1_fast == v1_step


def test_fast_experiment_results_identical():
    workload, = build_suite(["mcf"], scale=0.05)
    profilers = default_profilers(53)
    r_step = run_workload(workload, profilers, engine="block")
    r_fast = run_workload(workload, profilers, engine="block",
                          sim="fast")
    assert _result_checksum(r_step) == _result_checksum(r_fast)
    assert r_fast.stats.fast_forwarded > 0


def test_unknown_sim_mode_rejected():
    program = _random_program(0)
    machine = Machine(program)
    with pytest.raises(ValueError):
        machine.run(100, sim="warp")


# -- on_stall_run batching ---------------------------------------------------------


def test_on_stall_run_matches_repeated_on_cycle():
    """One batched call == N single-cycle calls, for both writers."""
    stall = make_record(3, rob_head=0x40, fetch_pc=0x80)
    for writer_cls, kwargs in ((TraceWriter, {}),
                               (TraceWriterV2, {"chunk_cycles": 4})):
        stepped = io.BytesIO()
        writer = writer_cls(stepped, 2, **kwargs)
        writer.on_cycle(make_record(0, committed=[(0x40, False, False)]))
        writer.on_cycle(make_record(1, dispatched=[0x44]))
        writer.on_cycle(make_record(2))
        for offset in range(10):
            writer.on_cycle(shifted_record(stall, offset))
        writer.on_finish(12)

        batched = io.BytesIO()
        writer = writer_cls(batched, 2, **kwargs)
        writer.on_cycle(make_record(0, committed=[(0x40, False, False)]))
        writer.on_cycle(make_record(1, dispatched=[0x44]))
        writer.on_cycle(make_record(2))
        writer.on_stall_run(stall, 10)
        writer.on_finish(12)
        assert stepped.getvalue() == batched.getvalue(), writer_cls


# -- the content-addressed cache ---------------------------------------------------


def test_cache_round_trip_bit_identical(tmp_path):
    workload, = build_suite(["mcf"], scale=0.05)
    profilers = default_profilers(53)
    cache = SimCache(str(tmp_path))
    r_miss = run_workload(workload, profilers, engine="block",
                          sim="fast", cache=cache)
    assert not r_miss.cached
    assert len(cache.keys()) == 1
    r_hit = run_workload(workload, profilers, engine="block",
                         sim="fast", cache=cache)
    assert r_hit.cached
    assert _result_checksum(r_miss) == _result_checksum(r_hit)
    assert r_hit.stats.cycles == r_miss.stats.cycles
    assert r_hit.oracle.total_cycles == r_miss.oracle.total_cycles


def test_cache_verify_and_stats(tmp_path):
    workload, = build_suite(["mcf"], scale=0.05)
    cache = SimCache(str(tmp_path))
    run_workload(workload, default_profilers(53), sim="fast",
                 cache=cache)
    assert all(cache.verify().values())
    info = cache.stats()
    assert info["entries"] == 1 and info["bytes"] > 0
    assert cache.clear() >= 2  # trace + sidecar
    assert cache.keys() == []


def test_cache_corrupt_entry_is_evicted_miss(tmp_path):
    workload, = build_suite(["mcf"], scale=0.05)
    cache = SimCache(str(tmp_path))
    run_workload(workload, default_profilers(53), sim="fast",
                 cache=cache)
    key, = cache.keys()
    trace_path = cache._trace_path(key)
    blob = bytearray(open(trace_path, "rb").read())
    blob[len(blob) // 2] ^= 0xFF
    with open(trace_path, "wb") as fh:
        fh.write(blob)
    assert cache.lookup(key) is None
    assert cache.keys() == []  # evicted on the spot


def test_cache_budget_gate(tmp_path):
    """An entry recorded past the caller's budget cannot hit."""
    workload, = build_suite(["mcf"], scale=0.05)
    cache = SimCache(str(tmp_path))
    result = run_workload(workload, default_profilers(53), sim="fast",
                          cache=cache)
    key, = cache.keys()
    assert cache.lookup(key, max_cycles=result.stats.cycles - 1) is None
    assert cache.lookup(key, max_cycles=result.stats.cycles) is not None


def test_cache_lru_evicts_oldest_first(tmp_path):
    cache = SimCache(str(tmp_path))
    old, new = build_suite(["mcf", "canneal"], scale=0.05)
    profilers = default_profilers(53)
    run_workload(old, profilers, sim="fast", cache=cache)
    run_workload(new, profilers, sim="fast", cache=cache)
    keys = sorted(cache.keys(),
                  key=lambda k: os.path.getmtime(cache._trace_path(k)))
    assert len(keys) == 2
    total = cache.stats()["bytes"]
    small = SimCache(str(tmp_path), max_bytes=total - 1)
    small._evict_lru()
    assert small.keys() == [keys[1]]  # the older entry went first


def test_resolve_cache_forms(tmp_path):
    assert resolve_cache(None) is None
    assert resolve_cache(False) is None
    cache = SimCache(str(tmp_path))
    assert resolve_cache(cache) is cache
    assert resolve_cache(str(tmp_path)).root == cache.root


# -- max-cycles budget -------------------------------------------------------------


def test_max_cycles_raises_and_never_caches(tmp_path):
    workload, = build_suite(["mcf"], scale=0.05)
    cache = SimCache(str(tmp_path))
    with pytest.raises(MaxCyclesExceeded):
        run_workload(workload, default_profilers(53), max_cycles=100,
                     sim="fast", cache=cache)
    assert cache.keys() == []
    assert os.listdir(tmp_path) == []  # no stray temp files either


def test_suite_surfaces_max_cycles_failure():
    suite = run_suite(build_suite(["mcf"], scale=0.05),
                      default_profilers(53), max_cycles=100)
    assert not suite.ok
    assert suite.failures["mcf"].kind == "max-cycles"
    assert "mcf" not in suite.results


# -- atomic path-mode trace writer -------------------------------------------------


def test_writer_v2_path_mode_is_atomic(tmp_path):
    destination = tmp_path / "run.tiptrace"
    program = _random_program(1)
    machine = Machine(program, premapped_data=[
        (DATA_BASE, DATA_BASE + 8 * DATA_WORDS)])
    writer = TraceWriterV2(str(destination), machine.config.rob_banks)
    machine.attach(writer)
    assert not destination.exists()  # only the .tmp sibling exists
    machine.run(2_000_000, sim="fast")
    assert destination.exists()
    assert [p for p in tmp_path.iterdir()] == [destination]
    collector = TraceCollector()
    replay_trace(str(destination), collector)
    assert len(collector) == machine.stats.cycles


def test_writer_v2_abort_leaves_nothing(tmp_path):
    destination = tmp_path / "run.tiptrace"
    writer = TraceWriterV2(str(destination), 2)
    writer.on_cycle(make_record(0))
    writer.abort()
    assert list(tmp_path.iterdir()) == []
    writer.abort()  # idempotent


# -- CLI surface -------------------------------------------------------------------


def test_cli_cache_subcommand(tmp_path, capsys):
    from repro.cli import main
    root = str(tmp_path / "cache")
    assert main(["cache", "stats", "--cache-dir", root]) == 0
    assert main(["cache", "verify", "--cache-dir", root]) == 0
    assert main(["cache", "clear", "--cache-dir", root]) == 0
    out = capsys.readouterr().out
    assert "0 entries" in out


# -- corrupt-entry recovery ---------------------------------------------------


def _forge_corrupt_entry(cache: SimCache, key: str) -> None:
    """Make *key*'s trace undecodable while keeping its checksum valid
    (a consistently-tampered or foreign-producer entry)."""
    import hashlib
    import json as jsonlib
    garbage = b"NOTATRACE" + os.urandom(256)
    with open(cache._trace_path(key), "wb") as fh:
        fh.write(garbage)
    with open(cache._meta_path(key), encoding="utf-8") as fh:
        meta = jsonlib.load(fh)
    meta["sha256"] = hashlib.sha256(garbage).hexdigest()
    with open(cache._meta_path(key), "w", encoding="utf-8") as fh:
        jsonlib.dump(meta, fh)


def test_checksum_valid_corrupt_entry_recovers(tmp_path):
    from repro.simfast import CacheCorruptionWarning
    workload = build_suite(["lbm"], scale=0.05)[0]
    configs = default_profilers(29, policies=("TIP",))
    cache = SimCache(str(tmp_path))
    pristine = run_workload(workload, configs, sim="fast",
                            cache=cache)
    key, = cache.keys()
    _forge_corrupt_entry(cache, key)
    assert cache.lookup(key) is not None  # checksum still passes

    with pytest.warns(CacheCorruptionWarning, match="evicted corrupt"):
        recovered = run_workload(workload, configs, sim="fast",
                                 cache=cache)
    assert not recovered.cached  # the hit was abandoned, re-simulated
    assert recovered.stats.to_dict() == pristine.stats.to_dict()
    assert recovered.errors() == pristine.errors()
    # The entry was re-filled and verifies again.
    assert cache.verify() == {key: True}


def test_cli_profile_corrupt_cache_warns_on_stderr(tmp_path):
    """A corrupt entry must surface as a warning, not a traceback."""
    import subprocess
    import sys
    source = tmp_path / "prog.s"
    source.write_text("""
.func main
    addi x1, x0, 0
    addi x2, x0, 200
loop:
    addi x1, x1, 1
    bne  x1, x2, loop
    halt
""")
    root = tmp_path / "cache"
    argv = [sys.executable, "-m", "repro.cli", "profile", str(source),
            "--period", "7", "--cache-dir", str(root)]
    first = subprocess.run(argv, capture_output=True, text=True)
    assert first.returncode == 0, first.stderr

    cache = SimCache(str(root))
    key, = cache.keys()
    _forge_corrupt_entry(cache, key)

    second = subprocess.run(argv, capture_output=True, text=True)
    assert second.returncode == 0, second.stderr
    assert "CacheCorruptionWarning" in second.stderr
    assert "evicted corrupt simulation-cache entry" in second.stderr
    assert "Traceback" not in second.stderr
    assert "instruction profile" in second.stdout
