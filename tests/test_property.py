"""Property-based tests (hypothesis) on core data structures and
invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.error import overlap
from repro.core.oracle import OracleProfiler
from repro.core.sampling import SampleSchedule
from repro.cpu.branch import ReturnAddressStack, TagePredictor
from repro.cpu.trace import replay
from repro.mem.cache import Cache, MainMemory
from repro.mem.tlb import PageTable, vpn_of
from tests.test_oracle import BR, I1, I3, I5, LOAD, PROGRAM
from conftest import make_record

# -- sampling schedules ------------------------------------------------------------


@given(period=st.integers(1, 50), horizon=st.integers(1, 400))
@settings(max_examples=60)
def test_periodic_schedule_spacing(period, horizon):
    schedule = SampleSchedule(period)
    fires = [c for c in range(horizon) if schedule.is_sample(c)]
    assert fires == list(range(period - 1, horizon, period))


@given(period=st.integers(1, 50), seed=st.integers(0, 1000),
       horizon=st.integers(1, 400))
@settings(max_examples=60)
def test_random_schedule_one_per_interval(period, seed, horizon):
    schedule = SampleSchedule(period, "random", seed)
    fires = [c for c in range(horizon) if schedule.is_sample(c)]
    for i, cycle in enumerate(fires):
        assert i * period <= cycle < (i + 1) * period
    # Number of complete intervals in the horizon bounds the count.
    assert horizon // period - 1 <= len(fires) <= horizon // period + 1


# -- overlap metric -------------------------------------------------------------------

weight_maps = st.dictionaries(st.integers(0, 20),
                              st.floats(0.0, 1.0, allow_nan=False),
                              max_size=8)


@given(a=weight_maps, b=weight_maps)
@settings(max_examples=100)
def test_overlap_bounds_and_symmetry(a, b):
    value = overlap(a, b)
    assert 0.0 <= value <= min(sum(a.values()), sum(b.values())) + 1e-9
    assert value == pytest.approx(overlap(b, a))


@given(a=weight_maps)
@settings(max_examples=50)
def test_overlap_with_self_is_total(a):
    assert overlap(a, a) == pytest.approx(sum(a.values()))


# -- oracle conservation ----------------------------------------------------------------

_commit_entry = st.sampled_from([I1, LOAD, I3, BR, I5])


@st.composite
def trace_strategy(draw):
    """Random but well-formed commit-stage traces."""
    length = draw(st.integers(2, 60))
    records = []
    empty = True
    for cycle in range(length):
        kind = draw(st.sampled_from(
            ["commit", "stall", "empty", "dispatch"]))
        if kind == "commit":
            n = draw(st.integers(1, 2))
            commits = [(draw(_commit_entry), draw(st.booleans()), False)
                       for _ in range(n)]
            records.append(make_record(cycle, committed=commits,
                                       rob_head=draw(_commit_entry)))
            empty = False
        elif kind == "stall":
            records.append(make_record(cycle,
                                       rob_head=draw(_commit_entry)))
            empty = False
        elif kind == "dispatch":
            addr = draw(_commit_entry)
            records.append(make_record(cycle, rob_head=addr,
                                       dispatched=[addr]))
            empty = False
        else:
            records.append(make_record(cycle))
            empty = True
    # Terminate with a dispatch so trailing drains resolve.
    records.append(make_record(length, rob_head=I1, dispatched=[I1]))
    return records


@given(records=trace_strategy())
@settings(max_examples=60, deadline=None)
def test_oracle_attributes_every_cycle_exactly_once(records):
    oracle = OracleProfiler(PROGRAM)
    replay(records, oracle)
    total = sum(oracle.report.profile.values())
    assert total == pytest.approx(len(records))
    assert sum(oracle.report.category_totals.values()) == \
        pytest.approx(len(records))


# -- cache model ---------------------------------------------------------------------


@given(addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_cache_latency_at_least_hit_latency(addrs):
    cache = Cache("L1", 1024, 2, 64, 2, 4,
                  MainMemory(latency=30, cycles_per_access=2))
    cycle = 0
    for addr in addrs:
        result = cache.access(addr, cycle)
        assert result.latency >= cache.hit_latency
        cycle += 7


@given(addrs=st.lists(st.integers(0, 1 << 14), min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_cache_repeat_access_hits(addrs):
    cache = Cache("big", 1 << 16, 8, 64, 2, 8,
                  MainMemory(latency=30, cycles_per_access=0))
    cycle = 0
    for addr in addrs:
        cache.access(addr, cycle)
        cycle += 100
    # Working set fits: every re-access hits.
    for addr in addrs:
        result = cache.access(addr, cycle)
        assert result.hit
        cycle += 100


# -- page table -----------------------------------------------------------------------


@given(pages=st.sets(st.integers(0, 1000), max_size=40))
@settings(max_examples=40)
def test_page_table_map_unmap(pages):
    table = PageTable()
    for vpn in pages:
        table.map_page(vpn)
    assert len(table) == len(pages)
    for vpn in pages:
        assert table.is_mapped(vpn)
        table.unmap_page(vpn)
    assert len(table) == 0


@given(lo=st.integers(0, 1 << 20), size=st.integers(1, 1 << 16))
@settings(max_examples=40)
def test_page_table_range_covers_all_addresses(lo, size):
    table = PageTable()
    table.map_range(lo, lo + size)
    for addr in (lo, lo + size // 2, lo + size - 1):
        assert table.is_mapped(vpn_of(addr))


# -- RAS / TAGE -----------------------------------------------------------------------


@given(pushes=st.lists(st.integers(0, 1 << 20), max_size=12))
@settings(max_examples=50)
def test_ras_lifo_property(pushes):
    ras = ReturnAddressStack(entries=16)
    for addr in pushes:
        ras.push(addr)
    for addr in reversed(pushes):
        assert ras.pop() == addr
    assert ras.pop() is None


@given(outcomes=st.lists(st.booleans(), min_size=1, max_size=120))
@settings(max_examples=40, deadline=None)
def test_tage_update_never_crashes_and_counts(outcomes):
    predictor = TagePredictor(base_entries=64, tagged_entries=32)
    pc = 0x4000
    for taken in outcomes:
        prediction = predictor.predict(pc)
        predictor.update(pc, taken, prediction)
    assert predictor.lookups == len(outcomes)
    assert 0 <= predictor.mispredicts <= len(outcomes)
