"""perf-style binary record encoding tests (Section 3.2 sizes)."""

import pytest

from repro.core.perfio import (FLAG_FLUSH, FLAG_FRONTEND,
                               FLAG_MISPREDICTED, PerfDecoder, PerfEncoder,
                               PerfSession, RecordLayout)
from repro.core.samples import Category, Sample


def test_record_sizes_match_paper():
    assert RecordLayout(4, True).record_bytes == 88
    assert RecordLayout(4, False).record_bytes == 56
    assert RecordLayout(2, True).record_bytes == 72


def test_tip_roundtrip_multi_address():
    encoder = PerfEncoder(banks=4, ilp_aware=True)
    decoder = PerfDecoder(banks=4, ilp_aware=True)
    sample = Sample(1234, 13, [(0x10000, 0.5), (0x10004, 0.5)],
                    Category.EXECUTION)
    decoded = decoder.decode(encoder.encode(sample))
    assert len(decoded) == 1
    out = decoded[0]
    assert out.cycle == 1234
    assert out.interval == 13
    assert sorted(out.weights) == [(0x10000, 0.5), (0x10004, 0.5)]
    assert out.category is Category.EXECUTION


def test_baseline_roundtrip_single_address():
    encoder = PerfEncoder(banks=4, ilp_aware=False)
    decoder = PerfDecoder(banks=4, ilp_aware=False)
    sample = Sample(99, 13, [(0x2000, 1.0)])
    out = decoder.decode(encoder.encode(sample))[0]
    assert out.weights == [(0x2000, 1.0)]
    assert out.category is None


def test_flag_roundtrip():
    encoder = PerfEncoder(banks=4, ilp_aware=True)
    decoder = PerfDecoder(banks=4, ilp_aware=True)
    for category, expected in [
        (Category.MISPREDICT, Category.MISPREDICT),
        (Category.MISC_FLUSH, Category.MISC_FLUSH),
        (Category.FRONTEND, Category.FRONTEND),
        (Category.EXECUTION, Category.EXECUTION),
    ]:
        sample = Sample(1, 13, [(0x1000, 1.0)], category)
        out = decoder.decode(encoder.encode(sample))[0]
        assert out.category is expected, category


def test_stall_category_not_encoded():
    """Stall type comes from the binary at post-processing time, so the
    flags only say 'stalled' (Section 3.1)."""
    encoder = PerfEncoder(banks=4, ilp_aware=True)
    decoder = PerfDecoder(banks=4, ilp_aware=True)
    sample = Sample(1, 13, [(0x1000, 1.0)], Category.LOAD_STALL)
    out = decoder.decode(encoder.encode(sample))[0]
    assert out.category is None


def test_empty_sample_roundtrip():
    encoder = PerfEncoder(banks=4, ilp_aware=True)
    decoder = PerfDecoder(banks=4, ilp_aware=True)
    out = decoder.decode(encoder.encode(Sample(7, 13, [])))[0]
    assert out.weights == []


def test_decoder_rejects_torn_buffer():
    decoder = PerfDecoder(banks=4, ilp_aware=True)
    with pytest.raises(ValueError, match="record size"):
        decoder.decode(b"\x00" * 87)


def test_session_profile_matches_direct_aggregation():
    """Post-processing the binary buffer reproduces the profiler's own
    profile exactly."""
    from repro.core.tip import TipProfiler
    from repro.core.sampling import SampleSchedule
    from repro.harness import run_workload, ProfilerConfig
    from repro.workloads import build_workload, k_int_ilp, k_stream_load

    workload = build_workload("t", [
        k_int_ilp("a", 600, width=6),
        k_stream_load("b", 200, 0x20_0000, 64 * 1024),
    ])
    result = run_workload(workload, [ProfilerConfig("TIP", 17)])
    tip = result.profilers["TIP"]
    session = PerfSession(tip, banks=4)
    assert session.bytes_per_sample == 88
    reconstructed = session.profile()
    direct = tip.profile()
    assert set(reconstructed) == set(direct)
    for addr, value in direct.items():
        assert reconstructed[addr] == pytest.approx(value)


def test_session_data_volume():
    """Total buffer size = samples x 88 B, the Section 3.2 data rate."""
    from repro.harness import run_workload, ProfilerConfig
    from repro.workloads import build_workload, k_int_ilp

    workload = build_workload("t", [k_int_ilp("a", 400, width=6)])
    result = run_workload(workload, [ProfilerConfig("TIP", 31),
                                     ProfilerConfig("NCI", 31)])
    tip_session = PerfSession(result.profilers["TIP"], banks=4)
    nci_session = PerfSession(result.profilers["NCI"], banks=4)
    tip_buffer = tip_session.drain()
    nci_buffer = nci_session.drain()
    num = len(result.profilers["TIP"].samples)
    assert len(tip_buffer) == num * 88
    assert len(nci_buffer) == num * 56
