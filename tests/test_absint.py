"""The interprocedural abstract interpreter: domain soundness,
engine fixpoints, the L014-L019 rule family, the static cost model,
and the optimizer's range-verdict pruning.

The load-bearing property is *soundness*: every concrete register
value and every concrete memory access observed by the reference
interpreter must lie inside the abstract values the engine computed,
and every branch verdict must match the concrete outcome.  Hypothesis
drives that over randomized programs; the unit tests pin the exact
facts (trip bounds, narrowed exits, summaries) the rules rely on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble
from repro.isa.instruction import Instruction, Register
from repro.isa.interpreter import Interpreter
from repro.isa.opcodes import Op
from repro.isa.semantics import evaluate
from repro.lint import (ABSINT_RULE_IDS, Linter, lint_program,
                        static_cost_report)
from repro.lint.absint.domain import (TOP, AbsVal, abstract_evaluate)
from repro.lint.absint.engine import AbstractInterpreter
from repro.lint.cfg import build_cfg
from repro.lint.context import LintContext
from repro.lint.rules import DEFAULT_RULES, RULES_BY_ID
from repro.opt import diff_architectural, optimize_program


def _ctx(source: str, regions=()) -> LintContext:
    program = assemble(source)
    return LintContext(program, build_cfg(program),
                       regions=tuple(regions))


def _absint(source: str, regions=()):
    return _ctx(source, regions).absint()


def _rules(source: str, regions=()):
    report = lint_program(assemble(source), regions=tuple(regions))
    return {d.rule for d in report.diagnostics}


# -- domain ------------------------------------------------------------------

def test_const_contains_only_itself():
    five = AbsVal.const(5)
    assert five.contains(5)
    assert not five.contains(6)
    assert not five.contains(5.5)


def test_join_contains_both_sides():
    joined = AbsVal.const(8).join(AbsVal.const(24))
    assert joined.contains(8) and joined.contains(24)
    # residue 0 (mod 8) survives the join; 9 does not fit
    assert not joined.contains(9)


def test_top_contains_everything():
    assert TOP.contains(0) and TOP.contains(-2**63) \
        and TOP.contains(0.25)


@given(st.integers(-50, 50), st.integers(-50, 50),
       st.lists(st.integers(-60, 60), max_size=4))
def test_widen_is_an_upper_bound(a, b, thresholds):
    older, newer = AbsVal.const(a), AbsVal.const(b)
    widened = older.widen(older.join(newer), sorted(thresholds))
    assert widened.contains(a) and widened.contains(b)


_ALU_OPS = [Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR,
            Op.SLT, Op.DIV, Op.REM, Op.SLL, Op.SRL]


@given(st.sampled_from(_ALU_OPS),
       st.integers(-1000, 1000),
       st.integers(-1000, 1000))
@settings(max_examples=200)
def test_abstract_evaluate_contains_concrete(op, a, b):
    """On constant inputs the abstract transfer must cover the
    concrete semantics -- including division by zero and shifts."""
    inst = Instruction(op, rd=5, sources=(6, 7))
    concrete = evaluate(inst, (a, b), 0)
    abstract = abstract_evaluate(inst, (AbsVal.const(a),
                                        AbsVal.const(b)))
    assert abstract.value is not None
    assert abstract.value.contains(concrete.value), \
        f"{op.value}({a}, {b}) = {concrete.value} not in " \
        f"{abstract.value}"


# -- engine ------------------------------------------------------------------

COUNTED_LOOP = """
.entry main
.func main
main:
    addi x6, x0, 10
loop:
    addi x5, x5, 3
    addi x6, x6, -1
    bne  x6, x0, loop
    halt
"""


def test_counted_loop_trip_bound_is_exact():
    result = _absint(COUNTED_LOOP)
    assert not result.degraded
    assert result.trip_bounds == {("main", 1): 10}


def test_counted_loop_exit_is_narrowed():
    result = _absint(COUNTED_LOOP)
    # after the loop the counter is exactly zero
    program = assemble(COUNTED_LOOP)
    halt_addr = max(program.addresses())
    exit_x6 = result.value_before(halt_addr, 6)
    assert exit_x6.singleton == 0


def test_interprocedural_summary_propagates_returns():
    result = _absint("""
.entry main
.func main
main:
    jal  x1, five
    addi x6, x5, 1
    halt

.func five
five:
    addi x5, x0, 5
    jalr x0, x1, 0
""")
    assert not result.degraded
    program = assemble("""
.entry main
.func main
main:
    jal  x1, five
    addi x6, x5, 1
    halt

.func five
five:
    addi x5, x0, 5
    jalr x0, x1, 0
""")
    # after the call, x5 is the callee's return value
    assert result.value_before(0x10004, 5).singleton == 5


def test_callee_saved_survives_call_in_summary():
    result = _absint("""
.entry main
.func main
main:
    addi x28, x0, 7
    jal  x1, leaf
    addi x6, x28, 0
    halt

.func leaf
leaf:
    addi x5, x0, 1
    jalr x0, x1, 0
""")
    assert not result.degraded
    assert result.value_before(0x1000c, 6) is not None
    # x28 is untouched by the callee, so its constant survives
    assert result.value_before(0x10008, 28).singleton == 7


def test_computed_jump_degrades_soundly():
    """An indirect jump the engine cannot resolve must degrade to TOP
    facts, never crash or fabricate verdicts."""
    result = _absint("""
.entry main
.func main
main:
    addi x5, x0, 0x10008
    jalr x0, x5, 0
    halt
""")
    assert result.degraded
    assert result.verdicts == {}
    assert result.trip_bounds == {}


# -- soundness property -------------------------------------------------------

_SOUND_REGS = (5, 6, 7, 8)


@st.composite
def _random_program(draw):
    """A small always-halting program: random ALU prologue, an
    optional counted loop over random body ops, and random loads and
    stores into a declared data region."""
    lines = [".entry main", ".func main", "main:"]
    for _ in range(draw(st.integers(1, 4))):
        reg = draw(st.sampled_from(_SOUND_REGS))
        imm = draw(st.integers(-64, 64))
        lines.append(f"    addi x{reg}, x{reg}, {imm}")
    body = []
    for _ in range(draw(st.integers(0, 3))):
        op = draw(st.sampled_from(["add", "sub", "and", "or", "xor"]))
        rd = draw(st.sampled_from(_SOUND_REGS))
        ra = draw(st.sampled_from(_SOUND_REGS))
        rb = draw(st.sampled_from(_SOUND_REGS))
        body.append(f"    {op} x{rd}, x{ra}, x{rb}")
    if draw(st.booleans()):
        word = draw(st.integers(0, 3))
        body.append(f"    sd x5, {0x400 + 8 * word}(x0)")
        body.append(f"    ld x7, {0x400 + 8 * word}(x0)")
    trips = draw(st.integers(1, 7))
    lines.append(f"    addi x9, x0, {trips}")
    lines.append("loop:")
    lines.extend(body)
    lines.append("    addi x9, x9, -1")
    lines.append("    bne  x9, x0, loop")
    lines.append("    halt")
    for word in range(4):
        value = draw(st.integers(-100, 100))
        lines.append(f".data {0x400 + 8 * word:#x} {value}")
    return "\n".join(lines) + "\n"


@given(_random_program())
@settings(max_examples=60, deadline=None)
def test_soundness_every_concrete_state_is_contained(source):
    """Drive the reference interpreter step by step: every concrete
    register value, effective address and branch outcome must be
    covered by the abstract facts."""
    program = assemble(source)
    cfg = build_cfg(program)
    result = AbstractInterpreter(program, cfg).run()
    entry_regs = [0.0] * Register.TOTAL

    interp = Interpreter(program)
    steps = 0
    while not interp.halted and steps < 4000:
        steps += 1
        pc = interp.pc
        state = result.state_before(pc)
        assert state is not None, \
            f"executed {pc:#x} but absint proved it unreachable"
        for reg, abstract in state.regs.items():
            concrete = interp.regs[reg] if reg else 0
            assert abstract.contains(concrete, sp_entry=0,
                                     entry_regs=entry_regs), \
                f"x{reg} = {concrete} at {pc:#x} not in {abstract}"

        inst = program.fetch(pc)
        operands = tuple(0 if r == 0 else interp.regs[r]
                         for r in inst.sources)
        outcome = evaluate(inst, operands, interp.fflags)
        if outcome.eff_addr is not None:
            access = result.accesses.get(pc)
            assert access is not None, f"unrecorded access at {pc:#x}"
            assert access.value.contains(outcome.eff_addr, sp_entry=0,
                                         entry_regs=entry_regs), \
                f"address {outcome.eff_addr:#x} at {pc:#x} " \
                f"not in {access.value}"
        block = cfg.block_of(pc)
        if block is not None and block.terminator.addr == pc \
                and block.terminator.is_branch \
                and block.index in result.verdicts:
            taken = bool(outcome.taken)
            assert result.verdicts[block.index] == taken, \
                f"verdict at {pc:#x} contradicts execution"
        interp.step()
    assert interp.halted


@given(_random_program())
@settings(max_examples=20, deadline=None)
def test_soundness_trip_bounds_hold(source):
    """A proven trip bound is an upper bound on concrete header visits."""
    program = assemble(source)
    cfg = build_cfg(program)
    result = AbstractInterpreter(program, cfg).run()
    if not result.trip_bounds:
        return
    headers = {cfg.blocks[index].start: bound
               for (_fn, index), bound in result.trip_bounds.items()}
    visits = {addr: 0 for addr in headers}
    interp = Interpreter(program)
    steps = 0
    while not interp.halted and steps < 4000:
        steps += 1
        if interp.pc in visits:
            visits[interp.pc] += 1
        interp.step()
    for addr, bound in headers.items():
        assert visits[addr] <= bound, \
            f"loop at {addr:#x} ran {visits[addr]} > proven {bound}"


# -- rules: true positives ---------------------------------------------------

def test_l014_flags_provable_oob_store():
    rules = _rules("""
.entry main
.func main
main:
    addi x5, x0, 0x4000
    addi x6, x0, 1
    sd   x6, 8(x5)
    halt
.data 0x400 1
""")
    assert "L014" in rules


def test_l014_respects_premapped_regions():
    source = """
.entry main
.func main
main:
    addi x5, x0, 0x4000
    addi x6, x0, 1
    sd   x6, 8(x5)
    halt
.data 0x400 1
"""
    assert "L014" in _rules(source)
    assert "L014" not in _rules(source,
                               regions=((0x4000, 0x4010),))


def test_l015_flags_provable_misalignment():
    rules = _rules("""
.entry main
.func main
main:
    addi x5, x0, 0x403
    ld   x6, 0(x5)
    halt
.data 0x400 1
""")
    assert "L015" in rules


def test_l016_flags_unbalanced_return():
    rules = _rules("""
.entry main
.func main
main:
    jal  x1, leaky
    halt

.func leaky
leaky:
    addi x31, x31, -16
    jalr x0, x1, 0
""")
    assert "L016" in rules


def test_l017_flags_clobbered_callee_saved():
    rules = _rules("""
.entry main
.func main
main:
    jal  x1, helper
    halt

.func helper
helper:
    addi x28, x0, 5
    jalr x0, x1, 0
""")
    assert "L017" in rules


def test_l018_flags_parity_dead_branch():
    rules = _rules("""
.entry main
.func main
main:
    addi x5, x0, 7
loop:
    addi x5, x5, -2
    beq  x5, x0, trap
    bge  x5, x0, loop
    halt
trap:
    halt
""")
    assert "L018" in rules


def test_l019_flags_oversized_bounded_loop():
    body = "\n".join("    addi x5, x5, 1" for _ in range(520))
    rules = _rules(f"""
.entry main
.func main
main:
    addi x6, x0, 4
loop:
{body}
    addi x6, x6, -1
    bne  x6, x0, loop
    halt
""")
    assert "L019" in rules


# -- rules: true negatives ---------------------------------------------------

def test_l016_l017_clean_on_proper_frame_discipline():
    """A callee that spills x28 to its frame, clobbers it, reloads it
    and pops the frame is clean for the whole absint family."""
    rules = _rules("""
.entry main
.func main
main:
    jal  x1, worker
    sd   x28, 0x400(x0)
    halt

.func worker
worker:
    addi x31, x31, -16
    sd   x28, 8(x31)
    addi x28, x0, 99
    add  x5, x28, x28
    ld   x28, 8(x31)
    addi x31, x31, 16
    jalr x0, x1, 0

.data 0x400 0
""")
    assert not rules & set(ABSINT_RULE_IDS), rules


def test_l014_l015_clean_on_in_bounds_aligned_access():
    rules = _rules("""
.entry main
.func main
main:
    addi x5, x0, 0x400
    ld   x6, 0(x5)
    sd   x6, 8(x5)
    halt
.data 0x400 3
.data 0x408 0
""")
    assert not rules & {"L014", "L015"}, rules


def test_example_programs_clean_for_unrelated_absint_rules():
    """The existing optimizer examples gained no absint findings."""
    for name in ("const_dead_branch", "dead_store", "hoistable_flush",
                 "streaming_clean"):
        with open(f"examples/asm/{name}.s") as handle:
            report = lint_program(assemble(handle.read()))
        fired = {d.rule for d in report.diagnostics} & {
            "L014", "L015", "L016", "L017", "L019"}
        assert not fired, (name, fired)


# -- L013 tightening ---------------------------------------------------------

def test_l013_fires_via_range_discounted_exit():
    """The odd-countdown loop's only exit is proven dead by ranges, so
    L013 fires even though the exit condition is redefined inside."""
    rules = _rules("""
.entry main
.func main
main:
    addi x5, x0, 7
loop:
    addi x5, x5, -2
    bne  x5, x0, loop
    halt
""")
    assert "L013" in rules
    assert "L018" in rules


def test_l013_stays_quiet_on_terminating_countdown():
    rules = _rules("""
.entry main
.func main
main:
    addi x5, x0, 8
loop:
    addi x5, x5, -2
    bne  x5, x0, loop
    halt
""")
    assert "L013" not in rules
    assert "L018" not in rules


# -- diagnostics: dedup and ordering -----------------------------------------

def test_diagnostics_sorted_by_address_and_deduplicated():
    report = lint_program(assemble("""
.entry main
.func main
main:
    addi x5, x0, 0x4000
    addi x6, x0, 1
    sd   x6, 8(x5)
    addi x7, x0, 0x403
    ld   x8, 0(x7)
    halt
.data 0x400 1
"""))
    ranks = [d.severity.rank for d in report.diagnostics]
    assert ranks == sorted(ranks, reverse=True)
    for rank in set(ranks):
        addrs = [d.addr for d in report.diagnostics
                 if d.severity.rank == rank and d.addr is not None]
        assert addrs == sorted(addrs)
    keys = [(d.rule, d.addr, d.message) for d in report.diagnostics]
    assert len(keys) == len(set(keys))


def test_interprocedural_contexts_dedup_to_one_finding():
    """A callee misbehaving once, called from two sites, reports one
    diagnostic, not one per calling context."""
    report = lint_program(assemble("""
.entry main
.func main
main:
    jal  x1, helper
    jal  x1, helper
    halt

.func helper
helper:
    addi x28, x0, 5
    jalr x0, x1, 0
"""))
    l017 = [d for d in report.diagnostics if d.rule == "L017"]
    assert len(l017) == 1


# -- static cost model -------------------------------------------------------

def test_cost_report_weights_loop_bodies():
    ctx = _ctx(COUNTED_LOOP)
    report = static_cost_report(ctx)
    by_addr = {line.addr: line for line in report.lines}
    # the loop body runs 10x; the prologue and halt run once
    assert by_addr[0x10004].weight == pytest.approx(10.0)
    assert by_addr[0x10000].weight == pytest.approx(1.0)
    assert report.total > 0
    assert sum(report.shares().values()) == pytest.approx(1.0)


def test_cost_report_charges_memory_tiers():
    """A provably-huge access footprint costs more per execution than
    an L1-resident one."""
    small = static_cost_report(_ctx("""
.entry main
.func main
main:
    ld   x5, 0x400(x0)
    halt
.data 0x400 1
"""))
    ctx = _ctx("""
.entry main
.func main
main:
    ld   x5, 0x400(x6)
    halt
.data 0x400 1
""", regions=((0, 1 << 27),))
    big = static_cost_report(ctx)
    small_ld = next(l for l in small.lines if "ld" in l.text)
    big_ld = next(l for l in big.lines if "ld" in l.text)
    assert big_ld.per_exec >= small_ld.per_exec


def test_cost_lines_are_address_sorted():
    report = static_cost_report(_ctx(COUNTED_LOOP))
    addrs = [line.addr for line in report.lines]
    assert addrs == sorted(addrs)
    rendered = report.render(top=3)
    assert "static cost model" in rendered


# -- optimizer integration ---------------------------------------------------

L018_PRUNABLE = """
.entry main
.func main
main:
    addi x5, x0, 7
loop:
    addi x5, x5, -2
    beq  x5, x0, trap
    bge  x5, x0, loop
    halt
trap:
    addi x6, x0, 1
    halt
"""


def test_optimizer_prunes_range_dead_branch():
    program = assemble(L018_PRUNABLE)
    result = optimize_program(program)
    assert result.changed
    rules = {a.certificate.rule for a in result.applied}
    assert "L018" in rules
    # the never-taken beq is gone and the trap block with it
    ops = {inst.op for inst in result.program.instructions}
    assert Op.BEQ not in ops
    assert len(result.program.instructions) \
        < len(program.instructions)


def test_range_prune_preserves_architectural_state():
    program = assemble(L018_PRUNABLE)
    result = optimize_program(program)
    differential = diff_architectural(program, result.program,
                                      trials=4)
    assert differential.identical, differential.render()


# -- registry and docs -------------------------------------------------------

def test_absint_rules_are_registered():
    for rule_id in ("L014", "L015", "L016", "L017", "L018", "L019"):
        assert rule_id in RULES_BY_ID
        assert rule_id in ABSINT_RULE_IDS
    assert set(ABSINT_RULE_IDS) <= {r.rule_id for r in DEFAULT_RULES}


def test_every_rule_is_documented():
    """Doc drift: every registered rule id must have a table row in
    docs/lint.md."""
    with open("docs/lint.md") as handle:
        doc = handle.read()
    for rule_id in RULES_BY_ID:
        assert f"| {rule_id} |" in doc, \
            f"{rule_id} missing from docs/lint.md"


def test_list_rules_cli(capsys):
    from repro.cli import main
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES_BY_ID:
        assert rule_id in out


def test_lint_cost_cli(tmp_path, capsys):
    from repro.cli import main
    source = tmp_path / "prog.s"
    source.write_text(COUNTED_LOOP)
    assert main(["lint", str(source), "--cost", "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "static cost model" in out


def test_no_dataflow_disables_absint_rules():
    linter = Linter(dataflow=False)
    report = linter.run(assemble(L018_PRUNABLE))
    assert not {d.rule for d in report.diagnostics} \
        & set(ABSINT_RULE_IDS)
