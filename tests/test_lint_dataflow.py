"""The dataflow engine and the rules built on it (L009-L013).

Three layers of coverage:

* property tests (hypothesis) -- the worklist solver reaches a
  consistent fixpoint on randomly generated CFGs, and on straight-line
  code liveness and reaching definitions agree with a brute-force
  reference;
* golden diagnostics for every program under ``examples/asm`` (with a
  completeness check so new examples must register here);
* trigger/near-miss unit tests per rule, plus the paper's Imagick
  case study for the semantic flush rule (L012).
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble
from repro.isa.opcodes import Kind
from repro.lint import (ENTRY_DEF, DefiniteAssignment, DominatorTree,
                        Linter, Liveness, LoopNest,
                        ReachingDefinitions, Severity, build_cfg,
                        lint_program)
from repro.lint.dataflow import (defined_registers, solve,
                                 used_registers)
from repro.workloads.imagick import build_imagick

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir,
                        "examples", "asm")


def _lint(source):
    return lint_program(assemble(source, name="dataflow-test"))


def _cfg(source):
    return build_cfg(assemble(source, name="dataflow-test"))


# -- random-CFG fixpoint properties -------------------------------------------


@st.composite
def branchy_program(draw):
    """A random multi-block program: ALU noise plus random branches.

    Every block ends with a conditional branch to a random label, so
    the CFG contains forward edges, back edges (loops) and possibly
    unreachable blocks -- the shapes the solver must terminate on.
    """
    n_blocks = draw(st.integers(2, 6))
    lines = [".entry main", ".func main", "main:"]
    for index in range(n_blocks):
        lines.append(f"L{index}:")
        for _ in range(draw(st.integers(1, 3))):
            rd = draw(st.integers(1, 6))
            rs1 = draw(st.integers(0, 6))
            rs2 = draw(st.integers(0, 6))
            if draw(st.booleans()):
                lines.append(f"    add x{rd}, x{rs1}, x{rs2}")
            else:
                imm = draw(st.integers(-8, 8))
                lines.append(f"    addi x{rd}, x{rs1}, {imm}")
        target = draw(st.integers(0, n_blocks - 1))
        cond = draw(st.integers(0, 6))
        lines.append(f"    bne x{cond}, x0, L{target}")
    lines.append("    halt")
    return "\n".join(lines)


@given(source=branchy_program())
@settings(max_examples=60, deadline=None)
def test_solver_fixpoint_is_consistent(source):
    """At the fixpoint every forward block entry equals the meet of
    its predecessors' exits, and exit equals transfer(entry)."""
    cfg = _cfg(source)
    analysis = ReachingDefinitions(cfg, "main")
    states = analysis.states
    for index, state in states.items():
        block = cfg.blocks[index]
        assert state.exit == analysis.transfer(block, state.entry)
        value = analysis.init()
        for pred in block.predecessors:
            if pred in states:
                value = analysis.meet(value, states[pred].exit)
        if block.start == cfg.program.entry:
            value = analysis.meet(value, analysis.boundary())
        assert state.entry == value


@given(source=branchy_program())
@settings(max_examples=60, deadline=None)
def test_solver_is_deterministic(source):
    cfg = _cfg(source)
    first = solve(ReachingDefinitions(cfg, "main"), cfg, "main")
    second = solve(ReachingDefinitions(cfg, "main"), cfg, "main")
    assert set(first) == set(second)
    for index in first:
        assert first[index].entry == second[index].entry
        assert first[index].exit == second[index].exit


@given(source=branchy_program())
@settings(max_examples=60, deadline=None)
def test_definite_assignment_is_a_must_subset(source):
    """Must-assigned registers always have a non-entry reaching def:
    the must analysis is a refinement of the may analysis."""
    cfg = _cfg(source)
    reaching = ReachingDefinitions(cfg, "main")
    assignment = DefiniteAssignment(cfg, "main")
    for index, state in assignment.states.items():
        env = reaching.states[index].entry
        for reg in state.entry:
            sites = env.get(reg, frozenset())
            assert sites and sites != frozenset([ENTRY_DEF])


@st.composite
def straightline_program(draw):
    n = draw(st.integers(1, 10))
    lines = [".entry main", ".func main", "main:"]
    for _ in range(n):
        rd = draw(st.integers(1, 5))
        rs1 = draw(st.integers(0, 5))
        imm = draw(st.integers(-8, 8))
        lines.append(f"    addi x{rd}, x{rs1}, {imm}")
    lines.append("    halt")
    return "\n".join(lines)


@given(source=straightline_program())
@settings(max_examples=80, deadline=None)
def test_straightline_agreement_with_bruteforce(source):
    """On straight-line code both analyses reduce to a scan: the
    reaching def of a use is the latest earlier def (or the entry),
    and a def is live-after iff read again before any redefinition.
    ``halt`` ends the program, so nothing is live at the end."""
    cfg = _cfg(source)
    block = cfg.blocks[0]
    insts = [i for i in block.instructions if i.kind is not Kind.HALT]
    reaching = ReachingDefinitions(cfg, "main")
    liveness = Liveness(cfg, "main")

    envs = dict(reaching.at(block))
    last_def = {}
    for inst in insts:
        for reg in used_registers(inst):
            expected = ({last_def[reg]} if reg in last_def
                        else {ENTRY_DEF})
            assert envs[inst].get(reg, frozenset()) == expected
        for reg in defined_registers(inst):
            last_def[reg] = inst.addr

    live_after = dict(zip(block.instructions,
                          liveness.live_after(block)))
    for pos, inst in enumerate(insts):
        for reg in defined_registers(inst):
            alive = False
            for later in insts[pos + 1:]:
                if reg in used_registers(later):
                    alive = True
                    break
                if reg in defined_registers(later):
                    break
            assert (reg in live_after[inst]) == alive


# -- golden diagnostics for every shipped example -----------------------------

#: file name -> exact multiset of rule hits, as a sorted tuple.
EXAMPLE_GOLDENS = {
    "const_dead_branch.s": ("L011",),
    "csr_hotloop.s": ("L001", "L001", "L012", "L012"),
    "dead_store.s": ("L010",),
    "hoistable_flush.s": ("L001", "L012"),
    "loop_invariant_csr.s": ("L001", "L012"),
    "spin_wait.s": ("L013",),
    "streaming_clean.s": (),
    # L018 rides along: the entry registers are architecturally zero,
    # so the `beq x3, x0` after `add x3, x5, x5` is provably taken.
    "uninit_read.s": ("L009", "L018"),
    "misaligned_load.s": ("L015",),
    "oob_store.s": ("L014",),
    "range_dead_branch.s": ("L013", "L018"),
    "stack_clobber.s": ("L017",),
    "stack_imbalance.s": ("L016",),
    "unmemoizable_loop.s": ("L019",),
}


def test_example_goldens_are_complete():
    on_disk = {name for name in os.listdir(EXAMPLES)
               if name.endswith(".s")}
    assert on_disk == set(EXAMPLE_GOLDENS)


@pytest.mark.parametrize("name,expected",
                         sorted(EXAMPLE_GOLDENS.items()))
def test_example_golden(name, expected):
    path = os.path.join(EXAMPLES, name)
    with open(path) as handle:
        program = assemble(handle.read(), name=name)
    report = lint_program(program, path=path)
    assert tuple(sorted(d.rule for d in report.diagnostics)) == expected
    assert report.errors == []
    for diag in report.diagnostics:
        assert diag.path == path
        assert diag.line is not None and diag.line > 0


# -- L009 uninitialized read --------------------------------------------------


def test_l009_trigger_reports_first_read():
    report = _lint("""
.entry main
.func main
main:
    add  x3, x5, x5
    beq  x3, x0, done
    nop
done:
    halt
""")
    hits = report.by_rule("L009")
    assert len(hits) == 1
    assert hits[0].severity is Severity.WARNING
    assert "x5" in hits[0].message


def test_l009_near_miss_initialized_on_every_path():
    report = _lint("""
.entry main
.func main
main:
    addi x5, x0, 4
    add  x3, x5, x5
    halt
""")
    assert report.by_rule("L009") == []


def test_l009_one_path_uninitialized_still_fires():
    report = _lint("""
.entry main
.func main
main:
    beq  x1, x0, merge
    addi x5, x0, 4
merge:
    add  x3, x5, x5
    halt
""")
    assert len(report.by_rule("L009")) == 2  # x1 at beq, x5 at add


def test_l009_silent_outside_entry_function():
    """Non-entry functions receive arguments; reads of unwritten
    registers there are calling convention, not bugs."""
    report = _lint("""
.entry main
.func main
main:
    addi x5, x0, 4
    jal  x1, helper
    halt

.func helper
helper:
    add  x3, x5, x5
    jalr x0, x1, 0
""")
    assert report.by_rule("L009") == []


# -- L010 dead store ----------------------------------------------------------


def test_l010_trigger_never_read_before_halt():
    report = _lint("""
.entry main
.func main
main:
    addi x2, x0, 7
    halt
""")
    hits = report.by_rule("L010")
    assert len(hits) == 1
    assert "x2" in hits[0].message


def test_l010_trigger_overwritten_before_read():
    report = _lint("""
.entry main
.func main
main:
    addi x2, x0, 7
    addi x2, x0, 9
    sw   x2, 0x400(x0)
    halt
""")
    assert len(report.by_rule("L010")) == 1


def test_l010_near_miss_value_reaches_a_return():
    """Returns are conservative: the caller may read anything."""
    report = _lint("""
.entry main
.func main
main:
    jal  x1, helper
    halt

.func helper
helper:
    addi x2, x0, 7
    jalr x0, x1, 0
""")
    assert report.by_rule("L010") == []


def test_l010_near_miss_read_on_one_path():
    report = _lint("""
.entry main
.func main
main:
    addi x2, x0, 7
    beq  x1, x0, done
    sw   x2, 0x400(x0)
done:
    halt
""")
    assert report.by_rule("L010") == []


# -- L011 const-proven unreachable --------------------------------------------


def test_l011_trigger_always_taken_branch():
    report = _lint("""
.entry main
.func main
main:
    addi x1, x0, 0
    beq  x1, x0, fast
    addi x2, x0, 1
    sw   x2, 0x400(x0)
fast:
    halt
""")
    hits = report.by_rule("L011")
    assert len(hits) == 1
    assert "never execute" in hits[0].message


def test_l011_near_miss_unknown_condition():
    report = _lint("""
.entry main
.func main
main:
    lw   x1, 0x400(x0)
    beq  x1, x0, fast
    addi x2, x0, 1
    sw   x2, 0x400(x0)
fast:
    halt
""")
    assert report.by_rule("L011") == []


def test_l011_loop_join_loses_constness():
    """The loop counter is constant on entry but varies across the
    back edge; the meet must not prove the exit dead."""
    report = _lint("""
.entry main
.func main
main:
    addi x1, x0, 3
loop:
    addi x1, x1, -1
    bne  x1, x0, loop
    halt
""")
    assert report.by_rule("L011") == []


# -- L012 loop-invariant flush ------------------------------------------------


def test_l012_trigger_direct_loop():
    report = _lint("""
.entry main
.func main
main:
    addi x1, x0, 8
loop:
    frflags x7
    addi x1, x1, -1
    bne  x1, x0, loop
    halt
""")
    hits = report.by_rule("L012")
    assert len(hits) == 1
    assert "loop-invariant" in hits[0].message
    assert "hoist" in hits[0].fix_hint


def test_l012_trigger_multi_block_loop_body():
    with open(os.path.join(EXAMPLES, "loop_invariant_csr.s")) as handle:
        report = _lint(handle.read())
    hits = report.by_rule("L012")
    assert len(hits) == 1
    assert "hoist" in hits[0].fix_hint


def test_l012_flags_the_whole_invariant_pair():
    """A CSR write fed (through an in-loop chain) only by an in-loop
    CSR read is itself invariant -- the imagick pattern: both halves
    of the frflags/fsflags bracket are flagged."""
    report = _lint("""
.entry main
.func main
main:
    addi x1, x0, 8
loop:
    frflags x7
    andi x7, x7, 1
    fsflags x7
    addi x1, x1, -1
    bne  x1, x0, loop
    halt
""")
    assert {d.addr for d in report.by_rule("L012")} \
        == {0x10004, 0x1000c}


def test_l012_near_miss_variant_csr_write():
    """A CSR write whose operand depends on the loop counter is
    variant: hoisting it would change the architectural state."""
    report = _lint("""
.entry main
.func main
main:
    addi x1, x0, 8
loop:
    andi x7, x1, 1
    fsflags x7
    addi x1, x1, -1
    bne  x1, x0, loop
    halt
""")
    assert report.by_rule("L012") == []
    assert len(report.by_rule("L001")) == 1  # still syntactically hot


def test_l012_imagick_golden():
    """Section 6, semantically: the frflags/fsflags pair in ceil and
    floor is invariant in every call from the morphology loop."""
    report = lint_program(build_imagick().program)
    hits = report.by_rule("L012")
    assert {d.addr for d in hits} == {0x10050, 0x10074, 0x1007c,
                                      0x100a0}
    assert {d.function for d in hits} == {"ceil", "floor"}
    assert all("hoist" in d.fix_hint for d in hits)


def test_l012_imagick_optimized_is_clean():
    report = lint_program(build_imagick(optimized=True).program)
    assert report.by_rule("L012") == []
    assert report.diagnostics == []


# -- L013 no time-driven exit -------------------------------------------------


def test_l013_trigger_condition_defined_outside_loop():
    with open(os.path.join(EXAMPLES, "spin_wait.s")) as handle:
        report = _lint(handle.read())
    hits = report.by_rule("L013")
    assert len(hits) == 1
    assert "fast" in hits[0].fix_hint


def test_l013_near_miss_counter_updated_in_body():
    report = _lint("""
.entry main
.func main
main:
    addi x1, x0, 8
loop:
    addi x1, x1, -1
    bne  x1, x0, loop
    halt
""")
    assert report.by_rule("L013") == []


def test_l013_near_miss_loop_body_calls_out():
    """A call hands control to code that can generate events."""
    report = _lint("""
.entry main
.func main
main:
    lw   x5, 0x400(x0)
wait:
    jal  x1, helper
    bne  x5, x0, wait
    halt

.func helper
helper:
    addi x6, x6, 1
    jalr x0, x1, 0
""")
    assert report.by_rule("L013") == []


# -- dominators and loop nesting ----------------------------------------------

NESTED_LOOPS = """
.entry main
.func main
main:
    addi x1, x0, 4
outer:
    addi x2, x0, 4
inner:
    addi x2, x2, -1
    bne  x2, x0, inner
    addi x1, x1, -1
    bne  x1, x0, outer
    halt
"""


def test_dominator_tree_on_nested_loops():
    cfg = _cfg(NESTED_LOOPS)
    tree = DominatorTree(cfg, "main")
    root = cfg.functions["main"][0]
    for index in cfg.functions["main"]:
        assert tree.dominates(root, index)
    inner = cfg.block_index_of(0x10008)
    exit_block = cfg.block_index_of(0x10014)
    assert tree.dominates(inner, exit_block)
    assert not tree.dominates(exit_block, inner)


def test_loop_nest_depths():
    cfg = _cfg(NESTED_LOOPS)
    nest = LoopNest(cfg, "main")
    assert len(nest.loops) == 2
    by_size = sorted(range(len(nest.loops)),
                     key=lambda i: len(nest.loops[i].body))
    inner_i, outer_i = by_size[0], by_size[-1]
    assert nest.depth(inner_i) == 2
    assert nest.depth(outer_i) == 1
    assert nest.parent[inner_i] == outer_i
    inner_block = cfg.block_index_of(0x10008)
    assert nest.innermost(inner_block) is nest.loops[inner_i]


# -- the --no-dataflow escape hatch -------------------------------------------


def test_linter_dataflow_toggle():
    with open(os.path.join(EXAMPLES, "csr_hotloop.s")) as handle:
        source = handle.read()
    program = assemble(source, name="csr_hotloop")
    full = Linter().run(program)
    syntactic = Linter(dataflow=False).run(program)
    assert {d.rule for d in full.diagnostics} == {"L001", "L012"}
    assert {d.rule for d in syntactic.diagnostics} == {"L001"}
