"""Multi-core profiling session tests (Section 3.2 multi-threading)."""

import pytest

from repro.analysis.symbols import Granularity
from repro.harness.multicore import MulticoreSession
from repro.workloads import build_workload, k_int_ilp, k_stream_load


def _two_core_session():
    core0 = build_workload("c0", [k_int_ilp("compute", 800, width=6)])
    core1 = build_workload("c1", [
        k_stream_load("stream", 300, 0x20_0000, 64 * 1024)])
    return MulticoreSession([core0, core1], period=31).run()


@pytest.fixture(scope="module")
def session():
    return _two_core_session()


def test_each_core_runs_to_completion(session):
    assert len(session.sessions) == 2
    for core in session.sessions:
        assert core.machine.core.halted
        assert core.tip.samples
    assert session.total_cycles == sum(c.cycles for c in session.sessions)


def test_per_core_profiles_normalised(session):
    profiles = session.per_core_profiles(Granularity.FUNCTION)
    assert set(profiles) == {0, 1}
    for profile in profiles.values():
        assert sum(profile.values()) == pytest.approx(1.0)
    assert "compute" in profiles[0]
    assert "stream" in profiles[1]


def test_system_profile_tags_cores(session):
    system = session.system_profile(Granularity.FUNCTION, tag_core=True)
    assert sum(system.values()) == pytest.approx(1.0)
    cores = {core for core, _ in system}
    assert cores == {0, 1}
    # Each core's share is weighted by its sampled time.
    core1_share = sum(v for (core, _), v in system.items() if core == 1)
    cycles1 = session.sessions[1].cycles
    expected = cycles1 / session.total_cycles
    assert core1_share == pytest.approx(expected, rel=0.1)


def test_system_profile_merges_shared_symbols():
    workload = build_workload("same", [k_int_ilp("compute", 400,
                                                 width=6)])
    other = build_workload("same2", [k_int_ilp("compute", 400, width=6)])
    session = MulticoreSession([workload, other], period=31).run()
    merged = session.system_profile(Granularity.FUNCTION, tag_core=False)
    assert "compute" in merged
    # Both cores' time lands on the same symbol (the rest is the boot
    # drain attributed to main's first instruction).
    assert merged["compute"] > 0.6


def test_empty_session_rejected():
    with pytest.raises(ValueError):
        MulticoreSession([])
