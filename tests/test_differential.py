"""Differential testing: the OoO core versus the reference interpreter.

Randomly generated programs run on both executors; final architectural
state (integer registers, memory, executed instruction counts) must
match exactly.  This exercises the whole speculative machinery --
forwarding, squashes, replays, exceptions -- against a trivially correct
sequential model.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.config import CoreConfig
from repro.cpu.machine import Machine
from repro.isa.assembler import assemble
from repro.isa.interpreter import run_reference

DATA_BASE = 0x2000
DATA_WORDS = 64


def _generate_program(rng: random.Random, blocks: int = 4,
                      block_len: int = 6) -> str:
    """A random but guaranteed-to-terminate program.

    Structure: an outer counted loop over a few straight-line blocks with
    data-dependent skips inside.  Registers x5..x15 are general; x1/x2
    are reserved links; x20 is the loop counter.
    """
    lines = [".func main", "main:"]
    for i in range(8):
        lines.append(f"    addi x{5 + i}, x0, {rng.randint(-64, 64)}")
    lines.append(f"    addi x20, x0, {rng.randint(4, 12)}")
    lines.append("outer:")
    for b in range(blocks):
        lines.append(f"block{b}:")
        for _ in range(block_len):
            choice = rng.random()
            rd = rng.randint(5, 15)
            rs1 = rng.randint(5, 15)
            rs2 = rng.randint(5, 15)
            if choice < 0.35:
                op = rng.choice(["add", "sub", "xor", "and", "or", "mul"])
                lines.append(f"    {op}  x{rd}, x{rs1}, x{rs2}")
            elif choice < 0.5:
                lines.append(f"    addi x{rd}, x{rs1}, "
                             f"{rng.randint(-32, 32)}")
            elif choice < 0.65:
                offset = 8 * rng.randint(0, DATA_WORDS - 1)
                lines.append(f"    andi x16, x{rs1}, "
                             f"{8 * (DATA_WORDS - 1)}")
                lines.append(f"    ld   x{rd}, {DATA_BASE}(x16)")
            elif choice < 0.8:
                lines.append(f"    andi x16, x{rs1}, "
                             f"{8 * (DATA_WORDS - 1)}")
                lines.append(f"    sd   x{rs2}, {DATA_BASE}(x16)")
            elif choice < 0.9:
                # A data-dependent forward skip within the block.
                lines.append(f"    andi x17, x{rs1}, 1")
                lines.append(f"    beq  x17, x0, skip{b}_{len(lines)}")
                lines.append(f"    addi x{rd}, x{rd}, 1")
                lines.append(f"skip{b}_{len(lines) - 2}:")
            else:
                lines.append(f"    div  x{rd}, x{rs1}, x{rs2}")
    lines.append("    addi x20, x20, -1")
    lines.append("    bne  x20, x0, outer")
    lines.append("    halt")
    return "\n".join(lines) + "\n"


def _compare(seed: int, config=None) -> None:
    rng = random.Random(seed)
    source = _generate_program(rng)
    program = assemble(source, name=f"fuzz-{seed}")
    for i in range(DATA_WORDS):
        program.data[DATA_BASE + 8 * i] = rng.randint(-100, 100)

    reference = run_reference(program)

    machine = Machine(program, config,
                      premapped_data=[(DATA_BASE,
                                       DATA_BASE + 8 * DATA_WORDS)])
    machine.run(2_000_000)
    core = machine.core

    for reg in range(3, 21):
        assert core.regs[reg] == reference.regs[reg], \
            f"seed {seed}: x{reg} = {core.regs[reg]} " \
            f"vs reference {reference.regs[reg]}\n{source}"
    for addr in range(DATA_BASE, DATA_BASE + 8 * DATA_WORDS, 8):
        assert core.memory.get(addr, 0) == reference.memory.get(addr, 0), \
            f"seed {seed}: mem[{addr:#x}]"
    # The core committed exactly the dynamic instruction stream.
    assert machine.stats.committed == reference.instructions_executed


@pytest.mark.parametrize("seed", range(12))
def test_differential_random_programs(seed):
    _compare(seed)


@pytest.mark.parametrize("seed", range(12, 18))
def test_differential_tiny_core(seed):
    """The 2-wide tiny core with small structures must agree too."""
    _compare(seed, CoreConfig.tiny())


def test_differential_with_sampling_interrupts():
    """Interrupt-driven sample collection must not perturb results."""
    rng = random.Random(99)
    source = _generate_program(rng)
    program = assemble(source, name="fuzz-intr")
    for i in range(DATA_WORDS):
        program.data[DATA_BASE + 8 * i] = rng.randint(-100, 100)
    reference = run_reference(program)
    machine = Machine(program,
                      premapped_data=[(DATA_BASE,
                                       DATA_BASE + 8 * DATA_WORDS)],
                      perf_sampling=(257, 6))
    machine.run(2_000_000)
    assert machine.stats.sampling_interrupts > 0
    for reg in range(3, 21):
        assert machine.core.regs[reg] == reference.regs[reg], reg
