"""Fault-path coverage: store faults, atomic faults, fault interactions."""

import pytest

from conftest import run_asm


def test_store_page_fault_handled():
    """Stores translate at execute (RFO); an unmapped page faults and the
    store re-executes after the handler installs it."""
    machine, collector = run_asm("""
    .func main
        addi x1, x0, 77
        sd   x1, 0x100000(x0)
        ld   x2, 0x100000(x0)
        sw   x2, 0x3000(x0)
        halt
    """, premapped=[(0x3000, 0x3008)])
    assert machine.stats.exceptions == 1
    assert machine.core.memory.get(0x100000) == 77
    assert machine.core.memory.get(0x3000) == 77


def test_amoadd_page_fault_handled():
    machine, _ = run_asm("""
    .func main
        addi x1, x0, 0x100000
        addi x2, x0, 5
        amoadd x3, x2, 0(x1)
        sw   x3, 0x3000(x0)
        halt
    """, premapped=[(0x3000, 0x3008)])
    assert machine.stats.exceptions == 1
    assert machine.core.memory.get(0x100000) == 5
    assert machine.core.memory.get(0x3000) == 0  # old value was 0


def test_many_faults_across_pages():
    machine, _ = run_asm("""
    .func main
        addi x1, x0, 0
        addi x2, x0, 6
    loop:
        lw   x3, 0x100000(x1)
        add  x4, x4, x3
        addi x1, x1, 4096
        addi x2, x2, -1
        bne  x2, x0, loop
        sw   x4, 0x3000(x0)
        halt
    """, premapped=[(0x3000, 0x3008)])
    assert machine.stats.exceptions == 6
    assert machine.core.memory.get(0x3000) == 0


def test_fault_inside_loop_preserves_loop_state():
    """The excepting load replays without disturbing older state."""
    machine, _ = run_asm("""
    .func main
        addi x1, x0, 0
        addi x5, x0, 0
        addi x2, x0, 20
    loop:
        addi x5, x5, 1
        lw   x3, 0x100000(x0)
        addi x1, x1, 1
        bne  x1, x2, loop
        sw   x5, 0x3000(x0)
        halt
    """, premapped=[(0x3000, 0x3008)])
    assert machine.stats.exceptions == 1  # only the first touch faults
    assert machine.core.memory.get(0x3000) == 20


def test_fault_followed_by_mispredict():
    """Exception and branch-mispredict recovery compose."""
    machine, _ = run_asm("""
    .data 0x2000 1
    .func main
        addi x2, x0, 40
        addi x6, x0, 0
    loop:
        mul  x4, x2, x2
        andi x3, x4, 24
        lw   x5, 0x2000(x3)
        beq  x5, x0, skip
        addi x6, x6, 1
    skip:
        lw   x7, 0x100000(x2)
        addi x2, x2, -1
        bne  x2, x0, loop
        sw   x6, 0x3000(x0)
        halt
    """, premapped=[(0x2000, 0x2020), (0x3000, 0x3008)])
    assert machine.stats.exceptions >= 1
    assert machine.stats.branch_mispredicts > 0
    assert machine.core.memory.get(0x3000) is not None


def test_fault_vpn_recorded_by_kernel():
    machine, _ = run_asm("""
    .func main
        lw x1, 0x123000(x0)
        halt
    """)
    assert [vpn for vpn, _ in machine.kernel.faults] == [0x123]
