"""CLI tests."""

import pytest

from repro.cli import build_parser, main


def test_parser_builds():
    parser = build_parser()
    args = parser.parse_args(["overhead"])
    assert args.command == "overhead"


def test_overhead_command(capsys):
    assert main(["overhead"]) == 0
    out = capsys.readouterr().out
    assert "57 B" in out
    assert "352 KB/s" in out


def test_profile_command(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("""
.func main
    addi x1, x0, 0
    addi x2, x0, 300
loop:
    add  x3, x3, x1
    addi x1, x1, 1
    bne  x1, x2, loop
    halt
""")
    assert main(["profile", str(source), "--period", "7"]) == 0
    out = capsys.readouterr().out
    assert "instruction profile" in out
    assert "TIP" in out
    assert "Oracle" in out


def test_stacks_command(capsys):
    assert main(["stacks", "lbm", "--scale", "0.05",
                 "--period", "29"]) == 0
    out = capsys.readouterr().out
    assert "cycle stacks" in out
    assert "lbm" in out


def test_suite_command_subset(capsys):
    assert main(["suite", "exchange2", "--scale", "0.05",
                 "--period", "29"]) == 0
    out = capsys.readouterr().out
    assert "instruction-level error" in out
    assert "exchange2" in out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_suite_unknown_benchmark_exits_2(capsys):
    assert main(["suite", "gcc", "nosuchbench"]) == 2
    err = capsys.readouterr().err
    assert "nosuchbench" in err
    assert "unknown benchmark" in err


def test_stacks_unknown_benchmark_exits_2(capsys):
    assert main(["stacks", "typo1", "typo2"]) == 2
    err = capsys.readouterr().err
    assert "typo1" in err and "typo2" in err


def test_lint_file_warnings_only_exits_0(tmp_path, capsys):
    source = tmp_path / "hot.s"
    source.write_text("""
.entry main
.func main
main:
    addi x1, x0, 4
loop:
    frflags x7
    addi x1, x1, -1
    bne  x1, x0, loop
    halt
""")
    assert main(["lint", str(source)]) == 0
    out = capsys.readouterr().out
    assert "warning[L001]" in out
    assert "hint: replace with `nop`" in out


def test_lint_errors_exit_1(tmp_path, capsys):
    source = tmp_path / "dead.s"
    source.write_text("""
.entry main
.func main
main:
    jal  x0, out
    addi x1, x1, 1
out:
    halt
""")
    assert main(["lint", str(source)]) == 1
    assert "error[L003]" in capsys.readouterr().out


def test_lint_directory_and_benchmark(tmp_path, capsys):
    (tmp_path / "clean.s").write_text("""
.entry main
.func main
main:
    halt
""")
    assert main(["lint", str(tmp_path), "imagick-opt"]) == 0
    out = capsys.readouterr().out
    assert "clean.s: 0 error(s), 0 warning(s)" in out
    assert "imagick-opt: 0 error(s), 0 warning(s)" in out


def test_lint_bad_target_exits_2(capsys):
    assert main(["lint", "no/such/file.s"]) == 2
    assert "cannot lint" in capsys.readouterr().err


def test_lint_json(capsys):
    import json
    assert main(["lint", "imagick-orig", "--json"]) == 0
    reports = json.loads(capsys.readouterr().out)
    assert reports[0]["program"] == "imagick-orig"
    # Each of the four CSR sites draws the syntactic L001 plus the
    # semantic (dataflow-proven) L012.
    assert reports[0]["warnings"] == 8
    assert {d["rule"] for d in reports[0]["diagnostics"]} == \
        {"L001", "L012"}


HOT_LOOP = """
.entry main
.func main
main:
    addi x1, x0, 4
loop:
    frflags x7
    addi x1, x1, -1
    bne  x1, x0, loop
    halt
"""


def test_lint_strict_warnings_exit_1(tmp_path):
    source = tmp_path / "hot.s"
    source.write_text(HOT_LOOP)
    assert main(["lint", str(source)]) == 0
    assert main(["lint", str(source), "--strict"]) == 1


def test_lint_no_dataflow_suppresses_semantic_rules(tmp_path, capsys):
    source = tmp_path / "hot.s"
    source.write_text(HOT_LOOP)
    assert main(["lint", str(source), "--no-dataflow"]) == 0
    out = capsys.readouterr().out
    assert "warning[L001]" in out
    assert "L012" not in out


def test_lint_format_json_carries_locations(tmp_path, capsys):
    import json
    source = tmp_path / "hot.s"
    source.write_text(HOT_LOOP)
    assert main(["lint", str(source), "--format", "json"]) == 0
    reports = json.loads(capsys.readouterr().out)
    diags = reports[0]["diagnostics"]
    assert {d["rule"] for d in diags} == {"L001", "L012"}
    for diag in diags:
        assert diag["path"] == str(source)
        assert diag["line"] == 7  # the frflags line
        assert diag["addr"] == "0x10004"
        assert "fix_hint" in diag


def test_lint_assembler_error_exits_2(tmp_path, capsys):
    source = tmp_path / "broken.s"
    source.write_text("main:\n    frobnicate x1\n")
    assert main(["lint", str(source)]) == 2
    assert "cannot lint" in capsys.readouterr().err


def test_lint_observers_shipped_tree_is_clean(capsys):
    import repro
    import os
    tree = os.path.dirname(repro.__file__)
    assert main(["lint", "--observers", tree, "--strict"]) == 0
    assert "observer class(es)" in capsys.readouterr().out


def test_lint_observers_seeded_violation_exits_1(tmp_path, capsys):
    seeded = tmp_path / "seeded.py"
    seeded.write_text("""
class HalfBlockNative(TraceObserver):
    def on_block(self, start, instructions, cycles):
        self.cycles = cycles
""")
    assert main(["lint", "--observers", str(seeded)]) == 1
    assert "C002" in capsys.readouterr().out


def test_lint_observers_strict_promotes_warnings(tmp_path):
    seeded = tmp_path / "seeded.py"
    seeded.write_text("""
class Registered(TraceObserver):
    def on_block(self, start, instructions, cycles):
        self.cycles = cycles

    def on_cycle(self, record):
        self.cycle = record.cycle
""")
    # on_cycle is concrete, so C002 is only a warning here.
    assert main(["lint", "--observers", str(seeded)]) == 0
    assert main(["lint", "--observers", str(seeded), "--strict"]) == 1


def test_lint_observers_json(tmp_path, capsys):
    import json
    seeded = tmp_path / "seeded.py"
    seeded.write_text("""
class HalfBlockNative(TraceObserver):
    def on_block(self, start, instructions, cycles):
        self.cycles = cycles
""")
    assert main(["lint", "--observers", str(seeded),
                 "--format", "json"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["errors"] == 1
    assert data["diagnostics"][0]["rule"] == "C002"
    assert data["diagnostics"][0]["path"] == str(seeded)


def test_lint_observers_bad_target_exits_2(capsys):
    assert main(["lint", "--observers", "no/such/dir"]) == 2
    assert "cannot lint" in capsys.readouterr().err


def test_profile_sanitize(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("""
.func main
    addi x1, x0, 0
    addi x2, x0, 200
loop:
    addi x1, x1, 1
    bne  x1, x2, loop
    halt
""")
    assert main(["profile", str(source), "--period", "7",
                 "--sanitize"]) == 0
    out = capsys.readouterr().out
    assert "sanitizer:" in out and "clean" in out


def test_suite_sanitize(capsys):
    assert main(["suite", "exchange2", "--scale", "0.05",
                 "--period", "29", "--sanitize"]) == 0
    out = capsys.readouterr().out
    assert "exchange2: sanitizer:" in out
    assert "clean" in out


def test_record_and_replay_commands(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("""
.func main
    addi x1, x0, 0
    addi x2, x0, 400
loop:
    add  x3, x3, x1
    addi x1, x1, 1
    bne  x1, x2, loop
    halt
""")
    trace = tmp_path / "run.tiptrace"
    assert main(["record", str(source), "-o", str(trace),
                 "--sanitize"]) == 0
    out = capsys.readouterr().out
    assert "recorded" in out
    assert "sanitizer:" in out and "clean" in out
    assert trace.stat().st_size > 100

    assert main(["replay", str(trace), str(source),
                 "--policy", "TIP", "--period", "11",
                 "--sanitize"]) == 0
    out = capsys.readouterr().out
    assert "replayed" in out
    assert "error" in out
    assert "sanitizer:" in out and "clean" in out


def test_record_replay_sharded_and_convert(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("""
.func main
    addi x1, x0, 0
    addi x2, x0, 600
loop:
    add  x3, x3, x1
    addi x1, x1, 1
    bne  x1, x2, loop
    halt
""")
    v2 = tmp_path / "run2.tiptrace"
    assert main(["record", str(source), "-o", str(v2),
                 "--chunk-cycles", "128", "--compress",
                 "--format", "v2"]) == 0
    out = capsys.readouterr().out
    assert "[v2]" in out

    assert main(["replay", str(v2), str(source), "--jobs", "2",
                 "--period", "11", "--sanitize"]) == 0
    out = capsys.readouterr().out
    assert "sharded, 2 shard(s)" in out
    assert "clean" in out

    # v3 is the default record format and shards the same way.
    v3 = tmp_path / "run3.tiptrace"
    assert main(["record", str(source), "-o", str(v3),
                 "--chunk-cycles", "128"]) == 0
    out = capsys.readouterr().out
    assert "[v3]" in out
    assert main(["replay", str(v3), str(source), "--jobs", "2",
                 "--period", "11", "--sanitize"]) == 0
    out = capsys.readouterr().out
    assert "sharded, 2 shard(s)" in out
    assert "clean" in out

    v1 = tmp_path / "run1.tiptrace"
    assert main(["record", str(source), "-o", str(v1),
                 "--format", "v1"]) == 0
    capsys.readouterr()
    converted = tmp_path / "converted.tiptrace"
    assert main(["convert-trace", str(v1), "-o", str(converted),
                 "--chunk-cycles", "64"]) == 0
    out = capsys.readouterr().out
    assert "converted" in out and "[v3]" in out
    assert main(["replay", str(converted), str(source), "--jobs", "3",
                 "--period", "11"]) == 0
    out = capsys.readouterr().out
    assert "sharded, 3 shard(s)" in out

    # Downgrade path: v3 -> v2 keeps every record.
    down = tmp_path / "down.tiptrace"
    assert main(["convert-trace", str(v3), "-o", str(down),
                 "--to", "v2", "--chunk-cycles", "128"]) == 0
    out = capsys.readouterr().out
    assert "[v2]" in out
    assert main(["replay", str(down), str(source),
                 "--period", "11"]) == 0
    out = capsys.readouterr().out
    assert "replayed" in out


def test_replay_v1_trace_falls_back_serially(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("""
.func main
    addi x1, x0, 0
    addi x2, x0, 100
loop:
    addi x1, x1, 1
    bne  x1, x2, loop
    halt
""")
    trace = tmp_path / "run.tiptrace"
    assert main(["record", str(source), "-o", str(trace),
                 "--format", "v1"]) == 0
    capsys.readouterr()
    assert main(["replay", str(trace), str(source), "--jobs", "4",
                 "--period", "7"]) == 0
    out = capsys.readouterr().out
    assert "serial" in out and "fallback" in out


def test_suite_parallel_jobs(capsys):
    assert main(["suite", "exchange2", "lbm", "--scale", "0.05",
                 "--period", "29", "--jobs", "2", "--sanitize"]) == 0
    out = capsys.readouterr().out
    assert "exchange2" in out and "lbm" in out
    assert "sanitizer:" in out and "clean" in out


def test_bench_command(tmp_path, capsys):
    output = tmp_path / "BENCH_pipeline.json"
    assert main(["bench", "exchange2", "--scale", "0.05",
                 "--jobs", "2", "--chunk-cycles", "256",
                 "-o", str(output)]) == 0
    out = capsys.readouterr().out
    assert "checksums: OK" in out
    import json
    data = json.loads(output.read_text())
    assert data["checksums_equal"] is True
    assert "exchange2" in data["benchmarks"]
    assert data["benchmarks"]["exchange2"]["replay_mode"] == "sharded"
    assert data["suite_serial_s"] > 0 and data["suite_parallel_s"] > 0
