"""CLI tests."""

import pytest

from repro.cli import build_parser, main


def test_parser_builds():
    parser = build_parser()
    args = parser.parse_args(["overhead"])
    assert args.command == "overhead"


def test_overhead_command(capsys):
    assert main(["overhead"]) == 0
    out = capsys.readouterr().out
    assert "57 B" in out
    assert "352 KB/s" in out


def test_profile_command(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("""
.func main
    addi x1, x0, 0
    addi x2, x0, 300
loop:
    add  x3, x3, x1
    addi x1, x1, 1
    bne  x1, x2, loop
    halt
""")
    assert main(["profile", str(source), "--period", "7"]) == 0
    out = capsys.readouterr().out
    assert "instruction profile" in out
    assert "TIP" in out
    assert "Oracle" in out


def test_stacks_command(capsys):
    assert main(["stacks", "lbm", "--scale", "0.05",
                 "--period", "29"]) == 0
    out = capsys.readouterr().out
    assert "cycle stacks" in out
    assert "lbm" in out


def test_suite_command_subset(capsys):
    assert main(["suite", "exchange2", "--scale", "0.05",
                 "--period", "29"]) == 0
    out = capsys.readouterr().out
    assert "instruction-level error" in out
    assert "exchange2" in out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_record_and_replay_commands(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("""
.func main
    addi x1, x0, 0
    addi x2, x0, 400
loop:
    add  x3, x3, x1
    addi x1, x1, 1
    bne  x1, x2, loop
    halt
""")
    trace = tmp_path / "run.tiptrace"
    assert main(["record", str(source), "-o", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "recorded" in out
    assert trace.stat().st_size > 100

    assert main(["replay", str(trace), str(source),
                 "--policy", "TIP", "--period", "11"]) == 0
    out = capsys.readouterr().out
    assert "replayed" in out
    assert "error" in out
