"""Parallel subsystem tests: pool, sharded replay, parallel suite.

The centerpiece is the golden-trace differential harness: a small
recorded v2 trace plus expected per-instruction profiles for all seven
sampling profilers are checked in under ``tests/data/``, and serial,
2-shard and 7-shard replays must all reproduce them bit-for-bit.
"""

import io
import json
import os
import time

import pytest

from repro.analysis.profiles import profile_checksum
from repro.cpu.machine import Machine
from repro.cpu.tracefile import (TraceWriter, TraceWriterV2, read_index,
                                 replay_trace)
from repro.harness import (ProfilerConfig, default_profilers,
                           replay_experiment, run_suite)
from repro.isa import assemble
from repro.kernel import Kernel
from repro.parallel import (INJECT_KINDS, PoolJob, ProgramSpec,
                            plan_shards, replay_serial, replay_sharded,
                            run_jobs)
from repro.workloads.suite import build_suite

DATA = os.path.join(os.path.dirname(os.path.abspath(__file__)), "data")

SEVEN_POLICIES = ("Software", "Dispatch", "LCI", "NCI", "NCI+ILP",
                  "TIP-ILP", "TIP")


# -- golden-trace differential harness ------------------------------------------


@pytest.fixture(scope="module")
def golden():
    with open(os.path.join(DATA, "golden.tiptrace"), "rb") as handle:
        trace = handle.read()
    with open(os.path.join(DATA, "golden_expected.json")) as handle:
        expected = json.load(handle)
    with open(os.path.join(DATA, "golden.s")) as handle:
        source = handle.read()
    image = Kernel().boot(assemble(source, name="golden.s"))
    spec = ProgramSpec(kind="asm", source=source, name="golden.s")
    configs = tuple(ProfilerConfig(policy, expected["period"],
                                   expected["mode"], expected["seed"])
                    for policy in SEVEN_POLICIES)
    return trace, expected, image, spec, configs


def _check_against_golden(outcome, expected):
    assert outcome.cycles == expected["cycles"]
    assert set(outcome.profilers) == set(expected["profilers"])
    for name, want in expected["profilers"].items():
        profiler = outcome.profilers[name]
        assert len(profiler.samples) == want["samples"], name
        assert profile_checksum(profiler.samples) == want["checksum"], \
            f"{name}: sample stream diverged from golden trace"
        profile = {hex(addr): weight
                   for addr, weight in profiler.profile().items()}
        assert profile == want["profile"], name


def test_serial_replay_matches_golden(golden):
    trace, expected, image, _spec, configs = golden
    outcome = replay_serial(trace, image, configs)
    _check_against_golden(outcome, expected)
    oracle = {hex(addr): weight
              for addr, weight in outcome.oracle.profile.items()}
    assert oracle == expected["oracle_profile"]


@pytest.mark.parametrize("jobs", [2, 7])
def test_sharded_replay_matches_golden(golden, jobs):
    trace, expected, image, spec, configs = golden
    outcome = replay_sharded(trace, spec, configs, jobs=jobs,
                             image=image)
    assert outcome.mode == "sharded"
    assert outcome.shards == jobs
    assert outcome.fallback_reason is None
    _check_against_golden(outcome, expected)
    # Oracle merges shard subtotals: equal up to FP summation order.
    for key, want in expected["oracle_profile"].items():
        assert outcome.oracle.profile[int(key, 16)] == \
            pytest.approx(want, rel=1e-12, abs=1e-12)


def test_sharded_replay_merges_oracle_intervals(golden):
    trace, expected, image, spec, configs = golden
    serial = replay_serial(trace, image, configs,
                           watch_keys=((expected["period"],
                                        expected["mode"],
                                        expected["seed"]),))
    sharded = replay_sharded(trace, spec, configs, jobs=3, image=image,
                             watch_keys=((expected["period"],
                                          expected["mode"],
                                          expected["seed"]),))
    key = (expected["period"], expected["mode"], expected["seed"])
    assert set(serial.oracle.intervals[key]) == \
        set(sharded.oracle.intervals[key])
    for cycle, weights in serial.oracle.intervals[key].items():
        merged = sharded.oracle.intervals[key][cycle]
        assert set(merged) == set(weights)
        for addr, weight in weights.items():
            assert merged[addr] == pytest.approx(weight, rel=1e-12)


# -- fallback paths --------------------------------------------------------------


def test_v1_trace_falls_back_to_serial(golden):
    _trace, expected, image, spec, configs = golden
    program = image  # already booted; simulate a fresh v1 recording
    machine = Machine(assemble(open(os.path.join(DATA, "golden.s"))
                               .read(), name="golden.s"))
    buffer = io.BytesIO()
    machine.attach(TraceWriter(buffer, machine.config.rob_banks))
    machine.run()
    outcome = replay_sharded(buffer.getvalue(), spec, configs, jobs=2,
                             image=program)
    assert outcome.mode == "serial"
    assert "v1" in outcome.fallback_reason
    assert outcome.cycles == expected["cycles"]


def test_software_skid_falls_back_to_serial(golden):
    trace, _expected, image, spec, _configs = golden
    skidding = (ProfilerConfig("Software", 23, label="soft-skid"),)
    from repro.core.baselines import SoftwareProfiler
    from repro.core.sampling import SampleSchedule
    assert not SoftwareProfiler(SampleSchedule(23), skid_cycles=5) \
        .shardable
    # Patch in a skidding Software profiler via a custom config list:
    # the stock ProfilerConfig cannot express skid, so check the probe
    # path with a fake config object instead.

    class SkidConfig:
        name = "soft-skid"

        @staticmethod
        def build(program):
            return SoftwareProfiler(SampleSchedule(23), skid_cycles=5)

    outcome = replay_sharded(trace, spec, (SkidConfig(),), jobs=2,
                             image=image)
    assert outcome.mode == "serial"
    assert "non-shardable" in outcome.fallback_reason
    assert skidding[0].name in outcome.fallback_reason


def test_single_job_falls_back_to_serial(golden):
    trace, expected, image, spec, configs = golden
    outcome = replay_sharded(trace, spec, configs, jobs=1, image=image)
    assert outcome.mode == "serial"
    assert outcome.fallback_reason == "jobs <= 1"
    _check_against_golden(outcome, expected)


# -- shard planning --------------------------------------------------------------


def test_plan_shards_covers_all_chunks(golden):
    trace, _expected, _image, _spec, _configs = golden
    index = read_index(trace)
    for jobs in range(1, len(index.chunks) + 3):
        bounds = plan_shards(index, jobs)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == len(index.chunks)
        for (lo_a, hi_a), (lo_b, _hi_b) in zip(bounds, bounds[1:]):
            assert hi_a == lo_b  # contiguous
            assert lo_a < hi_a  # non-empty
        assert len(bounds) == min(jobs, len(index.chunks))


# -- sanitizer: attached once per trace, sharded absorb --------------------------


def test_sanitizer_attached_once_per_replay(golden):
    """Regression: one replay pass drives all profilers AND the
    sanitizer, so its counters equal the trace length -- attaching it
    per profiler pass would multiply them by the profiler count."""
    trace, expected, image, _spec, configs = golden
    result = replay_experiment(trace, image, configs, sanitize=True)
    assert len(result.profilers) == len(SEVEN_POLICIES)
    assert result.sanitizer is not None
    assert result.sanitizer.cycles_checked == expected["cycles"]
    assert result.sanitizer.commits_checked == expected["committed"]
    assert result.sanitizer.ok


def test_sanitizer_sharded_counts_match_serial(golden):
    trace, expected, image, spec, configs = golden
    result = replay_experiment(trace, image, configs, sanitize=True,
                               jobs=3, spec=spec)
    assert result.replay.mode == "sharded"
    assert result.sanitizer.cycles_checked == expected["cycles"]
    assert result.sanitizer.commits_checked == expected["committed"]
    assert result.sanitizer.ok


# -- process pool: failure injection ---------------------------------------------


def _double(value):
    return value * 2


def _slow_ok(value):
    time.sleep(0.05)
    return value


def test_pool_runs_jobs_and_reports_attempts():
    jobs = [PoolJob(f"j{i}", _double, (i,)) for i in range(4)]
    report = run_jobs(jobs, workers=2)
    assert report.ok and not report.degraded
    assert report.results == {f"j{i}": 2 * i for i in range(4)}
    assert all(report.attempts[f"j{i}"] == 1 for i in range(4))


@pytest.mark.parametrize("kind", INJECT_KINDS)
def test_pool_failure_injection_yields_clean_report(kind):
    """A worker that raises, hangs past its timeout, or dies mid-job is
    retried and then reported -- never a hung suite or a poisoned
    results dict."""
    jobs = [
        PoolJob("good", _double, (21,)),
        PoolJob("bad", _double, (1,), timeout=0.5, inject=kind),
    ]
    start = time.monotonic()
    report = run_jobs(jobs, workers=2, retries=1, poll_interval=0.01)
    elapsed = time.monotonic() - start
    assert elapsed < 10  # the hang case must be bounded by the timeout
    assert report.results == {"good": 42}
    assert set(report.failures) == {"bad"}
    failure = report.failures["bad"]
    assert failure.attempts == 2  # first try + one retry
    expected_kind = {"raise": "exception", "hang": "timeout",
                     "die": "crash"}[kind]
    assert failure.kind == expected_kind
    assert "bad" in str(failure)


def test_pool_retry_then_succeed():
    job = PoolJob("flaky", _double, (5,), inject="raise",
                  inject_attempts=frozenset({0}))
    report = run_jobs([job], workers=2, retries=2, poll_interval=0.01)
    assert report.ok
    assert report.results == {"flaky": 10}
    assert report.attempts["flaky"] == 2


def test_pool_crash_exit_code_reported():
    job = PoolJob("dies", _double, (1,), inject="die")
    report = run_jobs([job], workers=2, retries=0, poll_interval=0.01)
    assert "86" in report.failures["dies"].message


def test_pool_serial_degradation():
    jobs = [PoolJob(f"j{i}", _double, (i,)) for i in range(3)]
    report = run_jobs(jobs, workers=1)
    assert report.results == {f"j{i}": 2 * i for i in range(3)}
    assert not report.degraded  # workers=1 is serial by request
    report = run_jobs(jobs, workers=0)
    assert report.degraded  # workers=0 means "no pool available"
    assert report.results == {f"j{i}": 2 * i for i in range(3)}


def test_pool_many_jobs_few_workers():
    jobs = [PoolJob(f"j{i}", _slow_ok, (i,)) for i in range(6)]
    report = run_jobs(jobs, workers=2, poll_interval=0.01)
    assert report.ok
    assert report.results == {f"j{i}": i for i in range(6)}


def test_worker_failure_falls_back_to_serial_replay(golden, monkeypatch):
    """If every shard worker fails, the replay degrades to serial and
    still produces golden results."""
    trace, expected, image, spec, configs = golden
    import repro.parallel.shard as shard_mod
    from repro.parallel.pool import JobFailure, PoolReport

    def all_fail(jobs, workers, retries=1, **kwargs):
        return PoolReport(failures={
            job.name: JobFailure(job.name, "crash", retries + 1, "boom")
            for job in jobs})

    monkeypatch.setattr(shard_mod, "run_jobs", all_fail)
    outcome = replay_sharded(trace, spec, configs, jobs=2, image=image)
    assert outcome.mode == "serial"
    assert "worker failure" in outcome.fallback_reason
    _check_against_golden(outcome, expected)


# -- parallel suite ---------------------------------------------------------------


def test_parallel_suite_matches_serial():
    scale = 0.05
    workloads = build_suite(["exchange2", "lbm"], scale=scale)
    configs = default_profilers(29)
    serial = run_suite(workloads, profilers=configs, scale=scale)
    parallel = run_suite(workloads, profilers=configs, scale=scale,
                         jobs=2, sanitize=True)
    assert parallel.ok and not parallel.failures
    assert list(parallel.results) == list(serial.results)
    for name in serial.results:
        for label, profiler in serial.results[name].profilers.items():
            assert profile_checksum(profiler.samples) == \
                profile_checksum(
                    parallel.results[name].profilers[label].samples), \
                f"{name}/{label}"
        assert parallel.results[name].stats.cycles == \
            serial.results[name].stats.cycles
        assert parallel.results[name].sanitizer.ok


def test_parallel_suite_reports_worker_failure(monkeypatch):
    scale = 0.05
    workloads = build_suite(["exchange2"], scale=scale)
    import repro.parallel.suite as suite_mod
    from repro.parallel.pool import JobFailure, PoolReport

    def all_fail(jobs, workers, retries=1, **kwargs):
        return PoolReport(failures={
            job.name: JobFailure(job.name, "timeout", retries + 1,
                                 "no result")
            for job in jobs})

    monkeypatch.setattr(suite_mod, "run_jobs", all_fail)
    result = run_suite(workloads, profilers=default_profilers(29),
                       scale=scale, jobs=2)
    assert not result.ok
    assert set(result.failures) == {"exchange2"}
    assert "exchange2" not in result.results


# -- replay drives everything identically through the CLI-facing API -------------


def test_replay_experiment_errors_identical_serial_vs_sharded(golden):
    trace, _expected, image, spec, configs = golden
    serial = replay_experiment(trace, image, configs)
    sharded = replay_experiment(trace, image, configs, jobs=4,
                                spec=spec)
    assert sharded.replay.mode == "sharded"
    assert serial.stats is None and sharded.stats is None
    for name, error in serial.errors().items():
        assert sharded.errors()[name] == pytest.approx(error, abs=1e-12)


# -- fd hygiene: path traces are opened once per reader and closed ---------------


def _open_fds():
    return sorted(int(name) for name in os.listdir("/proc/self/fd"))


@pytest.mark.skipif(not os.path.isdir("/proc/self/fd"),
                    reason="needs procfs")
def test_path_replay_does_not_leak_fds(golden, tmp_path):
    """Regression: replaying a trace from a path used to re-open the
    stream on every chunk rescan.  Readers now open (and mmap) the
    file once, so repeated serial and sharded replays leave the parent
    process fd table exactly as they found it."""
    from repro.cpu.tracefile import convert_trace

    trace, expected, image, spec, configs = golden
    path = str(tmp_path / "golden_v3.tiptrace")
    convert_trace(trace, path, version=3)
    # Warm-up covers lazy imports and pool machinery so the snapshot
    # below only sees replay-owned descriptors.
    replay_serial(path, image, configs)
    replay_sharded(path, spec, configs, jobs=2, image=image)
    before = _open_fds()
    for _ in range(3):
        outcome = replay_serial(path, image, configs)
        _check_against_golden(outcome, expected)
    outcome = replay_sharded(path, spec, configs, jobs=2, image=image)
    assert outcome.mode == "sharded"
    _check_against_golden(outcome, expected)
    assert _open_fds() == before
