"""The static-vs-dynamic attribution diff (``repro annotate``).

Unit tests pin the divergence rule, ordering and serialization on
synthetic profiles; the golden test reproduces the Section 6 workflow
at reduced scale -- the ``frflags``/``fsflags`` flush hotspot must be
flagged divergent on ``imagick-orig`` and must *not* be flagged on
``imagick-opt``.
"""

from __future__ import annotations

import json

from repro.analysis import (DEFAULT_FACTOR, DEFAULT_MARGIN, Granularity,
                            annotate_profile)
from repro.analysis.symbols import OFF_TEXT
from repro.cli import main
from repro.harness import default_profilers, run_experiment
from repro.isa.assembler import assemble
from repro.isa.opcodes import Op
from repro.workloads.imagick import build_imagick

STRAIGHT = """
main:
    addi x5, x0, 1
    addi x6, x0, 2
    add  x7, x5, x6
    halt
"""


def _uniform_profile(program):
    addrs = [inst.addr for inst in program.instructions]
    return {addr: 1.0 / len(addrs) for addr in addrs}


# -- divergence rule ---------------------------------------------------------

def test_uniform_profile_on_uniform_cost_is_clean():
    program = assemble(STRAIGHT)
    report = annotate_profile(program, _uniform_profile(program))
    assert report.lines
    assert report.divergent == []


def test_hot_instruction_is_flagged():
    program = assemble(STRAIGHT)
    profile = _uniform_profile(program)
    hot = max(profile)
    # Concentrate nearly all time on one instruction: it must beat the
    # static expectation both multiplicatively and additively.
    for addr in profile:
        profile[addr] = 0.91 if addr == hot else 0.03
    report = annotate_profile(program, profile)
    flagged = [line.addr for line in report.divergent]
    assert flagged == [hot]


def test_margin_suppresses_small_absolute_excess():
    program = assemble(STRAIGHT)
    profile = _uniform_profile(program)
    hot = max(profile)
    # Triple a tiny static share but stay within the additive margin.
    report = annotate_profile(program, {hot: 0.01}, margin=0.05)
    assert all(not line.divergent for line in report.lines)
    # With the margin gone the multiplicative test alone flags it.
    strict = annotate_profile(program, {hot: 0.99}, margin=0.0)
    assert hot in {line.addr for line in strict.divergent}


def test_factor_and_margin_defaults_are_recorded():
    program = assemble(STRAIGHT)
    report = annotate_profile(program, _uniform_profile(program))
    assert report.factor == DEFAULT_FACTOR
    assert report.margin == DEFAULT_MARGIN


def test_off_text_and_unknown_keys_are_ignored():
    program = assemble(STRAIGHT)
    profile = _uniform_profile(program)
    profile[OFF_TEXT] = 0.5
    profile[0xDEAD0000] = 0.5
    report = annotate_profile(program, profile)
    addrs = {line.addr for line in report.lines}
    assert OFF_TEXT not in addrs
    assert 0xDEAD0000 not in addrs


# -- ordering and serialization ---------------------------------------------

def test_divergent_sorted_by_excess_then_addr():
    program = assemble(STRAIGHT)
    static = {line.addr: line.static_share
              for line in annotate_profile(program, {}).lines}
    addrs = sorted(static)
    profile = {addrs[0]: static[addrs[0]] + 0.10,
               addrs[1]: static[addrs[1]] + 0.30}
    report = annotate_profile(program, profile, factor=1.0, margin=0.05)
    flagged = report.divergent
    assert [line.addr for line in flagged] == [addrs[1], addrs[0]]
    assert flagged[0].excess >= flagged[1].excess


def test_to_dict_round_trips_through_json():
    program = assemble(STRAIGHT)
    report = annotate_profile(program, _uniform_profile(program),
                              target="straight", policy="TIP")
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["target"] == "straight"
    assert payload["policy"] == "TIP"
    line_addrs = [line["addr"] for line in payload["lines"]]
    assert line_addrs == sorted(line_addrs)
    assert payload["divergent"] == [l.addr for l in report.divergent]
    for line in payload["lines"]:
        assert set(line) == {"addr", "function", "text", "static_share",
                             "dynamic_share", "divergent"}


def test_render_marks_divergent_lines():
    program = assemble(STRAIGHT)
    profile = _uniform_profile(program)
    hot = max(profile)
    for addr in profile:
        profile[addr] = 0.91 if addr == hot else 0.03
    report = annotate_profile(program, profile, target="straight")
    text = report.render()
    assert "straight" in text and "1 divergent" in text
    flagged_rows = [row for row in text.splitlines() if "!!" in row]
    assert len(flagged_rows) == 1
    assert f"{hot:#x}" in flagged_rows[0]
    # top=1 keeps only the hottest row below the two header lines
    assert len(report.render(top=1).splitlines()) == 3


# -- the Section 6 golden case ----------------------------------------------

def _flush_addrs(program):
    return {inst.addr for inst in program.instructions
            if inst.op in (Op.FRFLAGS, Op.FSFLAGS)}


def _annotate_workload(workload):
    result = run_experiment(workload.program,
                            default_profilers(13, policies=["TIP"]),
                            premapped_data=list(workload.premapped),
                            sim="fast")
    profile = result.profile("TIP", Granularity.INSTRUCTION)
    return annotate_profile(workload.program, profile,
                            target=workload.name,
                            regions=tuple(workload.premapped))


def test_imagick_flush_hotspot_divergent_only_in_orig():
    orig = build_imagick(optimized=False, pixels=200, morph_iters=100)
    opt = build_imagick(optimized=True, pixels=200, morph_iters=100)
    flush = _flush_addrs(orig.program)
    assert flush, "imagick-orig lost its frflags/fsflags pair"

    orig_divergent = {l.addr for l in _annotate_workload(orig).divergent}
    opt_divergent = {l.addr for l in _annotate_workload(opt).divergent}

    # The paper's hotspot: every flush-train instruction overshoots its
    # static expectation in the original...
    assert flush <= orig_divergent
    # ...and none of those addresses is flagged after the fix.
    assert not (opt_divergent & flush)


# -- CLI ---------------------------------------------------------------------

def test_cli_annotate_file_smoke(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text(STRAIGHT)
    assert main(["annotate", str(source), "--period", "7"]) == 0
    out = capsys.readouterr().out
    assert "static vs TIP attribution" in out


def test_cli_annotate_json_output(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text(STRAIGHT)
    report_path = tmp_path / "annotate.json"
    assert main(["annotate", str(source), "--period", "7",
                 "-o", str(report_path)]) == 0
    payload = json.loads(report_path.read_text())
    assert payload["policy"] == "TIP"
    assert payload["lines"]


def test_cli_annotate_unknown_target_exits_2(capsys):
    assert main(["annotate", "no-such-benchmark"]) == 2
    assert "unknown target" in capsys.readouterr().err
