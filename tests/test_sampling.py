"""Sampling schedule tests."""

import pytest

from repro.core.sampling import (CORE_CLOCK_HZ, SampleSchedule,
                                 period_for_frequency)


def _fire_cycles(schedule, horizon):
    return [c for c in range(horizon) if schedule.is_sample(c)]


def test_periodic_schedule_fires_every_period():
    schedule = SampleSchedule(period=5)
    assert _fire_cycles(schedule, 20) == [4, 9, 14, 19]


def test_periodic_with_offset():
    schedule = SampleSchedule(period=5, offset=0)
    assert _fire_cycles(schedule, 20) == [0, 5, 10, 15]


def test_period_one_samples_every_cycle():
    schedule = SampleSchedule(period=1)
    assert _fire_cycles(schedule, 5) == [0, 1, 2, 3, 4]


def test_random_schedule_one_sample_per_interval():
    schedule = SampleSchedule(period=10, mode="random", seed=3)
    fires = _fire_cycles(schedule, 100)
    assert len(fires) == 10
    for i, cycle in enumerate(fires):
        assert i * 10 <= cycle < (i + 1) * 10


def test_random_schedule_is_deterministic_per_seed():
    a = _fire_cycles(SampleSchedule(10, "random", seed=7), 200)
    b = _fire_cycles(SampleSchedule(10, "random", seed=7), 200)
    c = _fire_cycles(SampleSchedule(10, "random", seed=8), 200)
    assert a == b
    assert a != c


def test_clone_reproduces_cycles():
    schedule = SampleSchedule(13, "random", seed=5)
    clone = schedule.clone()
    assert _fire_cycles(schedule, 300) == _fire_cycles(clone, 300)


def test_clone_after_consumption_restarts():
    schedule = SampleSchedule(4)
    _fire_cycles(schedule, 10)
    clone = schedule.clone()
    assert _fire_cycles(clone, 10) == [3, 7]


def test_invalid_parameters():
    with pytest.raises(ValueError):
        SampleSchedule(0)
    with pytest.raises(ValueError):
        SampleSchedule(10, mode="bogus")


def test_period_for_frequency():
    assert period_for_frequency(4000) == CORE_CLOCK_HZ // 4000
    assert period_for_frequency(CORE_CLOCK_HZ) == 1
    assert period_for_frequency(CORE_CLOCK_HZ * 10) == 1  # clamped


def test_is_sample_ignores_skipped_cycles():
    schedule = SampleSchedule(period=5)
    # Jump straight past several sample points; the schedule must advance.
    assert not schedule.is_sample(20)
    assert schedule.is_sample(24)


# -- fast_forward: deterministic mid-stream resumption ---------------------------

from hypothesis import given, settings, strategies as st


@given(period=st.integers(1, 50),
       mode=st.sampled_from(["periodic", "random"]),
       seed=st.integers(0, 1000),
       start=st.integers(0, 400),
       horizon=st.integers(1, 200))
@settings(max_examples=60, deadline=None)
def test_fast_forward_equals_serial_consumption(period, mode, seed,
                                                start, horizon):
    """fast_forward(start) leaves a schedule in exactly the state a
    cycle-by-cycle is_sample() walk over [0, start) produces -- the
    property sharded replay relies on for bit-identical sampling."""
    walked = SampleSchedule(period, mode, seed)
    prev = -1
    for cycle in range(start):
        if walked.is_sample(cycle):
            prev = cycle
    jumped = SampleSchedule(period, mode, seed)
    assert jumped.fast_forward(start) == prev
    assert jumped.next_sample == walked.next_sample
    # Identical future: same sample cycles (and same RNG stream).
    future_walked = [c for c in range(start, start + horizon)
                     if walked.is_sample(c)]
    future_jumped = [c for c in range(start, start + horizon)
                     if jumped.is_sample(c)]
    assert future_walked == future_jumped


def test_fast_forward_zero_is_identity():
    schedule = SampleSchedule(13, "random", seed=3)
    reference = SampleSchedule(13, "random", seed=3)
    assert schedule.fast_forward(0) == -1
    assert schedule.next_sample == reference.next_sample
