"""Profile building and report rendering tests."""

import pytest

from repro.analysis.cyclestacks import CycleStack
from repro.analysis.profiles import (build_profile, normalize,
                                     oracle_profile, top_symbols)
from repro.analysis.report import (format_diag, render_cycle_stack,
                                   render_error_table,
                                   render_profile_table,
                                   render_stacks_table)
from repro.analysis.symbols import Granularity, Symbolizer
from repro.core.oracle import OracleProfiler
from repro.core.samples import Category, Sample
from repro.cpu.trace import replay
from tests.test_oracle import I1, I3, LOAD, PROGRAM
from conftest import make_record


def test_build_profile_weights_by_interval():
    samples = [Sample(10, 10, [(I1, 1.0)]),
               Sample(20, 10, [(I1, 0.5), (I3, 0.5)])]
    sym = Symbolizer(PROGRAM)
    profile = build_profile(samples, sym, Granularity.INSTRUCTION)
    assert profile[I1] == pytest.approx(15.0)
    assert profile[I3] == pytest.approx(5.0)


def test_build_profile_function_granularity():
    samples = [Sample(10, 4, [(I1, 1.0)])]
    sym = Symbolizer(PROGRAM)
    profile = build_profile(samples, sym, Granularity.FUNCTION)
    assert profile == {"f": 4.0}


def test_normalize():
    assert normalize({"a": 3.0, "b": 1.0}) == {"a": 0.75, "b": 0.25}
    assert normalize({}) == {}
    assert normalize({"a": 0.0}) == {}


def test_top_symbols():
    profile = {"a": 1.0, "b": 5.0, "c": 3.0}
    assert top_symbols(profile, 2) == [("b", 5.0), ("c", 3.0)]


def test_oracle_profile_aggregates():
    oracle = OracleProfiler(PROGRAM)
    replay([make_record(0, committed=[(I1, False, False)]),
            make_record(1, rob_head=LOAD)], oracle)
    sym = Symbolizer(PROGRAM)
    profile = oracle_profile(oracle.report, sym, Granularity.FUNCTION)
    assert profile["f"] == pytest.approx(2.0)


def test_render_profile_table_contains_symbols():
    sym_profiles = {"TIP": {"f": 0.6, "g": 0.4}, "NCI": {"f": 0.9}}
    text = render_profile_table(sym_profiles, title="function profile")
    assert "function profile" in text
    assert "TIP" in text and "NCI" in text
    assert "60.00%" in text
    assert "f" in text


def test_render_profile_table_with_program_addresses():
    profiles = {"Oracle": {I1: 0.7, LOAD: 0.3}}
    text = render_profile_table(profiles, program=PROGRAM)
    assert "add" in text  # mnemonic shown next to the address
    assert hex(I1) in text


def test_render_error_table_includes_average():
    errors = {"bench1": {"TIP": 0.01, "NCI": 0.10},
              "bench2": {"TIP": 0.03, "NCI": 0.20}}
    text = render_error_table(errors)
    assert "average" in text
    assert "2.00%" in text   # TIP average
    assert "15.00%" in text  # NCI average


def test_render_cycle_stack():
    stack = CycleStack({Category.EXECUTION: 60.0,
                        Category.LOAD_STALL: 40.0})
    text = render_cycle_stack(stack, "lbm")
    assert "lbm" in text
    assert "Execution" in text
    assert "60.00%" in text
    assert "class:" in text


def test_render_stacks_table():
    stacks = {"a": CycleStack({Category.EXECUTION: 1.0}),
              "b": CycleStack({Category.MISPREDICT: 1.0})}
    text = render_stacks_table(stacks)
    assert "a" in text and "b" in text
    assert "Compute" in text and "Flush" in text


def test_render_empty_tables():
    assert "(empty)" in render_profile_table({})
    assert "(empty)" in render_error_table({})
    assert "(empty)" in render_stacks_table({})


def test_format_diag_minimal():
    assert format_diag("warning", "L001", "boom") == "warning[L001]: boom"


def test_format_diag_full_location():
    text = format_diag("error", "S003", "out of order",
                       addr=0x10004, function="main", cycle=12)
    assert text == "error[S003] cycle 12 @0x10004 (main): out of order"


def test_format_diag_hint_indented():
    text = format_diag("warning", "L001", "flush", addr=0x10050,
                       hint="replace with `nop`")
    first, second = text.split("\n")
    assert first == "warning[L001] @0x10050: flush"
    assert second == "    hint: replace with `nop`"


def test_format_diag_is_shared_renderer():
    """Lint diagnostics and sanitizer reports go through format_diag."""
    from repro.lint import Diagnostic, Severity
    diag = Diagnostic("L005", Severity.WARNING, "dead write",
                      addr=0x10008, function="f", fix_hint="drop it")
    assert diag.render() == format_diag("warning", "L005", "dead write",
                                        addr=0x10008, function="f",
                                        hint="drop it")
