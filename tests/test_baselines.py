"""Baseline profiler tests: the Figure 4 comparisons.

Each scenario mirrors the paper's 2-wide examples and checks where NCI
and LCI (and Dispatch/Software) put their samples -- including the
systematic misattributions the paper identifies.
"""

import pytest

from repro.core.baselines import (DispatchProfiler, LciProfiler,
                                  NciIlpProfiler, NciProfiler,
                                  SoftwareProfiler)
from repro.core.sampling import SampleSchedule
from repro.cpu.trace import replay
from tests.test_oracle import BR, I1, I3, I5, LOAD, PROGRAM
from conftest import make_record


def _run(cls, records):
    profiler = cls(SampleSchedule(period=1))
    replay(records, profiler)
    return {s.cycle: s for s in profiler.samples}


# -- Figure 4b: Stalled ------------------------------------------------------------

STALL_TRACE = (
    [make_record(0, committed=[(I1, False, False)], rob_head=LOAD)]
    + [make_record(c, rob_head=LOAD) for c in range(1, 41)]
    + [make_record(41, committed=[(LOAD, False, False), (I3, False, False)])]
)


def test_nci_on_stall_mostly_matches_oracle():
    samples = _run(NciProfiler, STALL_TRACE)
    assert samples[0].weights == [(I1, 1.0)]
    for cycle in range(1, 41):
        assert samples[cycle].weights == [(LOAD, 1.0)]
    # NCI misses I3 at cycle 41 (no ILP support).
    assert samples[41].weights == [(LOAD, 1.0)]


def test_lci_misattributes_stall_to_previous_commit():
    """LCI attributes the 40-cycle load stall to I1 (Figure 4b)."""
    samples = _run(LciProfiler, STALL_TRACE)
    for cycle in range(1, 41):
        assert samples[cycle].weights == [(I1, 1.0)]


def test_nci_ilp_spreads_over_commit_group():
    samples = _run(NciIlpProfiler, STALL_TRACE)
    assert sorted(samples[41].weights) == [(LOAD, 0.5), (I3, 0.5)]
    # Pending samples during the stall resolve onto the whole group: the
    # Section 5.2 failure mode (stall shared with an innocent instruction).
    assert sorted(samples[5].weights) == [(LOAD, 0.5), (I3, 0.5)]


# -- Figure 4c: Flushed -------------------------------------------------------------

FLUSH_TRACE = (
    [make_record(0, committed=[(I1, False, False), (BR, True, False)])]
    + [make_record(c) for c in range(1, 5)]
    + [make_record(5, rob_head=I5, dispatched=[I5], dispatch_pc=I5)]
    + [make_record(6, committed=[(I5, False, False)])]
)


def test_nci_blames_instruction_after_flush():
    """NCI attributes empty-ROB mispredict cycles to the next-committing
    instruction I5 -- the systematic error TIP fixes."""
    samples = _run(NciProfiler, FLUSH_TRACE)
    for cycle in range(1, 6):
        assert samples[cycle].weights == [(I5, 1.0)]


def test_lci_correctly_blames_branch_on_flush():
    """LCI gets the flush right: the branch was the last commit."""
    samples = _run(LciProfiler, FLUSH_TRACE)
    for cycle in range(1, 5):
        assert samples[cycle].weights == [(BR, 1.0)]


def test_nci_never_attributes_to_branch():
    samples = _run(NciProfiler, FLUSH_TRACE)
    sampled = {addr for s in samples.values() for addr, _ in s.weights}
    assert BR not in sampled  # committed in parallel with I1: invisible


# -- Dispatch and Software -----------------------------------------------------------

def test_dispatch_samples_dispatch_stage():
    records = [make_record(0, rob_head=LOAD, dispatch_pc=I5),
               make_record(1, rob_head=LOAD, dispatch_pc=I5)]
    samples = _run(DispatchProfiler, records)
    assert samples[0].weights == [(I5, 1.0)]
    assert samples[1].weights == [(I5, 1.0)]


def test_dispatch_waits_when_nothing_at_dispatch():
    records = [make_record(0, rob_head=LOAD, dispatch_pc=None),
               make_record(1, rob_head=LOAD, dispatch_pc=I3)]
    samples = _run(DispatchProfiler, records)
    assert samples[0].weights == [(I3, 1.0)]


def test_software_samples_fetch_pc():
    records = [make_record(0, rob_head=LOAD, fetch_pc=I5)]
    samples = _run(SoftwareProfiler, records)
    assert samples[0].weights == [(I5, 1.0)]


def test_lci_before_first_commit_resolves_forward():
    records = [make_record(0), make_record(1, committed=[(I1, False, False)])]
    samples = _run(LciProfiler, records)
    assert samples[0].weights == [(I1, 1.0)]


def test_nci_sample_on_commit_cycle_takes_oldest():
    records = [make_record(0, committed=[(I1, False, False),
                                         (I3, False, False)])]
    samples = _run(NciProfiler, records)
    assert samples[0].weights == [(I1, 1.0)]


def test_lci_sample_on_commit_cycle_takes_youngest():
    records = [make_record(0, committed=[(I1, False, False),
                                         (I3, False, False)])]
    samples = _run(LciProfiler, records)
    assert samples[0].weights == [(I3, 1.0)]


def test_unresolved_nci_sample_stays_empty():
    records = [make_record(0, rob_head=LOAD)]
    samples = _run(NciProfiler, records)
    assert samples[0].weights == []


def test_software_skid_delays_capture():
    """With interrupt-delivery skid, the PC is captured later."""
    records = [make_record(0, rob_head=LOAD, fetch_pc=I3),
               make_record(1, rob_head=LOAD, fetch_pc=I5),
               make_record(2, rob_head=LOAD, fetch_pc=BR)]
    # A schedule that fires only at cycle 0 keeps the example clear.
    profiler = SoftwareProfiler(SampleSchedule(period=100, offset=0),
                                skid_cycles=2)
    replay(records, profiler)
    assert profiler.samples[0].weights == [(BR, 1.0)]


def test_software_skid_validation():
    import pytest as _pytest
    with _pytest.raises(ValueError):
        SoftwareProfiler(SampleSchedule(5), skid_cycles=-1)


def test_software_skid_increases_error_end_to_end():
    """More skid cannot make Software profiling more faithful."""
    from repro.analysis import Granularity, Symbolizer, profile_error
    from repro.core.oracle import OracleProfiler
    from repro.cpu.machine import Machine
    from repro.workloads import build_workload, k_stream_load

    workload = build_workload(
        "t", [k_stream_load("k", 900, 0x20_0000, 1024 * 1024, stride=16)])
    machine = Machine(workload.program,
                      premapped_data=workload.premapped)
    oracle = OracleProfiler(machine.image,
                            watch_schedules=[SampleSchedule(13)])
    no_skid = SoftwareProfiler(SampleSchedule(13), skid_cycles=0)
    with_skid = SoftwareProfiler(SampleSchedule(13), skid_cycles=40)
    machine.attach(oracle)
    machine.attach(no_skid)
    machine.attach(with_skid)
    machine.run()
    oracle.report.total_cycles = machine.stats.cycles
    sym = Symbolizer(machine.image)
    err_no = profile_error(no_skid, oracle.report, sym,
                           Granularity.INSTRUCTION)
    err_skid = profile_error(with_skid, oracle.report, sym,
                             Granularity.INSTRUCTION)
    assert err_no > 0.2          # software sampling is already bad
    assert err_skid > err_no - 0.1  # skid does not fix it
