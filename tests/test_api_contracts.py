"""API contracts and validation behaviour across the package."""

import pytest

from repro.cpu.config import CoreConfig
from repro.mem.hierarchy import MemoryConfig
from repro.workloads.generator import (build_workload, k_stream_load,
                                       k_stream_store)


def test_core_config_validates_widths():
    with pytest.raises(ValueError, match="commit width"):
        CoreConfig(decode_width=4, commit_width=2)


def test_core_config_validates_rob_multiple():
    with pytest.raises(ValueError, match="multiple"):
        CoreConfig(rob_entries=130)


def test_stream_kernels_require_power_of_two():
    with pytest.raises(ValueError, match="power of two"):
        k_stream_load("k", 10, 0x1000, 3000)
    with pytest.raises(ValueError, match="power of two"):
        k_stream_store("k", 10, 0x1000, 3000)


def test_build_workload_requires_kernels():
    with pytest.raises(ValueError, match="at least one kernel"):
        build_workload("empty", [])


def test_public_api_imports():
    import repro
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_subpackage_all_exports():
    import repro.analysis
    import repro.core
    import repro.cpu
    import repro.isa
    import repro.mem
    import repro.workloads
    for module in (repro.analysis, repro.core, repro.cpu, repro.isa,
                   repro.mem, repro.workloads):
        for name in module.__all__:
            assert hasattr(module, name), (module.__name__, name)


def test_profiler_policy_registry_complete():
    from repro.harness.experiment import ALL_POLICIES, POLICIES
    assert set(ALL_POLICIES) <= set(POLICIES)
    assert "NCI+ILP" in POLICIES


def test_version_string():
    import repro
    assert repro.__version__.count(".") == 2


def test_reprs_do_not_crash():
    from repro.core.samples import Sample
    from repro.core.sampling import SampleSchedule
    from repro.cpu.core import CoreStats
    from repro.workloads import build
    assert "sample" in repr(Sample(5, 5, [(0x1000, 1.0)]))
    assert "periodic" in repr(SampleSchedule(10))
    assert "stats" in repr(CoreStats())
    assert "workload" in repr(build("lbm", scale=0.02))


def test_memory_config_is_per_core_config():
    a = CoreConfig.boom_4wide()
    b = CoreConfig.boom_4wide()
    a.memory.l1d_mshrs = 1
    assert b.memory.l1d_mshrs == 8  # no shared mutable default
