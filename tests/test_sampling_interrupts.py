"""Interrupt-driven sample collection tests (Section 3.2 overhead)."""

import pytest

from repro.cpu.machine import Machine
from repro.kernel.perf_handler import (PERF_BUFFER_BASE, METADATA_WORDS,
                                       build_perf_handler)
from repro.workloads import build_workload, k_int_ilp


def test_perf_handler_program_shape():
    handler = build_perf_handler(payload_words=6)
    ops = [inst.op.value for inst in handler.instructions]
    assert ops[-1] == "sret"
    assert ops.count("sd") >= METADATA_WORDS + 6


def test_perf_handler_validates_payload():
    with pytest.raises(ValueError):
        build_perf_handler(0)


@pytest.fixture(scope="module")
def runs():
    workload = build_workload("w", [k_int_ilp("k", 3000, width=6)],
                              rounds=2)

    def run(perf_sampling):
        machine = Machine(workload.program,
                          premapped_data=workload.premapped,
                          perf_sampling=perf_sampling)
        machine.run()
        return machine

    return (run(None), run((1009, 2)), run((1009, 6)))


def test_interrupts_are_taken(runs):
    base, small, large = runs
    assert base.stats.sampling_interrupts == 0
    assert small.stats.sampling_interrupts > 5
    assert large.stats.sampling_interrupts > 5


def test_results_unaffected_by_sampling(runs):
    """Profiling must not change architectural results."""
    base, small, large = runs
    for machine in (small, large):
        for reg in range(7, 14):
            assert machine.core.regs[reg] == base.core.regs[reg], reg


def test_sample_buffer_written(runs):
    _, small, _ = runs
    written = [addr for addr in small.core.memory
               if PERF_BUFFER_BASE <= addr < PERF_BUFFER_BASE + 0x10000]
    # metadata + payload words per interrupt.
    expected = small.stats.sampling_interrupts * (METADATA_WORDS + 2)
    assert len(written) >= min(expected, 0x10000 // 8) * 0.9


def test_sampling_adds_bounded_overhead(runs):
    """The paper: 1.0-1.1% runtime overhead at its sampling rate; at our
    (much denser) test rate the overhead is larger but bounded, and the
    88 B configuration costs no less than the 56 B one."""
    base, small, large = runs
    small_overhead = small.stats.cycles / base.stats.cycles - 1.0
    large_overhead = large.stats.cycles / base.stats.cycles - 1.0
    assert 0.0 < small_overhead < 0.5
    assert 0.0 < large_overhead < 0.5
    assert large_overhead >= small_overhead - 0.02


def test_nested_trap_deferred():
    """A sampling interrupt during a page-fault handler is delayed, not
    nested: the fault still completes correctly."""
    from conftest import run_asm
    from repro.isa import assemble
    workload_src = """
    .func main
        addi x2, x0, 40
    loop:
        lw   x1, 0x100000(x0)
        addi x2, x2, -1
        bne  x2, x0, loop
        sw   x1, 0x3000(x0)
        halt
    """
    program = assemble(workload_src)
    machine = Machine(program, premapped_data=[(0x3000, 0x3008)],
                      perf_sampling=(50, 6))
    machine.run()
    assert machine.stats.exceptions == 1
    assert machine.stats.sampling_interrupts > 0
    assert machine.core.memory.get(0x3000) == 0
