"""Steady-state loop memoizer tests (``sim="fast"`` compute path).

The contract under test: when the fast path detects a fully periodic
pipeline steady state and skips whole loop iterations, every externally
observable artifact stays bit-identical to single-stepping -- trace
bytes in all three writer formats, block-assembled replay, sanitizer
verdicts and the core statistics (modulo the driver-side
``CoreStats.DRIVER_FIELDS``, which record *how* the run was driven) --
including when sampling interrupts land mid-period, and with
``--paranoid`` cross-checking clean.
"""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import (Machine, TraceWriter, TraceWriterV2, TraceWriterV3,
                       shifted_record)
from repro.cpu.core import CoreStats
from repro.cpu.trace import TraceCollector
from repro.fastpath.engine import BlockAssembler
from repro.isa.assembler import assemble
from repro.lint.sanitizer import TraceSanitizer
from repro.workloads import build_workload, k_dep_chain, k_int_ilp

from conftest import make_record

#: A predictable countdown loop: the only branch is the loop-closing
#: ``bne`` (TTTT...F), so the predictor reaches a fixed point and the
#: pipeline settles into an exactly periodic steady state -- the
#: memoizer's best case, mirroring exchange2's integer kernels.
ILP_LOOP = """
.func main
    addi x1, x0, 0
    addi x2, x0, 0
    addi x4, x0, 0
    addi x6, x0, 4000
loop:
    addi x1, x1, 1
    add  x2, x2, x1
    andi x3, x1, 255
    add  x4, x4, x3
    addi x6, x6, -1
    bne  x6, x0, loop
    halt
"""


def _run(program, sim, writer_cls=TraceWriterV3, paranoid=False,
         perf_sampling=None, premapped=None):
    machine = Machine(program, premapped_data=premapped,
                      perf_sampling=perf_sampling)
    buffer = io.BytesIO()
    machine.attach(writer_cls(buffer, machine.config.rob_banks))
    stats = machine.run(2_000_000, sim=sim, paranoid=paranoid)
    return buffer.getvalue(), stats, machine


def _content_stats(stats):
    """Stats dict minus the fields that describe the driving strategy."""
    return {k: v for k, v in stats.to_dict().items()
            if k not in CoreStats.DRIVER_FIELDS}


# -- memoized fast-forward vs single-stepping --------------------------------------


def test_memoizer_fires_and_traces_bit_identical():
    program = assemble(ILP_LOOP, name="ilp-loop")
    step_stats = fast_stats = None
    step_m = fast_m = None
    for writer_cls in (TraceWriter, TraceWriterV2, TraceWriterV3):
        step_trace, step_stats, step_m = _run(program, "step",
                                              writer_cls)
        fast_trace, fast_stats, fast_m = _run(program, "fast",
                                              writer_cls)
        assert fast_trace == step_trace, writer_cls
        assert _content_stats(fast_stats) == _content_stats(step_stats)
    # The loop is compute-bound: the skipped cycles must come from the
    # memoizer, and the skip must not disturb architectural state.
    assert fast_stats.steady_state_iterations > 0
    assert fast_stats.steady_state_cycles > 0
    assert fast_stats.steady_state_cycles > fast_stats.cycles // 2
    assert fast_m.core.regs == step_m.core.regs
    assert fast_m.core.memory == step_m.core.memory


def test_paranoid_cross_check_clean():
    """Paranoid mode steps every memoized cycle for real and compares;
    a clean run certifies the projection on this program."""
    program = assemble(ILP_LOOP, name="ilp-loop")
    step_trace, _, _ = _run(program, "step")
    fast_trace, stats, _ = _run(program, "fast", paranoid=True)
    assert fast_trace == step_trace
    assert stats.steady_state_cycles > 0


def test_sampling_interrupt_lands_mid_period():
    """A perf sampling interrupt cuts memoized regions short (the skip
    never crosses ``schedule.next_sample``); traces must still match."""
    program = assemble(ILP_LOOP, name="ilp-loop")
    sampling = (1009, 2)  # prime period: samples drift across the loop
    step_trace, step_stats, _ = _run(program, "step",
                                     perf_sampling=sampling)
    fast_trace, fast_stats, _ = _run(program, "fast",
                                     perf_sampling=sampling)
    assert fast_trace == step_trace
    assert _content_stats(fast_stats) == _content_stats(step_stats)
    assert fast_stats.sampling_interrupts > 0
    assert fast_stats.steady_state_cycles > 0


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 2), st.integers(120, 700), st.integers(2, 6),
       st.one_of(st.none(), st.integers(400, 1300)))
def test_random_loop_programs_v3_byte_identical(kind, iters, width,
                                                sample_period):
    """Loop-heavy generated workloads produce byte-identical v3 traces
    and content-identical stats fast-vs-step, with and without
    sampling interrupts."""
    if kind == 0:
        kernels = [k_int_ilp("ilp", iters, width=width)]
    elif kind == 1:
        kernels = [k_dep_chain("dep", iters, muls=1 + width % 4)]
    else:
        kernels = [k_int_ilp("ilp", iters, width=width),
                   k_dep_chain("dep", iters // 2, muls=2)]
    workload = build_workload("memo-fuzz", kernels)
    sampling = None if sample_period is None else (sample_period, 2)
    step_trace, step_stats, _ = _run(workload.program, "step",
                                     premapped=workload.premapped,
                                     perf_sampling=sampling)
    fast_trace, fast_stats, _ = _run(workload.program, "fast",
                                     premapped=workload.premapped,
                                     perf_sampling=sampling)
    assert fast_trace == step_trace
    assert _content_stats(fast_stats) == _content_stats(step_stats)


def test_sanitizer_accepts_memoized_run():
    """The sanitizer's batched ``on_cycle_run`` leg checks the same
    number of cycles and commits as a single-stepped run."""
    program = assemble(ILP_LOOP, name="ilp-loop")

    def sanitized(sim):
        machine = Machine(program)
        sanitizer = TraceSanitizer()
        machine.attach(sanitizer)
        stats = machine.run(2_000_000, sim=sim)
        return sanitizer, stats

    stepped, step_stats = sanitized("step")
    batched, fast_stats = sanitized("fast")
    assert fast_stats.steady_state_cycles > 0
    assert not stepped.violations and not batched.violations
    assert batched.cycles_checked == stepped.cycles_checked
    assert batched.commits_checked == stepped.commits_checked


# -- the on_cycle_run observer leg in isolation ------------------------------------


def _period_records(n=3, base_cycle=1, commits=True):
    return [make_record(
        base_cycle + i,
        committed=[(0x40 + 4 * i, False, False)] if commits else (),
        rob_head=0x40 + 4 * ((i + 1) % n),
        fetch_pc=0x80 + 4 * i) for i in range(n)]


@pytest.mark.parametrize("commits", (True, False))
@pytest.mark.parametrize("writer_cls,kwargs", [
    (TraceWriter, {}),
    (TraceWriterV2, {"chunk_cycles": 4}),
    (TraceWriterV3, {"chunk_cycles": 4}),
])
def test_on_cycle_run_matches_repeated_on_cycle(writer_cls, kwargs,
                                                commits):
    """One batched period call == n*repeats single-cycle calls, with
    chunk boundaries landing mid-period (chunk_cycles=4, period=3)."""
    records = _period_records(commits=commits)
    n, repeats = len(records), 5

    stepped = io.BytesIO()
    writer = writer_cls(stepped, 2, **kwargs)
    writer.on_cycle(make_record(0))
    for t in range(n * repeats):
        writer.on_cycle(shifted_record(records[t % n], n * (t // n)))
    writer.on_finish(n * repeats)

    batched = io.BytesIO()
    writer = writer_cls(batched, 2, **kwargs)
    writer.on_cycle(make_record(0))
    writer.on_cycle_run(records, repeats)
    writer.on_finish(n * repeats)
    assert stepped.getvalue() == batched.getvalue()


def _record_key(record):
    return (record.cycle,
            tuple((c.addr, c.bank, c.mispredicted, c.flushes)
                  for c in record.committed),
            record.rob_head, record.rob_empty, record.exception,
            record.exception_is_ordering, tuple(record.dispatched),
            record.dispatch_pc, record.fetch_pc,
            tuple(h and (h.addr, h.committing)
                  for h in record.head_banks),
            record.oldest_bank)


def test_block_assembler_on_cycle_run_matches_per_cycle():
    """Template splicing at block boundaries reconstructs the same
    cycles as buffering one record at a time."""
    records = _period_records()
    n, repeats = len(records), 7

    def collect(batched):
        collector = TraceCollector()
        assembler = BlockAssembler([collector], banks=2, block_cycles=4)
        assembler.on_cycle(make_record(0))
        if batched:
            assembler.on_cycle_run(records, repeats)
        else:
            for t in range(n * repeats):
                assembler.on_cycle(
                    shifted_record(records[t % n], n * (t // n)))
        assembler.on_finish(n * repeats)
        return collector

    stepped, spliced = collect(False), collect(True)
    assert len(spliced) == len(stepped) == n * repeats + 1
    for a, b in zip(stepped, spliced):
        assert _record_key(a) == _record_key(b)
