"""Cycle-stack construction and classification tests."""

import pytest

from repro.analysis.cyclestacks import (CLASS_COMPUTE, CLASS_FLUSH,
                                        CLASS_STALL, CycleStack,
                                        cycle_stack, per_symbol_stacks)
from repro.analysis.symbols import Granularity, Symbolizer
from repro.core.oracle import OracleProfiler
from repro.core.samples import Category
from repro.cpu.trace import replay
from tests.test_oracle import BR, I1, I3, I5, LOAD, PROGRAM
from conftest import make_record


def _stack(**totals):
    return CycleStack({Category[k.upper()]: v for k, v in totals.items()})


def test_fractions_and_total():
    stack = _stack(execution=50.0, load_stall=50.0)
    assert stack.total == 100.0
    assert stack.fraction(Category.EXECUTION) == 0.5
    assert stack.fraction(Category.MISPREDICT) == 0.0


def test_normalized_sums_to_one():
    stack = _stack(execution=30.0, alu_stall=20.0, mispredict=50.0)
    assert sum(stack.normalized().values()) == pytest.approx(1.0)


def test_classification_rules():
    """Section 4: >50% committing = Compute; else >3% flushing = Flush;
    else Stall."""
    assert _stack(execution=60.0, load_stall=40.0).classify() == \
        CLASS_COMPUTE
    assert _stack(execution=40.0, load_stall=55.0,
                  mispredict=5.0).classify() == CLASS_FLUSH
    assert _stack(execution=40.0, load_stall=58.0,
                  mispredict=2.0).classify() == CLASS_STALL


def test_misc_flush_counts_toward_flush_class():
    stack = _stack(execution=40.0, alu_stall=50.0, misc_flush=10.0)
    assert stack.flush_fraction == pytest.approx(0.1)
    assert stack.classify() == CLASS_FLUSH


def test_empty_stack():
    stack = CycleStack()
    assert stack.total == 0.0
    assert stack.fraction(Category.EXECUTION) == 0.0
    assert stack.classify() == CLASS_STALL


def test_cycle_stack_from_oracle():
    oracle = OracleProfiler(PROGRAM)
    records = [make_record(0, committed=[(I1, False, False)]),
               make_record(1, rob_head=LOAD),
               make_record(2, rob_head=LOAD),
               make_record(3, committed=[(LOAD, False, False)])]
    replay(records, oracle)
    stack = cycle_stack(oracle.report)
    assert stack.total == pytest.approx(4.0)
    assert stack.totals[Category.LOAD_STALL] == pytest.approx(2.0)
    assert stack.totals[Category.EXECUTION] == pytest.approx(2.0)


def test_per_symbol_stacks_split_by_function():
    oracle = OracleProfiler(PROGRAM)
    records = [make_record(0, committed=[(I1, False, False)]),
               make_record(1, rob_head=LOAD)]
    replay(records, oracle)
    sym = Symbolizer(PROGRAM)
    stacks = per_symbol_stacks(oracle.report, sym, Granularity.FUNCTION)
    assert "f" in stacks
    assert stacks["f"].total == pytest.approx(2.0)


def test_per_symbol_stacks_instruction_granularity():
    oracle = OracleProfiler(PROGRAM)
    records = [make_record(0, committed=[(I1, False, False)]),
               make_record(1, rob_head=LOAD)]
    replay(records, oracle)
    sym = Symbolizer(PROGRAM)
    stacks = per_symbol_stacks(oracle.report, sym, Granularity.INSTRUCTION)
    assert stacks[I1].totals[Category.EXECUTION] == pytest.approx(1.0)
    assert stacks[LOAD].totals[Category.LOAD_STALL] == pytest.approx(1.0)
