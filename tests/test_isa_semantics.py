"""Unit tests for functional instruction semantics."""

import math

import pytest

from repro.isa.instruction import Instruction, Register
from repro.isa.opcodes import Op
from repro.isa.semantics import evaluate


def _inst(op, rd=None, sources=(), imm=0, addr=0x1000):
    return Instruction(op, rd, tuple(sources), imm, addr)


def test_integer_alu():
    assert evaluate(_inst(Op.ADD, 1, (2, 3)), (4, 5)).value == 9
    assert evaluate(_inst(Op.SUB, 1, (2, 3)), (4, 5)).value == -1
    assert evaluate(_inst(Op.AND, 1, (2, 3)), (0b1100, 0b1010)).value == 0b1000
    assert evaluate(_inst(Op.XOR, 1, (2, 3)), (0b1100, 0b1010)).value == 0b0110
    assert evaluate(_inst(Op.SLL, 1, (2, 3)), (1, 4)).value == 16
    assert evaluate(_inst(Op.SRL, 1, (2, 3)), (16, 2)).value == 4
    assert evaluate(_inst(Op.SLT, 1, (2, 3)), (1, 2)).value == 1
    assert evaluate(_inst(Op.MUL, 1, (2, 3)), (7, 6)).value == 42


def test_immediates():
    assert evaluate(_inst(Op.ADDI, 1, (2,), imm=-3), (10,)).value == 7
    assert evaluate(_inst(Op.ANDI, 1, (2,), imm=0xF), (0x1234,)).value == 4
    assert evaluate(_inst(Op.SLLI, 1, (2,), imm=3), (2,)).value == 16
    assert evaluate(_inst(Op.LUI, 1, imm=5), ()).value == 5 << 12


def test_division_semantics():
    assert evaluate(_inst(Op.DIV, 1, (2, 3)), (7, 2)).value == 3
    assert evaluate(_inst(Op.DIV, 1, (2, 3)), (-7, 2)).value == -3  # trunc
    assert evaluate(_inst(Op.REM, 1, (2, 3)), (7, 2)).value == 1
    assert evaluate(_inst(Op.DIV, 1, (2, 3)), (7, 0)).value == -1
    assert evaluate(_inst(Op.REM, 1, (2, 3)), (7, 0)).value == 7


def test_fp_ops():
    assert evaluate(_inst(Op.FADD, 33, (34, 35)), (1.5, 2.5)).value == 4.0
    assert evaluate(_inst(Op.FMUL, 33, (34, 35)), (3.0, 2.0)).value == 6.0
    assert evaluate(_inst(Op.FMADD, 33, (34, 35, 36)),
                    (2.0, 3.0, 1.0)).value == 7.0
    assert evaluate(_inst(Op.FDIV, 33, (34, 35)), (1.0, 4.0)).value == 0.25
    assert evaluate(_inst(Op.FDIV, 33, (34, 35)), (1.0, 0.0)).value == math.inf
    assert evaluate(_inst(Op.FSQRT, 33, (34,)), (9.0,)).value == 3.0
    assert evaluate(_inst(Op.FSQRT, 33, (34,)), (-1.0,)).value == 0.0


def test_fp_compares_yield_ints():
    assert evaluate(_inst(Op.FEQ, 1, (34, 35)), (2.0, 2.0)).value == 1
    assert evaluate(_inst(Op.FLT, 1, (34, 35)), (3.0, 2.0)).value == 0
    assert evaluate(_inst(Op.FLE, 1, (34, 35)), (2.0, 2.0)).value == 1


def test_conversions():
    assert evaluate(_inst(Op.FCVT_W_D, 1, (34,)), (3.7,)).value == 3
    assert evaluate(_inst(Op.FCVT_D_W, 33, (2,)), (3,)).value == 3.0


def test_loads_compute_effective_address():
    result = evaluate(_inst(Op.LD, 1, (2,), imm=16), (0x1000,))
    assert result.eff_addr == 0x1010
    assert result.value is None


def test_stores_carry_value():
    result = evaluate(_inst(Op.SD, None, (2, 3), imm=-8), (0x1000, 42))
    assert result.eff_addr == 0xFF8
    assert result.store_value == 42


def test_amoadd_semantics():
    result = evaluate(_inst(Op.AMOADD, 1, (2, 3)), (0x2000, 5))
    assert result.eff_addr == 0x2000
    assert result.store_value == 5  # old value added by the core


def test_branches():
    taken = evaluate(_inst(Op.BEQ, None, (1, 2), imm=0x2000), (5, 5))
    assert taken.taken and taken.target == 0x2000
    not_taken = evaluate(_inst(Op.BEQ, None, (1, 2), imm=0x2000,
                               addr=0x1000), (5, 6))
    assert not not_taken.taken
    assert not_taken.target == 0x1004
    assert evaluate(_inst(Op.BLT, None, (1, 2), imm=0x2000), (1, 2)).taken
    assert evaluate(_inst(Op.BGE, None, (1, 2), imm=0x2000), (2, 2)).taken


def test_jal_links_return_address():
    result = evaluate(_inst(Op.JAL, 1, (), imm=0x3000, addr=0x1000), ())
    assert result.taken and result.target == 0x3000
    assert result.value == 0x1004


def test_jalr_indirect_target():
    result = evaluate(_inst(Op.JALR, 0, (1,), imm=4, addr=0x1000), (0x2001,))
    assert result.target == 0x2004  # low bit cleared
    assert result.value == 0x1004


def test_frflags_reads_csr():
    assert evaluate(_inst(Op.FRFLAGS, 1), (), fflags=0b11).value == 0b11


def test_signed_wraparound():
    huge = (1 << 63) - 1
    result = evaluate(_inst(Op.ADD, 1, (2, 3)), (huge, 1)).value
    assert result == -(1 << 63)
