"""End-to-end tests of the profiling job server (repro.serve).

Real server on a background thread, real worker processes, real HTTP
clients -- these tests exercise the full submit/wait/cancel/stream
lifecycle, content-key dedup, the NDJSON event protocol, /stats
accounting, graceful shutdown, and the CLI verbs.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest
from conftest import COUNT_LOOP

from repro.analysis import Granularity
from repro.cli import main
from repro.harness import run_suite
from repro.serve import JobSpec, execute_job, job_key, profile_report
from repro.serve.client import ClientError, JobCancelled
from repro.serve.testing import Fault, FaultyPool, running_server
from repro.workloads import build_suite


def loop_spec(n: int = 60, period: int = 7, **kwargs) -> JobSpec:
    return JobSpec.for_source(COUNT_LOOP.format(n=n),
                              name=f"loop{n}.s", period=period,
                              **kwargs)


def normalized(report: dict) -> str:
    """Canonical JSON with the cache-hit flag masked out."""
    return json.dumps(dict(report, cached=False), sort_keys=True)


# -- submit / wait round-trip -------------------------------------------------


def test_submit_wait_matches_direct_run():
    spec = loop_spec(policies=("TIP", "NCI"))
    direct = execute_job(spec, cache_dir=None)["report"]
    with running_server(cache=None) as handle:
        client = handle.client()
        job, coalesced = client.submit(spec)
        assert not coalesced
        info = client.wait(job, timeout=120)
        assert info["state"] == "done"
        assert normalized(info["report"]) == normalized(direct)


def test_result_payload_rebuilds_full_result():
    spec = loop_spec(n=40, policies=("TIP",))
    with running_server(cache=None) as handle:
        client = handle.client()
        info = client.submit_and_wait(spec, timeout=120, payload=True)
        payload = client.result_payload(info)
    from repro.parallel.suite import rebuild_result
    from repro.workloads.generator import Workload
    from repro.serve import resolve_program
    program, premapped = resolve_program(spec.program)
    workload = Workload(name="loop40.s", program=program,
                        premapped=premapped)
    result = rebuild_result(workload, list(spec.profilers), payload)
    assert normalized(profile_report(result)) \
        == normalized(info["report"])


# -- dedup --------------------------------------------------------------------


def test_eight_concurrent_duplicates_coalesce_to_one_simulation():
    spec = loop_spec(n=200, policies=("TIP",))
    clients = 8
    outputs = [None] * clients

    with running_server(cache=None, workers=2) as handle:

        def one(i: int) -> None:
            client = handle.client(timeout=120)
            job, coalesced = client.submit(spec)
            info = client.wait(job, timeout=120)
            outputs[i] = (job, coalesced, info["report"])

        threads = [threading.Thread(target=one, args=(i,))
                   for i in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        stats = handle.client().stats()

    assert all(out is not None for out in outputs)
    assert len({job for job, _, _ in outputs}) == 1
    assert len({normalized(report)
                for _, _, report in outputs}) == 1
    # The first submission wins the race; everyone else coalesces.
    assert sum(1 for _, coalesced, _ in outputs if coalesced) \
        == clients - 1
    assert stats["cache"]["simulations"] == 1
    assert stats["dedup"]["submissions"] == clients
    assert stats["dedup"]["coalesced"] == clients - 1


def test_distinct_jobs_share_the_simulation_cache(tmp_path):
    # Same program, different replay-side period: distinct job keys,
    # one shared simulation key -> the second job replays the cached
    # trace instead of re-simulating.
    first = loop_spec(n=80, period=7, policies=("TIP",))
    second = loop_spec(n=80, period=11, policies=("TIP",))
    sim1, key1 = job_key(first)
    sim2, key2 = job_key(second)
    assert sim1 == sim2 and key1 != key2

    with running_server(cache=str(tmp_path)) as handle:
        client = handle.client()
        job1 = client.submit(first)[0]
        client.wait(job1, timeout=120)
        job2 = client.submit(second)[0]
        client.wait(job2, timeout=120)
        stats = handle.client().stats()

    assert job1 != job2
    assert stats["cache"]["simulations"] == 1
    assert stats["cache"]["hits"] == 1
    assert stats["dedup"]["coalesced"] == 0


def test_corrupt_cache_entry_recovers_and_warns_the_client(tmp_path):
    # A second job sharing the first's simulation key replays the
    # cached trace; if that entry was tampered with (checksum intact,
    # bytes undecodable) the worker evicts it, warns, re-simulates --
    # and the warning reaches the client instead of a traceback.
    from test_simfast import _forge_corrupt_entry
    from repro.simfast import SimCache
    first = loop_spec(n=80, period=7, policies=("TIP",))
    second = loop_spec(n=80, period=11, policies=("TIP",))
    with running_server(cache=str(tmp_path)) as handle:
        client = handle.client()
        client.submit_and_wait(first, timeout=120)
        cache = SimCache(str(tmp_path))
        key, = cache.keys()
        _forge_corrupt_entry(cache, key)
        info = client.submit_and_wait(second, timeout=120)
        stats = handle.client().stats()
    assert info["state"] == "done"
    assert any("evicted corrupt simulation-cache entry" in warning
               for warning in info["warnings"])
    direct = execute_job(second, cache_dir=None)["report"]
    assert normalized(info["report"]) == normalized(direct)
    # Both jobs simulated (the corrupt hit was abandoned).
    assert stats["cache"]["simulations"] == 2


# -- events -------------------------------------------------------------------


def test_ndjson_stream_is_ordered_and_replayable():
    spec = loop_spec(n=30, policies=("TIP",))
    with running_server(cache=None) as handle:
        client = handle.client()
        job = client.submit(spec)[0]
        client.wait(job, timeout=120)
        events = list(client.stream(job))
        # Resume mid-history with ?after=.
        tail = list(client.stream(job, after=events[0]["seq"]))

    assert [event["seq"] for event in events] \
        == list(range(len(events)))
    assert events[0]["event"] == "queued"
    assert events[-1]["state"] == "done"
    states = [event["state"] for event in events]
    assert "running" in states
    assert all(event["job"] == job for event in events)
    assert tail == events[1:]


# -- error handling -----------------------------------------------------------


def test_http_error_surface():
    with running_server(cache=None) as handle:
        client = handle.client()
        with pytest.raises(ClientError) as bad_spec:
            client._request("POST", "/jobs", body={"program": "nope"})
        assert bad_spec.value.status == 400
        with pytest.raises(ClientError) as unresolvable:
            client.submit(JobSpec.for_benchmark("nosuchbench"))
        assert unresolvable.value.status == 400
        with pytest.raises(ClientError) as missing:
            client.status("nope-1")
        assert missing.value.status == 404
        with pytest.raises(ClientError) as route:
            client._request("GET", "/frobnicate")
        assert route.value.status == 404
        assert client.healthy()


def test_max_cycles_is_a_job_error_not_a_retry():
    from dataclasses import replace
    spec = replace(loop_spec(n=5000, policies=("TIP",)),
                   max_cycles=100)
    with running_server(cache=None) as handle:
        client = handle.client()
        job = client.submit(spec)[0]
        from repro.serve.client import JobFailed
        with pytest.raises(JobFailed) as failed:
            client.wait(job, timeout=120)
        stats = handle.client().stats()
    assert failed.value.error["kind"] == "max-cycles"
    # Deterministic failure: executed once, never retried.
    assert stats["pool"]["retried"] == 0


# -- cancel -------------------------------------------------------------------


def test_cancel_then_resubmit_gets_a_fresh_run():
    spec = loop_spec(n=40, policies=("TIP",))
    pool = FaultyPool(workers=1,
                      faults=(Fault("slow-start", delay=30.0),))
    with running_server(pool=pool, cache=None) as handle:
        client = handle.client()
        job = client.submit(spec)[0]
        reply = client.cancel(job)
        assert reply["cancelled"] and reply["state"] == "cancelled"
        with pytest.raises(JobCancelled):
            client.wait(job, timeout=30)
        # The key was released: a resubmission is a fresh job.
        pool.faults.clear()
        job2, coalesced = client.submit(spec)
        assert job2 != job and not coalesced
        info = client.wait(job2, timeout=120)
        assert info["state"] == "done"
    assert pool.active == 0


# -- shutdown -----------------------------------------------------------------


def test_graceful_shutdown_drains_the_queue():
    specs = [loop_spec(n=n, policies=("TIP",)) for n in (25, 35, 45)]
    with running_server(cache=None, workers=2) as handle:
        client = handle.client()
        jobs = [client.submit(spec)[0] for spec in specs]
        summary = handle.shutdown(drain=True)
        server = handle.server
        assert all(server.jobs[job].state == "done" for job in jobs)
        assert all(server.jobs[job].report is not None for job in jobs)
        assert set(summary["jobs"]) == set(jobs)
        assert set(summary["jobs"].values()) == {"done"}
    # The listener is closed: new connections are refused.
    with pytest.raises(OSError):
        conn = http.client.HTTPConnection(*handle.address, timeout=5)
        try:
            conn.request("GET", "/healthz")
            conn.getresponse()
        finally:
            conn.close()


# -- suite routing ------------------------------------------------------------


def test_run_suite_via_server_is_bit_identical():
    workloads = build_suite(["exchange2"], scale=0.05)
    from repro.harness import default_profilers
    profilers = default_profilers(29, policies=("TIP", "NCI"))
    local = run_suite(workloads, profilers=profilers, scale=0.05,
                      sim="fast")
    with running_server(cache=None) as handle:
        served = run_suite(workloads, profilers=profilers, scale=0.05,
                           sim="fast", server=handle.address_str)
    assert served.ok
    assert served.errors(Granularity.INSTRUCTION) \
        == local.errors(Granularity.INSTRUCTION)
    assert served["exchange2"].stats.to_dict() \
        == local["exchange2"].stats.to_dict()


# -- CLI ----------------------------------------------------------------------


def test_cli_submit_roundtrip(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text(COUNT_LOOP.format(n=50))
    with running_server(cache=None) as handle:
        assert main(["submit", str(source), "--server",
                     handle.address_str, "--period", "7",
                     "--stream"]) == 0
        captured = capsys.readouterr()
        assert "instruction error" in captured.out
        assert "TIP" in captured.out
        assert '"event": "queued"' in captured.err
        assert main(["submit", "--server", handle.address_str,
                     "--stats"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["cache"]["simulations"] == 1


def test_cli_submit_usage_errors(capsys):
    with running_server(cache=None) as handle:
        assert main(["submit", "nosuchthing", "--server",
                     handle.address_str]) == 2
        assert "unknown target" in capsys.readouterr().err
        assert main(["submit", "--server",
                     handle.address_str]) == 2
        assert "required" in capsys.readouterr().err
    assert main(["submit", "mcf", "--server", "notanaddress"]) == 2
