"""Property-style checks: every generated workload is lint- and
sanitizer-clean.

The generators self-check against the structural rules at build time
(``build_workload(self_check=True)``); these tests assert the stronger
full-suite properties and that the self-check actually rejects broken
programs.
"""

import pytest

from repro.cpu.machine import Machine
from repro.isa.assembler import assemble
from repro.lint import STRUCTURAL_RULE_IDS, TraceSanitizer, lint_program
from repro.workloads.generator import (WorkloadLintError,
                                       self_check_program)
from repro.workloads.imagick import build_imagick
from repro.workloads.suite import BENCHMARKS, build_suite

SUITE = build_suite(scale=0.05)

#: One benchmark per paper class plus the trickier trace shapes
#: (CSR flushes, page faults, serialization).
SIMULATED = ("exchange2", "imagick", "gcc", "mcf", "canneal",
             "xalancbmk")


@pytest.mark.parametrize("workload", SUITE, ids=lambda w: w.name)
def test_suite_workload_structurally_clean(workload):
    report = lint_program(workload.program)
    for rule_id in STRUCTURAL_RULE_IDS:
        assert report.by_rule(rule_id) == [], report.render()
    assert report.ok


def test_suite_covers_every_benchmark():
    assert [w.name for w in SUITE] == BENCHMARKS


@pytest.mark.parametrize("optimized", [False, True],
                         ids=["orig", "opt"])
def test_imagick_structurally_clean(optimized):
    workload = build_imagick(optimized=optimized, pixels=50,
                             morph_iters=60)
    assert lint_program(workload.program).ok


@pytest.mark.parametrize("name", SIMULATED)
def test_suite_workload_sanitizes_clean(name):
    workload, = build_suite([name], scale=0.05)
    machine = Machine(workload.program,
                      premapped_data=workload.premapped)
    sanitizer = TraceSanitizer.for_machine(machine)
    machine.attach(sanitizer)
    machine.run(2_000_000)
    assert sanitizer.ok, sanitizer.report()
    assert sanitizer.cycles_checked > 0


def test_imagick_sanitizes_clean():
    workload = build_imagick(pixels=40, morph_iters=50)
    machine = Machine(workload.program,
                      premapped_data=workload.premapped)
    sanitizer = TraceSanitizer.for_machine(machine)
    machine.attach(sanitizer)
    machine.run(2_000_000)
    assert sanitizer.ok, sanitizer.report()


def test_self_check_rejects_broken_program():
    broken = assemble("""
.entry main
.func main
main:
    jal  x0, out
    addi x1, x1, 1
out:
    halt
""", name="broken")
    with pytest.raises(WorkloadLintError) as excinfo:
        self_check_program(broken)
    assert "L003" in str(excinfo.value)


def test_self_check_allows_warnings():
    # The Imagick anti-pattern is a warning, not a structural error:
    # the whole point is that such programs build and run.
    warned = assemble("""
.entry main
.func main
main:
    addi x1, x0, 4
loop:
    frflags x7
    addi x1, x1, -1
    bne  x1, x0, loop
    halt
""", name="warned")
    self_check_program(warned)  # must not raise


def test_workload_lint_method():
    workload = build_imagick(pixels=40, morph_iters=50)
    report = workload.lint()
    assert report.ok
    assert len(report.by_rule("L001")) == 4
