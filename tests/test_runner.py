"""Suite-runner result aggregation tests."""

import pytest

from repro.analysis import Granularity
from repro.harness import default_profilers, run_suite
from repro.workloads import build_suite


@pytest.fixture(scope="module")
def small_suite():
    return run_suite(build_suite(["exchange2", "lbm"], scale=0.1),
                     period=23)


def test_errors_matrix_shape(small_suite):
    table = small_suite.errors(Granularity.INSTRUCTION)
    assert set(table) == {"exchange2", "lbm"}
    for row in table.values():
        assert "TIP" in row and "Software" in row


def test_errors_policy_filter(small_suite):
    table = small_suite.errors(Granularity.INSTRUCTION,
                               policies=("TIP", "NCI"))
    for row in table.values():
        assert set(row) == {"TIP", "NCI"}


def test_average_errors_are_means(small_suite):
    table = small_suite.errors(Granularity.FUNCTION)
    averages = small_suite.average_errors(Granularity.FUNCTION)
    for policy, value in averages.items():
        manual = sum(row[policy] for row in table.values()) / len(table)
        assert value == pytest.approx(manual)


def test_getitem(small_suite):
    result = small_suite["lbm"]
    assert result.stats.cycles > 0
    with pytest.raises(KeyError):
        small_suite["nonexistent"]


def test_cycle_stacks_cover_all(small_suite):
    stacks = small_suite.cycle_stacks()
    assert set(stacks) == {"exchange2", "lbm"}
    for stack in stacks.values():
        assert stack.total > 0


def test_average_errors_empty():
    from repro.harness.runner import SuiteResult
    empty = SuiteResult({})
    assert empty.average_errors(Granularity.INSTRUCTION) == {}


def test_profile_unnormalized(small_suite):
    result = small_suite["exchange2"]
    raw = result.profile("TIP", Granularity.FUNCTION, normalized=False)
    assert sum(raw.values()) > 1.0  # raw cycle counts, not fractions
    tip = result.profilers["TIP"]
    assert sum(raw.values()) == pytest.approx(
        sum(s.interval for s in tip.samples if s.weights), rel=0.01)
