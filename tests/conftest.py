"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import pytest

from repro.cpu.config import CoreConfig
from repro.cpu.machine import Machine
from repro.cpu.trace import (CommittedInst, CycleRecord, HeadEntry,
                             TraceCollector)
from repro.isa.assembler import assemble


def make_record(cycle: int,
                committed: Sequence[Tuple[int, bool, bool]] = (),
                rob_head: Optional[int] = None,
                exception: Optional[int] = None,
                exception_is_ordering: bool = False,
                dispatched: Sequence[int] = (),
                dispatch_pc: Optional[int] = None,
                fetch_pc: int = 0,
                banks: int = 2) -> CycleRecord:
    """Build a hand-crafted trace record.

    *committed* is a sequence of ``(addr, mispredicted, flushes)`` tuples
    in program order.
    """
    commits = tuple(CommittedInst(addr, i % banks, mispredicted, flushes)
                    for i, (addr, mispredicted, flushes)
                    in enumerate(committed))
    head_banks: List[Optional[HeadEntry]] = [None] * banks
    if rob_head is not None:
        head_banks[0] = HeadEntry(rob_head, False)
    return CycleRecord(
        cycle=cycle, committed=commits, rob_head=rob_head,
        rob_empty=rob_head is None, exception=exception,
        exception_is_ordering=exception_is_ordering,
        dispatched=tuple(dispatched), dispatch_pc=dispatch_pc,
        fetch_pc=fetch_pc, head_banks=tuple(head_banks), oldest_bank=0)


def run_asm(source: str, config: Optional[CoreConfig] = None,
            premapped: Optional[List[Tuple[int, int]]] = None,
            max_cycles: int = 500_000,
            collect_trace: bool = True):
    """Assemble, boot and run a program; return (machine, collector)."""
    program = assemble(source, name="test")
    machine = Machine(program, config or CoreConfig.boom_4wide(),
                      premapped_data=premapped)
    collector = TraceCollector() if collect_trace else None
    if collector is not None:
        machine.attach(collector)
    machine.run(max_cycles)
    return machine, collector


@pytest.fixture
def tiny_config() -> CoreConfig:
    return CoreConfig.tiny()


COUNT_LOOP = """
.entry main
.func main
main:
    addi x1, x0, 0
    addi x2, x0, {n}
loop:
    addi x1, x1, 1
    bne  x1, x2, loop
    sw   x1, 0x3000(x0)
    halt
"""


@pytest.fixture
def count_loop_source():
    return COUNT_LOOP
