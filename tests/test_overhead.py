"""Section 3.2 overhead model tests: the paper's exact numbers."""

import pytest

from repro.core.overhead import (OverheadSummary, oracle_data_rate,
                                 sample_payload_bytes, sample_record_bytes,
                                 sampling_data_rate, summarize,
                                 tip_storage_bytes)
from repro.cpu.config import CoreConfig


CFG = CoreConfig.boom_4wide()


def test_storage_is_57_bytes_for_4wide():
    """9 B OIR + six 64-bit CSRs (cycle, flags, 4 addresses) = 57 B."""
    assert tip_storage_bytes(CFG) == 57


def test_tip_sample_is_88_bytes():
    """40 B perf metadata + 4 addresses + cycle + flags = 88 B."""
    assert sample_record_bytes(CFG, ilp_aware=True) == 88


def test_baseline_sample_is_56_bytes():
    """40 B perf metadata + 1 address + cycle = 56 B (PEBS default)."""
    assert sample_record_bytes(CFG, ilp_aware=False) == 56


def test_data_rates_at_4khz():
    """352 KB/s for TIP versus 224 KB/s for non-ILP-aware profilers."""
    assert sampling_data_rate(CFG, True, 4000) == 352_000
    assert sampling_data_rate(CFG, False, 4000) == 224_000


def test_oracle_rate_is_about_179_gb_per_s():
    rate = oracle_data_rate(CFG)
    assert rate == pytest.approx(179.2e9)


def test_summary_reduction_is_orders_of_magnitude():
    summary = summarize(CFG)
    assert summary.reduction_vs_oracle > 1e5  # "several orders of magnitude"
    assert summary.storage_bytes == 57
    assert summary.tip_sample_bytes == 88
    assert summary.baseline_sample_bytes == 56


def test_scaling_with_commit_width():
    narrow = CoreConfig.tiny()  # 2-wide
    assert sample_payload_bytes(narrow, True) == 4 * 8  # 2 addrs + 2 CSRs
    assert tip_storage_bytes(narrow) < tip_storage_bytes(CFG)
