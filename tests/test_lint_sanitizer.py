"""Commit-trace sanitizer tests (repro.lint.sanitizer).

Each S-rule gets a hand-crafted violating record stream (via
``conftest.make_record`` or raw ``CycleRecord``) plus checks that real
machine runs and trace-file replays come out clean.
"""

import io

import pytest

from conftest import COUNT_LOOP, make_record
from repro.cpu.config import CoreConfig
from repro.cpu.machine import Machine
from repro.cpu.trace import CommittedInst, CycleRecord, HeadEntry
from repro.cpu.tracefile import TraceWriter, read_trace
from repro.isa.assembler import assemble
from repro.lint import TraceInvariantError, TraceSanitizer, sanitize_trace

STRAIGHT = """
.entry main
.func main
main:
    addi x1, x0, 1
    addi x2, x1, 2
    add  x3, x1, x2
    halt
"""


def _collect(records, program=None, **kwargs):
    sanitizer = TraceSanitizer(program=program, fail_fast=False, **kwargs)
    for record in records:
        sanitizer.on_cycle(record)
    return sanitizer


def _rules(sanitizer):
    return [d.rule for d in sanitizer.violations]


def _raw_record(cycle, commits, rob_head=None, rob_empty=None,
                banks=2, oldest_bank=0, head_banks=None):
    if head_banks is None:
        head_banks = [None] * banks
        if rob_head is not None:
            head_banks[oldest_bank] = HeadEntry(rob_head, False)
    return CycleRecord(
        cycle=cycle, committed=tuple(commits), rob_head=rob_head,
        rob_empty=rob_head is None if rob_empty is None else rob_empty,
        exception=None, exception_is_ordering=False, dispatched=(),
        dispatch_pc=None, fetch_pc=0, head_banks=tuple(head_banks),
        oldest_bank=oldest_bank)


# -- S001 monotone-cycle ----------------------------------------------------------

def test_s001_cycle_gap():
    sanitizer = _collect([make_record(0), make_record(2)])
    assert _rules(sanitizer) == ["S001"]
    assert sanitizer.violations[0].cycle == 2


# -- S002 commit-width ------------------------------------------------------------

def test_s002_too_many_commits():
    record = make_record(0, committed=[(0x10000, False, False),
                                       (0x10004, False, False),
                                       (0x10008, False, False)])
    sanitizer = _collect([record], commit_width=2)
    assert "S002" in _rules(sanitizer)


def test_s002_width_defaults_to_banks():
    record = make_record(0, committed=[(0x10000, False, False),
                                       (0x10004, False, False)], banks=2)
    assert _collect([record]).ok  # exactly the inferred width: fine


# -- S003 program-order -----------------------------------------------------------

def test_s003_commit_outside_text():
    program = assemble(STRAIGHT, name="s003")
    record = make_record(0, committed=[(0xdead00, False, False)])
    sanitizer = _collect([record], program=program)
    assert "S003" in _rules(sanitizer)
    assert "outside" in sanitizer.violations[0].message


def test_s003_program_order_broken():
    program = assemble(STRAIGHT, name="s003")
    # addi at 0x10000 must be followed by 0x10004, not 0x10008.
    record = make_record(0, committed=[(0x10000, False, False),
                                       (0x10008, False, False)])
    sanitizer = _collect([record], program=program)
    assert "S003" in _rules(sanitizer)


def test_s003_halt_must_commit_last():
    program = assemble(STRAIGHT, name="s003")
    record = make_record(0, committed=[(0x1000c, False, False),
                                       (0x10000, False, False)])
    sanitizer = _collect([record], program=program)
    assert any(d.rule == "S003" and "halt" in d.message
               for d in sanitizer.violations)


def test_s003_branch_successors_allowed():
    program = assemble(COUNT_LOOP.format(n=4), name="s003")
    loop = program.labels["loop"]
    # Taken back edge and fall-through are both legal in one cycle.
    taken = make_record(0, committed=[(loop, False, False),
                                      (loop + 4, True, False),
                                      (loop, False, False)], banks=4)
    assert _collect([taken], program=program, banks=4).ok


# -- S004 bank-rotation -----------------------------------------------------------

def test_s004_banks_must_rotate():
    commits = [CommittedInst(0x10000, 0, False, False),
               CommittedInst(0x10004, 0, False, False)]  # bank repeats
    sanitizer = _collect([_raw_record(0, commits)])
    assert "S004" in _rules(sanitizer)


# -- S005 flush-drain -------------------------------------------------------------

def test_s005_flush_not_last():
    record = make_record(0, committed=[(0x10000, False, True),
                                       (0x10004, False, False)])
    sanitizer = _collect([record])
    assert "S005" in _rules(sanitizer)


def test_s005_flush_must_empty_rob():
    commits = [CommittedInst(0x10000, 0, False, True)]
    record = _raw_record(0, commits, rob_head=0x10004)
    sanitizer = _collect([record])
    assert "S005" in _rules(sanitizer)


def test_s005_no_commit_in_drain_cycle():
    flush = make_record(0, committed=[(0x10000, False, True)])
    leak = make_record(1, committed=[(0x10004, False, False)])
    sanitizer = _collect([flush, leak])
    assert "S005" in _rules(sanitizer)
    assert sanitizer.violations[0].cycle == 1


# -- S006 exception-exclusive -----------------------------------------------------

def test_s006_exception_fires_alone():
    record = make_record(0, committed=[(0x10000, False, False)],
                         exception=0x10004)
    sanitizer = _collect([record])
    assert "S006" in _rules(sanitizer)


def test_s006_exception_squashes_rob():
    record = make_record(0, rob_head=0x10008, exception=0x10004)
    sanitizer = _collect([record])
    assert "S006" in _rules(sanitizer)


def test_s006_ordering_flag_needs_exception():
    record = make_record(0, exception=None, exception_is_ordering=True)
    sanitizer = _collect([record])
    assert "S006" in _rules(sanitizer)


# -- S007 head-consistency --------------------------------------------------------

def test_s007_bank_count_mismatch():
    sanitizer = _collect([make_record(0, banks=2)], banks=4)
    assert "S007" in _rules(sanitizer)


def test_s007_empty_flag_disagrees_with_head():
    record = _raw_record(0, [], rob_head=0x10000, rob_empty=True)
    sanitizer = _collect([record])
    assert "S007" in _rules(sanitizer)


def test_s007_head_bank_disagrees_with_rob_head():
    head_banks = [HeadEntry(0x10008, False), None]
    record = _raw_record(0, [], rob_head=0x10000, rob_empty=False,
                         head_banks=head_banks)
    sanitizer = _collect([record])
    assert "S007" in _rules(sanitizer)


# -- S008 flag-consistency --------------------------------------------------------

def test_s008_mispredict_flag_on_non_control():
    program = assemble(STRAIGHT, name="s008")
    record = make_record(0, committed=[(0x10000, True, False)])
    sanitizer = _collect([record], program=program)
    assert "S008" in _rules(sanitizer)


def test_s008_flush_flag_disagrees_with_opcode():
    program = assemble(STRAIGHT, name="s008")
    record = make_record(0, committed=[(0x10000, False, True)])
    sanitizer = _collect([record], program=program)
    assert "S008" in _rules(sanitizer)


# -- fail-fast and reporting ------------------------------------------------------

def test_fail_fast_raises_with_cycle_number():
    sanitizer = TraceSanitizer()  # fail_fast by default
    sanitizer.on_cycle(make_record(7))
    with pytest.raises(TraceInvariantError) as excinfo:
        sanitizer.on_cycle(make_record(9))
    assert "S001" in str(excinfo.value)
    assert "cycle 9" in str(excinfo.value)
    assert excinfo.value.diagnostic.rule == "S001"


def test_summary_and_report():
    sanitizer = _collect([make_record(0), make_record(1)])
    assert sanitizer.ok
    assert "2 cycles" in sanitizer.summary()
    assert "clean" in sanitizer.summary()

    bad = _collect([make_record(0), make_record(5)])
    assert not bad.ok
    assert "1 violation(s)" in bad.report()
    assert "S001" in bad.report()


# -- real machine runs are clean --------------------------------------------------

def _run_sanitized(source, config=None, max_cycles=200_000):
    program = assemble(source, name="sanitized")
    machine = Machine(program, config)
    sanitizer = TraceSanitizer.for_machine(machine)
    machine.attach(sanitizer)
    machine.run(max_cycles)
    return sanitizer


def test_machine_run_is_clean():
    sanitizer = _run_sanitized(COUNT_LOOP.format(n=500))
    assert sanitizer.ok
    assert sanitizer.cycles_checked > 500
    assert sanitizer.commits_checked > 1000


def test_machine_run_is_clean_tiny_config():
    sanitizer = _run_sanitized(COUNT_LOOP.format(n=200),
                               CoreConfig.tiny())
    assert sanitizer.ok


def test_flushing_program_is_clean():
    sanitizer = _run_sanitized("""
.entry main
.func main
main:
    addi x1, x0, 20
loop:
    frflags x7
    addi x1, x1, -1
    bne  x1, x0, loop
    halt
""")
    assert sanitizer.ok
    assert sanitizer.commits_checked > 40


# -- trace-file replay ------------------------------------------------------------

def test_recorded_trace_sanitizes_clean():
    program = assemble(COUNT_LOOP.format(n=300), name="roundtrip")
    machine = Machine(program)
    buffer = io.BytesIO()
    machine.attach(TraceWriter(buffer, machine.config.rob_banks))
    machine.run(100_000)

    records = list(read_trace(io.BytesIO(buffer.getvalue())))
    sanitizer = sanitize_trace(records, program=machine.image)
    assert sanitizer.ok
    assert sanitizer.cycles_checked == len(records)
