"""Structural-pressure behaviour: full ROB/IQ/LQ/SQ, fetch buffer.

These use the tiny core configuration so the limits are easy to hit,
and check both that execution stays architecturally correct under
pressure and that the expected back-pressure appears in the trace.
"""

import pytest

from repro.cpu.config import CoreConfig
from conftest import run_asm


def test_rob_fill_creates_dispatch_backpressure():
    """A long-latency load at the head lets the ROB fill up; dispatch
    must stall (Figure 2b's scenario)."""
    config = CoreConfig.boom_4wide()
    machine, collector = run_asm("""
    .func main
        addi x1, x0, 0
        addi x2, x0, 64
    loop:
        ld   x3, 0x400000(x1)
        add  x4, x4, x3
        add  x5, x5, x4
        add  x6, x6, x5
        add  x7, x7, x6
        addi x1, x1, 4096
        addi x2, x2, -1
        bne  x2, x0, loop
        halt
    """, config=config, premapped=[(0x400000, 0x400000 + 64 * 4096)])
    # While stalled on DRAM loads, something must be waiting at dispatch.
    stalled_with_dispatch = sum(
        1 for r in collector.records
        if not r.committed and not r.rob_empty
        and r.dispatch_pc is not None)
    assert stalled_with_dispatch > 100


def test_tiny_rob_limits_ilp(tiny_config):
    machine, _ = run_asm("""
    .func main
        addi x1, x0, 0
        addi x2, x0, 500
    loop:
        add  x3, x3, x1
        add  x4, x4, x1
        add  x5, x5, x1
        add  x6, x6, x1
        addi x1, x1, 1
        bne  x1, x2, loop
        halt
    """, config=tiny_config)
    assert machine.stats.ipc <= tiny_config.commit_width
    assert machine.core.regs[3] == sum(range(500))


def test_load_queue_full_stalls_dispatch(tiny_config):
    """More loads in flight than LQ entries: still correct results."""
    machine, _ = run_asm("""
    .data 0x2000 5
    .func main
        addi x2, x0, 100
    loop:
        lw   x3, 0x2000(x0)
        lw   x4, 0x2000(x0)
        lw   x5, 0x2000(x0)
        lw   x6, 0x2000(x0)
        lw   x7, 0x2000(x0)
        lw   x8, 0x2000(x0)
        add  x9, x3, x8
        addi x2, x2, -1
        bne  x2, x0, loop
        sw   x9, 0x3000(x0)
        halt
    """, config=tiny_config, premapped=[(0x2000, 0x2008),
                                        (0x3000, 0x3008)])
    assert machine.core.memory.get(0x3000) == 10


def test_store_queue_pressure(tiny_config):
    machine, _ = run_asm("""
    .func main
        addi x1, x0, 0
        addi x2, x0, 200
    loop:
        sd   x2, 0x2000(x1)
        sd   x2, 0x2008(x1)
        sd   x2, 0x2010(x1)
        addi x1, x1, 24
        addi x2, x2, -1
        bne  x2, x0, loop
        halt
    """, config=tiny_config, premapped=[(0x2000, 0x4000)])
    assert machine.core.memory.get(0x2000 + 24 * 199) == 1


def test_fp_iq_pressure(tiny_config):
    machine, _ = run_asm("""
    .data 0x2000 2.0
    .func main
        fld  f1, 0x2000(x0)
        addi x2, x0, 50
    loop:
        fadd f2, f2, f1
        fadd f3, f3, f1
        fadd f4, f4, f1
        fadd f5, f5, f1
        fadd f6, f6, f1
        addi x2, x2, -1
        bne  x2, x0, loop
        fsd  f2, 0x2008(x0)
        halt
    """, config=tiny_config, premapped=[(0x2000, 0x2010)])
    assert machine.core.memory.get(0x2008) == 100.0


def test_outstanding_branch_cap_does_not_break(tiny_config):
    """A burst of branches beyond the outstanding-branch cap stalls
    fetch but execution remains correct."""
    body = "\n".join(
        f"    bne  x1, x0, l{i}\nl{i}:" for i in range(30))
    machine, _ = run_asm(f"""
    .func main
        addi x1, x0, 1
        addi x2, x0, 40
    loop:
{body}
        addi x2, x2, -1
        bne  x2, x0, loop
        sw   x2, 0x3000(x0)
        halt
    """, config=tiny_config, premapped=[(0x3000, 0x3008)])
    assert machine.core.memory.get(0x3000) == 0


def test_commit_history_recorded():
    machine, _ = run_asm("""
    .func main
        addi x1, x0, 0
        addi x2, x0, 300
    loop:
        add  x3, x3, x1
        add  x4, x4, x1
        add  x5, x5, x1
        addi x1, x1, 1
        bne  x1, x2, loop
        halt
    """)
    hist = machine.stats.commit_hist
    assert sum(i * n for i, n in enumerate(hist)) == machine.stats.committed
    assert hist[4] > 0  # some full-width commits happened
