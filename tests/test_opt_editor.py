"""ProgramEditor tests: in-place replacement, deletion with target
remapping, preheader insertion, and disassembler round-trips."""

import pytest

from repro.isa import (INSTRUCTION_BYTES, Instruction, ProgramEditor,
                       RewriteError, assemble, disassemble,
                       run_reference)
from repro.isa.opcodes import Op
from repro.isa.rewrite import nop

LOOP = """
.entry main
.func main
main:
    addi x1, x0, 4
    addi x2, x0, 0
loop:
    addi x2, x2, 3
    addi x1, x1, -1
    bne  x1, x0, loop
    sw   x2, 0(x3)
    halt
"""


def _program():
    return assemble(LOOP, name="loop")


def _addr_of(program, op_value, occurrence=0):
    matches = [i.addr for i in program.instructions
               if i.op.value == op_value]
    return matches[occurrence]


def test_replace_in_place_keeps_layout():
    program = _program()
    target = _addr_of(program, "addi", 2)
    rebuilt = ProgramEditor(program).replace(target, nop()).build()
    assert [i.addr for i in rebuilt.instructions] == \
        [i.addr for i in program.instructions]
    assert rebuilt.fetch(target).op is Op.NOP


def test_delete_shifts_and_remaps_branches():
    program = _program()
    rebuilt = ProgramEditor(program).delete(
        _addr_of(program, "addi", 1)).build()
    assert len(rebuilt.instructions) == len(program.instructions) - 1
    # The loop still runs 4 iterations and stores 12.
    memory = run_reference(rebuilt).memory
    assert memory[0] == 12


def test_delete_branch_target_falls_through():
    program = _program()
    # Delete the first loop-body instruction: the back edge must
    # retarget to the next surviving instruction.
    rebuilt = ProgramEditor(program).delete(
        _addr_of(program, "addi", 2)).build()
    bne = next(i for i in rebuilt.instructions if i.op.value == "bne")
    assert bne.imm == rebuilt.labels["loop"]
    assert run_reference(rebuilt).halted


def test_insert_before_external_refs_run_inserted_code():
    program = _program()
    header = program.labels["loop"]
    body = frozenset(i.addr for i in program.instructions
                     if i.addr >= header)
    rebuilt = ProgramEditor(program).insert_before(
        header, [Instruction(Op.ADDI, rd=5, sources=(0,), imm=7)],
        internal_addrs=body).build()
    assert len(rebuilt.instructions) == len(program.instructions) + 1
    state = run_reference(rebuilt)
    # Inserted once (preheader), not per iteration.
    assert state.regs[5] == 7
    assert state.memory[0] == 12
    # The back edge targets the old header, one slot after the insert.
    bne = next(i for i in rebuilt.instructions if i.op.value == "bne")
    assert bne.imm == rebuilt.labels["loop"] + INSTRUCTION_BYTES


def test_insert_rejects_control_instructions():
    program = _program()
    with pytest.raises(RewriteError):
        ProgramEditor(program).insert_before(
            program.labels["loop"],
            [Instruction(Op.JAL, rd=0, sources=(), imm=program.entry)])


def test_conflicting_edits_rejected():
    program = _program()
    editor = ProgramEditor(program).delete(program.entry)
    with pytest.raises(RewriteError):
        editor.replace(program.entry, nop())


def test_deleting_entry_rejected():
    program = _program()
    editor = ProgramEditor(program)
    for inst in program.instructions:
        editor.delete(inst.addr)
    with pytest.raises(RewriteError):
        editor.build()


def test_functions_and_lines_survive():
    program = _program()
    target = _addr_of(program, "addi", 1)
    rebuilt = ProgramEditor(program).delete(target).build()
    assert [f.name for f in rebuilt.functions] == \
        [f.name for f in program.functions]
    # Line table carried over and re-keyed to surviving addresses.
    valid = {i.addr for i in rebuilt.instructions}
    assert rebuilt.lines and set(rebuilt.lines) <= valid
    assert len(rebuilt.lines) == len(program.lines) - 1


def test_disasm_round_trip_after_edits():
    program = _program()
    rebuilt = ProgramEditor(program).delete(
        _addr_of(program, "addi", 1)).build()
    again = assemble(disassemble(rebuilt), name="again")
    assert [(i.op, i.rd, i.sources, i.imm) for i in again.instructions] \
        == [(i.op, i.rd, i.sources, i.imm) for i in rebuilt.instructions]
    assert run_reference(again).memory == run_reference(rebuilt).memory
