"""Control-flow prediction behaviour of the core."""

import pytest

from conftest import run_asm


def test_loop_branch_learned():
    """The loop-closing branch should be predicted after warmup."""
    machine, _ = run_asm("""
    .func main
        addi x1, x0, 0
        addi x2, x0, 3000
    loop:
        addi x1, x1, 1
        bne  x1, x2, loop
        halt
    """)
    # 3000 iterations: only a learning transient + the exit mispredict.
    assert machine.stats.branch_mispredicts < 60


def test_random_branch_mispredicts_often():
    machine, _ = run_asm("""
    .data 0x2000 1
    .data 0x2010 1
    .data 0x2028 1
    .data 0x2038 1
    .func main
        addi x1, x0, 0
        addi x2, x0, 600
    loop:
        mul  x6, x1, x1
        xor  x6, x6, x1
        andi x3, x6, 56
        lw   x4, 0x2000(x3)
        beq  x4, x0, skip
        addi x5, x5, 1
    skip:
        addi x1, x1, 1
        bne  x1, x2, loop
        halt
    """, premapped=[(0x2000, 0x2040)])
    # The data-dependent beq follows a pseudo-random pattern.
    assert machine.stats.branch_mispredicts > 50


def test_return_address_stack_predicts_returns():
    machine, _ = run_asm("""
    .func main
        addi x2, x0, 2000
    loop:
        jal  x1, leaf
        addi x2, x2, -1
        bne  x2, x0, loop
        halt
    .func leaf
    leaf:
        addi x5, x5, 1
        jalr x0, x1, 0
    """)
    # Call/return pairs should be nearly perfectly predicted.
    assert machine.stats.branch_mispredicts < 40
    assert machine.core.regs[5] == 2000


def test_indirect_jump_via_register():
    machine, _ = run_asm("""
    .func main
        addi x6, x0, 0
        jal  x1, getpc
    getpc:
        # x1 holds the address after the jal; jump over the 999 inst.
        addi x7, x1, 12
        jalr x0, x7, 0
        addi x6, x0, 999   # skipped
        addi x8, x0, 1
        sw   x6, 0x3000(x0)
        halt
    """, premapped=[(0x3000, 0x3008)])
    assert machine.core.memory.get(0x3000) == 0


def test_wrong_path_fetch_off_text_recovers():
    """A mispredicted branch at the end of text sends fetch off the
    text segment; the core must recover cleanly."""
    machine, _ = run_asm("""
    .data 0x2000 0
    .func main
        lw   x1, 0x2000(x0)
        addi x2, x0, 1
        beq  x1, x2, target
        sw   x2, 0x3000(x0)
        halt
    target:
        halt
    """, premapped=[(0x2000, 0x2008), (0x3000, 0x3008)])
    assert machine.core.memory.get(0x3000) == 1


def test_btb_trained_after_first_taken():
    machine, collector = run_asm("""
    .func main
        addi x1, x0, 0
        addi x2, x0, 400
    loop:
        addi x1, x1, 1
        bne  x1, x2, loop
        halt
    """)
    # Loop-closing branch becomes a BTB hit; its target is cached.
    branch_addr = machine.image.labels["loop"] + 4
    assert machine.core.btb.lookup(branch_addr) == \
        machine.image.labels["loop"]


def test_mispredict_rob_empty_duration_is_small():
    """Paper: branch mispredicts empty the ROB for ~3.5 cycles."""
    machine, collector = run_asm("""
    .data 0x2000 1
    .data 0x2010 1
    .data 0x2028 1
    .func main
        addi x1, x0, 0
        addi x2, x0, 400
    loop:
        mul  x6, x1, x1
        andi x3, x6, 56
        lw   x4, 0x2000(x3)
        beq  x4, x0, skip
        addi x5, x5, 1
    skip:
        addi x1, x1, 1
        bne  x1, x2, loop
        halt
    """, premapped=[(0x2000, 0x2040)])
    # Measure empty-ROB episodes following a mispredicted commit.
    episodes = []
    run = 0
    after_mispredict = False
    for record in collector.records:
        if record.committed:
            if run and after_mispredict:
                episodes.append(run)
            run = 0
            after_mispredict = any(c.mispredicted
                                   for c in record.committed)
        elif record.rob_empty:
            run += 1
    assert episodes, "expected empty-ROB episodes after mispredicts"
    average = sum(episodes) / len(episodes)
    assert 2.0 <= average <= 8.0
