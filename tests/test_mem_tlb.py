"""Unit tests for TLBs, the page-table walker, and page tables."""

import pytest

from repro.mem.cache import MainMemory
from repro.mem.tlb import (PAGE_SIZE, PageTable, PageTableWalker, Tlb,
                           TlbHierarchy, vpn_of)


def _hierarchy(entries=4, l2_entries=16):
    page_table = PageTable()
    memory = MainMemory(latency=50, cycles_per_access=0)
    walker = PageTableWalker(memory)
    l1 = Tlb("L1", entries)
    l2 = Tlb("L2", l2_entries, direct_mapped=True)
    return TlbHierarchy(l1, l2, walker, page_table), page_table


def test_vpn_of():
    assert vpn_of(0) == 0
    assert vpn_of(PAGE_SIZE - 1) == 0
    assert vpn_of(PAGE_SIZE) == 1
    assert vpn_of(0x12345) == 0x12


def test_page_table_map_range():
    table = PageTable()
    table.map_range(0x1000, 0x3000)
    assert table.is_mapped(1)
    assert table.is_mapped(2)
    assert not table.is_mapped(3)
    assert len(table) == 2


def test_map_range_empty_range_maps_first_page():
    table = PageTable()
    table.map_range(0x1000, 0x1000)
    assert table.is_mapped(1)


def test_miss_then_walk_then_hit():
    tlbs, table = _hierarchy()
    table.map_page(5)
    addr = 5 * PAGE_SIZE
    first = tlbs.translate(addr, 0)
    assert first.source == "walk"
    assert first.latency > 0
    second = tlbs.translate(addr, 100)
    assert second.source == "l1"
    assert second.latency == 0


def test_unmapped_page_faults():
    tlbs, _ = _hierarchy()
    result = tlbs.translate(0x10_0000, 0)
    assert result.fault
    assert result.source == "fault"


def test_fault_not_cached_in_tlb():
    tlbs, table = _hierarchy()
    assert tlbs.translate(0x10_0000, 0).fault
    table.map_page(vpn_of(0x10_0000))
    # After the OS maps the page, translation must succeed via a walk.
    result = tlbs.translate(0x10_0000, 100)
    assert not result.fault
    assert result.source == "walk"


def test_l1_tlb_lru_and_l2_backing():
    tlbs, table = _hierarchy(entries=2)
    for vpn in range(4):
        table.map_page(vpn)
    for vpn in range(4):
        tlbs.translate(vpn * PAGE_SIZE, vpn * 100)
    # vpn 0 was evicted from the 2-entry L1 but lives in the L2 TLB.
    result = tlbs.translate(0, 1000)
    assert result.source == "l2"


def test_direct_mapped_conflicts():
    tlb = Tlb("L2", 4, direct_mapped=True)
    tlb.insert(0)
    tlb.insert(4)  # same slot
    assert not tlb.lookup(0)
    assert tlb.lookup(4)


def test_flush_entry():
    tlb = Tlb("L1", 4)
    tlb.insert(7)
    assert tlb.lookup(7)
    tlb.flush_entry(7)
    assert not tlb.lookup(7)


def test_walker_latency_uses_memory_system():
    memory = MainMemory(latency=50, cycles_per_access=0)
    walker = PageTableWalker(memory, levels=2)
    latency = walker.walk(123, 0)
    assert latency >= 100  # two dependent memory accesses
    assert walker.walks == 1


def test_hit_statistics():
    tlb = Tlb("L1", 4)
    tlb.insert(1)
    tlb.lookup(1)
    tlb.lookup(2)
    assert tlb.hits == 1
    assert tlb.misses == 1
