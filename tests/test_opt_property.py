"""Property-based optimizer tests (hypothesis): for randomly generated
programs exhibiting the optimizable anti-patterns, ``repro.opt``

* removes every triggering finding it proves (the transformed program
  is lint-clean for L001/L010/L011/L012), and
* preserves the observable architectural state on the as-built data
  image *and* on randomized data (the same random image on both sides).
"""

from hypothesis import given, settings, strategies as st

from repro.isa import assemble
from repro.lint import lint_program
from repro.opt import diff_architectural, optimize_program

OPTIMIZABLE = ("L001", "L010", "L011", "L012")

#: Loop-body compute steps; x4 feeds the per-iteration store, x2 is the
#: loop-invariant operand, x5 the output cursor.
BODY_STEPS = (
    "    addi x4, x4, {k}",
    "    add  x4, x4, x2",
    "    sub  x4, x4, x2",
    "    xor  x4, x4, x2",
)


@st.composite
def flushy_programs(draw):
    """A main loop in the imagick shape, with optional anti-patterns."""
    trips = draw(st.integers(min_value=1, max_value=6))
    k = draw(st.integers(min_value=-7, max_value=7))
    steps = draw(st.lists(st.sampled_from(BODY_STEPS), min_size=1,
                          max_size=3))
    pair = draw(st.booleans())          # L001: save/restore in loop
    hoistable = draw(st.booleans())     # L012: invariant save, used
    dead_stores = draw(st.integers(min_value=0, max_value=2))  # L010
    const_branch = draw(st.booleans())  # L011: statically-dead arm

    lines = [".entry main", ".func main", "main:",
             f"    addi x1, x0, {trips}",
             "    addi x2, x0, 5",
             "    addi x4, x0, 0",
             "    addi x5, x0, 4096"]
    if const_branch:
        lines += ["    addi x8, x0, 1",
                  "    beq  x8, x0, feasible",
                  "    jal  x0, feasible",
                  "    addi x4, x4, 99",   # const-unreachable
                  "feasible:"]
    lines += ["loop:"]
    if pair:
        lines += ["    frflags x7"]
    if hoistable:
        lines += ["    csrrw x9, x2",
                  "    sw   x9, 8(x5)"]
    lines += [step.format(k=k) for step in steps]
    if pair:
        lines += ["    fsflags x7"]
    lines += ["    sw   x4, 0(x5)",
              "    addi x5, x5, 16",
              "    addi x1, x1, -1",
              "    bne  x1, x0, loop"]
    # Independent dead stores: destinations never read again.
    for i in range(dead_stores):
        lines += [f"    addi x{20 + i}, x0, {k}"]
    lines += ["    halt"]
    return assemble("\n".join(lines), name="generated")


@given(program=flushy_programs(), seed=st.integers(0, 2**31))
@settings(max_examples=40, deadline=None)
def test_optimized_programs_are_clean_and_equivalent(program, seed):
    result = optimize_program(program)
    # Every finding in this controlled family is provable: the
    # transformed program is lint-clean for the optimizable rules.
    report = lint_program(result.program)
    for rule in OPTIMIZABLE:
        assert report.by_rule(rule) == [], \
            f"{rule} survives:\n{report.render()}"
    # And the observable architectural state is preserved, on the
    # as-built image and on randomized data.
    diff = diff_architectural(program, result.program, trials=3,
                              seed=seed)
    assert diff.identical, diff.render()


@given(program=flushy_programs())
@settings(max_examples=15, deadline=None)
def test_optimization_reaches_a_fixpoint(program):
    once = optimize_program(program)
    again = optimize_program(once.program)
    assert not again.changed, again.render()
