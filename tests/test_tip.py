"""TIP profiler tests on hand-built traces."""

import pytest

from repro.core.samples import Category
from repro.core.sampling import SampleSchedule
from repro.core.tip import TipIlpProfiler, TipProfiler
from repro.cpu.trace import replay
from tests.test_oracle import BR, I1, I3, I5, LOAD, PROGRAM, STORE
from conftest import make_record


def _tip(records, sample_cycles, cls=TipProfiler):
    # Build a schedule firing exactly at the requested cycles by using
    # period 1 and filtering: easier to use period so that samples land on
    # every cycle, then select.  Instead, use a custom schedule per test:
    # period = 1 samples every cycle.
    profiler = cls(SampleSchedule(period=1), PROGRAM)
    replay(records, profiler)
    return {s.cycle: s for s in profiler.samples}


def test_computing_sample_splits_across_commits():
    samples = _tip([make_record(0, committed=[(I1, False, False),
                                              (I3, False, False)])], [0])
    sample = samples[0]
    assert sorted(sample.weights) == [(I1, 0.5), (I3, 0.5)]
    assert sample.category is Category.EXECUTION


def test_tip_ilp_samples_single_instruction():
    samples = _tip([make_record(0, committed=[(I1, False, False),
                                              (I3, False, False)])], [0],
                   cls=TipIlpProfiler)
    assert samples[0].weights == [(I1, 1.0)]


def test_stalled_sample_hits_rob_head():
    samples = _tip([make_record(0, rob_head=LOAD)], [0])
    assert samples[0].weights == [(LOAD, 1.0)]
    assert samples[0].category is Category.LOAD_STALL


def test_stall_classification_from_binary():
    samples = _tip([make_record(0, rob_head=STORE),
                    make_record(1, rob_head=I1)], [0, 1])
    assert samples[0].category is Category.STORE_STALL
    assert samples[1].category is Category.ALU_STALL


def test_flushed_sample_reads_oir_mispredict():
    records = [make_record(0, committed=[(BR, True, False)]),
               make_record(1)]  # empty ROB
    samples = _tip(records, [1])
    assert samples[1].weights == [(BR, 1.0)]
    assert samples[1].category is Category.MISPREDICT


def test_flushed_sample_reads_oir_csr_flush():
    records = [make_record(0, committed=[(I1, False, True)]),
               make_record(1)]
    samples = _tip(records, [1])
    assert samples[1].weights == [(I1, 1.0)]
    assert samples[1].category is Category.MISC_FLUSH


def test_exception_sets_oir():
    records = [make_record(0, exception=LOAD), make_record(1)]
    samples = _tip(records, [1])
    assert samples[1].weights == [(LOAD, 1.0)]
    assert samples[1].category is Category.MISC_FLUSH


def test_drained_sample_waits_for_dispatch():
    """The Front-end flag keeps address write-enables asserted until the
    first instruction dispatches (Section 3.1)."""
    records = [make_record(0, committed=[(I1, False, False)]),
               make_record(1), make_record(2),
               make_record(3, rob_head=I5, dispatched=[I5])]
    samples = _tip(records, [1, 2])
    assert samples[1].weights == [(I5, 1.0)]
    assert samples[1].category is Category.FRONTEND
    assert samples[2].weights == [(I5, 1.0)]


def test_drained_sample_unresolved_at_finish_is_empty():
    records = [make_record(0, committed=[(I1, False, False)]),
               make_record(1)]
    samples = _tip(records, [1])
    assert samples[1].weights == []


def test_oir_cleared_by_ordinary_commit():
    """A non-flushing commit after a flush clears the OIR flags, so a
    later empty-ROB episode classifies as a drain, not a flush."""
    records = [make_record(0, committed=[(BR, True, False)]),
               make_record(1, committed=[(I5, False, False)]),
               make_record(2),
               make_record(3, rob_head=I3, dispatched=[I3])]
    samples = _tip(records, [2])
    assert samples[2].weights == [(I3, 1.0)]
    assert samples[2].category is Category.FRONTEND


def test_sample_interval_accounting():
    profiler = TipProfiler(SampleSchedule(period=3), PROGRAM)
    records = [make_record(c, committed=[(I1, False, False)])
               for c in range(9)]
    replay(records, profiler)
    assert [s.cycle for s in profiler.samples] == [2, 5, 8]
    assert [s.interval for s in profiler.samples] == [3, 3, 3]
    assert profiler.sampled_cycles == 9


def test_profile_aggregation():
    profiler = TipProfiler(SampleSchedule(period=1), PROGRAM)
    records = [make_record(0, committed=[(I1, False, False)]),
               make_record(1, rob_head=LOAD),
               make_record(2, rob_head=LOAD),
               make_record(3, committed=[(LOAD, False, False)])]
    replay(records, profiler)
    profile = profiler.profile()
    assert profile[I1] == pytest.approx(1.0)
    assert profile[LOAD] == pytest.approx(3.0)
