"""``on_stall_run`` batching is observationally equivalent to
stepping the same stall run cycle by cycle.

This is the dynamic counterpart of contract rule C002: every shipped
profiler and the trace sanitizer must produce identical results
whether the block engine hands them a run-length-compressed stall or
the per-cycle loop replays it.
"""

import pytest

from conftest import make_record
from repro.core.baselines import (DispatchProfiler, LciProfiler,
                                  NciIlpProfiler, NciProfiler,
                                  SoftwareProfiler)
from repro.core.sampling import SampleSchedule
from repro.core.tip import TipIlpProfiler, TipProfiler
from repro.cpu.trace import shifted_record
from repro.isa.assembler import assemble
from repro.lint import TraceSanitizer

PROGRAM = assemble("""
.entry main
.func main
main:
    addi x1, x0, 1
    addi x2, x1, 2
    add  x3, x1, x2
    add  x4, x3, x1
    halt
""", name="stall-batch")

#: Two committing cycles, a pure-stall run, then the rest commits.
PREFIX = [make_record(0, committed=[(0x10000, False, False)]),
          make_record(1, committed=[(0x10004, False, False)])]
STALL = make_record(2, rob_head=0x10008)
SUFFIX_AT = {0x10008: 0, 0x1000c: 1, 0x10010: 2}


def _suffix(start):
    return [make_record(start + pos, committed=[(addr, False, False)])
            for addr, pos in sorted(SUFFIX_AT.items())]


def _feed(observer, run, batched):
    for record in PREFIX:
        observer.on_cycle(record)
    if batched:
        observer.on_stall_run(STALL, run)
    else:
        for i in range(run):
            observer.on_cycle(shifted_record(STALL, i))
    final = 0
    for record in _suffix(STALL.cycle + run):
        observer.on_cycle(record)
        final = record.cycle
    observer.on_finish(final)
    return observer


def _signature(profiler):
    return [(s.cycle, s.interval, s.weights, s.category)
            for s in profiler.samples]


PROFILERS = {
    "software": lambda: SoftwareProfiler(SampleSchedule(7)),
    "software-skid": lambda: SoftwareProfiler(SampleSchedule(7),
                                              skid_cycles=5),
    "dispatch": lambda: DispatchProfiler(SampleSchedule(7)),
    "lci": lambda: LciProfiler(SampleSchedule(7)),
    "nci": lambda: NciProfiler(SampleSchedule(7)),
    "nci-ilp": lambda: NciIlpProfiler(SampleSchedule(7)),
    "tip": lambda: TipProfiler(SampleSchedule(7), PROGRAM),
    "tip-ilp": lambda: TipIlpProfiler(SampleSchedule(7), PROGRAM),
}

#: Run lengths: shorter than a period, spanning one sample, spanning
#: several (the skid delivery lands mid-run in the long case).
RUNS = (1, 5, 21)


@pytest.mark.parametrize("name", sorted(PROFILERS))
@pytest.mark.parametrize("run", RUNS)
def test_profiler_stall_run_equivalence(name, run):
    build = PROFILERS[name]
    stepped = _feed(build(), run, batched=False)
    batched = _feed(build(), run, batched=True)
    assert _signature(batched) == _signature(stepped)


@pytest.mark.parametrize("run", RUNS)
def test_sanitizer_stall_run_equivalence(run):
    stepped = _feed(TraceSanitizer(program=PROGRAM, fail_fast=False),
                    run, batched=False)
    batched = _feed(TraceSanitizer(program=PROGRAM, fail_fast=False),
                    run, batched=True)
    assert stepped.violations == []
    assert batched.violations == []
    assert batched.cycles_checked == stepped.cycles_checked


def test_sanitizer_batched_stall_advances_cursor():
    """The compressed run must move the monotonicity cursor to its
    last cycle: a gap right after the run is still caught (S001)."""
    sanitizer = TraceSanitizer(fail_fast=False)
    sanitizer.on_cycle(make_record(0))
    sanitizer.on_stall_run(make_record(1, rob_head=0x10008), 5)
    sanitizer.on_cycle(make_record(8, rob_head=0x10008))  # 6-7 missing
    assert [d.rule for d in sanitizer.violations] == ["S001"]
    assert sanitizer.violations[0].cycle == 8


def test_sanitizer_batched_commit_record_falls_back():
    """A run whose record commits is not a pure stall: the default
    per-cycle fallback must check every replayed cycle, so a
    commit-width violation is reported once per cycle of the run."""
    sanitizer = TraceSanitizer(program=PROGRAM, fail_fast=False,
                               commit_width=1)
    record = make_record(0, committed=[(0x10000, False, False),
                                       (0x10004, False, False)])
    sanitizer.on_stall_run(record, 3)
    rules = [d.rule for d in sanitizer.violations]
    assert rules.count("S002") == 3
    assert sanitizer.cycles_checked == 3
