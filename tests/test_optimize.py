"""``repro.opt`` tests: legality planners, the optimizer driver, the
verification harness, the imagick end-to-end reproduction and the CLI."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.isa import assemble, run_reference
from repro.lint import lint_program
from repro.lint.cfg import build_cfg
from repro.lint.rules import LintContext
from repro.opt import (FlushPairPlan, HoistPlan, diff_architectural,
                       optimize_program, plan_flush_pair, plan_hoist)
from repro.workloads.imagick import build_imagick

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "asm"


def _example(name):
    return assemble((EXAMPLES / name).read_text(), name=name)


def _ctx(program):
    return LintContext(program, build_cfg(program))


# -- legality ----------------------------------------------------------------

def test_flush_pair_proof_on_imagick():
    program = build_imagick(pixels=10, morph_iters=10).program
    ctx = _ctx(program)
    saves = [i for i in program.instructions
             if i.op.value == "frflags"]
    assert len(saves) == 2
    for save in saves:
        plan = plan_flush_pair(ctx, save.addr)
        assert isinstance(plan, FlushPairPlan), plan
        assert len(plan.restores) == 1
        assert plan.certificate.rule == "L001"
        assert len(plan.certificate.facts) == 3


def test_flush_pair_rejects_used_value():
    program = _example("hoistable_flush.s")
    ctx = _ctx(program)
    save = next(i for i in program.instructions
                if i.op.value == "frflags")
    plan = plan_flush_pair(ctx, save.addr)
    assert isinstance(plan, str) and "really used" in plan


def test_flush_pair_rejects_intervening_flag_write():
    program = assemble("""
.entry main
.func main
main:
    frflags x7
    addi x5, x0, 1
    fsflags x5
    fsflags x7
    halt
""", name="clobber")
    ctx = _ctx(program)
    save = next(i for i in program.instructions
                if i.op.value == "frflags")
    plan = plan_flush_pair(ctx, save.addr)
    assert isinstance(plan, str)


def test_hoist_proof_on_example():
    program = _example("hoistable_flush.s")
    ctx = _ctx(program)
    save = next(i for i in program.instructions
                if i.op.value == "frflags")
    plan = plan_hoist(ctx, save.addr)
    assert isinstance(plan, HoistPlan), plan
    assert plan.certificate.rule == "L012"
    assert plan.site.header_addr == program.labels["loop"]


def test_hoist_rejects_variant_operand():
    program = assemble("""
.entry main
.func main
main:
    addi x1, x0, 4
loop:
    addi x2, x2, 1
    csrrw x7, x2
    sw   x7, 0(x3)
    addi x1, x1, -1
    bne  x1, x0, loop
    halt
""", name="variant")
    ctx = _ctx(program)
    csr = next(i for i in program.instructions
               if i.op.value == "csrrw")
    plan = plan_hoist(ctx, csr.addr)
    assert isinstance(plan, str)


# -- examples end-to-end -----------------------------------------------------

@pytest.mark.parametrize("name,expected", [
    ("dead_store.s", "delete-dead-store"),
    ("const_dead_branch.s", "prune-const-unreachable"),
    ("loop_invariant_csr.s", "nop-flush-pair"),
    ("hoistable_flush.s", "hoist-invariant-flush"),
])
def test_examples_optimize_clean(name, expected):
    program = _example(name)
    result = optimize_program(program)
    assert expected in {a.certificate.rewrite for a in result.applied}
    # Architecturally identical on as-built and randomized data.
    assert diff_architectural(program, result.program,
                              trials=3).identical
    # The transformed program no longer trips the triggering rules.
    assert not lint_program(result.program).diagnostics


def test_hoisted_flush_executes_once():
    program = _example("hoistable_flush.s")
    result = optimize_program(program)
    before = run_reference(program)
    after = run_reference(result.program)
    flushes = lambda m, p: sum(  # noqa: E731
        1 for i in p.instructions if i.op.value == "frflags")
    assert flushes(after, result.program) == 1
    assert after.memory == before.memory
    # 8 iterations before; after the hoist the loop has 5 body
    # instructions plus 3 of setup/preheader/halt.
    assert after.instructions_executed < before.instructions_executed


def test_optimizer_is_idempotent():
    program = _example("const_dead_branch.s")
    once = optimize_program(program)
    twice = optimize_program(once.program)
    assert not twice.changed
    assert twice.program is once.program


def test_ignore_pragma_blocks_optimization():
    source = (EXAMPLES / "loop_invariant_csr.s").read_text()
    source = source.replace("frflags x7 ",
                            "frflags x7 # lint: ignore ")
    program = assemble(source, name="ignored")
    assert not optimize_program(program).changed
    assert optimize_program(program, honor_ignores=False).changed


def test_unprovable_findings_are_reported_not_dropped():
    program = _example("hoistable_flush.s")
    result = optimize_program(program, rules=("L001",))
    assert not result.changed
    assert result.skipped
    assert "really used" in result.skipped[0].reason


def test_unknown_rule_rejected():
    with pytest.raises(ValueError):
        optimize_program(_example("dead_store.s"), rules=("L999",))


# -- imagick end-to-end ------------------------------------------------------

@pytest.fixture(scope="module")
def imagick_opt():
    workload = build_imagick(optimized=False, pixels=60,
                             morph_iters=40)
    return workload, optimize_program(workload.program)


def test_imagick_optimizer_matches_paper_fix(imagick_opt):
    workload, result = imagick_opt
    assert len(result.applied) == 2
    assert {a.certificate.rewrite for a in result.applied} == \
        {"nop-flush-pair"}
    assert {a.certificate.function for a in result.applied} == \
        {"ceil", "floor"}
    ops = [i.op.value for i in result.program.instructions]
    assert "frflags" not in ops and "fsflags" not in ops
    # Same layout as the hand-optimized sibling: the 4 CSR slots nop.
    hand = build_imagick(optimized=True, pixels=60,
                         morph_iters=40).program
    assert [(i.op, i.addr) for i in result.program.instructions] == \
        [(i.op, i.addr) for i in hand.instructions]


def test_imagick_lint_clean_after_optimize(imagick_opt):
    _, result = imagick_opt
    report = lint_program(result.program)
    assert report.by_rule("L001") == []
    assert report.by_rule("L012") == []


def test_imagick_differential_identical(imagick_opt):
    workload, result = imagick_opt
    report = diff_architectural(workload.program, result.program,
                                trials=3)
    assert report.identical, report.render()
    assert report.instructions_original == \
        report.instructions_transformed


def test_sibling_verification_memoized():
    from repro.workloads import imagick as im
    im.build_imagick(pixels=12, morph_iters=6)
    assert (12, 6, 42) in im._VERIFIED_SIBLINGS


def test_sibling_verification_rejects_divergence():
    from repro.workloads import imagick as im
    orig = im._build_program(False, 12, 6, 42)
    broken = im._build_program(True, 12, 6, 43)  # different data
    with pytest.raises(ValueError, match="diverge"):
        im._verify_siblings(orig, broken, (-1, -1, -1))
    assert (-1, -1, -1) not in im._VERIFIED_SIBLINGS


# -- suite sweep -------------------------------------------------------------

@pytest.mark.parametrize("name", ["exchange2", "lbm", "imagick"])
def test_suite_sweep_is_sound(name):
    """Sweeping generated suite workloads never breaks them: whatever
    the optimizer proves (usually nothing -- the generators are clean
    by construction) stays architecturally identical."""
    from repro.workloads.suite import build_suite
    (workload,) = build_suite([name], scale=0.05)
    result = optimize_program(workload.program)
    if result.changed:
        assert diff_architectural(workload.program, result.program,
                                  trials=2).identical
    else:
        assert result.program is workload.program


# -- CLI ---------------------------------------------------------------------

def test_cli_optimize_example(tmp_path, capsys):
    out = tmp_path / "opt.s"
    report = tmp_path / "report.json"
    code = main(["optimize", str(EXAMPLES / "hoistable_flush.s"),
                 "--no-measure", "-o", str(out),
                 "--report", str(report)])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "hoist-invariant-flush" in stdout
    assert "identical" in stdout
    # The emitted assembly reassembles and matches architecturally.
    original = _example("hoistable_flush.s")
    again = assemble(out.read_text(), name="again")
    assert diff_architectural(original, again, trials=2).identical
    payload = json.loads(report.read_text())
    (applied,) = payload["optimization"]["applied"]
    assert applied["rewrite"] == "hoist-invariant-flush"
    assert applied["facts"]
    assert payload["differential"]["identical"]


def test_cli_optimize_min_speedup_gate(tmp_path):
    source = tmp_path / "clean.s"
    source.write_text("""
.entry main
.func main
main:
    halt
""")
    # Nothing to optimize: no measurement, no failure.
    assert main(["optimize", str(source),
                 "--min-speedup", "99"]) == 0


def test_cli_optimize_unknown_target(capsys):
    assert main(["optimize", "no-such-thing"]) == 2
    assert "unknown target" in capsys.readouterr().err


def test_cli_optimize_json(capsys):
    code = main(["optimize", str(EXAMPLES / "dead_store.s"),
                 "--no-measure", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["optimization"]["applied"]
