"""Profile diffing tests."""

import pytest

from repro.analysis.diff import (ProfileDiff, SymbolDelta, diff_profiles,
                                 render_diff)


def test_symbol_delta_properties():
    delta = SymbolDelta("ceil", 100.0, 40.0)
    assert delta.delta == -60.0
    assert delta.speedup == pytest.approx(2.5)


def test_delta_to_zero_is_infinite_speedup():
    assert SymbolDelta("f", 10.0, 0.0).speedup == float("inf")
    assert SymbolDelta("f", 0.0, 0.0).speedup == 1.0


def test_diff_sorts_by_impact():
    diff = diff_profiles({"a": 100.0, "b": 50.0, "c": 10.0},
                         {"a": 20.0, "b": 55.0, "c": 10.0})
    assert diff.deltas[0].symbol == "a"  # biggest absolute change
    assert diff.overall_speedup == pytest.approx(160.0 / 85.0)


def test_improvements_and_regressions():
    diff = diff_profiles({"a": 100.0, "b": 50.0},
                         {"a": 20.0, "b": 70.0})
    improvements = diff.improvements()
    regressions = diff.regressions()
    assert [d.symbol for d in improvements] == ["a"]
    assert [d.symbol for d in regressions] == ["b"]


def test_symbols_only_in_one_profile():
    diff = diff_profiles({"old": 10.0}, {"new": 5.0})
    symbols = {d.symbol: d for d in diff.deltas}
    assert symbols["old"].after == 0.0
    assert symbols["new"].before == 0.0


def test_render_diff():
    diff = diff_profiles({"ceil": 100.0}, {"ceil": 40.0})
    text = render_diff(diff, title="imagick fix")
    assert "imagick fix" in text
    assert "ceil" in text
    assert "2.50x" in text


def test_end_to_end_imagick_diff():
    """The Figure 13 workflow through the diff API."""
    from repro.analysis import Granularity
    from repro.harness import ProfilerConfig, run_workload
    from repro.workloads import build_imagick

    configs = [ProfilerConfig("TIP", 31)]
    orig = run_workload(build_imagick(False, pixels=250, morph_iters=300),
                        configs)
    opt = run_workload(build_imagick(True, pixels=250, morph_iters=300),
                       configs)
    diff = diff_profiles(
        orig.profile("TIP", Granularity.FUNCTION, normalized=False),
        opt.profile("TIP", Granularity.FUNCTION, normalized=False))
    assert diff.overall_speedup > 1.4
    improved = {d.symbol for d in diff.improvements()}
    assert {"ceil", "floor"} <= improved
    # MorphologyApply is not an improvement target.
    morph = next(d for d in diff.deltas if d.symbol == "MorphologyApply")
    assert abs(morph.delta) < 0.25 * morph.before
