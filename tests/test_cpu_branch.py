"""Unit tests for branch prediction structures."""

import pytest

from repro.cpu.branch import (BranchTargetBuffer, Prediction,
                              ReturnAddressStack, TagePredictor)


def test_tage_learns_always_taken():
    predictor = TagePredictor()
    pc = 0x1000
    for _ in range(8):
        prediction = predictor.predict(pc)
        predictor.update(pc, True, prediction)
    assert predictor.predict(pc).taken


def test_tage_learns_always_not_taken():
    predictor = TagePredictor()
    pc = 0x1000
    for _ in range(8):
        prediction = predictor.predict(pc)
        predictor.update(pc, False, prediction)
    assert not predictor.predict(pc).taken


def test_tage_learns_loop_exit_pattern():
    """A branch taken 7 times then not-taken once (loop of 8) should be
    predicted well once the tagged tables pick up the history pattern."""
    predictor = TagePredictor()
    pc = 0x2000
    mispredicts = 0
    for trip in range(200):
        for i in range(8):
            taken = i != 7
            prediction = predictor.predict(pc)
            if prediction.taken != taken:
                mispredicts = mispredicts + 1 if trip >= 150 else mispredicts
            predictor.update(pc, taken, prediction)
    # In the last 50 trips the exit should be mostly predicted.
    assert mispredicts <= 25


def test_tage_random_branch_mispredicts():
    import random
    rng = random.Random(7)
    predictor = TagePredictor()
    pc = 0x3000
    wrong = 0
    total = 400
    for _ in range(total):
        taken = rng.random() < 0.5
        prediction = predictor.predict(pc)
        wrong += prediction.taken != taken
        predictor.update(pc, taken, prediction)
    assert wrong > total * 0.25  # genuinely unpredictable


def test_tage_accuracy_property():
    predictor = TagePredictor()
    assert predictor.accuracy == 1.0
    prediction = predictor.predict(0x100)
    predictor.update(0x100, not prediction.taken, prediction)
    assert predictor.accuracy < 1.0


def test_prediction_checkpoints_history():
    predictor = TagePredictor()
    prediction = predictor.predict(0x100)
    assert prediction.history == predictor.history
    predictor.update(0x100, True, prediction)
    assert predictor.history != prediction.history or \
        prediction.history == ((prediction.history << 1) | 1) & ((1 << 64) - 1)


def test_btb_insert_lookup():
    btb = BranchTargetBuffer(entries=16)
    assert btb.lookup(0x100) is None
    btb.insert(0x100, 0x2000)
    assert btb.lookup(0x100) == 0x2000


def test_btb_aliasing_replaces():
    btb = BranchTargetBuffer(entries=16)
    btb.insert(0x100, 0x2000)
    btb.insert(0x100 + 16 * 4, 0x3000)  # same slot
    assert btb.lookup(0x100) is None
    assert btb.lookup(0x100 + 64) == 0x3000


def test_ras_lifo():
    ras = ReturnAddressStack(entries=4)
    ras.push(0x100)
    ras.push(0x200)
    assert ras.pop() == 0x200
    assert ras.pop() == 0x100
    assert ras.pop() is None


def test_ras_overflow_drops_oldest():
    ras = ReturnAddressStack(entries=2)
    ras.push(0x100)
    ras.push(0x200)
    ras.push(0x300)
    assert ras.pop() == 0x300
    assert ras.pop() == 0x200
    assert ras.pop() is None
