"""Experiment harness tests."""

import pytest

from repro.analysis import Granularity
from repro.harness import (ALL_POLICIES, ProfilerConfig, default_profilers,
                           run_experiment, run_suite, run_workload)
from repro.isa.assembler import assemble
from repro.workloads import build_workload, k_int_ilp, k_stream_load

WORKLOAD = build_workload("t", [
    k_int_ilp("compute", 800, width=6),
    k_stream_load("stream", 300, 0x20_0000, 64 * 1024),
])


def test_default_profilers_cover_paper_lineup():
    configs = default_profilers(50)
    assert [c.name for c in configs] == list(ALL_POLICIES)
    assert all(c.period == 50 for c in configs)


def test_profiler_config_build():
    config = ProfilerConfig("TIP", 25)
    profiler = config.build(WORKLOAD.program)
    assert profiler.name == "TIP"
    assert profiler.schedule.period == 25


def test_unknown_policy_raises():
    with pytest.raises(ValueError, match="unknown profiler policy"):
        ProfilerConfig("Magic", 10).build(WORKLOAD.program)


def test_duplicate_labels_rejected():
    configs = [ProfilerConfig("TIP", 10), ProfilerConfig("TIP", 20)]
    with pytest.raises(ValueError, match="duplicate profiler label"):
        run_experiment(WORKLOAD.program, configs,
                       premapped_data=WORKLOAD.premapped)


def test_labels_disambiguate_same_policy():
    configs = [ProfilerConfig("TIP", 10, label="TIP@10"),
               ProfilerConfig("TIP", 40, label="TIP@40")]
    result = run_experiment(WORKLOAD.program, configs,
                            premapped_data=WORKLOAD.premapped)
    assert set(result.profilers) == {"TIP@10", "TIP@40"}
    dense = result.profilers["TIP@10"]
    sparse = result.profilers["TIP@40"]
    assert len(dense.samples) > len(sparse.samples)


def test_experiment_result_errors_and_profiles():
    result = run_workload(WORKLOAD, default_profilers(17))
    errors = result.errors(Granularity.INSTRUCTION)
    assert set(errors) == set(ALL_POLICIES)
    for value in errors.values():
        assert 0.0 <= value <= 1.0
    profile = result.profile("TIP", Granularity.FUNCTION)
    assert profile
    assert sum(profile.values()) == pytest.approx(1.0)
    oracle = result.oracle_profile(Granularity.FUNCTION)
    assert sum(oracle.values()) == pytest.approx(1.0)


def test_same_schedule_samples_same_cycles():
    """The paper's key methodological property: all profilers observe the
    exact same sampled cycles."""
    result = run_workload(WORKLOAD, default_profilers(23))
    cycle_sets = {name: [s.cycle for s in p.samples]
                  for name, p in result.profilers.items()}
    reference = cycle_sets["TIP"]
    for cycles in cycle_sets.values():
        assert cycles == reference


def test_suite_runner_subset():
    from repro.workloads import build_suite
    suite = run_suite(build_suite(["lbm"], scale=0.05), period=29)
    assert "lbm" in suite.results
    errors = suite.errors(Granularity.INSTRUCTION)
    assert "lbm" in errors
    averages = suite.average_errors(Granularity.INSTRUCTION)
    assert set(averages) == set(ALL_POLICIES)
    stacks = suite.cycle_stacks()
    assert stacks["lbm"].total > 0


def test_random_mode_profilers():
    configs = default_profilers(31, mode="random", seed=11,
                                policies=("NCI", "TIP"))
    result = run_workload(WORKLOAD, configs)
    nci = result.profilers["NCI"]
    tip = result.profilers["TIP"]
    assert [s.cycle for s in nci.samples] == [s.cycle for s in tip.samples]
    # Random sampling draws one sample per interval; the unbiased
    # (Horvitz-Thompson) weight is the constant period.
    assert {s.interval for s in tip.samples} == {31}
    # The sample cycles themselves are irregular.
    deltas = {b.cycle - a.cycle for a, b in zip(tip.samples,
                                                tip.samples[1:])}
    assert len(deltas) > 1
