"""Oracle profiler tests, including the paper's Figure 4 scenarios.

The hand-built traces mirror Figure 4's 2-wide examples: Computing,
Stalled (partially hidden LLC hit), Flushed (mispredicted branch) and
Drained (instruction cache miss).
"""

import pytest

from repro.core.oracle import OracleProfiler
from repro.core.samples import Category
from repro.cpu.trace import replay
from repro.isa.assembler import assemble
from conftest import make_record

# A program providing addresses/types for the hand traces.  Addresses:
# 0x10000 add(I1), 0x10004 ld(load), 0x10008 add(I3), 0x1000c bne(branch),
# 0x10010 add(I5), 0x10014 sd(store).
PROGRAM = assemble("""
.func f
    add x1, x2, x3
    ld  x4, 0(x1)
    add x5, x4, x1
    bne x1, x2, f
    add x6, x5, x1
    sd  x6, 0(x1)
    halt
""")

I1, LOAD, I3, BR, I5, STORE = (0x10000 + 4 * i for i in range(6))


def _oracle(records):
    oracle = OracleProfiler(PROGRAM)
    replay(records, oracle)
    return oracle.report


def test_computing_splits_cycle_across_commits():
    """Figure 4a: co-committing instructions share the cycle equally."""
    report = _oracle([
        make_record(0, committed=[(I1, False, False), (I3, False, False)]),
    ])
    assert report.profile[I1] == pytest.approx(0.5)
    assert report.profile[I3] == pytest.approx(0.5)
    assert report.category_totals[Category.EXECUTION] == pytest.approx(1.0)


def test_stalled_charges_rob_head():
    """Figure 4b: 40 stall cycles go to the load at the head of the ROB."""
    records = [make_record(0, committed=[(I1, False, False)],
                           rob_head=LOAD)]
    records += [make_record(c, rob_head=LOAD) for c in range(1, 41)]
    records += [make_record(41, committed=[(LOAD, False, False),
                                           (I3, False, False)])]
    report = _oracle(records)
    assert report.profile[LOAD] == pytest.approx(40 + 0.5)
    assert report.profile[I1] == pytest.approx(1.0)
    assert report.profile[I3] == pytest.approx(0.5)
    assert report.category_totals[Category.LOAD_STALL] == pytest.approx(40)


def test_stall_category_follows_instruction_type():
    report = _oracle([make_record(0, rob_head=STORE),
                      make_record(1, rob_head=I1)])
    assert report.category_totals[Category.STORE_STALL] == pytest.approx(1)
    assert report.category_totals[Category.ALU_STALL] == pytest.approx(1)


def test_flushed_charges_mispredicted_branch():
    """Figure 4c: empty-ROB cycles after a mispredict go to the branch."""
    records = [make_record(0, committed=[(I1, False, False),
                                         (BR, True, False)])]
    records += [make_record(c) for c in range(1, 5)]       # empty ROB
    records += [make_record(5, rob_head=I5, dispatched=[I5])]
    records += [make_record(6, committed=[(I5, False, False)])]
    report = _oracle(records)
    assert report.profile[BR] == pytest.approx(0.5 + 4)
    # I5: one Stalled cycle at dispatch plus its own (solo) commit cycle.
    assert report.profile[I5] == pytest.approx(1 + 1)
    assert report.category_totals[Category.MISPREDICT] == pytest.approx(4)


def test_csr_flush_counts_as_misc_flush():
    records = [make_record(0, committed=[(I1, False, True)])]
    records += [make_record(c) for c in range(1, 4)]
    records += [make_record(4, committed=[(I3, False, False)],
                            dispatched=[I3])]
    report = _oracle(records)
    assert report.profile[I1] == pytest.approx(1 + 3)
    assert report.category_totals[Category.MISC_FLUSH] == pytest.approx(3)


def test_drained_charges_first_dispatched():
    """Figure 4d: empty-ROB cycles from an I-cache miss go to the first
    instruction that enters the ROB afterwards."""
    records = [make_record(0, committed=[(I1, False, False),
                                         (I3, False, False)])]
    records += [make_record(c) for c in range(1, 41)]      # drained
    records += [make_record(41, rob_head=I5, dispatched=[I5])]
    records += [make_record(42, committed=[(I5, False, False)])]
    report = _oracle(records)
    assert report.profile[I5] == pytest.approx(40 + 1 + 1)
    assert report.category_totals[Category.FRONTEND] == pytest.approx(40)


def test_exception_charges_excepting_instruction():
    """Section 2.2 page-miss walkthrough: exception cycles go to the
    faulting load until the handler dispatches."""
    records = [make_record(0, rob_head=LOAD)]
    records += [make_record(1, exception=LOAD)]
    records += [make_record(c) for c in (2, 3)]
    records += [make_record(4, rob_head=I5, dispatched=[I5])]
    report = _oracle(records)
    assert report.profile[LOAD] == pytest.approx(1 + 3)
    assert report.category_totals[Category.MISC_FLUSH] == pytest.approx(3)


def test_every_cycle_attributed_exactly_once():
    records = [
        make_record(0, committed=[(I1, False, False)], rob_head=LOAD),
        make_record(1, rob_head=LOAD),
        make_record(2, committed=[(LOAD, False, False),
                                  (I3, False, False), (BR, True, False)]),
        make_record(3),
        make_record(4, rob_head=I5, dispatched=[I5]),
        make_record(5, committed=[(I5, False, False)]),
    ]
    report = _oracle(records)
    assert sum(report.profile.values()) == pytest.approx(len(records))
    assert sum(report.category_totals.values()) == pytest.approx(len(records))


def test_unresolved_drain_dropped_at_finish():
    records = [make_record(0, committed=[(I1, False, False)]),
               make_record(1), make_record(2)]
    report = _oracle(records)
    assert sum(report.profile.values()) == pytest.approx(1.0)


def test_watch_cycles_capture_attribution():
    oracle = OracleProfiler(PROGRAM, watch_cycles=[1])
    replay([make_record(0, committed=[(I1, False, False)], rob_head=LOAD),
            make_record(1, rob_head=LOAD),
            make_record(2, committed=[(LOAD, False, False)])], oracle)
    weights, category = oracle.report.watched[1]
    assert weights == [(LOAD, 1.0)]
    assert category is Category.LOAD_STALL


def test_interval_accumulation_per_schedule():
    from repro.core.sampling import SampleSchedule
    schedule = SampleSchedule(period=2)  # samples at cycles 1, 3, 5 ...
    oracle = OracleProfiler(PROGRAM, watch_schedules=[schedule])
    replay([make_record(0, committed=[(I1, False, False)]),
            make_record(1, rob_head=LOAD),
            make_record(2, rob_head=LOAD),
            make_record(3, committed=[(LOAD, False, False)])], oracle)
    intervals = oracle.report.intervals[(2, "periodic", 0)]
    assert intervals[1] == {I1: 1.0, LOAD: 1.0}
    assert intervals[3] == {LOAD: 2.0}


def test_normalized_profile_sums_to_one():
    report = _oracle([
        make_record(0, committed=[(I1, False, False)]),
        make_record(1, rob_head=LOAD),
    ])
    normalized = report.normalized_profile()
    assert sum(normalized.values()) == pytest.approx(1.0)


def test_flush_breakdown_detail():
    """Oracle splits flush time into fine-grained kinds (the paper's
    'more fine-grained categories' extension)."""
    from repro.core.samples import FlushKind
    records = [
        make_record(0, committed=[(BR, True, False)]),
        make_record(1),                                   # mispredict
        make_record(2, rob_head=I5, dispatched=[I5]),
        make_record(3, committed=[(I5, False, True)]),
        make_record(4),                                   # CSR flush
        make_record(5, rob_head=I3, dispatched=[I3]),
        make_record(6, exception=LOAD),                   # page fault
        make_record(7),
        make_record(8, rob_head=I1, dispatched=[I1]),
        make_record(9, exception=LOAD, exception_is_ordering=True),
        make_record(10),
        make_record(11, rob_head=I1, dispatched=[I1]),
    ]
    report = _oracle(records)
    breakdown = report.flush_breakdown
    assert breakdown[FlushKind.MISPREDICT] == pytest.approx(1.0)
    assert breakdown[FlushKind.CSR] == pytest.approx(1.0)
    assert breakdown[FlushKind.EXCEPTION] == pytest.approx(2.0)
    assert breakdown[FlushKind.ORDERING] == pytest.approx(2.0)
    # The breakdown tallies with the coarse categories.
    coarse = (report.category_totals[Category.MISPREDICT]
              + report.category_totals[Category.MISC_FLUSH])
    assert sum(breakdown.values()) == pytest.approx(coarse)
