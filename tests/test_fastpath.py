"""Fast-path tests: the block replay engine must be bit-identical.

The columnar engine is only a valid optimisation if every observer
produces exactly the same samples, profiles and reports as the classic
record-at-a-time replay.  These tests check that equivalence three
ways: on hypothesis-generated random traces (all profilers), on the
checked-in golden trace (serial and sharded), and for the
simulation-side :class:`~repro.fastpath.BlockAssembler`.
"""

import io
import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from conftest import make_record
from repro.analysis.profiles import profile_checksum
from repro.core.baselines import SoftwareProfiler
from repro.core.oracle import OracleProfiler
from repro.core.sampling import SampleSchedule
from repro.cpu.machine import Machine
from repro.cpu.tracefile import (TraceReaderV2, TraceWriterV2,
                                 replay_trace)
from repro.fastpath import (BlockAssembler, CycleBlock, decode_block,
                            replay_blocks, replay_with_engine,
                            run_hotpath_bench, validate_engine)
from repro.harness import ProfilerConfig, replay_experiment
from repro.isa import assemble
from repro.kernel import Kernel
from repro.parallel import ProgramSpec, replay_sharded

DATA = os.path.join(os.path.dirname(os.path.abspath(__file__)), "data")

SEVEN_POLICIES = ("Software", "Dispatch", "LCI", "NCI", "NCI+ILP",
                  "TIP-ILP", "TIP")

TINY = """
.func main
    addi x1, x0, 3
loop:
    addi x1, x1, -1
    bne  x1, x0, loop
    halt
"""


def _tiny_image():
    return Kernel().boot(assemble(TINY, name="tiny.s"))


def _encode_v2(records, banks=4, chunk_cycles=8) -> bytes:
    buffer = io.BytesIO()
    writer = TraceWriterV2(buffer, banks, chunk_cycles=chunk_cycles)
    for record in records:
        writer.on_cycle(record)
    writer.on_finish(records[-1].cycle)
    return buffer.getvalue()


# -- hypothesis: random traces, every profiler, both engines ---------------------


@st.composite
def _random_records(draw):
    length = draw(st.integers(1, 40))
    addr = st.integers(0, 1 << 20)
    records = []
    for cycle in range(length):
        n_commits = draw(st.integers(0, 3))
        committed = [(draw(addr) & ~3, draw(st.booleans()),
                      draw(st.booleans())) for _ in range(n_commits)]
        rob_head = (draw(addr) & ~3 if not committed
                    and draw(st.booleans()) else None)
        exception = (draw(addr) & ~3
                     if rob_head is None and not committed
                     and draw(st.booleans()) else None)
        dispatched = [draw(addr) & ~3
                      for _ in range(draw(st.integers(0, 3)))]
        records.append(make_record(
            cycle, committed=committed, rob_head=rob_head,
            exception=exception,
            exception_is_ordering=draw(st.booleans()),
            dispatched=dispatched,
            dispatch_pc=(draw(addr) & ~3
                         if draw(st.booleans()) else None),
            fetch_pc=draw(addr) & ~3, banks=4))
    return records


def _profilers_under_test(image):
    for policy in SEVEN_POLICIES:
        for mode in ("periodic", "random"):
            yield ProfilerConfig(policy, 3, mode, 11).build(image)
    yield SoftwareProfiler(SampleSchedule(3), skid_cycles=2)
    yield OracleProfiler(image)


@given(records=_random_records())
@settings(max_examples=25, deadline=None)
def test_property_block_engine_matches_cycle_engine(records):
    image = _tiny_image()
    trace = _encode_v2(records)
    for cycle_prof, block_prof in zip(_profilers_under_test(image),
                                      _profilers_under_test(image)):
        replay_trace(trace, cycle_prof)
        replay_blocks(trace, block_prof)
        name = type(cycle_prof).__name__
        if isinstance(cycle_prof, OracleProfiler):
            assert cycle_prof.report.profile == \
                block_prof.report.profile, name
            assert cycle_prof.report.categorized == \
                block_prof.report.categorized, name
            assert cycle_prof.report.flush_breakdown == \
                block_prof.report.flush_breakdown, name
        else:
            assert profile_checksum(cycle_prof.samples) == \
                profile_checksum(block_prof.samples), name
            assert cycle_prof.profile() == block_prof.profile(), name


@given(records=_random_records())
@settings(max_examples=25, deadline=None)
def test_property_block_round_trip(records):
    trace = _encode_v2(records)
    decoded = []
    with TraceReaderV2(trace) as reader:
        for chunk in reader.index.chunks:
            block = decode_block(reader.chunk_payload(chunk),
                                 chunk.start_cycle, chunk.n_records,
                                 reader.banks)
            decoded.extend(block.records())
    assert len(decoded) == len(records)
    for original, copy in zip(records, decoded):
        assert copy.cycle == original.cycle
        assert copy.fetch_pc == original.fetch_pc
        assert copy.rob_head == original.rob_head
        assert copy.rob_empty == original.rob_empty
        assert copy.exception == original.exception
        assert copy.dispatch_pc == original.dispatch_pc
        assert tuple(copy.dispatched) == tuple(original.dispatched)
        assert [(c.addr, c.mispredicted, c.flushes)
                for c in copy.committed] == \
            [(c.addr, c.mispredicted, c.flushes)
             for c in original.committed]


# -- golden trace: block engine, serial and sharded ------------------------------


@pytest.fixture(scope="module")
def golden():
    with open(os.path.join(DATA, "golden.tiptrace"), "rb") as handle:
        trace = handle.read()
    with open(os.path.join(DATA, "golden_expected.json")) as handle:
        expected = json.load(handle)
    with open(os.path.join(DATA, "golden.s")) as handle:
        source = handle.read()
    image = Kernel().boot(assemble(source, name="golden.s"))
    spec = ProgramSpec(kind="asm", source=source, name="golden.s")
    configs = tuple(ProfilerConfig(policy, expected["period"],
                                   expected["mode"], expected["seed"])
                    for policy in SEVEN_POLICIES)
    return trace, expected, image, spec, configs


def _check_against_golden(result, expected):
    for name, want in expected["profilers"].items():
        profiler = result.profilers[name]
        assert len(profiler.samples) == want["samples"], name
        assert profile_checksum(profiler.samples) == \
            want["checksum"], name
        profile = {hex(addr): weight
                   for addr, weight in profiler.profile().items()}
        assert profile == want["profile"], name


def test_golden_block_engine_serial(golden):
    trace, expected, image, _spec, configs = golden
    result = replay_experiment(io.BytesIO(trace), image, configs,
                               engine="block")
    assert result.replay.cycles == expected["cycles"]
    assert result.replay.engine == "block"
    _check_against_golden(result, expected)
    oracle = {hex(addr): weight
              for addr, weight in result.oracle.profile.items()}
    assert oracle == expected["oracle_profile"]


@pytest.mark.parametrize("jobs", [2, 7])
def test_golden_block_engine_sharded(golden, jobs):
    trace, expected, image, spec, configs = golden
    outcome = replay_sharded(io.BytesIO(trace), spec, configs, jobs,
                             image=image, engine="block")
    assert outcome.mode == "sharded"
    assert outcome.cycles == expected["cycles"]
    for name, want in expected["profilers"].items():
        profiler = outcome.profilers[name]
        assert profile_checksum(profiler.samples) == \
            want["checksum"], name


def test_golden_cycle_engine_still_available(golden):
    trace, expected, image, _spec, configs = golden
    result = replay_experiment(io.BytesIO(trace), image, configs,
                               engine="cycle")
    assert result.replay.engine == "cycle"
    _check_against_golden(result, expected)


# -- engine selection and fallback ----------------------------------------------


def test_validate_engine_rejects_unknown():
    with pytest.raises(ValueError, match="unknown replay engine"):
        validate_engine("turbo")


def test_v1_trace_falls_back_to_cycle_engine():
    from repro.cpu.tracefile import TraceWriter
    machine = Machine(assemble(TINY, name="tiny.s"))
    buffer = io.BytesIO()
    machine.attach(TraceWriter(buffer, machine.config.rob_banks))
    machine.run(10_000)
    profiler = SoftwareProfiler(SampleSchedule(5))
    stream = io.BytesIO(buffer.getvalue())
    cycles, engine = replay_with_engine(stream, [profiler],
                                        engine="block")
    assert engine == "cycle"
    assert cycles > 0
    assert profiler.samples


# -- simulation-side batching ----------------------------------------------------


def test_block_assembler_matches_direct_attachment():
    def run(wrap):
        program = assemble(TINY, name="tiny.s")
        machine = Machine(program)
        profilers = list(_profilers_under_test(machine.image))
        if wrap:
            machine.attach(BlockAssembler(profilers,
                                          machine.config.rob_banks,
                                          block_cycles=16))
        else:
            for profiler in profilers:
                machine.attach(profiler)
        machine.run(10_000)
        return profilers

    for direct, batched in zip(run(False), run(True)):
        name = type(direct).__name__
        if isinstance(direct, OracleProfiler):
            assert direct.report.profile == batched.report.profile
        else:
            assert profile_checksum(direct.samples) == \
                profile_checksum(batched.samples), name


def test_block_assembler_rejects_empty_blocks():
    with pytest.raises(ValueError, match="block_cycles"):
        BlockAssembler([], 4, block_cycles=0)


def test_from_records_round_trip():
    records = [make_record(3, committed=[(0x40, True, False)],
                           dispatched=[0x44, 0x48], fetch_pc=0x4C,
                           dispatch_pc=0x44, banks=4),
               make_record(4, rob_head=0x50, fetch_pc=0x54, banks=4)]
    block = CycleBlock.from_records(records, banks=4)
    assert block.start_cycle == 3
    assert block.n == 2
    copies = list(block.records())
    assert copies[0].committed[0].addr == 0x40
    assert copies[0].committed[0].mispredicted
    assert copies[1].rob_head == 0x50
    assert not copies[1].rob_empty


# -- hot-path benchmark -----------------------------------------------------------


def test_hotpath_bench_quick(golden, tmp_path):
    trace, expected, image, _spec, _configs = golden
    output = str(tmp_path / "BENCH_hotpath.json")
    result = run_hotpath_bench(trace, image, output=output,
                               period=expected["period"],
                               mode=expected["mode"],
                               seed=expected["seed"],
                               policies=("TIP", "LCI"), repeats=1)
    assert result["checksums_equal"]
    assert set(result["rows"]) == {"TIP", "LCI", "Oracle", "all"}
    for entry in result["rows"].values():
        assert entry["checksums_equal"]
        assert entry["cycle_s"] > 0 and entry["block_s"] > 0
    with open(output) as handle:
        assert json.load(handle)["checksums_equal"]
