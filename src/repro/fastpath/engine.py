"""Replay engines: record-at-a-time versus columnar blocks.

Two interchangeable ways to drive :class:`~repro.cpu.trace.
TraceObserver` sets over a recorded trace:

* the **cycle** engine (:func:`~repro.cpu.tracefile.replay_trace`) --
  decode one :class:`CycleRecord` per cycle and call ``on_cycle`` on
  every observer;
* the **block** engine (:func:`replay_blocks`) -- decode each v2 chunk
  into a columnar :class:`~repro.fastpath.block.CycleBlock` and call
  ``on_block`` once per observer per chunk.  Observers without a
  columnar fast path transparently fall back to a loop over
  ``on_cycle`` (the :class:`~repro.cpu.trace.TraceObserver` default),
  so the two engines produce bit-identical results by construction --
  the block engine only changes *how often Python function calls
  happen*, never what the observers see.

:func:`replay_with_engine` picks an engine with automatic degradation
(v1 traces have no chunk index and replay record-at-a-time), and
:class:`BlockAssembler` brings the same batching to live simulation:
it buffers the core's per-cycle records and dispatches whole blocks.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

from ..cpu.trace import CycleRecord, TraceObserver, shifted_record
from ..cpu.tracefile import (TraceReaderV2, TraceReaderV3, open_reader,
                             replay_trace)
from .block import CycleBlock

#: Engine names accepted across the CLI and the replay entry points.
CYCLE_ENGINE = "cycle"
BLOCK_ENGINE = "block"
ENGINES = (CYCLE_ENGINE, BLOCK_ENGINE)

#: Records per block when batching live simulation output.
DEFAULT_ASSEMBLE_CYCLES = 1024

TraceSource = Union[bytes, str, object]


def validate_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(f"unknown replay engine {engine!r} "
                         f"(expected one of {ENGINES})")
    return engine


def replay_blocks(source: TraceSource,
                  *observers: TraceObserver) -> int:
    """Replay a v2/v3 trace through *observers* one chunk-block at a
    time.

    *source* may also be an already-open :class:`TraceReaderV2`/
    :class:`TraceReaderV3`; the reader is then reused (one fd/mmap
    across repeated replays) and left open for the caller to close.
    Returns the cycle count.  Raises :class:`ValueError` for v1 traces
    (no chunk directory) -- use :func:`replay_with_engine` for
    automatic fallback.
    """
    final_cycle = 0
    if isinstance(source, (TraceReaderV2, TraceReaderV3)):
        reader = source
        owns = False
    else:
        reader = open_reader(source)
        owns = True
    try:
        for chunk in reader.index.chunks:
            block = reader.chunk_block(chunk)
            for observer in observers:
                observer.on_block(block)
            final_cycle = chunk.start_cycle + chunk.n_records - 1
    finally:
        if owns:
            reader.close()
    for observer in observers:
        observer.on_finish(final_cycle)
    return final_cycle + 1


def replay_with_engine(source: TraceSource,
                       observers: Iterable[TraceObserver],
                       engine: str = BLOCK_ENGINE) -> Tuple[int, str]:
    """Replay *source* with the requested engine, degrading gracefully.

    Returns ``(cycles, engine_used)``; ``engine_used`` is ``"cycle"``
    when a block replay was requested but the trace is v1 (flat
    streams cannot be chunk-decoded).
    """
    observers = tuple(observers)
    validate_engine(engine)
    if engine == BLOCK_ENGINE:
        try:
            return replay_blocks(source, *observers), BLOCK_ENGINE
        except ValueError:
            # v1 trace: no chunk index.  Nothing has been consumed
            # (the reader fails on the magic) except a seekable
            # stream's header bytes; rewind those.
            if hasattr(source, "seek"):
                source.seek(0)
    return replay_trace(source, *observers), CYCLE_ENGINE


class BlockAssembler(TraceObserver):
    """Batches a live per-cycle record stream into cycle blocks.

    Attach one assembler to a :class:`~repro.cpu.machine.Machine`
    instead of attaching N observers directly: the core then pays one
    ``on_cycle`` call per cycle (buffering the record) and the wrapped
    observers consume columnar blocks -- the same end-to-end batching
    the block replay engine applies to recorded traces.

    Like the trace wire format, blocks carry only the head entry of
    the oldest ROB bank, so observers that inspect the full
    ``head_banks`` detail (none of the stock profilers do) should stay
    attached directly.
    """

    def __init__(self, observers: Iterable[TraceObserver], banks: int,
                 block_cycles: int = DEFAULT_ASSEMBLE_CYCLES):
        if block_cycles < 1:
            raise ValueError("block_cycles must be >= 1")
        self.observers = list(observers)
        self.banks = banks
        self.block_cycles = block_cycles
        self.blocks_dispatched = 0
        #: Buffered ``(record, count)`` runs; ``count > 1`` entries come
        #: from the simulator's stall fast-forward and columnarize at
        #: C speed (:meth:`CycleBlock.from_runs`).
        self._buffer: List[Tuple[CycleRecord, int]] = []
        self._buffered = 0

    def on_cycle(self, record: CycleRecord) -> None:
        self._buffer.append((record, 1))
        self._buffered += 1
        if self._buffered >= self.block_cycles:
            self._flush()

    def on_stall_run(self, record: CycleRecord, count: int) -> None:
        # Split long runs at block boundaries so block sizes match what
        # a single-stepped simulation would have produced.
        while count:
            space = self.block_cycles - self._buffered
            take = count if count < space else space
            self._buffer.append((record, take))
            self._buffered += take
            count -= take
            if self._buffered >= self.block_cycles:
                self._flush()
            if count:
                record = shifted_record(record, take)

    def on_cycle_run(self, records: Sequence[CycleRecord],
                     repeats: int) -> None:
        # Whole memoized periods at a time, split at block boundaries.
        # Only the first record of a block needs its true cycle number
        # (:meth:`CycleBlock.from_runs` derives every other cycle from
        # the block's start), so template records are appended raw via
        # C-level list multiplication and a re-based copy is made only
        # when a new block starts mid-run.
        n = len(records)
        if not n or repeats <= 0:
            return
        template = [(r, 1) for r in records]
        total = n * repeats
        t = 0
        while t < total:
            if self._buffered == 0 and t:
                i = t % n
                self._buffer.append(
                    (shifted_record(records[i], t - i), 1))
                self._buffered += 1
                t += 1
            space = self.block_cycles - self._buffered
            take = min(space, total - t)
            i = t % n
            done = 0
            if i and take:
                done = min(take, n - i)
                self._buffer.extend(template[i:i + done])
            whole, tail = divmod(take - done, n)
            if whole:
                self._buffer.extend(template * whole)
            if tail:
                self._buffer.extend(template[:tail])
            self._buffered += take
            t += take
            if self._buffered >= self.block_cycles:
                self._flush()

    def on_finish(self, final_cycle: int) -> None:
        if self._buffer:
            self._flush()
        for observer in self.observers:
            observer.on_finish(final_cycle)

    def _flush(self) -> None:
        block = CycleBlock.from_runs(self._buffer, self.banks)
        self._buffer = []
        self._buffered = 0
        for observer in self.observers:
            observer.on_block(block)
        self.blocks_dispatched += 1
