"""Columnar trace replay: decode chunks into blocks, not records.

The cycle engine pays a Python object and a method call per cycle per
observer; profiling long traces spends most of its time in that glue.
This package replays v2 traces in **columnar batches** instead: each
chunk decodes into one :class:`CycleBlock` of parallel arrays, every
observer consumes the whole block through ``on_block``, and block-native
profilers touch only the cycles where something can happen.  Results are
bit-identical to the cycle engine for every stock observer.

See ``docs/performance.md`` for the layout and the measured speedups.
"""

from .bench import (HOTPATH_POLICIES, render_hotpath_bench,
                    run_hotpath_bench)
from .block import CycleBlock, decode_block
from .engine import (
    BLOCK_ENGINE,
    CYCLE_ENGINE,
    DEFAULT_ASSEMBLE_CYCLES,
    ENGINES,
    BlockAssembler,
    replay_blocks,
    replay_with_engine,
    validate_engine,
)

__all__ = [
    "BLOCK_ENGINE",
    "CYCLE_ENGINE",
    "DEFAULT_ASSEMBLE_CYCLES",
    "ENGINES",
    "BlockAssembler",
    "CycleBlock",
    "HOTPATH_POLICIES",
    "decode_block",
    "render_hotpath_bench",
    "replay_blocks",
    "run_hotpath_bench",
    "replay_with_engine",
    "validate_engine",
]
