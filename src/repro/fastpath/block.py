"""Columnar cycle blocks: the unit of batched trace replay.

The cycle engine hands every observer one :class:`~repro.cpu.trace.
CycleRecord` object per cycle, which costs an object allocation, a
tuple of ``CommittedInst`` objects and a Python method call per
observer per cycle.  A :class:`CycleBlock` decodes a whole v2 chunk
into *parallel arrays* instead -- one column per record field, with
variable-length fields flattened behind prefix-sum offset arrays -- so
the per-cycle hot path becomes integer indexing into shared columns.

Packed representation (``n`` = number of records in the block):

* ``flags``                -- ``bytearray`` of ``n`` raw per-record
  flag bytes (empty/exception/ordering/dispatch-pc/head bits of the
  trace wire format);
* ``oldest_bank``          -- ``bytearray`` of ``n``;
* ``fetch_pc``             -- list of ``n`` ints;
* ``opt_vals``/``opt_base`` -- the present optional u64 fields
  (``rob_head``, ``exception``, ``dispatch_pc``, in wire order) of all
  records flattened into one list behind an ``array('I')`` of ``n + 1``
  prefix offsets;
* ``commit_base``          -- ``array('I')`` of ``n + 1`` prefix
  offsets into the flattened commit columns;
* ``commit_addr``          -- flattened committed addresses (ints);
* ``commit_meta``          -- ``bytearray``, one metadata byte per
  committed instruction (``bank | mispredicted << 6 | flushes << 7``,
  the trace wire format);
* ``disp_base``/``disp_addr`` -- same layout for dispatched addresses.

Keeping the decode loop down to this packed form is what makes it
fast; the classic dense columns (``rob_empty``, ``rob_head``,
``exception``, ``exc_ordering``, ``dispatch_pc``) are *derived lazily*
and cached -- flag bits expand through ``bytes.translate`` and the
optional columns through one list comprehension each -- so observers
that touch every cycle (the Oracle) pay one C-speed pass per column
while sampling profilers use the sparse ``*_at`` accessors and never
materialize them.

Sampling profilers locate the next cycle that matters without
visiting every record: ``bisect`` over the prefix-sum offset arrays
finds the next committing/dispatching record in O(log n), and the
cached flag masks (``exc_mask``, ``disp_pc_mask``) answer "next
record with this flag" through C-speed ``bytes.find``/``rfind``.

Columns may be plain Python containers or zero-copy ``memoryview``
casts over an mmap-ed v3 chunk (:mod:`repro.cpu.tracefile`); both
support the indexing, slicing and bisection the fast paths rely on.

Blocks are built two ways: :func:`decode_block` parses a raw v2 chunk
payload straight into columns (no intermediate record objects), and
:meth:`CycleBlock.from_records` columnarizes live records (the
simulation-side :class:`~repro.fastpath.engine.BlockAssembler`); v3
chunks skip decoding entirely and wrap the stored columns in place.
``record(i)``/``records()`` materialize classic ``CycleRecord``
objects on demand for observers without a columnar fast path.
"""

from __future__ import annotations

import struct
from array import array
from typing import Iterator, List, Optional, Sequence, Tuple

from ..cpu.trace import CommittedInst, CycleRecord, HeadEntry

#: Per-record header (flags, counts, oldest bank) fused with the
#: always-present fetch PC -- one unpack per record.
_HDRPC = struct.Struct("<BBBQ")
#: Small-run unpackers for k consecutive u64s (optional fields and
#: dispatch groups).
_QFMT = tuple(struct.Struct("<%dQ" % k) for k in range(16))
#: Commit-group unpackers: k (addr u64, meta byte) pairs at once.
_CFMT = tuple(struct.Struct("<" + "QB" * k) for k in range(16))

_F_EMPTY = 1 << 0
_F_EXC = 1 << 1
_F_ORD = 1 << 2
_F_DISP_PC = 1 << 3
_F_HEAD = 1 << 4

#: flags byte -> number of optional u64s following the fetch PC.
_NOPT = tuple(bin(f & (_F_EXC | _F_DISP_PC | _F_HEAD)).count("1")
              for f in range(256))
#: ``translate`` tables expanding one flag bit into a 0/1 column.
_EMPTY_TABLE = bytes(1 if f & _F_EMPTY else 0 for f in range(256))
_ORD_TABLE = bytes(1 if f & _F_ORD else 0 for f in range(256))
_EXC_TABLE = bytes(1 if f & _F_EXC else 0 for f in range(256))
_DISP_PC_TABLE = bytes(1 if f & _F_DISP_PC else 0 for f in range(256))

class CycleBlock:
    """A batch of consecutive cycles in columnar form."""

    __slots__ = (
        "start_cycle", "n", "banks", "flags", "oldest_bank", "fetch_pc",
        "opt_vals", "opt_base", "commit_base", "commit_addr",
        "commit_meta", "disp_base", "disp_addr", "_rob_empty",
        "_rob_head", "_exception", "_exc_ordering", "_dispatch_pc",
        "_flags_bytes", "_exc_mask", "_disp_pc_mask",
    )

    def __init__(self, start_cycle: int, n: int, banks: int,
                 flags: bytearray, oldest_bank: bytearray,
                 fetch_pc: List[int], opt_vals: List[int],
                 opt_base: "array", commit_base: "array",
                 commit_addr: List[int], commit_meta: bytearray,
                 disp_base: "array", disp_addr: List[int]):
        self.start_cycle = start_cycle
        self.n = n
        self.banks = banks
        self.flags = flags
        self.oldest_bank = oldest_bank
        self.fetch_pc = fetch_pc
        self.opt_vals = opt_vals
        self.opt_base = opt_base
        self.commit_base = commit_base
        self.commit_addr = commit_addr
        self.commit_meta = commit_meta
        self.disp_base = disp_base
        self.disp_addr = disp_addr
        self._rob_empty: Optional[bytes] = None
        self._rob_head: Optional[List[Optional[int]]] = None
        self._exception: Optional[List[Optional[int]]] = None
        self._exc_ordering: Optional[bytes] = None
        self._dispatch_pc: Optional[List[Optional[int]]] = None
        self._flags_bytes: Optional[bytes] = None
        self._exc_mask: Optional[bytes] = None
        self._disp_pc_mask: Optional[bytes] = None

    # -- sparse accessors (cheap point lookups, no materialization) ----------------

    def rob_empty_at(self, i: int) -> int:
        return self.flags[i] & _F_EMPTY

    def rob_head_at(self, i: int) -> Optional[int]:
        # The head address is the first optional u64 when present.
        if self.flags[i] & _F_HEAD:
            return self.opt_vals[self.opt_base[i]]
        return None

    def exception_at(self, i: int) -> Optional[int]:
        flags = self.flags[i]
        if flags & _F_EXC:
            return self.opt_vals[self.opt_base[i]
                                 + ((flags >> 4) & 1)]
        return None

    def dispatch_pc_at(self, i: int) -> Optional[int]:
        # The dispatch-stage PC is the last optional u64 when present.
        if self.flags[i] & _F_DISP_PC:
            return self.opt_vals[self.opt_base[i + 1] - 1]
        return None

    # -- dense columns (lazy, shared by every observer that needs them) ------------

    @property
    def flags_bytes(self) -> bytes:
        """The flags column as ``bytes``.

        ``bytes`` supports the C-speed ``translate``/``find``/``count``
        scans the vectorized observers run; ``memoryview``-backed
        blocks (mmap-ed v3 chunks) pay one copy here, amortized across
        every mask derived from it.
        """
        if self._flags_bytes is None:
            flags = self.flags
            self._flags_bytes = (flags if type(flags) is bytes
                                 else bytes(flags))
        return self._flags_bytes

    @property
    def exc_mask(self) -> bytes:
        """0/1 byte per record: record carries an exception."""
        if self._exc_mask is None:
            self._exc_mask = self.flags_bytes.translate(_EXC_TABLE)
        return self._exc_mask

    @property
    def disp_pc_mask(self) -> bytes:
        """0/1 byte per record: record has a dispatch-stage PC."""
        if self._disp_pc_mask is None:
            self._disp_pc_mask = \
                self.flags_bytes.translate(_DISP_PC_TABLE)
        return self._disp_pc_mask

    @property
    def rob_empty(self) -> bytes:
        if self._rob_empty is None:
            self._rob_empty = self.flags_bytes.translate(_EMPTY_TABLE)
        return self._rob_empty

    @property
    def exc_ordering(self) -> bytes:
        if self._exc_ordering is None:
            self._exc_ordering = self.flags_bytes.translate(_ORD_TABLE)
        return self._exc_ordering

    @property
    def rob_head(self) -> List[Optional[int]]:
        if self._rob_head is None:
            vals, base, flags = self.opt_vals, self.opt_base, self.flags
            self._rob_head = [vals[base[i]] if flags[i] & _F_HEAD
                              else None for i in range(self.n)]
        return self._rob_head

    @property
    def exception(self) -> List[Optional[int]]:
        if self._exception is None:
            vals, base, flags = self.opt_vals, self.opt_base, self.flags
            self._exception = [
                vals[base[i] + ((flags[i] >> 4) & 1)]
                if flags[i] & _F_EXC else None
                for i in range(self.n)]
        return self._exception

    @property
    def dispatch_pc(self) -> List[Optional[int]]:
        if self._dispatch_pc is None:
            vals, base, flags = self.opt_vals, self.opt_base, self.flags
            self._dispatch_pc = [
                vals[base[i + 1] - 1] if flags[i] & _F_DISP_PC
                else None for i in range(self.n)]
        return self._dispatch_pc

    # -- record materialization ----------------------------------------------------

    def record(self, i: int) -> CycleRecord:
        """Materialize record *i* as a classic :class:`CycleRecord`.

        Matches the cycle engine's decoder bit for bit; like the wire
        format, only the oldest bank's head entry is represented in
        ``head_banks``.
        """
        lo, hi = self.commit_base[i], self.commit_base[i + 1]
        committed = tuple(
            CommittedInst(self.commit_addr[k], self.commit_meta[k] & 0x3F,
                          bool(self.commit_meta[k] & 0x40),
                          bool(self.commit_meta[k] & 0x80))
            for k in range(lo, hi))
        dlo, dhi = self.disp_base[i], self.disp_base[i + 1]
        rob_head = self.rob_head_at(i)
        head_banks: List[Optional[HeadEntry]] = [None] * self.banks
        if rob_head is not None:
            head_banks[self.oldest_bank[i]] = HeadEntry(rob_head, False)
        return CycleRecord(
            cycle=self.start_cycle + i, committed=committed,
            rob_head=rob_head, rob_empty=bool(self.flags[i] & _F_EMPTY),
            exception=self.exception_at(i),
            exception_is_ordering=bool(self.flags[i] & _F_ORD),
            dispatched=tuple(self.disp_addr[dlo:dhi]),
            dispatch_pc=self.dispatch_pc_at(i),
            fetch_pc=self.fetch_pc[i],
            head_banks=tuple(head_banks), oldest_bank=self.oldest_bank[i])

    def records(self) -> Iterator[CycleRecord]:
        """Materialize every record (the ``on_cycle`` fallback path)."""
        for i in range(self.n):
            yield self.record(i)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return (f"<block [{self.start_cycle}, "
                f"{self.start_cycle + self.n}) commits="
                f"{len(self.commit_addr)}>")

    # -- construction ----------------------------------------------------------------

    @classmethod
    def from_records(cls, records: Sequence[CycleRecord],
                     banks: int) -> "CycleBlock":
        """Columnarize live *records* (consecutive cycles).

        Like the trace wire format, only fields every observer can see
        through a trace are preserved; richer simulation-only head-bank
        detail is dropped.
        """
        n = len(records)
        flags = bytearray()
        oldest = bytearray()
        fetch_pc: List[int] = []
        opt_vals: List[int] = []
        opt_base = array("I", [0])
        commit_base = array("I", [0])
        commit_addr: List[int] = []
        commit_meta = bytearray()
        disp_base = array("I", [0])
        disp_addr: List[int] = []
        for record in records:
            record_flags = 0
            if record.rob_empty:
                record_flags |= _F_EMPTY
            if record.exception_is_ordering:
                record_flags |= _F_ORD
            if record.rob_head is not None:
                record_flags |= _F_HEAD
                opt_vals.append(record.rob_head)
            if record.exception is not None:
                record_flags |= _F_EXC
                opt_vals.append(record.exception)
            if record.dispatch_pc is not None:
                record_flags |= _F_DISP_PC
                opt_vals.append(record.dispatch_pc)
            flags.append(record_flags)
            opt_base.append(len(opt_vals))
            oldest.append(record.oldest_bank)
            fetch_pc.append(record.fetch_pc)
            for commit in record.committed:
                commit_addr.append(commit.addr)
                commit_meta.append(
                    (commit.bank & 0x3F)
                    | (0x40 if commit.mispredicted else 0)
                    | (0x80 if commit.flushes else 0))
            commit_base.append(len(commit_addr))
            disp_addr.extend(record.dispatched)
            disp_base.append(len(disp_addr))
        start = records[0].cycle if n else 0
        return cls(start, n, banks, flags, oldest, fetch_pc, opt_vals,
                   opt_base, commit_base, commit_addr, commit_meta,
                   disp_base, disp_addr)

    @classmethod
    def from_runs(cls, runs: Sequence[Tuple[CycleRecord, int]],
                  banks: int) -> "CycleBlock":
        """Columnarize ``(record, count)`` runs of consecutive cycles.

        A run stands for *count* cycles identical to its record except
        for the cycle number -- the shape the simulator's stall
        fast-forward emits (:meth:`~repro.cpu.trace.TraceObserver.
        on_stall_run`).  Columns for repeated records expand through
        C-speed sequence multiplication instead of per-cycle appends,
        and the result is indistinguishable from
        :meth:`from_records` over the materialized cycles.
        """
        flags = bytearray()
        oldest = bytearray()
        fetch_pc: List[int] = []
        opt_vals: List[int] = []
        opt_base = array("I", [0])
        commit_base = array("I", [0])
        commit_addr: List[int] = []
        commit_meta = bytearray()
        disp_base = array("I", [0])
        disp_addr: List[int] = []
        n = 0
        for record, count in runs:
            record_flags = 0
            opts: List[int] = []
            if record.rob_empty:
                record_flags |= _F_EMPTY
            if record.exception_is_ordering:
                record_flags |= _F_ORD
            if record.rob_head is not None:
                record_flags |= _F_HEAD
                opts.append(record.rob_head)
            if record.exception is not None:
                record_flags |= _F_EXC
                opts.append(record.exception)
            if record.dispatch_pc is not None:
                record_flags |= _F_DISP_PC
                opts.append(record.dispatch_pc)
            flags.extend(bytes((record_flags,)) * count)
            oldest.extend(bytes((record.oldest_bank,)) * count)
            fetch_pc.extend([record.fetch_pc] * count)
            if opts:
                opt_vals.extend(opts * count)
            _extend_prefix(opt_base, len(opts), count)
            committed = record.committed
            if committed:
                commit_addr.extend(
                    [c.addr for c in committed] * count)
                commit_meta.extend(bytes(
                    (c.bank & 0x3F)
                    | (0x40 if c.mispredicted else 0)
                    | (0x80 if c.flushes else 0)
                    for c in committed) * count)
            _extend_prefix(commit_base, len(committed), count)
            if record.dispatched:
                disp_addr.extend(list(record.dispatched) * count)
            _extend_prefix(disp_base, len(record.dispatched), count)
            n += count
        start = runs[0][0].cycle if runs else 0
        return cls(start, n, banks, flags, oldest, fetch_pc, opt_vals,
                   opt_base, commit_base, commit_addr, commit_meta,
                   disp_base, disp_addr)


def _extend_prefix(base: "array", k: int, count: int) -> None:
    """Append *count* prefix-sum entries, each advancing by *k*."""
    last = base[-1]
    if k:
        base.extend(range(last + k, last + k * count + 1, k))
    else:
        base.extend([last] * count)


def decode_block(raw: bytes, start_cycle: int, n_records: int,
                 banks: int) -> CycleBlock:
    """Decode a raw (decompressed) v2 chunk payload into columns.

    Parses the shared per-record wire format of
    :mod:`repro.cpu.tracefile` without creating any per-record objects:
    one fused header+PC unpack per record, one batched unpack each for
    the optional u64 run, the commit group and the dispatch group.
    """
    hdrpc_unpack = _HDRPC.unpack_from
    nopt = _NOPT
    qfmt = _QFMT
    cfmt = _CFMT
    flags_col = bytearray()
    flags_append = flags_col.append
    oldest = bytearray()
    oldest_append = oldest.append
    fetch_pc: List[int] = []
    fetch_append = fetch_pc.append
    opt_vals: List[int] = []
    opt_extend = opt_vals.extend
    opt_base = array("I", [0])
    opt_base_append = opt_base.append
    commit_base = array("I", [0])
    commit_base_append = commit_base.append
    commit_addr: List[int] = []
    commit_addr_extend = commit_addr.extend
    commit_meta = bytearray()
    commit_meta_extend = commit_meta.extend
    disp_base = array("I", [0])
    disp_base_append = disp_base.append
    disp_addr: List[int] = []
    disp_addr_extend = disp_addr.extend
    pos = 0
    try:
        for _ in range(n_records):
            flags, counts, oldest_bank, pc = hdrpc_unpack(raw, pos)
            pos += 11
            flags_append(flags)
            oldest_append(oldest_bank)
            fetch_append(pc)
            k = nopt[flags]
            if k:
                opt_extend(qfmt[k].unpack_from(raw, pos))
                pos += 8 * k
            opt_base_append(len(opt_vals))
            nc = counts & 0xF
            if nc:
                group = cfmt[nc].unpack_from(raw, pos)
                pos += 9 * nc
                commit_addr_extend(group[::2])
                commit_meta_extend(group[1::2])
            commit_base_append(len(commit_addr))
            nd = counts >> 4
            if nd:
                disp_addr_extend(qfmt[nd].unpack_from(raw, pos))
                pos += 8 * nd
            disp_base_append(len(disp_addr))
    except (struct.error, IndexError):
        raise ValueError("truncated trace record") from None
    if pos != len(raw):
        raise ValueError("trailing bytes in trace chunk")
    return CycleBlock(start_cycle, n_records, banks, flags_col, oldest,
                      fetch_pc, opt_vals, opt_base, commit_base,
                      commit_addr, commit_meta, disp_base, disp_addr)
