"""``repro bench --trace``: replay-engine timing across trace formats.

Times each stock profiler (plus the Oracle, plus one run with all of
them attached at once) replaying the same recorded trace under three
engines and writes the comparison to ``BENCH_hotpath.json``:

* **cycle** -- record-at-a-time replay of the v2 encoding;
* **block (v2)** -- columnar replay that decodes every v2 chunk
  payload into a :class:`~repro.fastpath.block.CycleBlock`;
* **v3 (zero-copy)** -- columnar replay of the v3 encoding, where
  chunk columns are ``memoryview`` casts over one mmap of the file
  and no per-record decode happens at all.

The input trace may be any format version; it is normalized to both a
v2 byte string and a v3 file before timing, so every engine replays
the exact same records.  Every profiler's sample-stream checksum and
final profile are compared across all three engines, so the benchmark
doubles as a differential test: a faster engine only counts as a win
if it is *bit-identical*, and CI fails the run when any checksum
diverges.

Timings are best-of-N wall clock on the current machine (N=2 with
``quick=True`` for CI smoke runs, N=5 otherwise); the JSON records N
and the host environment under ``meta`` so archived results stay
interpretable.  ``v3_vs_v2_block`` is the headline ratio: the
geometric mean, over the sampling-policy rows, of v2-block time over
v3 time.
"""

from __future__ import annotations

import io
import json
import math
import os
import platform
import tempfile
import time
from typing import Dict, List, Optional, Sequence

from ..analysis.profiles import profile_checksum
from ..core.oracle import OracleProfiler
from ..cpu.tracefile import (MAGIC_V2, MAGIC_V3, TraceReaderV2,
                             TraceReaderV3, convert_trace, replay_trace)
from ..isa.program import Program
from .engine import replay_blocks

#: The seven sampling policies timed by the hot-path benchmark.
HOTPATH_POLICIES = ("Software", "Dispatch", "LCI", "NCI", "NCI+ILP",
                    "TIP-ILP", "TIP")
#: Synthetic row keys for the non-policy measurements.
ORACLE_ROW = "Oracle"
ALL_ROW = "all"

DEFAULT_REPEATS = 5
QUICK_REPEATS = 2


def _best_of(fn, repeats: int) -> float:
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def _bench_meta(repeats: int) -> Dict:
    """Environment stamp stored alongside every timing (``meta``)."""
    return {
        "trials": repeats,
        "timing": "best-of-N wall clock",
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "host": platform.node(),
    }


def run_hotpath_bench(trace, image: Program,
                      output: Optional[str] = "BENCH_hotpath.json",
                      period: int = 23,
                      mode: str = "random",
                      seed: int = 2021,
                      policies: Sequence[str] = HOTPATH_POLICIES,
                      quick: bool = False,
                      repeats: Optional[int] = None,
                      verbose: bool = False) -> Dict:
    """Benchmark the replay engines on *trace* (bytes or path).

    *image* is the booted :class:`~repro.isa.program.Program` the trace
    was recorded from (needed by TIP and the Oracle for stall
    classification).  Returns the result dict and, unless *output* is
    ``None``, writes it there as JSON.
    """
    from ..harness.experiment import ProfilerConfig

    source_path = trace if isinstance(trace, str) else None
    if source_path is not None:
        with open(source_path, "rb") as handle:
            raw = handle.read()
    else:
        raw = bytes(trace)
    if repeats is None:
        repeats = QUICK_REPEATS if quick else DEFAULT_REPEATS

    # Normalize the input to both timed encodings: v2 bytes for the
    # cycle and v2-block engines, a v3 *file* for the mmap engine.
    magic = raw[:8]
    if magic == MAGIC_V2:
        v2_bytes = raw
    else:
        buffer = io.BytesIO()
        convert_trace(raw, buffer, version=2)
        v2_bytes = buffer.getvalue()
    tmp_path = None
    if source_path is not None and magic == MAGIC_V3:
        v3_path = source_path
    else:
        fd, tmp_path = tempfile.mkstemp(suffix=".tiptrace")
        os.close(fd)
        convert_trace(raw, tmp_path, version=3)
        v3_path = tmp_path

    configs = {policy: ProfilerConfig(policy, period, mode, seed)
               for policy in policies}

    def build(policy: str):
        return configs[policy].build(image)

    def build_all() -> List:
        observers = [build(policy) for policy in policies]
        observers.append(OracleProfiler(image))
        return observers

    result: Dict = {
        "period": period,
        "mode": mode,
        "seed": seed,
        "repeats": repeats,
        "quick": quick,
        "trace_bytes": len(raw),
        "v2_bytes": len(v2_bytes),
        "v3_bytes": os.path.getsize(v3_path),
        "meta": _bench_meta(repeats),
        "rows": {},
    }

    v2_reader = TraceReaderV2(v2_bytes)
    v3_reader = TraceReaderV3(v3_path)
    try:
        checksums_equal = True
        rows = list(policies) + [ORACLE_ROW, ALL_ROW]
        for row in rows:
            if verbose:
                print(f"[bench] hotpath {row} ...", flush=True)
            if row == ALL_ROW:
                make = build_all
            elif row == ORACLE_ROW:
                def make():
                    return [OracleProfiler(image)]
            else:
                def make(policy=row):
                    return [build(policy)]

            # Correctness first: one untimed run per engine, checksums
            # compared before any timing is trusted.
            cycle_obs = make()
            cycles = replay_trace(v2_bytes, *cycle_obs)
            equal = True
            for reader in (v2_reader, v3_reader):
                other_obs = make()
                replay_blocks(reader, *other_obs)
                for a, b in zip(cycle_obs, other_obs):
                    if isinstance(a, OracleProfiler):
                        equal &= a.report.profile == b.report.profile
                    else:
                        equal &= (profile_checksum(a.samples)
                                  == profile_checksum(b.samples))
                        equal &= a.profile() == b.profile()
            checksums_equal &= equal

            cycle_s = _best_of(
                lambda: replay_trace(v2_bytes, *make()), repeats)
            block_s = _best_of(
                lambda: replay_blocks(v2_reader, *make()), repeats)
            v3_s = _best_of(
                lambda: replay_blocks(v3_reader, *make()), repeats)
            result["rows"][row] = {
                "cycle_s": cycle_s,
                "block_s": block_s,
                "v3_s": v3_s,
                "speedup": cycle_s / block_s,
                "v3_speedup": block_s / v3_s,
                "v3_vs_cycle": cycle_s / v3_s,
                "checksums_equal": equal,
            }
    finally:
        v2_reader.close()
        v3_reader.close()
        if tmp_path is not None:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
    result["cycles"] = cycles
    result["checksums_equal"] = checksums_equal
    # Headline: geometric mean of the per-policy v3-vs-v2-block
    # speedups (the Oracle and all-at-once rows are reported but kept
    # out of the headline -- they measure observer cost, not format
    # decode cost).
    policy_rows = [result["rows"][p] for p in policies
                   if p in result["rows"]]
    if policy_rows:
        result["v3_vs_v2_block"] = math.exp(
            sum(math.log(r["v3_speedup"]) for r in policy_rows)
            / len(policy_rows))

    if output is not None:
        with open(output, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        if verbose:
            print(f"[bench] wrote {output}", flush=True)
    return result


def render_hotpath_bench(result: Dict) -> str:
    """Human-readable one-screen summary of a hot-path bench result."""
    lines: List[str] = []
    lines.append(f"replay engines, {result['cycles']} cycles, "
                 f"best of {result['repeats']}")
    for row, entry in result["rows"].items():
        flag = "" if entry["checksums_equal"] else "  MISMATCH"
        lines.append(
            f"{row:>10}: cycle {entry['cycle_s'] * 1e3:8.2f}ms  "
            f"v2-block {entry['block_s'] * 1e3:8.2f}ms  "
            f"v3 {entry['v3_s'] * 1e3:8.2f}ms  "
            f"v3/v2 {entry['v3_speedup']:.2f}x{flag}")
    if "v3_vs_v2_block" in result:
        lines.append("v3 vs v2-block (policy geomean): "
                     f"{result['v3_vs_v2_block']:.2f}x")
    lines.append("engine checksums: "
                 + ("OK (all engines identical)"
                    if result["checksums_equal"] else "MISMATCH"))
    return "\n".join(lines)
