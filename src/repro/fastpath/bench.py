"""``repro bench --trace``: cycle-versus-block replay engine timing.

Times each stock profiler (plus the Oracle, plus one run with all of
them attached at once) replaying the same recorded v2 trace under both
engines and writes the comparison to ``BENCH_hotpath.json``.  Every
profiler's sample-stream checksum and final profile are also compared
across engines, so the benchmark doubles as a differential test: the
block engine is only a win if it is *bit-identical* and faster, and CI
fails the run when any checksum diverges.

Timings are best-of-N wall clock on the current machine (N=2 with
``quick=True`` for CI smoke runs, N=5 otherwise).
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence

from ..analysis.profiles import profile_checksum
from ..core.oracle import OracleProfiler
from ..cpu.tracefile import replay_trace
from ..isa.program import Program
from .engine import replay_blocks

#: The seven sampling policies timed by the hot-path benchmark.
HOTPATH_POLICIES = ("Software", "Dispatch", "LCI", "NCI", "NCI+ILP",
                    "TIP-ILP", "TIP")
#: Synthetic row keys for the non-policy measurements.
ORACLE_ROW = "Oracle"
ALL_ROW = "all"

DEFAULT_REPEATS = 5
QUICK_REPEATS = 2


def _best_of(fn, repeats: int) -> float:
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def run_hotpath_bench(trace, image: Program,
                      output: Optional[str] = "BENCH_hotpath.json",
                      period: int = 23,
                      mode: str = "random",
                      seed: int = 2021,
                      policies: Sequence[str] = HOTPATH_POLICIES,
                      quick: bool = False,
                      repeats: Optional[int] = None,
                      verbose: bool = False) -> Dict:
    """Benchmark cycle-versus-block replay on *trace* (bytes or path).

    *image* is the booted :class:`~repro.isa.program.Program` the trace
    was recorded from (needed by TIP and the Oracle for stall
    classification).  Returns the result dict and, unless *output* is
    ``None``, writes it there as JSON.
    """
    from ..harness.experiment import ProfilerConfig

    if isinstance(trace, str):
        with open(trace, "rb") as handle:
            trace = handle.read()
    if repeats is None:
        repeats = QUICK_REPEATS if quick else DEFAULT_REPEATS

    configs = {policy: ProfilerConfig(policy, period, mode, seed)
               for policy in policies}

    def build(policy: str):
        return configs[policy].build(image)

    def build_all() -> List:
        observers = [build(policy) for policy in policies]
        observers.append(OracleProfiler(image))
        return observers

    result: Dict = {
        "period": period,
        "mode": mode,
        "seed": seed,
        "repeats": repeats,
        "quick": quick,
        "trace_bytes": len(trace),
        "rows": {},
    }

    checksums_equal = True
    rows = list(policies) + [ORACLE_ROW, ALL_ROW]
    for row in rows:
        if verbose:
            print(f"[bench] hotpath {row} ...", flush=True)
        if row == ALL_ROW:
            make = build_all
        elif row == ORACLE_ROW:
            def make():
                return [OracleProfiler(image)]
        else:
            def make(policy=row):
                return [build(policy)]

        # Correctness first: one untimed run per engine, checksums
        # compared before any timing is trusted.
        cycle_obs = make()
        cycles = replay_trace(trace, *cycle_obs)
        block_obs = make()
        replay_blocks(trace, *block_obs)
        equal = True
        for a, b in zip(cycle_obs, block_obs):
            if isinstance(a, OracleProfiler):
                equal &= a.report.profile == b.report.profile
            else:
                equal &= (profile_checksum(a.samples)
                          == profile_checksum(b.samples))
                equal &= a.profile() == b.profile()
        checksums_equal &= equal

        cycle_s = _best_of(lambda: replay_trace(trace, *make()),
                           repeats)
        block_s = _best_of(lambda: replay_blocks(trace, *make()),
                           repeats)
        result["rows"][row] = {
            "cycle_s": cycle_s,
            "block_s": block_s,
            "speedup": cycle_s / block_s,
            "checksums_equal": equal,
        }
    result["cycles"] = cycles
    result["checksums_equal"] = checksums_equal

    if output is not None:
        with open(output, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        if verbose:
            print(f"[bench] wrote {output}", flush=True)
    return result


def render_hotpath_bench(result: Dict) -> str:
    """Human-readable one-screen summary of a hot-path bench result."""
    lines: List[str] = []
    lines.append(f"cycle-vs-block replay, {result['cycles']} cycles, "
                 f"best of {result['repeats']}")
    for row, entry in result["rows"].items():
        flag = "" if entry["checksums_equal"] else "  MISMATCH"
        lines.append(f"{row:>10}: cycle {entry['cycle_s'] * 1e3:8.2f}ms  "
                     f"block {entry['block_s'] * 1e3:8.2f}ms  "
                     f"speedup {entry['speedup']:.2f}x{flag}")
    lines.append("engine checksums: "
                 + ("OK (block identical to cycle)"
                    if result["checksums_equal"] else "MISMATCH"))
    return "\n".join(lines)
