"""Sound profile-guided optimizer: dataflow-proven rewrites.

``repro optimize`` closes the loop the paper's Section 6 opens: TIP
pinpoints the Imagick flush pair, the linter names the anti-pattern,
and this package *applies the fix* -- but only after re-proving every
rewrite from the dataflow engine's facts and attaching the proof as a
machine-readable :class:`~repro.opt.legality.Certificate`:

* :mod:`repro.opt.legality` -- the planners: flush-pair removal,
  loop-invariant flush hoisting, dead-store deletion, const-unreachable
  pruning;
* :mod:`repro.opt.rewriter` -- the lint -> prove -> rewrite -> repeat
  driver (:class:`Optimizer`);
* :mod:`repro.opt.verify` -- the empirical check: differential
  execution on the reference interpreter plus measured speedup on the
  out-of-order core (Imagick's 1.93x).
"""

from .legality import (Certificate, DeadStorePlan, FlushPairPlan,
                       HoistPlan, PrunePlan, plan_dead_store,
                       plan_flush_pair, plan_hoist, plan_prune)
from .rewriter import (AppliedRewrite, OPTIMIZABLE_RULES,
                       OptimizationResult, Optimizer, SkippedFinding,
                       optimize_program)
from .verify import (DifferentialReport, SpeedupReport, TrialResult,
                     diff_architectural, measure_speedup)

__all__ = [
    "Certificate", "DeadStorePlan", "FlushPairPlan", "HoistPlan",
    "PrunePlan", "plan_dead_store", "plan_flush_pair", "plan_hoist",
    "plan_prune",
    "AppliedRewrite", "OPTIMIZABLE_RULES", "OptimizationResult",
    "Optimizer", "SkippedFinding", "optimize_program",
    "DifferentialReport", "SpeedupReport", "TrialResult",
    "diff_architectural", "measure_speedup",
]
