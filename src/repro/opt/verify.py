"""Verification harness for optimized programs.

Certificates (:mod:`repro.opt.legality`) prove each rewrite from static
dataflow facts; this module *checks the proof empirically*:

* :func:`diff_architectural` runs original and transformed programs
  through the reference interpreter -- on the as-built data image and
  on randomized data trials -- and diffs the observable architectural
  state: final data memory, the accumulated ``fflags`` CSR, and clean
  halting.  (Registers are deliberately excluded: removing a flag
  save/restore pair leaves a stale scratch register behind, and the
  legality layer separately proves no surviving read can observe it.)
* :func:`measure_speedup` simulates both programs on the out-of-order
  core (``sim="fast"``, cache-aware) and reports cycles, IPC, flush
  counts and the speedup -- the number the paper's Section 6 reports as
  1.93x for Imagick.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.interpreter import Interpreter, InterpreterError
from ..isa.program import Program


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one differential trial."""

    name: str
    matches: bool
    detail: str = ""


@dataclass
class DifferentialReport:
    """Architectural-state diff between original and transformed."""

    trials: List[TrialResult] = field(default_factory=list)
    instructions_original: int = 0
    instructions_transformed: int = 0

    @property
    def identical(self) -> bool:
        return all(t.matches for t in self.trials)

    def to_dict(self) -> Dict:
        return {
            "identical": self.identical,
            "trials": [{"name": t.name, "matches": t.matches,
                        "detail": t.detail} for t in self.trials],
            "instructions_original": self.instructions_original,
            "instructions_transformed": self.instructions_transformed,
        }

    def render(self) -> str:
        ok = sum(1 for t in self.trials if t.matches)
        lines = [f"differential: {ok}/{len(self.trials)} trials "
                 f"identical"]
        for t in self.trials:
            if not t.matches:
                lines.append(f"  MISMATCH [{t.name}]: {t.detail}")
        return "\n".join(lines)


def _observable_diff(a: Interpreter, b: Interpreter) -> str:
    """Describe the first observable-state difference, or ``""``."""
    if a.halted != b.halted:
        return f"halted: {a.halted} vs {b.halted}"
    if a.fflags != b.fflags:
        return f"fflags: {a.fflags:#x} vs {b.fflags:#x}"
    for addr in sorted(set(a.memory) | set(b.memory)):
        va = a.memory.get(addr, 0)
        vb = b.memory.get(addr, 0)
        if va != vb:
            return f"memory[{addr:#x}]: {va!r} vs {vb!r}"
    return ""


def _run_trial(name: str, original: Program, transformed: Program,
               overrides: Optional[Dict[int, float]],
               max_instructions: int
               ) -> Tuple[TrialResult, Optional[Interpreter],
                          Optional[Interpreter]]:
    machines = []
    for program in (original, transformed):
        machine = Interpreter(program)
        if overrides:
            machine.memory.update(overrides)
        try:
            machine.run(max_instructions)
        except InterpreterError as exc:
            return (TrialResult(name, False,
                                f"{program.name}: {exc}"), None, None)
        machines.append(machine)
    detail = _observable_diff(machines[0], machines[1])
    return TrialResult(name, detail == "", detail), machines[0], \
        machines[1]


def diff_architectural(original: Program, transformed: Program,
                       trials: int = 4, seed: int = 0,
                       max_instructions: int = 2_000_000
                       ) -> DifferentialReport:
    """Differentially execute both programs on the reference
    interpreter.

    Trial 0 uses the programs' as-built data image; each further trial
    overwrites every initialized data word with a random value (the
    same values on both sides), exercising data-dependent paths the
    default image may not reach.
    """
    report = DifferentialReport()
    result, orig_m, trans_m = _run_trial(
        "as-built", original, transformed, None, max_instructions)
    report.trials.append(result)
    if orig_m is not None and trans_m is not None:
        report.instructions_original = orig_m.instructions_executed
        report.instructions_transformed = trans_m.instructions_executed

    rng = random.Random(seed)
    addrs = sorted(set(original.data) | set(transformed.data))
    for trial in range(1, trials):
        overrides = {addr: float(rng.randint(0, 255)) for addr in addrs}
        result, _, _ = _run_trial(f"random-{trial}", original,
                                  transformed, overrides,
                                  max_instructions)
        report.trials.append(result)
    return report


@dataclass
class SpeedupReport:
    """Measured performance of original vs transformed."""

    cycles_original: int
    cycles_transformed: int
    ipc_original: float
    ipc_transformed: float
    flushes_original: int
    flushes_transformed: int

    @property
    def speedup(self) -> float:
        if self.cycles_transformed <= 0:
            return float("inf")
        return self.cycles_original / self.cycles_transformed

    def to_dict(self) -> Dict:
        return {
            "cycles_original": self.cycles_original,
            "cycles_transformed": self.cycles_transformed,
            "ipc_original": self.ipc_original,
            "ipc_transformed": self.ipc_transformed,
            "csr_flushes_original": self.flushes_original,
            "csr_flushes_transformed": self.flushes_transformed,
            "speedup": self.speedup,
        }

    def render(self) -> str:
        return (f"speedup: {self.speedup:.2f}x "
                f"({self.cycles_original} -> "
                f"{self.cycles_transformed} cycles, IPC "
                f"{self.ipc_original:.2f} -> {self.ipc_transformed:.2f},"
                f" flushes {self.flushes_original} -> "
                f"{self.flushes_transformed})")


def measure_speedup(original: Program, transformed: Program,
                    premapped_data=None, sim: str = "fast",
                    cache=None, max_cycles: int = 10_000_000
                    ) -> SpeedupReport:
    """Simulate both programs (no profilers attached) and compare."""
    from ..harness.experiment import run_experiment

    stats = []
    for program in (original, transformed):
        result = run_experiment(program, profilers=[],
                                premapped_data=premapped_data,
                                max_cycles=max_cycles, sim=sim,
                                cache=cache)
        stats.append(result.stats)
    orig, trans = stats
    return SpeedupReport(orig.cycles, trans.cycles, orig.ipc,
                         trans.ipc, orig.csr_flushes,
                         trans.csr_flushes)
