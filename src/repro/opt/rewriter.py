"""The optimizer driver: lint -> prove -> rewrite -> repeat.

Each pass lints the current program with the optimizer's rule set,
collects the structured fix hints, asks :mod:`repro.opt.legality` to
prove each one, and applies the first category of proven rewrites
through the :class:`~repro.isa.rewrite.ProgramEditor`:

1. **flush pairs** (L001/L012 ``nop``/``hoist`` hints): every provable
   save/restore pair is nop-substituted in one batch -- pure in-place
   replacements cannot interact;
2. **hoist** (L012 ``hoist`` hints that are not removable pairs): the
   first provable candidate moves to a synthesized preheader (the
   editor supports one insertion per rebuild);
3. **prune** (L011/L018 ``prune`` hints): branches with a proven
   outcome -- constant propagation or the abstract interpreter's value
   ranges -- become unconditional and stranded blocks are deleted, one
   batch per function;
4. **dead stores** (L010 ``delete`` hints): every provable dead store
   is deleted in one batch (deleting a dead definition cannot make an
   older definition visible: a read downstream would have kept it
   live).

A pass that applies nothing ends the loop.  Findings whose proof fails
are reported with the failing fact, never silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.instruction import Instruction
from ..isa.program import Program
from ..isa.rewrite import ProgramEditor, nop
from ..lint.cfg import build_cfg
from ..lint.diagnostics import Diagnostic
from ..lint.linter import Linter
from ..lint.rules import LintContext, RULES_BY_ID
from .legality import (Certificate, DeadStorePlan, FlushPairPlan,
                       HoistPlan, PrunePlan, plan_dead_store,
                       plan_flush_pair, plan_hoist, plan_prune)

#: Rules whose fix hints the optimizer can prove and apply.
OPTIMIZABLE_RULES: Tuple[str, ...] = ("L001", "L012", "L010", "L011",
                                      "L018")


@dataclass(frozen=True)
class AppliedRewrite:
    """One rewrite that was proven legal and applied."""

    pass_index: int
    certificate: Certificate

    def to_dict(self) -> Dict:
        out = self.certificate.to_dict()
        out["pass"] = self.pass_index
        return out

    def render(self) -> str:
        cert = self.certificate
        addrs = ", ".join(f"{a:#x}" for a in cert.addrs)
        return (f"pass {self.pass_index}: {cert.rewrite} "
                f"[{cert.rule}] in {cert.function} at {addrs}")


@dataclass(frozen=True)
class SkippedFinding:
    """A lint finding whose legality proof failed."""

    rule: str
    addr: Optional[int]
    reason: str

    def to_dict(self) -> Dict:
        return {"rule": self.rule,
                "addr": f"{self.addr:#x}" if self.addr is not None
                else None,
                "reason": self.reason}

    def render(self) -> str:
        where = f"{self.addr:#x}" if self.addr is not None else "?"
        return f"skipped [{self.rule}] at {where}: {self.reason}"


@dataclass
class OptimizationResult:
    """Everything one :meth:`Optimizer.run` produced."""

    original: Program
    program: Program
    applied: List[AppliedRewrite] = field(default_factory=list)
    skipped: List[SkippedFinding] = field(default_factory=list)
    passes: int = 0

    @property
    def changed(self) -> bool:
        return bool(self.applied)

    def to_dict(self) -> Dict:
        return {"program": self.original.name,
                "passes": self.passes,
                "applied": [a.to_dict() for a in self.applied],
                "skipped": [s.to_dict() for s in self.skipped]}

    def render(self) -> str:
        lines = [f"{self.original.name}: {len(self.applied)} "
                 f"rewrite(s) in {self.passes} pass(es)"]
        lines.extend(f"  {a.render()}" for a in self.applied)
        lines.extend(f"  {s.render()}" for s in self.skipped)
        return "\n".join(lines)


class Optimizer:
    """Applies dataflow-proven rewrites suggested by the linter."""

    def __init__(self, rules: Sequence[str] = OPTIMIZABLE_RULES,
                 max_passes: int = 8, honor_ignores: bool = True):
        unknown = [r for r in rules if r not in OPTIMIZABLE_RULES]
        if unknown:
            raise ValueError(f"cannot optimize rules: {unknown}")
        self.rule_ids = tuple(rules)
        self.linter = Linter([RULES_BY_ID[r] for r in self.rule_ids])
        self.max_passes = max_passes
        self.honor_ignores = honor_ignores

    def run(self, program: Program) -> OptimizationResult:
        result = OptimizationResult(program, program)
        current = program
        for pass_index in range(1, self.max_passes + 1):
            report = self.linter.run(
                current, honor_ignores=self.honor_ignores)
            if not report.diagnostics:
                break
            ctx = LintContext(current, build_cfg(current))
            rebuilt = self._one_pass(ctx, report.diagnostics,
                                     pass_index, result)
            if rebuilt is None:
                break
            result.passes = pass_index
            current = rebuilt
        result.program = current
        return result

    # -- one pass ------------------------------------------------------------

    def _one_pass(self, ctx: LintContext,
                  diagnostics: List[Diagnostic], pass_index: int,
                  result: OptimizationResult) -> Optional[Program]:
        """Apply the first applicable rewrite category; ``None`` when
        nothing could be proven."""
        flush_diags = [d for d in diagnostics if d.fix is not None
                       and d.fix.action in ("nop", "hoist")
                       and d.addr is not None]
        skipped: List[SkippedFinding] = []

        # Category 1: batch every provable save/restore pair.
        pair_plans: Dict[int, FlushPairPlan] = {}
        hoist_candidates: List[Tuple[Diagnostic, str]] = []
        for diag in flush_diags:
            plan = plan_flush_pair(ctx, diag.addr)
            if isinstance(plan, FlushPairPlan):
                pair_plans[diag.addr] = plan
            elif diag.fix is not None and diag.fix.action == "hoist":
                hoist_candidates.append((diag, plan))
            else:
                skipped.append(SkippedFinding(diag.rule, diag.addr,
                                              plan))
        if pair_plans:
            editor = ProgramEditor(ctx.program)
            covered: set = set()
            for plan in pair_plans.values():
                for inst in (plan.save,) + plan.restores:
                    if inst.addr not in covered:
                        covered.add(inst.addr)
                        editor.replace(inst.addr, nop())
            for plan in pair_plans.values():
                result.applied.append(
                    AppliedRewrite(pass_index, plan.certificate))
            # A pair's restore side also trips L001; it is not a
            # separate miss once the pair is removed.
            result.skipped.extend(s for s in skipped
                                  if s.addr not in covered)
            return editor.build()

        # Category 2: the first provable hoist (one insertion/rebuild).
        for diag, pair_reason in hoist_candidates:
            plan = plan_hoist(ctx, diag.addr)
            if isinstance(plan, str):
                skipped.append(SkippedFinding(
                    diag.rule, diag.addr,
                    f"not a removable pair ({pair_reason}); "
                    f"hoist failed: {plan}"))
                continue
            inst = plan.inst
            editor = ProgramEditor(ctx.program)
            editor.insert_before(
                plan.site.header_addr,
                [Instruction(inst.op, inst.rd, inst.sources, inst.imm)],
                internal_addrs=plan.site.body_addrs,
                line=ctx.program.lines.get(inst.addr))
            editor.delete(inst.addr)
            result.applied.append(
                AppliedRewrite(pass_index, plan.certificate))
            # An L001 "nop" finding at the same address is fixed by
            # this hoist, not missed.
            result.skipped.extend(s for s in skipped
                                  if s.addr != inst.addr)
            return editor.build()

        # Category 3: prune constant-unreachable control flow.
        prune_functions = []
        for diag in diagnostics:
            if diag.fix is None or diag.fix.action != "prune" \
                    or diag.addr is None:
                continue
            block = ctx.cfg.block_of(diag.addr)
            if block is not None and \
                    block.function not in prune_functions:
                prune_functions.append(block.function)
        for function in prune_functions:
            plan = plan_prune(ctx, function)
            if isinstance(plan, str):
                skipped.append(SkippedFinding("L011/L018", None,
                                              f"{function}: {plan}"))
                continue
            editor = ProgramEditor(ctx.program)
            for addr, replacement in plan.branch_rewrites.items():
                editor.replace(addr, replacement)
            for addr in sorted(plan.delete_addrs):
                editor.delete(addr)
            result.applied.append(
                AppliedRewrite(pass_index, plan.certificate))
            result.skipped.extend(skipped)
            return editor.build()

        # Category 4: batch every provable dead store.
        delete_plans: List[DeadStorePlan] = []
        for diag in diagnostics:
            if diag.fix is None or diag.fix.action != "delete" \
                    or diag.addr is None:
                continue
            plan = plan_dead_store(ctx, diag.addr)
            if isinstance(plan, str):
                skipped.append(SkippedFinding(diag.rule, diag.addr,
                                              plan))
                continue
            delete_plans.append(plan)
        if delete_plans:
            editor = ProgramEditor(ctx.program)
            for plan in delete_plans:
                editor.delete(plan.inst.addr)
                result.applied.append(
                    AppliedRewrite(pass_index, plan.certificate))
            result.skipped.extend(skipped)
            return editor.build()

        result.skipped.extend(skipped)
        return None


def optimize_program(program: Program,
                     rules: Sequence[str] = OPTIMIZABLE_RULES,
                     max_passes: int = 8,
                     honor_ignores: bool = True) -> OptimizationResult:
    """Run the :class:`Optimizer` over *program*."""
    return Optimizer(rules, max_passes=max_passes,
                     honor_ignores=honor_ignores).run(program)
