"""Legality proofs for the profile-guided rewrites.

Every transformation ``repro.opt`` applies is justified by a
:class:`Certificate`: the dataflow facts -- reaching definitions,
liveness, dominance, loop invariance, constant-branch verdicts -- that
prove the rewrite preserves the program's observable architectural
state (final data memory, the ``fflags`` CSR, and halting).  A planner
either returns a plan carrying its certificate or a string explaining
which fact could not be established; nothing is ever rewritten "because
the lint rule said so".

The planners:

* :func:`plan_flush_pair` (L001/L012) -- a ``frflags``-family save
  whose only consumers are ``fsflags`` restores of the *unmodified*
  flag state: both sides of the pair become ``nop`` (the paper's
  Section 6 Imagick fix);
* :func:`plan_hoist` (L012) -- a loop-invariant flush whose value is
  genuinely used: moved to a synthesized preheader;
* :func:`plan_dead_store` (L010) -- a pure computation whose result is
  dead on every path: deleted;
* :func:`plan_prune` (L011/L018) -- branches with a proven outcome
  (constant propagation or the abstract interpreter's value ranges)
  rewritten to unconditional form and the blocks they strand removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from ..isa.instruction import Instruction, Register
from ..isa.opcodes import Kind, Op
from ..lint.dataflow import (ENTRY_DEF, PreheaderSite, is_call_like,
                             preheader_site, used_registers)
from ..lint.rules import LintContext

#: The only opcode that architecturally writes ``fflags`` (matching the
#: reference interpreter); ``frflags``/``csrrw`` read it.
_FFLAGS_WRITER = Op.FSFLAGS
#: Flag-reading saves eligible for pair removal or hoisting.
_FFLAGS_READERS = frozenset({Op.FRFLAGS, Op.CSRRW})

#: Pure computation kinds whose only effect is their destination
#: register (the L010 candidate set).
_PURE_KINDS = frozenset({Kind.ALU, Kind.MUL, Kind.DIV, Kind.FP_ALU,
                         Kind.FP_DIV})


@dataclass(frozen=True)
class Certificate:
    """The machine-readable justification for one applied rewrite."""

    rewrite: str
    rule: str
    function: str
    addrs: Tuple[int, ...]
    facts: Tuple[str, ...]

    def to_dict(self) -> Dict:
        return {"rewrite": self.rewrite,
                "rule": self.rule,
                "function": self.function,
                "addrs": [f"{a:#x}" for a in self.addrs],
                "facts": list(self.facts)}


@dataclass(frozen=True)
class FlushPairPlan:
    """Nop-substitute a flag save and its restore(s)."""

    save: Instruction
    restores: Tuple[Instruction, ...]
    certificate: Certificate


@dataclass(frozen=True)
class HoistPlan:
    """Move a loop-invariant flag read to a synthesized preheader."""

    inst: Instruction
    site: PreheaderSite
    certificate: Certificate


@dataclass(frozen=True)
class DeadStorePlan:
    """Delete a pure computation whose result is never read."""

    inst: Instruction
    certificate: Certificate


@dataclass(frozen=True)
class PrunePlan:
    """Rewrite constant-verdict branches and delete stranded blocks."""

    function: str
    #: Branch terminator -> replacement (``jal x0`` or ``nop``).
    branch_rewrites: Dict[int, Instruction] = field(default_factory=dict)
    #: Addresses of the const-unreachable instructions to delete.
    delete_addrs: FrozenSet[int] = frozenset()
    certificate: Optional[Certificate] = None


# -- shared fact finders -----------------------------------------------------

def _fflags_writing_functions(ctx: LintContext) -> Set[str]:
    """Functions that may (transitively) execute a ``fsflags``."""
    writers = {block.function for block in ctx.cfg.blocks
               for inst in block.instructions
               if inst.op is _FFLAGS_WRITER}
    callers: Dict[str, Set[str]] = {}
    for block in ctx.cfg.blocks:
        for target in block.call_targets:
            callee = ctx.cfg.block_of(target)
            if callee is not None:
                callers.setdefault(callee.function,
                                   set()).add(block.function)
    work = list(writers)
    while work:
        name = work.pop()
        for caller in callers.get(name, ()):
            if caller not in writers:
                writers.add(caller)
                work.append(caller)
    return writers


def _unsafe_read(ctx: LintContext, reg: int,
                 allowed: FrozenSet[int]) -> Optional[str]:
    """Prove no instruction outside *allowed* can observe the value a
    removed definition of *reg* leaves behind.

    Whole-program, flow-insensitive-over-functions: every read of *reg*
    must be supplied by a local definition that is neither the function
    boundary (``ENTRY_DEF`` -- the value may have flowed in from the
    rewritten site) nor a call site (the value may have survived the
    call).  Returns a description of the first unprovable read, or
    ``None`` when all reads are safe.
    """
    for function in ctx.cfg.functions:
        reaching = ctx.reaching(function)
        for index in sorted(reaching.states):
            block = ctx.cfg.blocks[index]
            for inst, env in reaching.at(block):
                if reg not in used_registers(inst):
                    continue
                if inst.addr in allowed:
                    continue
                sites = env.get(reg, frozenset())
                if ENTRY_DEF in sites:
                    return (f"{Register.name(reg)} read at "
                            f"{inst.addr:#x} ({function}) may observe "
                            f"the value at function entry")
                for site in sites:
                    definer = ctx.program.fetch(site)
                    if definer is None or is_call_like(definer):
                        return (f"{Register.name(reg)} read at "
                                f"{inst.addr:#x} ({function}) may "
                                f"observe a value surviving a call")
    return None


def _path_blocks(ctx: LintContext, function: str, src: int,
                 dst: int) -> Set[int]:
    """Block indices on some intra-function path from block *src* to
    block *dst* (inclusive)."""
    blocks = ctx.cfg.blocks
    local = set(ctx.cfg.functions.get(function, ()))
    fwd = {src}
    work = [src]
    while work:
        for succ in blocks[work.pop()].successors:
            if succ in local and succ not in fwd:
                fwd.add(succ)
                work.append(succ)
    back = {dst}
    work = [dst]
    while work:
        for pred in blocks[work.pop()].predecessors:
            if pred in local and pred not in back:
                back.add(pred)
                work.append(pred)
    return fwd & back


def _window(block_insts: List[Instruction], block_index: int,
            save: Instruction, restore: Instruction,
            save_block: int, restore_block: int) -> List[Instruction]:
    """The instructions of one path block that can execute between the
    save and the restore."""
    insts = block_insts
    if block_index == save_block:
        insts = [i for i in insts if i.addr > save.addr]
    if block_index == restore_block:
        insts = [i for i in insts if i.addr < restore.addr]
    return insts


# -- flush-pair removal (L001 / L012) ---------------------------------------

def plan_flush_pair(ctx: LintContext,
                    addr: int) -> Union[FlushPairPlan, str]:
    """Plan nop-substitution of the flag save at *addr* and its
    restores, or explain why it cannot be proven safe.

    Proven facts:

    1. every read of the save's destination register reached by the
       save is an ``fsflags`` restore whose *only* reaching definition
       is the save (so dropping both changes no other consumer);
    2. on every save->restore path no instruction writes ``fflags`` and
       no call can (transitively) write it, so the restore writes back
       the exact current flag state -- an architectural no-op;
    3. no read anywhere in the program can observe the stale value the
       removed save leaves in its destination register.
    """
    program = ctx.program
    inst = program.fetch(addr)
    if inst is None:
        return f"no instruction at {addr:#x}"
    if inst.op not in _FFLAGS_READERS:
        return (f"{inst.op.value} is not a flag save "
                f"(frflags/csrrw); cannot pair")
    if inst.rd is None or inst.rd == 0:
        return f"{inst.op.value} discards its result; nothing to pair"
    block = ctx.cfg.block_of(addr)
    if block is None:
        return f"{addr:#x} is not in the control-flow graph"
    function = block.function
    rd = inst.rd
    reaching = ctx.reaching(function)

    # Fact 1: collect the consumers of the save's value.
    restores: List[Instruction] = []
    for index in sorted(reaching.states):
        for reader, env in reaching.at(ctx.cfg.blocks[index]):
            if rd not in used_registers(reader):
                continue
            sites = env.get(rd, frozenset())
            if addr not in sites:
                continue
            if reader.op is not _FFLAGS_WRITER:
                return (f"saved {Register.name(rd)} flows to "
                        f"{reader.op.value} at {reader.addr:#x}; the "
                        f"value is really used")
            if sites != frozenset({addr}):
                return (f"fsflags at {reader.addr:#x} may restore a "
                        f"value from another definition")
            restores.append(reader)

    # Fact 2: flag purity on every save->restore path.
    fflags_writers = _fflags_writing_functions(ctx)
    for restore in restores:
        rblock = ctx.cfg.block_of(restore.addr)
        assert rblock is not None
        for index in _path_blocks(ctx, function, block.index,
                                  rblock.index):
            window = _window(ctx.cfg.blocks[index].instructions, index,
                             inst, restore, block.index, rblock.index)
            for between in window:
                if between.op is _FFLAGS_WRITER \
                        and between.addr != restore.addr:
                    return (f"fflags rewritten at {between.addr:#x} "
                            f"between save and restore")
                if is_call_like(between):
                    if between.is_call:
                        callee = ctx.cfg.block_of(between.imm)
                        if callee is not None and \
                                callee.function not in fflags_writers:
                            continue
                    return (f"call at {between.addr:#x} between save "
                            f"and restore may write fflags")

    # Fact 3: the stale scratch register is unobservable.
    allowed = frozenset({addr} | {r.addr for r in restores})
    unsafe = _unsafe_read(ctx, rd, allowed)
    if unsafe is not None:
        return unsafe

    addrs = (addr,) + tuple(r.addr for r in restores)
    facts = [
        f"reaching definitions: every consumer of "
        f"{Register.name(rd)}@{addr:#x} is an fsflags restore with "
        f"that sole reaching definition",
        "flag purity: no fflags writer or flag-writing call on any "
        "save->restore path",
        f"scratch: no read of {Register.name(rd)} outside the pair "
        f"can observe the removed definition",
    ]
    if not restores:
        facts[0] = (f"reaching definitions: "
                    f"{Register.name(rd)}@{addr:#x} has no consumer "
                    f"at all")
        facts.pop(1)
    certificate = Certificate("nop-flush-pair", "L001", function,
                              addrs, tuple(facts))
    return FlushPairPlan(inst, tuple(restores), certificate)


# -- loop-invariant hoisting (L012) -----------------------------------------

def plan_hoist(ctx: LintContext, addr: int) -> Union[HoistPlan, str]:
    """Plan hoisting the loop-invariant flag read at *addr* into a
    synthesized preheader, or explain why it cannot be proven safe.

    Proven facts:

    1. the instruction is loop-invariant (LICM closure over reaching
       definitions) and none of its register operands is supplied from
       inside the loop;
    2. nothing in the loop body writes ``fflags`` (directly or through
       a call), so the flag state it reads is the same at the preheader
       and at every iteration;
    3. its block dominates every loop exit, so the original executed it
       before any value could escape the loop;
    4. every in-loop read of its destination register is reached only
       by this definition (first-iteration reads see the same value
       after the hoist);
    5. a preheader exists: no loop-body block falls through into the
       header.
    """
    program = ctx.program
    inst = program.fetch(addr)
    if inst is None:
        return f"no instruction at {addr:#x}"
    if inst.op not in _FFLAGS_READERS:
        return f"{inst.op.value} is not a hoistable flag read"
    if inst.rd is None:
        return f"{inst.op.value} has no destination to hoist"
    block = ctx.cfg.block_of(addr)
    if block is None:
        return f"{addr:#x} is not in the control-flow graph"
    function = block.function
    loop = ctx.loop_nest(function).innermost(block.index)
    if loop is None:
        return "not inside a natural loop (called-from-loop shapes " \
               "cannot take a preheader)"

    # Fact 5 first: without a site nothing else matters.
    site = preheader_site(ctx.cfg, loop)
    if site is None:
        return "no safe preheader: a loop-body block falls through " \
               "into the header"

    # Fact 1: invariance, with operands strictly from outside the loop.
    region = frozenset(loop.body)
    invariant = ctx.invariants(function, region, False)
    if addr not in invariant:
        return "not loop-invariant under reaching definitions"
    reaching = ctx.reaching(function)
    env_at: Dict[int, FrozenSet[int]] = {}
    for reader, env in reaching.at(block):
        if reader.addr == addr:
            env_at = {reg: env.get(reg, frozenset())
                      for reg in used_registers(inst)}
    for reg, sites in env_at.items():
        if sites & site.body_addrs:
            return (f"operand {Register.name(reg)} is defined inside "
                    f"the loop")

    # Fact 2: flag purity inside the loop.
    fflags_writers = _fflags_writing_functions(ctx)
    for index in loop.body:
        body_block = ctx.cfg.blocks[index]
        for body_inst in body_block.instructions:
            if body_inst.op is _FFLAGS_WRITER:
                return (f"fflags written at {body_inst.addr:#x} inside "
                        f"the loop")
            if is_call_like(body_inst):
                if body_inst.is_call:
                    callee = ctx.cfg.block_of(body_inst.imm)
                    if callee is not None and \
                            callee.function not in fflags_writers:
                        continue
                return (f"call at {body_inst.addr:#x} inside the loop "
                        f"may write fflags")

    # Fact 3: dominance over every loop exit.
    dom = ctx.cfg.dominators(function)
    for index in loop.body:
        for succ in ctx.cfg.blocks[index].successors:
            if succ in loop.body:
                continue
            if block.index not in dom.get(succ, ()):
                return (f"block does not dominate the loop exit via "
                        f"block #{succ}")

    # Fact 4: in-loop reads of rd see only this definition.
    rd = inst.rd
    if rd != 0:
        for index in sorted(loop.body):
            for reader, env in reaching.at(ctx.cfg.blocks[index]):
                if rd not in used_registers(reader):
                    continue
                if env.get(rd, frozenset()) != frozenset({addr}):
                    return (f"{Register.name(rd)} read at "
                            f"{reader.addr:#x} may see another "
                            f"definition")

    header = site.header_addr
    certificate = Certificate(
        "hoist-invariant-flush", "L012", function, (addr,),
        (f"loop-invariant in the loop at {header:#x} "
         f"(LICM closure over reaching definitions)",
         "no operand defined inside the loop",
         "no fflags writer or flag-writing call in the loop body",
         "defining block dominates every loop exit",
         f"every in-loop read of {Register.name(rd)} is reached only "
         f"by this definition",
         f"preheader synthesized before the header at {header:#x}"))
    return HoistPlan(inst, site, certificate)


# -- dead-store deletion (L010) ---------------------------------------------

def plan_dead_store(ctx: LintContext,
                    addr: int) -> Union[DeadStorePlan, str]:
    """Plan deleting the dead store at *addr*, re-proving deadness."""
    inst = ctx.program.fetch(addr)
    if inst is None:
        return f"no instruction at {addr:#x}"
    if inst.kind not in _PURE_KINDS:
        return f"{inst.op.value} has effects beyond its destination"
    if inst.rd is None or inst.rd == 0:
        return "no destination register"
    block = ctx.cfg.block_of(addr)
    if block is None:
        return f"{addr:#x} is not in the control-flow graph"
    liveness = ctx.liveness(block.function)
    for candidate, live in zip(block.instructions,
                               liveness.live_after(block)):
        if candidate.addr != addr:
            continue
        if inst.rd in live:
            return (f"{Register.name(inst.rd)} is live after "
                    f"{addr:#x}")
        certificate = Certificate(
            "delete-dead-store", "L010", block.function, (addr,),
            (f"liveness: {Register.name(inst.rd)} is dead after "
             f"{addr:#x} on every path (conservative call/return "
             f"boundaries)",
             f"purity: {inst.op.value} has no effect beyond "
             f"{Register.name(inst.rd)}"))
        return DeadStorePlan(inst, certificate)
    return f"{addr:#x} not found in its block"


# -- const-unreachable pruning (L011) ---------------------------------------

def plan_prune(ctx: LintContext, function: str) -> Union[PrunePlan, str]:
    """Plan constant-branch rewrites and dead-block deletion for one
    function, or explain why nothing can be pruned.

    Branches with a constant verdict become ``jal x0`` (always taken)
    or ``nop`` (always falls through); blocks the verdicts strand are
    deleted when nothing outside the stranded set still targets them.
    Branch verdicts come from two independent provers: constant
    propagation (L011) and the interprocedural abstract interpreter's
    value ranges (L018), which also prove branches whose operands are
    bounded but never a single constant.
    """
    constants = ctx.constants(function)
    cfg = ctx.cfg
    branch_rewrites: Dict[int, Instruction] = {}
    verdict_facts: List[str] = []
    absint_used = False

    def rewrite_branch(index: int, verdict: bool, prover: str) -> None:
        term = cfg.blocks[index].terminator
        if not term.is_branch or term.addr in branch_rewrites:
            return
        if verdict:
            branch_rewrites[term.addr] = Instruction(
                Op.JAL, rd=0, sources=(), imm=term.imm)
            way = "always taken -> jal x0"
        else:
            branch_rewrites[term.addr] = Instruction(Op.NOP)
            way = "always falls through -> nop"
        verdict_facts.append(
            f"{prover}: {term.op.value}@{term.addr:#x} {way}")

    for index, verdict in sorted(constants.verdicts.items()):
        if index not in constants.executable \
                or index not in cfg.reachable:
            continue
        rewrite_branch(index, verdict, "constant verdict")

    absint = ctx.absint()
    infeasible: Set[int] = set()
    if absint.analyzed(function):
        infeasible = absint.infeasible_blocks(function)
        in_function = cfg.functions.get(function, ())
        before = len(branch_rewrites)
        for index, verdict in sorted(absint.verdicts.items()):
            if index not in in_function or index not in cfg.reachable \
                    or index in infeasible \
                    or index not in constants.executable:
                continue
            rewrite_branch(index, verdict, "range verdict")
        absint_used = len(branch_rewrites) > before

    dead = {index
            for index in constants.structural - constants.executable
            if index in cfg.reachable}
    if infeasible - dead:
        absint_used = True
        dead |= infeasible
    dead_addrs = {inst.addr for index in dead
                  for inst in cfg.blocks[index].instructions}

    def rewritten_targets(inst: Instruction) -> Tuple[int, ...]:
        replacement = branch_rewrites.get(inst.addr)
        if replacement is not None:
            return replacement.static_targets()
        return inst.static_targets()

    # A dead block survives if anything outside the dead set still
    # targets it (calls, computed tables) or it holds the entry point.
    pinned: Set[int] = set()
    for block in cfg.blocks:
        for inst in block.instructions:
            if inst.addr in dead_addrs:
                continue
            for target in rewritten_targets(inst):
                if target in dead_addrs:
                    owner = cfg.block_index_of(target)
                    if owner is not None:
                        pinned.add(owner)
    entry_block = cfg.block_index_of(ctx.program.entry)
    if entry_block is not None:
        pinned.add(entry_block)
    deletable = dead - pinned
    delete_addrs = frozenset(inst.addr for index in deletable
                             for inst in cfg.blocks[index].instructions)

    if not branch_rewrites and not delete_addrs:
        return ("no constant or range verdicts and no deletable "
                "stranded blocks")
    facts = verdict_facts + [
        f"unreachable: block "
        f"{cfg.blocks[index].start:#x}..{cfg.blocks[index].end:#x} "
        f"is never executable and nothing outside the dead set "
        f"targets it"
        for index in sorted(deletable)]
    addrs = tuple(sorted(branch_rewrites)) + tuple(sorted(delete_addrs))
    rule = "L018" if absint_used else "L011"
    certificate = Certificate("prune-const-unreachable", rule,
                              function, addrs, tuple(facts))
    return PrunePlan(function, branch_rewrites, delete_addrs,
                     certificate)
