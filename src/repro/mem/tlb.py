"""TLBs, the hardware page-table walker, and the page table.

Matches the Table 1 organisation: 32-entry fully-associative L1 I- and
D-TLBs backed by a 512-entry direct-mapped shared L2 TLB and a hardware
page-table walker.  A walk that finds no mapping raises a *page fault*
delivered to the core as a precise exception (Section 2.2's "page miss on
a load" walkthrough), which the miniature kernel then handles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from .cache import MemoryLevel

PAGE_SIZE = 4096
PAGE_SHIFT = 12


def vpn_of(addr: int) -> int:
    """Virtual page number of *addr*."""
    return addr >> PAGE_SHIFT


class PageTable:
    """The set of mapped virtual pages (identity-mapped physical space)."""

    def __init__(self):
        self._mapped: Set[int] = set()
        self.faults_taken = 0

    def map_page(self, vpn: int) -> None:
        self._mapped.add(vpn)

    def map_range(self, lo_addr: int, hi_addr: int) -> None:
        """Map every page overlapping [lo_addr, hi_addr)."""
        for vpn in range(vpn_of(lo_addr), vpn_of(max(hi_addr - 1, lo_addr)) + 1):
            self._mapped.add(vpn)

    def unmap_page(self, vpn: int) -> None:
        self._mapped.discard(vpn)

    def is_mapped(self, vpn: int) -> bool:
        return vpn in self._mapped

    def __len__(self) -> int:
        return len(self._mapped)


@dataclass
class TranslationResult:
    """Outcome of a TLB translation."""

    latency: int
    fault: bool
    #: Where the translation was found: "l1", "l2", "walk", or "fault".
    source: str


class Tlb:
    """A fully-associative LRU TLB (L1) or direct-mapped TLB (L2)."""

    def __init__(self, name: str, entries: int, direct_mapped: bool = False):
        self.name = name
        self.capacity = entries
        self.direct_mapped = direct_mapped
        self._assoc_entries: List[int] = []
        self._direct_entries: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, vpn: int) -> bool:
        if self.direct_mapped:
            hit = self._direct_entries.get(vpn % self.capacity) == vpn
        else:
            hit = vpn in self._assoc_entries
            if hit:
                self._assoc_entries.remove(vpn)
                self._assoc_entries.append(vpn)
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return hit

    def insert(self, vpn: int) -> None:
        if self.direct_mapped:
            self._direct_entries[vpn % self.capacity] = vpn
        else:
            if vpn in self._assoc_entries:
                self._assoc_entries.remove(vpn)
            elif len(self._assoc_entries) >= self.capacity:
                self._assoc_entries.pop(0)
            self._assoc_entries.append(vpn)

    def flush_entry(self, vpn: int) -> None:
        if self.direct_mapped:
            slot = vpn % self.capacity
            if self._direct_entries.get(slot) == vpn:
                del self._direct_entries[slot]
        elif vpn in self._assoc_entries:
            self._assoc_entries.remove(vpn)

    def reset(self) -> None:
        self._assoc_entries.clear()
        self._direct_entries.clear()
        self.hits = 0
        self.misses = 0


class PageTableWalker:
    """Two-level hardware page-table walk through the cache hierarchy.

    Each level of the walk is a dependent memory access to a synthetic
    page-table address, issued into *walk_port* (normally the L2 cache),
    so repeated walks to nearby pages hit in the cache and become cheap,
    while cold walks pay main-memory latency -- mirroring real PTW
    behaviour.
    """

    #: Region of the address space holding page-table memory.
    PT_BASE = 0x4000_0000

    def __init__(self, walk_port: MemoryLevel, levels: int = 2):
        self.walk_port = walk_port
        self.levels = levels
        self.walks = 0

    def walk(self, vpn: int, cycle: int) -> int:
        """Return the latency of walking the tables for *vpn*."""
        self.walks += 1
        latency = 0
        key = vpn
        for level in range(self.levels):
            pte_addr = self.PT_BASE + (key >> (9 * level)) * 8
            result = self.walk_port.access(pte_addr, cycle + latency)
            latency += result.latency
        return latency


class TlbHierarchy:
    """L1 TLB + shared L2 TLB + walker for one access port (I or D)."""

    L1_LATENCY = 1
    L2_LATENCY = 4

    def __init__(self, l1: Tlb, l2: Tlb, walker: PageTableWalker,
                 page_table: PageTable):
        self.l1 = l1
        self.l2 = l2
        self.walker = walker
        self.page_table = page_table

    def translate(self, addr: int, cycle: int) -> TranslationResult:
        vpn = vpn_of(addr)
        if self.l1.lookup(vpn):
            return TranslationResult(0, False, "l1")
        if self.l2.lookup(vpn):
            self.l1.insert(vpn)
            return TranslationResult(self.L2_LATENCY, False, "l2")
        walk_latency = self.L2_LATENCY + self.walker.walk(vpn, cycle)
        if not self.page_table.is_mapped(vpn):
            return TranslationResult(walk_latency, True, "fault")
        self.l1.insert(vpn)
        self.l2.insert(vpn)
        return TranslationResult(walk_latency, False, "walk")
