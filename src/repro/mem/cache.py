"""Set-associative cache model with MSHRs and an optional next-line
prefetcher.

The memory system uses a *latency-query* timing style: an access issued at
cycle ``c`` immediately computes the cycle at which its data is available,
recursing into lower levels on a miss.  MSHR occupancy is tracked over
time, so a burst of misses beyond the MSHR count queues up, and misses to
an already-outstanding block coalesce onto the in-flight MSHR -- the two
behaviours that shape memory-level parallelism and therefore the
head-of-ROB stall patterns the profilers must attribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class AccessResult:
    """Outcome of a cache access."""

    #: Total latency in cycles from issue until data is available.
    latency: int
    #: Name of the level that ultimately served the access.
    served_by: str
    #: True if this level hit.
    hit: bool


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    coalesced: int = 0
    mshr_stall_cycles: int = 0
    prefetches: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class MemoryLevel:
    """Interface for anything that can serve a memory access."""

    name = "memory"

    def access(self, addr: int, cycle: int, is_write: bool = False) -> AccessResult:
        raise NotImplementedError


class MainMemory(MemoryLevel):
    """DRAM modelled as fixed latency plus a bandwidth queue.

    A single FR-FCFS-like channel is approximated by a ``next_free``
    pointer: each request occupies the channel for ``cycles_per_access``
    cycles, so bursts see queueing delay on top of the base latency.
    """

    def __init__(self, latency: int = 100, cycles_per_access: int = 4,
                 name: str = "DRAM"):
        self.name = name
        self.latency = latency
        self.cycles_per_access = cycles_per_access
        self._next_free = 0
        self.accesses = 0

    def access(self, addr: int, cycle: int, is_write: bool = False) -> AccessResult:
        self.accesses += 1
        start = max(cycle, self._next_free)
        self._next_free = start + self.cycles_per_access
        total = (start - cycle) + self.latency
        return AccessResult(latency=total, served_by=self.name, hit=True)

    def reset(self) -> None:
        self._next_free = 0
        self.accesses = 0


@dataclass
class _Mshr:
    block: int
    ready: int


class Cache(MemoryLevel):
    """One level of set-associative, write-back, write-allocate cache."""

    def __init__(self, name: str, size: int, assoc: int,
                 block_size: int, hit_latency: int, mshrs: int,
                 next_level: MemoryLevel,
                 prefetch_next_line: bool = False):
        if size % (assoc * block_size) != 0:
            raise ValueError(f"{name}: size must be a multiple of "
                             "assoc * block_size")
        self.name = name
        self.size = size
        self.assoc = assoc
        self.block_size = block_size
        self.hit_latency = hit_latency
        self.num_mshrs = mshrs
        self.next_level = next_level
        self.prefetch_next_line = prefetch_next_line
        self.num_sets = size // (assoc * block_size)
        #: set index -> list of block numbers, most recently used last.
        self._sets: Dict[int, List[int]] = {}
        self._mshrs: List[_Mshr] = []
        self.stats = CacheStats()

    # -- helpers ---------------------------------------------------------------

    def _block_of(self, addr: int) -> int:
        return addr // self.block_size

    def _set_of(self, block: int) -> int:
        return block % self.num_sets

    def _lookup(self, block: int) -> bool:
        ways = self._sets.get(self._set_of(block))
        if ways is not None and block in ways:
            ways.remove(block)
            ways.append(block)
            return True
        return False

    def _install(self, block: int) -> None:
        ways = self._sets.setdefault(self._set_of(block), [])
        if block in ways:
            ways.remove(block)
        elif len(ways) >= self.assoc:
            ways.pop(0)
        ways.append(block)

    def _expire_mshrs(self, cycle: int) -> None:
        if self._mshrs:
            self._mshrs = [m for m in self._mshrs if m.ready > cycle]

    # -- the access path ---------------------------------------------------------

    def access(self, addr: int, cycle: int, is_write: bool = False) -> AccessResult:
        self.stats.accesses += 1
        block = self._block_of(addr)
        self._expire_mshrs(cycle)

        if self._lookup(block):
            self.stats.hits += 1
            # A hit on a block whose fill is still in flight coalesces
            # onto the MSHR: data arrives when the fill arrives.
            for mshr in self._mshrs:
                if mshr.block == block:
                    self.stats.coalesced += 1
                    return AccessResult(
                        max(mshr.ready - cycle, self.hit_latency),
                        self.name, True)
            return AccessResult(self.hit_latency, self.name, True)

        self.stats.misses += 1

        # All MSHRs busy: the miss queues until one frees up.
        issue = cycle + self.hit_latency
        if len(self._mshrs) >= self.num_mshrs:
            earliest = min(m.ready for m in self._mshrs)
            self.stats.mshr_stall_cycles += max(0, earliest - issue)
            issue = max(issue, earliest)
            self._mshrs.remove(min(self._mshrs, key=lambda m: m.ready))

        below = self.next_level.access(addr, issue, is_write)
        ready = issue + below.latency
        self._mshrs.append(_Mshr(block, ready))
        self._install(block)

        if self.prefetch_next_line:
            # The prefetch launches when the miss is detected, so the
            # next line arrives roughly one miss-latency ahead of demand.
            self._prefetch(block + 1, issue)

        return AccessResult(ready - cycle, below.served_by, False)

    def _prefetch(self, block: int, cycle: int) -> None:
        """Next-line prefetch from the level below.

        The prefetched block occupies an MSHR until its fill arrives, so
        a demand access that lands early coalesces onto the in-flight
        fill instead of seeing instant data.  If no MSHR is free the
        prefetch is dropped, as real prefetchers do.
        """
        if self._lookup(block):
            return
        for mshr in self._mshrs:
            if mshr.block == block:
                return
        if len(self._mshrs) >= self.num_mshrs:
            return
        self.stats.prefetches += 1
        addr = block * self.block_size
        below = self.next_level.access(addr, cycle)
        self._mshrs.append(_Mshr(block, cycle + below.latency))
        self._install(block)

    def contains(self, addr: int) -> bool:
        """Non-destructive tag probe (testing/introspection)."""
        ways = self._sets.get(self._set_of(self._block_of(addr)))
        return ways is not None and self._block_of(addr) in ways

    def reset(self) -> None:
        self._sets.clear()
        self._mshrs.clear()
        self.stats = CacheStats()
