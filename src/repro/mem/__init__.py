"""Memory-system substrate: caches, DRAM, TLBs, page tables."""

from .cache import AccessResult, Cache, CacheStats, MainMemory, MemoryLevel
from .hierarchy import (MemoryAccessOutcome, MemoryConfig, MemoryHierarchy)
from .tlb import (PAGE_SIZE, PAGE_SHIFT, PageTable, PageTableWalker, Tlb,
                  TlbHierarchy, TranslationResult, vpn_of)

__all__ = [
    "AccessResult", "Cache", "CacheStats", "MainMemory", "MemoryLevel",
    "MemoryAccessOutcome", "MemoryConfig", "MemoryHierarchy",
    "PAGE_SIZE", "PAGE_SHIFT", "PageTable", "PageTableWalker", "Tlb",
    "TlbHierarchy", "TranslationResult", "vpn_of",
]
