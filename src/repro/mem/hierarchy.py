"""Full memory hierarchy: L1I/L1D -> L2 -> LLC -> DRAM plus TLBs.

The default latencies are chosen so that an L1 miss served by the LLC
costs ~40 cycles, matching the paper's Section 2.2 example ("a 40-cycle
latency is consistent with a partially hidden LLC hit in our setup").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .cache import AccessResult, Cache, MainMemory
from .tlb import (PAGE_SIZE, PageTable, PageTableWalker, Tlb, TlbHierarchy,
                  TranslationResult, vpn_of)


@dataclass
class MemoryConfig:
    """Geometry and timing of the memory system (Table 1 defaults)."""

    block_size: int = 64
    l1i_size: int = 32 * 1024
    l1i_assoc: int = 8
    l1i_latency: int = 1
    l1i_mshrs: int = 8
    l1d_size: int = 32 * 1024
    l1d_assoc: int = 8
    l1d_latency: int = 2
    l1d_mshrs: int = 8
    l2_size: int = 512 * 1024
    l2_assoc: int = 8
    l2_latency: int = 12
    l2_mshrs: int = 12
    llc_size: int = 4 * 1024 * 1024
    llc_assoc: int = 8
    llc_latency: int = 26
    llc_mshrs: int = 8
    dram_latency: int = 100
    dram_cycles_per_access: int = 4
    itlb_entries: int = 32
    dtlb_entries: int = 32
    l2tlb_entries: int = 512
    next_line_prefetcher: bool = True


@dataclass
class MemoryAccessOutcome:
    """Result of a translated memory access."""

    latency: int
    fault: bool
    served_by: str
    translation: str


class MemoryHierarchy:
    """The complete memory system used by the out-of-order core."""

    def __init__(self, config: Optional[MemoryConfig] = None,
                 page_table: Optional[PageTable] = None):
        self.config = config or MemoryConfig()
        cfg = self.config
        self.page_table = page_table or PageTable()

        self.dram = MainMemory(cfg.dram_latency, cfg.dram_cycles_per_access)
        self.llc = Cache("LLC", cfg.llc_size, cfg.llc_assoc, cfg.block_size,
                         cfg.llc_latency, cfg.llc_mshrs, self.dram)
        self.l2 = Cache("L2", cfg.l2_size, cfg.l2_assoc, cfg.block_size,
                        cfg.l2_latency, cfg.l2_mshrs, self.llc)
        self.l1i = Cache("L1I", cfg.l1i_size, cfg.l1i_assoc, cfg.block_size,
                         cfg.l1i_latency, cfg.l1i_mshrs, self.l2,
                         prefetch_next_line=cfg.next_line_prefetcher)
        self.l1d = Cache("L1D", cfg.l1d_size, cfg.l1d_assoc, cfg.block_size,
                         cfg.l1d_latency, cfg.l1d_mshrs, self.l2,
                         prefetch_next_line=cfg.next_line_prefetcher)

        walker = PageTableWalker(self.l2)
        self.walker = walker
        self.itlb = TlbHierarchy(Tlb("ITLB", cfg.itlb_entries),
                                 Tlb("L2TLB-I", cfg.l2tlb_entries,
                                     direct_mapped=True),
                                 walker, self.page_table)
        self.dtlb = TlbHierarchy(Tlb("DTLB", cfg.dtlb_entries),
                                 Tlb("L2TLB-D", cfg.l2tlb_entries,
                                     direct_mapped=True),
                                 walker, self.page_table)

    # -- access ports --------------------------------------------------------

    def inst_fetch(self, addr: int, cycle: int) -> MemoryAccessOutcome:
        """Fetch an instruction cache block containing *addr*."""
        translation = self.itlb.translate(addr, cycle)
        if translation.fault:
            return MemoryAccessOutcome(translation.latency, True, "fault",
                                       translation.source)
        result = self.l1i.access(addr, cycle + translation.latency)
        return MemoryAccessOutcome(translation.latency + result.latency,
                                   False, result.served_by,
                                   translation.source)

    def data_access(self, addr: int, cycle: int,
                    is_write: bool = False) -> MemoryAccessOutcome:
        """Access data memory at *addr* (TLB + D-cache path)."""
        translation = self.dtlb.translate(addr, cycle)
        if translation.fault:
            return MemoryAccessOutcome(translation.latency, True, "fault",
                                       translation.source)
        result = self.l1d.access(addr, cycle + translation.latency,
                                 is_write)
        return MemoryAccessOutcome(translation.latency + result.latency,
                                   False, result.served_by,
                                   translation.source)

    def reset(self) -> None:
        for cache in (self.l1i, self.l1d, self.l2, self.llc):
            cache.reset()
        self.dram.reset()
        for tlbs in (self.itlb, self.dtlb):
            tlbs.l1.reset()
            tlbs.l2.reset()
