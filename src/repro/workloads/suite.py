"""The 27-benchmark synthetic suite (SPEC CPU2017 + PARSEC stand-ins).

One workload per benchmark in Figure 7, each built from kernels tuned to
land in the paper's class for that benchmark: *Compute*-intensive
benchmarks commit wide, *Flush*-intensive ones spend >3% of time on
mispredict/CSR flushes, and *Stall*-intensive ones are dominated by
load/store/ALU stalls and front-end drains.

The programs are synthetic: what matters for profiler-accuracy
experiments is the distribution of commit-stage states, not the original
program semantics (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from .generator import (Kernel, Workload, build_workload, k_branchy,
                        k_calls, k_csr_flush, k_dep_chain, k_fault,
                        k_fp_div, k_fp_ilp, k_icache, k_int_ilp,
                        k_pointer_chase, k_serialize, k_stream_load,
                        k_stream_store)

# Distinct data regions used by kernels within one workload.
BASE_A = 0x20_0000
BASE_B = 0x40_0000
BASE_C = 0x60_0000
BASE_D = 0x80_0000
FAULT_BASE = 0x200_0000
LOCK_BASE = 0x12_0000

KB = 1024
MB = 1024 * 1024

#: Benchmark -> class expected by the paper (Figure 7 grouping).
PAPER_CLASSES: Dict[str, str] = {
    "exchange2": "Compute", "x264": "Compute", "deepsjeng": "Compute",
    "namd": "Compute", "leela": "Compute", "swaptions": "Compute",
    "imagick": "Flush", "nab": "Flush", "perlbench": "Flush",
    "fluidanimate": "Flush", "blackscholes": "Flush", "povray": "Flush",
    "bodytrack": "Flush", "gcc": "Flush",
    "canneal": "Stall", "lbm": "Stall", "mcf": "Stall",
    "fotonik3d": "Stall", "bwaves": "Stall", "omnetpp": "Stall",
    "roms": "Stall", "streamcluster": "Stall", "xalancbmk": "Stall",
    "wrf": "Stall", "parest": "Stall", "cam4": "Stall",
    "cactuBSSN": "Stall",
}

#: All benchmark names in the paper's Figure 7 order.
BENCHMARKS: List[str] = list(PAPER_CLASSES)


def _scale(iters: int, scale: float) -> int:
    return max(8, int(iters * scale))


def _builders(scale: float) -> Dict[str, Callable[[], Workload]]:
    s = lambda iters: _scale(iters, scale)  # noqa: E731 - local shorthand

    return {
        # -- Compute-intensive ------------------------------------------------
        "exchange2": lambda: build_workload("exchange2", [
            k_int_ilp("solve", s(5000), width=7),
            k_calls("recurse", s(500), callees=3),
            k_branchy("validate", s(700), BASE_A, taken_bias=0.95),
        ], rounds=2, description="integer ILP + predictable control"),
        "x264": lambda: build_workload("x264", [
            k_int_ilp("sad", s(3500), width=6),
            k_stream_load("mc", s(700), BASE_A, 256 * KB, stride=16),
            k_calls("encode", s(350), callees=4),
        ], rounds=2, description="integer ILP + L2-resident streaming"),
        "deepsjeng": lambda: build_workload("deepsjeng", [
            k_int_ilp("eval", s(3000), width=6),
            k_branchy("search", s(600), BASE_A, taken_bias=0.8),
            k_dep_chain("hash", s(400), muls=2),
        ], rounds=2, description="integer ILP + search control flow"),
        "namd": lambda: build_workload("namd", [
            k_fp_ilp("forces", s(4500), width=4),
            k_stream_load("pairs", s(600), BASE_A, 256 * KB, stride=16,
                          fp=True),
        ], rounds=2, description="FP ILP molecular dynamics"),
        "leela": lambda: build_workload("leela", [
            k_int_ilp("playout", s(2800), width=6),
            k_calls("tree", s(700), callees=4),
            k_branchy("policy", s(450), BASE_A, taken_bias=0.85),
        ], rounds=2, description="integer ILP + tree calls"),
        "swaptions": lambda: build_workload("swaptions", [
            k_fp_ilp("hjm", s(3500), width=4),
            k_fp_div("discount", s(180), divs=1),
            k_int_ilp("paths", s(1200), width=5),
        ], rounds=2, description="FP ILP Monte Carlo"),

        # -- Flush-intensive ---------------------------------------------------
        "imagick": lambda: build_workload("imagick", [
            k_csr_flush("resize", s(900), work=3),
            k_fp_ilp("filter", s(900), width=4),
            k_stream_load("pixels", s(250), BASE_A, 512 * KB, stride=16,
                          fp=True),
        ], rounds=2, description="CSR flushes around FP rounding"),
        "nab": lambda: build_workload("nab", [
            k_fp_ilp("mme", s(1800), width=4),
            k_csr_flush("round", s(350), work=2),
            k_fp_div("norm", s(150), divs=1),
        ], rounds=2, description="FP + rounding-mode flushes"),
        "perlbench": lambda: build_workload("perlbench", [
            k_branchy("interp", s(1900), BASE_A, taken_bias=0.5),
            k_calls("dispatch", s(400), callees=5),
            k_pointer_chase("symtab", s(130), BASE_C, 256 * KB // 8),
            k_int_ilp("regex", s(250), width=5),
        ], rounds=2, description="interpreter: mispredicts + calls"),
        "fluidanimate": lambda: build_workload("fluidanimate", [
            k_fp_ilp("density", s(1300), width=4),
            k_branchy("cells", s(900), BASE_A, taken_bias=0.6),
            k_stream_load("grid", s(350), BASE_B, 1 * MB, stride=16,
                          fp=True),
        ], rounds=2, description="FP + data-dependent cell tests"),
        "blackscholes": lambda: build_workload("blackscholes", [
            k_fp_ilp("bs", s(1500), width=4),
            k_fp_div("cndf", s(220), divs=2),
            k_csr_flush("round", s(280), work=2),
        ], rounds=2, description="FP pricing + rounding flushes"),
        "povray": lambda: build_workload("povray", [
            k_fp_ilp("shade", s(500), width=4),
            k_calls("trace", s(300), callees=5),
            k_branchy("intersect", s(1000), BASE_A, taken_bias=0.55),
            k_fp_div("refract", s(170), divs=1),
            k_stream_load("media", s(220), BASE_B, 2 * MB, stride=16,
                          fp=True),
        ], rounds=2, description="ray tracing: FP + branchy + calls"),
        "bodytrack": lambda: build_workload("bodytrack", [
            k_fp_ilp("likelihood", s(1100), width=4),
            k_branchy("particles", s(1000), BASE_A, taken_bias=0.55),
            k_stream_load("frames", s(300), BASE_B, 1 * MB, stride=16),
        ], rounds=2, description="vision: FP + mispredicted tests"),
        "gcc": lambda: build_workload("gcc", [
            k_branchy("parse", s(1300), BASE_A, taken_bias=0.5),
            k_pointer_chase("rtl", s(350), BASE_C, 32 * KB // 8),
            k_calls("passes", s(450), callees=5),
            k_int_ilp("fold", s(600), width=5),
            k_fault("mmap", 12, FAULT_BASE),
        ], rounds=2, description="compiler: mispredicts, pointers, faults"),

        # -- Stall-intensive ----------------------------------------------------
        "canneal": lambda: build_workload("canneal", [
            k_pointer_chase("swap", s(750), BASE_C, 512 * KB // 8),
            k_branchy("accept", s(300), BASE_A, taken_bias=0.5),
        ], rounds=2, description="pointer chasing over a large netlist"),
        "lbm": lambda: build_workload("lbm", [
            k_stream_load("collide", s(2100), BASE_B, 4 * MB, stride=16,
                          fp=True),
            k_stream_store("propagate", s(420), BASE_D, 4 * MB, stride=16),
            k_fp_ilp("relax", s(420), width=4),
            k_dep_chain("site", s(170), muls=3),
        ], rounds=2, description="lattice Boltzmann streaming"),
        "mcf": lambda: build_workload("mcf", [
            k_pointer_chase("arcs", s(600), BASE_C, 2 * MB // 8),
            k_branchy("pricing", s(350), BASE_A, taken_bias=0.6),
        ], rounds=2, description="network simplex pointer chasing"),
        "fotonik3d": lambda: build_workload("fotonik3d", [
            k_stream_load("sweep", s(1800), BASE_B, 4 * MB, stride=16,
                          fp=True),
            k_fp_ilp("update", s(500), width=4),
        ], rounds=2, description="FDTD streaming sweeps"),
        "bwaves": lambda: build_workload("bwaves", [
            k_stream_load("flux", s(1500), BASE_B, 4 * MB, stride=16,
                          fp=True),
            k_fp_div("jacobi", s(120), divs=1),
            k_fp_ilp("rhs", s(500), width=4),
        ], rounds=2, description="CFD streaming + FP"),
        "omnetpp": lambda: build_workload("omnetpp", [
            k_pointer_chase("events", s(450), BASE_C, 1 * MB // 8),
            k_calls("deliver", s(450), callees=4),
            k_branchy("gates", s(500), BASE_A, taken_bias=0.6),
        ], rounds=2, description="discrete-event pointer chasing"),
        "roms": lambda: build_workload("roms", [
            k_stream_load("ocean", s(1300), BASE_B, 2 * MB, stride=16,
                          fp=True),
            k_stream_store("tides", s(350), BASE_D, 2 * MB, stride=16),
            k_fp_ilp("step", s(500), width=4),
        ], rounds=2, description="ocean model streaming"),
        "streamcluster": lambda: build_workload("streamcluster", [
            k_stream_load("dist", s(1800), BASE_B, 4 * MB, stride=16),
            k_int_ilp("centers", s(500), width=5),
        ], rounds=2, description="clustering distance streaming"),
        "xalancbmk": lambda: build_workload("xalancbmk", [
            k_icache("transform", s(2), funcs=14, insts_per_func=520),
            k_pointer_chase("dom", s(400), BASE_C, 512 * KB // 8),
            k_calls("templates", s(400), callees=5),
            k_fault("alloc", 10, FAULT_BASE),
        ], rounds=2, description="XSLT: code footprint + pointers"),
        "wrf": lambda: build_workload("wrf", [
            k_stream_load("physics", s(1900), BASE_B, 2 * MB, stride=16,
                          fp=True),
            k_fp_ilp("dynamics", s(300), width=4),
            k_icache("modules", s(1), funcs=8, insts_per_func=200),
        ], rounds=2, description="weather model: streams + code"),
        "parest": lambda: build_workload("parest", [
            k_stream_load("assemble", s(1000), BASE_B, 1 * MB, stride=16,
                          fp=True),
            k_fp_ilp("solve", s(800), width=4),
            k_fp_div("precond", s(150), divs=1),
        ], rounds=2, description="FEM solver"),
        "cam4": lambda: build_workload("cam4", [
            k_stream_load("column", s(1700), BASE_B, 2 * MB, stride=16,
                          fp=True),
            k_fp_ilp("radiation", s(260), width=4),
            k_icache("physics", s(1), funcs=8, insts_per_func=200),
            k_branchy("convect", s(350), BASE_A, taken_bias=0.7),
        ], rounds=2, description="atmosphere model"),
        "cactuBSSN": lambda: build_workload("cactuBSSN", [
            k_fp_div("rhs", s(250), divs=2),
            k_fp_ilp("stencil", s(700), width=4),
            k_stream_load("grid", s(900), BASE_B, 4 * MB, stride=16,
                          fp=True),
            k_dep_chain("bssn", s(200), muls=3),
        ], rounds=2, description="numerical relativity stencils"),
    }


def workload_names() -> List[str]:
    """All 27 benchmark names in Figure 7 order."""
    return list(BENCHMARKS)


def build(name: str, scale: float = 1.0) -> Workload:
    """Build one named benchmark at *scale* (iteration multiplier)."""
    builders = _builders(scale)
    if name not in builders:
        raise ValueError(f"unknown benchmark {name!r}; "
                         f"choose from {sorted(builders)}")
    return builders[name]()


def build_suite(names: Optional[Sequence[str]] = None,
                scale: float = 1.0) -> List[Workload]:
    """Build the whole suite (or a subset)."""
    return [build(name, scale) for name in (names or BENCHMARKS)]
