"""Synthetic workloads: kernels, the 27-benchmark suite, Imagick."""

from .generator import (Kernel, Workload, build_workload, k_branchy,
                        k_calls, k_csr_flush, k_dep_chain, k_fault,
                        k_fp_div, k_fp_ilp, k_icache, k_int_ilp,
                        k_pointer_chase, k_recursive, k_serialize,
                        k_stream_load, k_stream_store)
from .imagick import build_imagick
from .suite import (BENCHMARKS, PAPER_CLASSES, build, build_suite,
                    workload_names)

__all__ = [
    "Kernel", "Workload", "build_workload", "k_branchy", "k_calls",
    "k_csr_flush", "k_dep_chain", "k_fault", "k_fp_div", "k_fp_ilp",
    "k_icache", "k_int_ilp", "k_pointer_chase", "k_recursive",
    "k_serialize",
    "k_stream_load", "k_stream_store", "build_imagick", "BENCHMARKS",
    "PAPER_CLASSES", "build", "build_suite", "workload_names",
]
