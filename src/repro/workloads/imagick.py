"""The Imagick case study program (Section 6).

Imagick's third-hottest function is the math-library ``ceil``; it (and
``floor``) bracket their FP rounding work with ``frflags``/``fsflags`` to
keep the functions side-effect free.  On BOOM every FP-status-CSR access
flushes the pipeline.  The paper's fix replaces the CSR instructions with
``nop``s, yielding a 1.93x speedup dominated by second-order effects
(restored latency hiding).

:func:`build_imagick` generates the original program;
``build_imagick(optimized=True)`` generates the fixed one.  Both have
*identical* instruction addresses, so profiles line up line for line.
Because the fix claims to be semantics-preserving, the builder *checks*
it: the first build of any parameter set runs both variants through the
differential harness (:func:`repro.opt.verify.diff_architectural`) and
refuses to hand out a pair whose observable architectural state
diverges.  The check is memoized per ``(pixels, morph_iters, seed)``.
"""

from __future__ import annotations

import random
from typing import List, Set, Tuple

from ..isa.assembler import assemble
from ..isa.program import Program, TEXT_BASE
from .generator import Workload, self_check_program

PIXEL_BASE = 0x20_0000
PIXEL_WORDS = 4096
OUT_BASE = 0x40_0000
MORPH_BASE = 0x60_0000
MORPH_WORDS = 8192

_MASK = 8 * PIXEL_WORDS - 1
_MORPH_MASK = 8 * MORPH_WORDS - 1


def _rounding_func(name: str, direction: str, optimized: bool) -> str:
    """``ceil`` / ``floor``: truncate, then adjust by comparing.

    The frflags/fsflags pair protects the caller from the inexact flag the
    conversion may raise -- exactly the pattern the paper found.  In the
    optimized build both become ``nop`` (same addresses).
    """
    save = "nop" if optimized else "frflags x7"
    restore = "nop" if optimized else "fsflags x7"
    if direction == "up":
        compare = f"    flt  x9, f2, f1        # trunc < x: round up"
        adjust = "    fadd f2, f2, f11"
    else:
        compare = f"    flt  x9, f1, f2        # x < trunc: round down"
        adjust = "    fsub f2, f2, f11"
    return f""".func {name}
{name}:
    {save}
    fcvt.w.d x8, f1
    fcvt.d.w f2, x8
    feq  x10, f2, f1
    bne  x10, x0, {name}_exact
{compare}
    beq  x9, x0, {name}_done
{adjust}
{name}_done:
{name}_exact:
    fmv  f3, f2
    {restore}
    jalr x0, x2, 0
"""


def _source(pixels: int, morph_iters: int, optimized: bool) -> str:
    return f""".entry main
.func main
main:
    addi x7, x0, 1
    fcvt.d.w f11, x7        # the constant 1.0
    jal  x1, MeanShiftImage
    jal  x1, MorphologyApply
    halt

.func MeanShiftImage
MeanShiftImage:
    addi x5, x0, 0
    addi x6, x0, {pixels}
MSI_L:
    fld  f1, {PIXEL_BASE}(x5)
    jal  x2, ceil
    fadd f4, f4, f3
    fld  f1, {PIXEL_BASE + 8}(x5)
    jal  x2, floor
    fadd f4, f4, f3
    fmul f5, f4, f12
    fsd  f5, {OUT_BASE}(x5)
    addi x5, x5, 8
    andi x5, x5, {_MASK}
    addi x6, x6, -1
    bne  x6, x0, MSI_L
    jalr x0, x1, 0

{_rounding_func("ceil", "up", optimized)}
{_rounding_func("floor", "down", optimized)}
.func MorphologyApply
MorphologyApply:
    addi x5, x0, 0
    addi x6, x0, {morph_iters}
MA_L:
    fld  f1, {MORPH_BASE}(x5)
    fld  f2, {MORPH_BASE + 8}(x5)
    fmadd f6, f1, f2, f6
    fadd f7, f7, f1
    fmul f8, f8, f2
    fadd f8, f8, f11
    addi x5, x5, 16
    andi x5, x5, {_MORPH_MASK}
    addi x6, x6, -1
    bne  x6, x0, MA_L
    jalr x0, x1, 0
"""


def _build_program(optimized: bool, pixels: int, morph_iters: int,
                   seed: int) -> Program:
    name = "imagick-opt" if optimized else "imagick-orig"
    program = assemble(_source(pixels, morph_iters, optimized),
                       base=TEXT_BASE, name=name)
    rng = random.Random(seed)
    for i in range(PIXEL_WORDS):
        program.data[PIXEL_BASE + 8 * i] = rng.uniform(0.0, 100.0)
    for i in range(0, MORPH_WORDS, 2):
        program.data[MORPH_BASE + 8 * i] = rng.uniform(0.5, 1.5)
        program.data[MORPH_BASE + 8 * (i + 1)] = rng.uniform(0.5, 1.5)
    for i in range(PIXEL_WORDS):
        # The output plane is part of the program's legal footprint:
        # declaring it keeps the memory-safety rules (L014) aware that
        # the MSI kernel's stores are in bounds.
        program.data.setdefault(OUT_BASE + 8 * i, 0.0)
    self_check_program(program)
    return program


#: Parameter sets whose orig/opt pair already passed the differential.
_VERIFIED_SIBLINGS: Set[Tuple[int, int, int]] = set()


def _verify_siblings(orig: Program, opt: Program,
                     key: Tuple[int, int, int]) -> None:
    """Differentially execute the orig/opt pair (once per *key*)."""
    if key in _VERIFIED_SIBLINGS:
        return
    from ..opt.verify import diff_architectural
    report = diff_architectural(orig, opt, trials=2,
                                max_instructions=50_000_000)
    if not report.identical:
        raise ValueError(
            "imagick variants diverge architecturally:\n"
            + report.render())
    _VERIFIED_SIBLINGS.add(key)


def build_imagick(optimized: bool = False, pixels: int = 1500,
                  morph_iters: int = 3400, seed: int = 42) -> Workload:
    """Build the Imagick case-study workload.

    *optimized* replaces the ``frflags``/``fsflags`` pair in ``ceil`` and
    ``floor`` with ``nop``, reproducing the paper's fix.  The first
    build of a parameter set differentially verifies the two variants
    against each other on the reference interpreter.
    """
    name = "imagick-opt" if optimized else "imagick-orig"
    program = _build_program(optimized, pixels, morph_iters, seed)
    key = (pixels, morph_iters, seed)
    if key not in _VERIFIED_SIBLINGS:
        sibling = _build_program(not optimized, pixels, morph_iters,
                                 seed)
        orig, opt = ((sibling, program) if optimized
                     else (program, sibling))
        _verify_siblings(orig, opt, key)
    premapped: List[Tuple[int, int]] = [
        (PIXEL_BASE, PIXEL_BASE + 8 * PIXEL_WORDS),
        (OUT_BASE, OUT_BASE + 8 * PIXEL_WORDS),
        (MORPH_BASE, MORPH_BASE + 8 * MORPH_WORDS),
    ]
    return Workload(name, program, premapped,
                    "Imagick ceil/floor CSR-flush case study")
