"""Synthetic workload generator.

Workloads are assembled from parameterised *kernels*, each a function in
the final program that stresses one microarchitectural behaviour: wide
commit ILP, serial-dependence ALU stalls, streaming and pointer-chasing
load stalls, store-buffer pressure, data-dependent branch mispredicts,
CSR pipeline flushes, instruction-cache thrashing, page faults and
serialized instructions.  Mixing kernels with different iteration counts
reproduces the Compute / Flush / Stall cycle-stack classes of Figure 7.

Calling convention: ``main`` calls kernels through ``x1``; kernels call
sub-functions through ``x2``.  Kernels may clobber ``x5..x27`` and
``f1..f15``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..isa.assembler import assemble
from ..isa.program import Program, TEXT_BASE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..lint.linter import LintReport


@dataclass
class Kernel:
    """One generated kernel: a function plus its data and page mapping."""

    name: str
    text: str
    #: Word address -> initial value, installed after assembly.
    data: Dict[int, float] = field(default_factory=dict)
    #: Data ranges resident at boot (everything else faults on touch).
    premapped: List[Tuple[int, int]] = field(default_factory=list)


class WorkloadLintError(ValueError):
    """A generated workload failed the linter's structural self-check."""


@dataclass
class Workload:
    """A ready-to-run benchmark."""

    name: str
    program: Program
    premapped: List[Tuple[int, int]]
    description: str = ""

    def lint(self) -> "LintReport":
        """Run the full linter over this workload's program (with the
        premapped regions declared legal for the memory-safety rules)."""
        from ..lint.linter import lint_program
        return lint_program(self.program, regions=tuple(self.premapped))

    def __repr__(self) -> str:
        return f"<workload {self.name}: {len(self.program)} insts>"


def self_check_program(program: Program,
                       regions: Tuple[Tuple[int, int], ...] = ()) -> None:
    """Raise :class:`WorkloadLintError` if *program* fails the build
    gate: the structural lint rules (unreachable blocks, fall-through
    off text, overlapping function symbols) plus const-proven
    unreachable code (L011) and the abstract-interpretation proofs
    (out-of-bounds/misaligned access, stack discipline, L014..L017) --
    any diagnostic from that set fails the build, regardless of
    severity.  *regions* are premapped byte ranges the memory-safety
    rules must treat as legally mapped.

    Generators call this on every program they emit, so a kernel-emitter
    bug shows up as a lint report at build time instead of a bogus
    profile after minutes of simulation.
    """
    from ..lint.linter import Linter
    report = Linter.self_check().run(program, regions=regions)
    if report.diagnostics:
        raise WorkloadLintError(
            f"generated program {program.name!r} failed the lint "
            f"self-check:\n{report.render()}")


def _ret(link: str = "x1") -> str:
    return f"    jalr x0, {link}, 0\n"


# ---------------------------------------------------------------------------
# Kernel emitters
# ---------------------------------------------------------------------------

def k_int_ilp(name: str, iters: int, width: int = 6) -> Kernel:
    """Independent integer chains: sustains full commit width.

    A predictable skip branch (taken every fourth iteration) keeps commit
    groups from phase-locking onto the loop body, as real compute loops
    with internal control flow do.
    """
    body = [f".func {name}", f"{name}:", f"    addi x6, x0, {iters}",
            f"{name}_L:"]
    for i in range(width):
        reg = 7 + i
        body.append(f"    add  x{reg}, x{reg}, x6")
    body += [f"    andi x15, x6, 3",
             f"    bne  x15, x0, {name}_S",
             "    xor  x7, x7, x8",
             "    add  x9, x9, x7",
             f"{name}_S:",
             "    addi x6, x6, -1", f"    bne  x6, x0, {name}_L", _ret()]
    return Kernel(name, "\n".join(body) + "\n")


def k_fp_ilp(name: str, iters: int, width: int = 4) -> Kernel:
    """Independent floating-point chains (FP issue-width bound)."""
    body = [f".func {name}", f"{name}:", f"    addi x6, x0, {iters}",
            f"{name}_L:"]
    for i in range(width):
        op = "fadd" if i % 2 == 0 else "fmul"
        reg = 1 + i
        body.append(f"    {op} f{reg}, f{reg}, f{8 + (i % 4)}")
    body += [f"    andi x15, x6, 3",
             f"    bne  x15, x0, {name}_S",
             "    fadd f6, f6, f1",
             f"{name}_S:",
             "    addi x6, x6, -1", f"    bne  x6, x0, {name}_L", _ret()]
    return Kernel(name, "\n".join(body) + "\n")


def k_dep_chain(name: str, iters: int, muls: int = 3,
                use_div: bool = False) -> Kernel:
    """A serial multiply (and optionally divide) chain: ALU stalls."""
    body = [f".func {name}", f"{name}:", f"    addi x6, x0, {iters}",
            "    addi x7, x0, 3", f"{name}_L:"]
    for _ in range(muls):
        body.append("    mul  x7, x7, x7")
        body.append("    ori  x7, x7, 3")
    if use_div:
        body.append("    div  x8, x7, x6")
    body += ["    addi x6, x6, -1", f"    bne  x6, x0, {name}_L", _ret()]
    return Kernel(name, "\n".join(body) + "\n")


def k_fp_div(name: str, iters: int, divs: int = 2) -> Kernel:
    """Serial FP divides: long-latency FP ALU stalls."""
    body = [f".func {name}", f"{name}:", f"    addi x6, x0, {iters}",
            f"{name}_L:"]
    for _ in range(divs):
        body.append("    fdiv f1, f1, f9")
        body.append("    fadd f1, f1, f10")
    body += ["    addi x6, x6, -1", f"    bne  x6, x0, {name}_L", _ret()]
    return Kernel(name, "\n".join(body) + "\n")


def k_stream_load(name: str, iters: int, base: int, size: int,
                  stride: int = 8, fp: bool = False,
                  premap: bool = True) -> Kernel:
    """Streaming loads over a *size*-byte buffer (power of two)."""
    if size & (size - 1):
        raise ValueError("stream buffer size must be a power of two")
    mask = size - 1
    load = "fld  f1" if fp else "ld   x7"
    load2 = "fld  f2" if fp else "ld   x8"
    acc = ("    fadd f3, f3, f1\n    fadd f3, f3, f2\n" if fp
           else "    add  x9, x9, x7\n    add  x9, x9, x8\n")
    # The loads live in their own basic block behind a predictable branch,
    # like the control flow inside real loop nests -- this is what makes
    # LCI misattribute load stalls to the preceding block (Figure 9, lbm).
    text = f""".func {name}
{name}:
    addi x5, x0, 0
    addi x6, x0, {iters}
{name}_L:
    andi x15, x6, 3
    bne  x15, x0, {name}_B
    addi x10, x10, 1
    xor  x10, x10, x6
{name}_B:
    {load}, {base}(x5)
    {load2}, {base + 8}(x5)
{acc}    addi x5, x5, {stride}
    andi x5, x5, {mask}
    addi x6, x6, -1
    bne  x6, x0, {name}_L
{_ret()}"""
    premapped = [(base, base + size)] if premap else []
    return Kernel(name, text, premapped=premapped)


def k_pointer_chase(name: str, iters: int, base: int, entries: int,
                    seed: int = 12345, sequential: bool = False) -> Kernel:
    """Dependent loads through a permutation: no MLP at all.

    With *sequential* the chain walks the buffer in address order --
    still fully dependent, but next-line prefetching becomes effective
    (used by the prefetcher ablation).
    """
    rng = random.Random(seed)
    order = list(range(1, entries))
    if not sequential:
        rng.shuffle(order)
    # Build one cycle visiting every entry.
    data: Dict[int, float] = {}
    current = 0
    for nxt in order:
        data[base + 8 * current] = base + 8 * nxt
        current = nxt
    data[base + 8 * current] = base  # close the cycle
    text = f""".func {name}
{name}:
    addi x5, x0, {base}
    addi x6, x0, {iters}
{name}_L:
    addi x6, x6, -1
    andi x15, x6, 3
    bne  x15, x0, {name}_B
    addi x10, x10, 1
{name}_B:
    ld   x5, 0(x5)
    bne  x6, x0, {name}_L
{_ret()}"""
    return Kernel(name, text, data=data,
                  premapped=[(base, base + 8 * entries)])


def k_stream_store(name: str, iters: int, base: int, size: int,
                   stride: int = 16) -> Kernel:
    """Streaming stores: fills the store buffer, store stalls at commit."""
    if size & (size - 1):
        raise ValueError("store buffer size must be a power of two")
    mask = size - 1
    text = f""".func {name}
{name}:
    addi x5, x0, 0
    addi x6, x0, {iters}
    addi x7, x0, 42
{name}_L:
    sd   x7, {base}(x5)
    sd   x7, {base + 8}(x5)
    addi x5, x5, {stride}
    andi x5, x5, {mask}
    addi x6, x6, -1
    bne  x6, x0, {name}_L
{_ret()}"""
    return Kernel(name, text, premapped=[(base, base + size)])


def k_branchy(name: str, iters: int, base: int, entries: int = 1024,
              seed: int = 999, taken_bias: float = 0.5) -> Kernel:
    """Data-dependent branches on random data: mispredict flushes."""
    rng = random.Random(seed)
    data = {base + 8 * i: int(rng.random() < taken_bias)
            for i in range(entries)}
    mask = 8 * entries - 1
    text = f""".func {name}
{name}:
    addi x5, x0, 0
    addi x6, x0, {iters}
    addi x9, x0, 0
{name}_L:
    ld   x7, {base}(x5)
    beq  x7, x0, {name}_S
    addi x9, x9, 3
    xor  x9, x9, x7
{name}_S:
    addi x9, x9, 1
    addi x5, x5, 8
    andi x5, x5, {mask}
    addi x6, x6, -1
    bne  x6, x0, {name}_L
{_ret()}"""
    return Kernel(name, text, data=data,
                  premapped=[(base, base + 8 * entries)])


def k_csr_flush(name: str, iters: int, work: int = 2) -> Kernel:
    """frflags/fsflags around FP work: CSR pipeline flushes (Imagick)."""
    body = [f".func {name}", f"{name}:", f"    addi x6, x0, {iters}",
            f"{name}_L:", "    frflags x7"]
    for i in range(work):
        body.append(f"    fadd f{1 + i}, f{1 + i}, f9")
    body += ["    fsflags x7", "    addi x6, x6, -1",
             f"    bne  x6, x0, {name}_L", _ret()]
    return Kernel(name, "\n".join(body) + "\n")


def k_calls(name: str, iters: int, callees: int = 4,
            callee_work: int = 4) -> Kernel:
    """A loop of calls to small leaf functions through ``x2``."""
    body = [f".func {name}", f"{name}:", f"    addi x6, x0, {iters}",
            f"{name}_L:"]
    for i in range(callees):
        body.append(f"    jal  x2, {name}_c{i}")
    body += ["    addi x6, x6, -1", f"    bne  x6, x0, {name}_L", _ret()]
    for i in range(callees):
        body += [f".func {name}_c{i}", f"{name}_c{i}:"]
        for j in range(callee_work):
            body.append(f"    add  x{10 + (j % 6)}, x{10 + (j % 6)}, x6")
        body.append(_ret("x2").rstrip())
    return Kernel(name, "\n".join(body) + "\n")


def k_recursive(name: str, iters: int, depth: int = 12,
                work: int = 3) -> Kernel:
    """Recursive descent through a chain of functions.

    Exercises deep call/return chains: each level saves the caller's
    link register to memory, does a little work, recurses through
    ``x2``, and restores -- so the return-address stack sees real depth
    (like exchange2's recursive solver).
    """
    stack_base = 0x1C_0000
    body = [f".func {name}", f"{name}:", f"    addi x6, x0, {iters}",
            f"{name}_L:", f"    jal  x2, {name}_d0",
            "    addi x6, x6, -1", f"    bne  x6, x0, {name}_L", _ret()]
    for level in range(depth):
        save = stack_base + 8 * level
        body += [f".func {name}_d{level}", f"{name}_d{level}:",
                 f"    sd   x2, {save}(x0)"]
        for j in range(work):
            body.append(f"    add  x{10 + (j % 6)}, x{10 + (j % 6)}, x6")
        if level + 1 < depth:
            body.append(f"    jal  x2, {name}_d{level + 1}")
        body += [f"    ld   x2, {save}(x0)", _ret("x2").rstrip()]
    return Kernel(name, "\n".join(body) + "\n",
                  premapped=[(stack_base, stack_base + 8 * depth)])


def k_icache(name: str, iters: int, funcs: int = 24,
             insts_per_func: int = 420, seed: int = 7) -> Kernel:
    """A code footprint exceeding the L1 I-cache, visited in a shuffled
    order: front-end drains."""
    rng = random.Random(seed)
    order = list(range(funcs)) * 2
    rng.shuffle(order)
    body = [f".func {name}", f"{name}:", f"    addi x6, x0, {iters}",
            f"{name}_L:"]
    for i in order:
        body.append(f"    jal  x2, {name}_f{i}")
    body += ["    addi x6, x6, -1", f"    bne  x6, x0, {name}_L", _ret()]
    for i in range(funcs):
        body += [f".func {name}_f{i}", f"{name}_f{i}:"]
        for j in range(insts_per_func):
            body.append(f"    add  x{10 + (j % 8)}, x{10 + (j % 8)}, x5")
        body.append(_ret("x2").rstrip())
    return Kernel(name, "\n".join(body) + "\n")


def k_fault(name: str, pages: int, base: int,
            touches_per_page: int = 1) -> Kernel:
    """First-touch page faults over *pages* unmapped pages."""
    body = [f".func {name}", f"{name}:", "    addi x5, x0, 0",
            f"    addi x6, x0, {pages}", f"{name}_L:"]
    for i in range(touches_per_page):
        body.append(f"    ld   x7, {base + 64 * i}(x5)")
    body += ["    addi x5, x5, 4096", "    addi x6, x6, -1",
             f"    bne  x6, x0, {name}_L", _ret()]
    return Kernel(name, "\n".join(body) + "\n", premapped=[])


def k_serialize(name: str, iters: int, base: int) -> Kernel:
    """Fences and atomics: full pipeline serialization."""
    text = f""".func {name}
{name}:
    addi x6, x0, {iters}
    addi x9, x0, {base}
    addi x8, x0, 1
{name}_L:
    fence
    amoadd x7, x8, 0(x9)
    addi x6, x6, -1
    bne  x6, x0, {name}_L
{_ret()}"""
    return Kernel(name, text, premapped=[(base, base + 64)])


# ---------------------------------------------------------------------------
# Workload assembly
# ---------------------------------------------------------------------------

def build_workload(name: str, kernels: List[Kernel], rounds: int = 1,
                   description: str = "",
                   base: int = TEXT_BASE,
                   self_check: bool = True) -> Workload:
    """Link *kernels* under a round-robin ``main`` and assemble.

    *self_check* (default) lints the assembled program against the
    structural rules and raises :class:`WorkloadLintError` on failure.
    """
    if not kernels:
        raise ValueError("a workload needs at least one kernel")
    lines = [".entry main", ".func main", "main:",
             f"    addi x3, x0, {rounds}", "main_round:"]
    for kernel in kernels:
        lines.append(f"    jal  x1, {kernel.name}")
    lines += ["    addi x3, x3, -1", "    bne  x3, x0, main_round",
              "    halt"]
    source = "\n".join(lines) + "\n" + "\n".join(k.text for k in kernels)
    program = assemble(source, base=base, name=name)
    premapped: List[Tuple[int, int]] = []
    for kernel in kernels:
        program.data.update(kernel.data)
        premapped.extend(kernel.premapped)
    if self_check:
        # After the data image and premapped regions are in place, so
        # the memory-safety rules (L014..) see the real footprint.
        self_check_program(program, regions=tuple(premapped))
    return Workload(name, program, premapped, description)
