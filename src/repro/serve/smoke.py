"""CI smoke test: ``python -m repro.serve.smoke``.

Starts a real server (background thread, ephemeral port, temp cache),
fires N concurrent clients at it -- including a duplicate submission --
and asserts the service contract end-to-end:

* exactly one simulation per distinct simulation key;
* the duplicate coalesces onto the first job (same job id);
* every client's report is byte-identical to a direct in-process
  ``run_experiment`` run of the same spec;
* the /stats counters agree with what the clients observed.

Writes the final ``/stats`` snapshot as JSON (CI uploads it as an
artifact).  Exit status 0 on success, 1 on any violated assertion.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
from typing import List, Optional

from .client import ServeClient
from .jobs import JobSpec, execute_job
from .testing import running_server

#: Submissions fired concurrently: benchmark names, with one duplicate.
DEFAULT_CLIENTS = ("mcf", "lbm", "mcf")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.smoke",
        description="concurrent-client smoke test of the job server")
    parser.add_argument("benchmarks", nargs="*",
                        default=list(DEFAULT_CLIENTS),
                        help="one submission per name; repeats test "
                             "dedup (default: mcf lbm mcf)")
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--period", type=int, default=97)
    parser.add_argument("--stats-out", default="SERVE_stats.json",
                        help="write the final /stats snapshot here")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="per-client wait budget (seconds)")
    args = parser.parse_args(argv)
    names = list(args.benchmarks) or list(DEFAULT_CLIENTS)

    specs = [JobSpec.for_benchmark(name, scale=args.scale,
                                   period=args.period)
             for name in names]
    failures: List[str] = []

    with tempfile.TemporaryDirectory(prefix="repro-serve-") as cache:
        with running_server(cache=cache, workers=2) as handle:
            print(f"[smoke] serving on {handle.address_str} "
                  f"(cache {cache})", flush=True)
            outputs: List[Optional[dict]] = [None] * len(specs)
            errors: List[Optional[str]] = [None] * len(specs)

            def client_run(index: int) -> None:
                client: ServeClient = handle.client(
                    timeout=args.timeout)
                try:
                    job, coalesced = client.submit(specs[index])
                    info = client.wait(job, timeout=args.timeout)
                    outputs[index] = {"job": job,
                                      "coalesced": coalesced,
                                      "report": info["report"]}
                except Exception as exc:  # surfaced as a failure
                    errors[index] = f"{type(exc).__name__}: {exc}"

            threads = [threading.Thread(target=client_run, args=(i,))
                       for i in range(len(specs))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(args.timeout)

            for index, error in enumerate(errors):
                if error is not None:
                    failures.append(
                        f"client {index} ({names[index]}): {error}")
            stats = handle.client().stats()
            drained = handle.shutdown(drain=True)

    if any(output is None for output in outputs) and not failures:
        failures.append("a client never finished")

    if not failures:
        # Duplicate submissions coalesce onto one job id.
        by_name = {}
        for name, output in zip(names, outputs):
            by_name.setdefault(name, []).append(output)
        for name, group in by_name.items():
            jobs = {entry["job"] for entry in group}
            if len(jobs) != 1:
                failures.append(f"{name}: duplicate submissions got "
                                f"distinct jobs {sorted(jobs)}")
            reports = {json.dumps(entry["report"], sort_keys=True)
                       for entry in group}
            if len(reports) != 1:
                failures.append(
                    f"{name}: duplicate clients saw different reports")

        # Exactly one simulation per distinct key, and reports are
        # byte-identical to the direct (serverless) path.
        distinct = len(by_name)
        sims = stats["cache"]["simulations"]
        if sims > distinct:
            failures.append(f"{sims} simulations for {distinct} "
                            f"distinct submissions")
        expected_coalesced = len(names) - distinct
        if stats["dedup"]["coalesced"] < expected_coalesced:
            failures.append(
                f"expected >= {expected_coalesced} coalesced "
                f"submissions, /stats says "
                f"{stats['dedup']['coalesced']}")
        for name in by_name:
            spec = specs[names.index(name)]
            direct = execute_job(spec, cache_dir=None)["report"]
            served = by_name[name][0]["report"]
            served = dict(served, cached=direct["cached"])
            if json.dumps(served, sort_keys=True) != \
                    json.dumps(direct, sort_keys=True):
                failures.append(f"{name}: served report differs from "
                                f"the direct run_workload path")

    with open(args.stats_out, "w", encoding="utf-8") as out:
        json.dump({"stats": stats, "drained": drained,
                   "clients": names, "failures": failures},
                  out, indent=2, sort_keys=True)
        out.write("\n")
    print(f"[smoke] wrote {args.stats_out}", flush=True)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"[smoke] OK: {len(names)} clients, "
          f"{stats['cache']['simulations']} simulation(s), "
          f"{stats['dedup']['coalesced']} coalesced", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
