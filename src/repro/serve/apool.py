"""Asyncio front-end to the per-job worker processes of the pool.

The synchronous :mod:`repro.parallel.pool` drives worker processes with
a blocking poll loop; a long-running asyncio server needs the same
isolation guarantees (a worker that raises, hangs past its timeout, or
dies can never corrupt the server or leak a process) without blocking
the event loop.  :class:`AsyncPool` reuses the pool's worker entry
point, process context and kill helper, but schedules each attempt as
an awaitable: the result pipe is polled cooperatively, per-job
deadlines are enforced against the loop clock, retries are bounded, and
cancelling the awaiting task kills the worker process before the
cancellation propagates.

Concurrency is bounded by an :class:`asyncio.Semaphore`; attempts
waiting for a slot are the pool's *queue depth*.  If worker processes
cannot be started at all (restricted environments) the pool degrades to
running jobs in the default thread executor, exactly like the
synchronous pool degrades to in-process serial execution.

:class:`~repro.serve.testing.FaultyPool` subclasses this to inject
worker crashes, hangs and slow starts for the fault tests.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
from typing import Any, Callable, Optional, Tuple

from ..parallel.pool import (JobFailure, PoolJob, _child_entry, _kill,
                             _pool_context)

#: Seconds between cooperative polls of a worker's result pipe.
DEFAULT_POLL_INTERVAL = 0.02


class PoolError(Exception):
    """A job failed after exhausting its retries."""

    def __init__(self, failure: JobFailure):
        super().__init__(str(failure))
        self.failure = failure


class AsyncPool:
    """Bounded async process pool with per-job timeout/retry/cancel."""

    def __init__(self, workers: int = 2, retries: int = 1,
                 poll_interval: float = DEFAULT_POLL_INTERVAL):
        self.workers = max(1, workers)
        self.retries = max(0, retries)
        self.poll_interval = poll_interval
        # Created lazily on first use so the pool can be constructed
        # off-loop (e.g. on a test's main thread) and still bind its
        # primitives to the loop that runs it (Python 3.9 semantics).
        self._slots: Optional[asyncio.Semaphore] = None
        #: Attempts waiting for a worker slot right now.
        self.queued = 0
        #: Workers running right now.
        self.active = 0
        # Lifetime counters (exposed by the server's /stats endpoint).
        self.spawned = 0
        self.crashes = 0
        self.timeouts = 0
        self.exceptions = 0
        self.retried = 0
        self.cancelled = 0
        self.degraded = False

    def health(self) -> dict:
        """Worker-health snapshot for ``/stats``."""
        return {
            "workers": self.workers, "retries": self.retries,
            "queued": self.queued, "active": self.active,
            "spawned": self.spawned, "crashes": self.crashes,
            "timeouts": self.timeouts, "exceptions": self.exceptions,
            "retried": self.retried, "cancelled": self.cancelled,
            "degraded": self.degraded,
        }

    async def run(self, job: PoolJob,
                  on_start: Optional[Callable[[int], None]] = None,
                  on_retry: Optional[
                      Callable[[int, JobFailure], None]] = None) -> Any:
        """Run *job* to completion; return its result.

        *on_start(attempt)* fires when a worker slot is acquired for an
        attempt (0-based); *on_retry(attempt, failure)* fires before a
        retry with the failure that caused it.  Raises
        :class:`PoolError` after retries are exhausted.  Cancelling the
        awaiting task kills the in-flight worker first.
        """
        last: Optional[JobFailure] = None
        for attempt in range(self.retries + 1):
            if attempt:
                self.retried += 1
                if on_retry is not None and last is not None:
                    on_retry(attempt, last)
            status, payload = await self._attempt(job, attempt, on_start)
            if status == "ok":
                return payload
            last = JobFailure(job.name, status, attempt + 1, str(payload))
        assert last is not None
        raise PoolError(last)

    # -- one attempt ----------------------------------------------------------

    async def _attempt(self, job: PoolJob, attempt: int,
                       on_start: Optional[Callable[[int], None]] = None
                       ) -> Tuple[str, Any]:
        """One bounded attempt: ('ok', result) or (kind, message)."""
        if self._slots is None:
            self._slots = asyncio.Semaphore(self.workers)
        self.queued += 1
        acquired = False
        try:
            await self._slots.acquire()
            acquired = True
        finally:
            self.queued -= 1
        try:
            if on_start is not None:
                on_start(attempt)
            return await self._attempt_process(job, attempt)
        finally:
            if acquired:
                self._slots.release()

    async def _attempt_process(self, job: PoolJob,
                               attempt: int) -> Tuple[str, Any]:
        loop = asyncio.get_running_loop()
        try:
            ctx = _pool_context()
        except Exception:
            ctx = None
        if ctx is None or self.degraded:
            return await self._attempt_serial(job)
        parent, child = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_child_entry,
            args=(child, job.func, job.args, job.injection_for(attempt)),
            daemon=True)
        try:
            process.start()
        except Exception:
            parent.close()
            child.close()
            self.degraded = True
            return await self._attempt_serial(job)
        child.close()
        self.spawned += 1
        self.active += 1
        deadline = (loop.time() + job.timeout
                    if job.timeout is not None else None)
        try:
            while True:
                if parent.poll():
                    try:
                        status, payload = parent.recv()
                    except (EOFError, OSError):
                        self.crashes += 1
                        return ("crash", "worker died mid-result")
                    if status == "ok":
                        return ("ok", payload)
                    self.exceptions += 1
                    return ("exception", payload)
                if not process.is_alive():
                    if parent.poll():  # result raced with the exit
                        continue
                    self.crashes += 1
                    return ("crash",
                            f"worker exited with code {process.exitcode}")
                if deadline is not None and loop.time() > deadline:
                    self.timeouts += 1
                    return ("timeout",
                            f"no result within {job.timeout}s")
                await asyncio.sleep(self.poll_interval)
        except asyncio.CancelledError:
            self.cancelled += 1
            raise
        finally:
            self.active -= 1
            try:
                parent.close()
            except Exception:
                pass
            _kill(process)

    async def _attempt_serial(self, job: PoolJob) -> Tuple[str, Any]:
        """Degraded mode: run in a thread (injection hooks are ignored,
        like the synchronous pool's serial fallback)."""
        loop = asyncio.get_running_loop()
        self.active += 1
        try:
            future = loop.run_in_executor(
                None, lambda: job.func(*job.args))
            try:
                result = await asyncio.wait_for(future, job.timeout)
            except (asyncio.TimeoutError,
                    concurrent.futures.TimeoutError):
                self.timeouts += 1
                return ("timeout", f"no result within {job.timeout}s")
            except asyncio.CancelledError:
                self.cancelled += 1
                raise
            except Exception as exc:
                self.exceptions += 1
                return ("exception", repr(exc))
            return ("ok", result)
        finally:
            self.active -= 1
