"""Profiling-as-a-service: the asyncio HTTP/JSON job server.

``ProfileServer`` is a long-running daemon over the worker pool: it
accepts program + config + schedule submissions, content-hashes each
job with the existing ``SimCache`` key machinery so duplicate
submissions coalesce onto one in-flight future, queues misses onto
per-job worker processes (:class:`~repro.serve.apool.AsyncPool`) with
per-job timeout/retry/cancel, and streams progress events plus final
profile reports to any number of concurrent clients.

Protocol (one request per connection, ``Connection: close``; see
``docs/serve.md``)::

    POST /jobs                  submit a JobSpec; 202 {job, state,
                                coalesced, key}
    GET  /jobs                  summaries of every known job
    GET  /jobs/<id>             job status; ?report=1 ?payload=1 ?spec=1
    GET  /jobs/<id>/wait        block until terminal; ?timeout=SECONDS
    GET  /jobs/<id>/events      NDJSON event stream; ?after=SEQ
    POST /jobs/<id>/cancel      cancel a queued/running job
    GET  /stats                 queue depth, dedup, cache, steady-state
                                memoization totals, worker health
    GET  /healthz               liveness probe
    POST /shutdown              drain (?drain=0 cancels) and stop

Job states: ``queued -> running -> done | error | cancelled``.  Every
state transition appends a monotonically-sequenced event; streams
replay the full history before following live, so no subscriber can
miss a transition.  Reports are byte-identical to a direct
``run_workload`` call with the same inputs.
"""

from __future__ import annotations

import asyncio
import base64
import contextlib
import pickle
import time
from typing import Dict, List, Optional, Tuple

from ..parallel.pool import JobFailure, PoolJob
from .apool import AsyncPool, PoolError
from .http import (BadRequest, Request, json_response, ndjson_line,
                   read_request, stream_head)
from .jobs import (CANCELLED, DEFAULT_JOB_TIMEOUT, DONE, ERROR, QUEUED,
                   RUNNING, TERMINAL_STATES, JobSpec, execute_job,
                   job_key)


class ServeError(Exception):
    """An error with an HTTP status, reported as JSON to the client."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class Job:
    """Server-side record of one (possibly coalesced) submission."""

    __slots__ = ("id", "key", "sim_key", "spec", "state", "events",
                 "signal", "task", "report", "payload", "error",
                 "warnings", "subscribers", "attempts", "created",
                 "finished")

    def __init__(self, job_id: str, key: str, sim_key: str,
                 spec: JobSpec):
        self.id = job_id
        self.key = key
        self.sim_key = sim_key
        self.spec = spec
        self.state = QUEUED
        self.events: List[dict] = []
        self.signal = asyncio.Event()
        self.task: Optional[asyncio.Task] = None
        self.report: Optional[dict] = None
        self.payload: Optional[dict] = None
        self.error: Optional[dict] = None
        self.warnings: List[str] = []
        self.subscribers = 1
        self.attempts = 0
        self.created = time.time()
        self.finished: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


class ProfileServer:
    """Asyncio job server over the worker pool (see module docstring).

    *cache* follows the harness convention (``True`` = default root, a
    path = that root, ``None``/``False`` = disabled).  With caching
    disabled duplicates still coalesce in-flight and completed jobs are
    served from memory, but a restarted server re-simulates.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 2, retries: int = 1,
                 cache=True,
                 job_timeout: float = DEFAULT_JOB_TIMEOUT,
                 pool: Optional[AsyncPool] = None):
        from ..simfast.cache import resolve_cache
        self.host = host
        self.port = port
        self.job_timeout = job_timeout
        self.pool = pool or AsyncPool(workers=workers, retries=retries)
        self.cache = resolve_cache(cache)
        self._cache_root = (self.cache.root
                            if self.cache is not None else None)
        self.jobs: Dict[str, Job] = {}
        self._by_key: Dict[str, Job] = {}
        self._key_seq: Dict[str, int] = {}
        # Distinct jobs sharing a simulation key serialize on these
        # locks (cache enabled only): the first fills the cache entry,
        # the rest replay it -- never more than one simulation per
        # simulation key, as /stats advertises.
        self._sim_locks: Dict[str, asyncio.Lock] = {}
        self._accepting = True
        self._server: Optional[asyncio.AbstractServer] = None
        self._started: Optional[float] = None
        # Lifetime counters for /stats.
        self.submissions = 0
        self.coalesced = 0
        self.completed = 0
        self.failed = 0
        self.cancelled_jobs = 0
        self.simulations = 0
        self.cache_hits = 0
        self.steady_state_iterations = 0
        self.steady_state_cycles = 0
        self.streams_open = 0
        self.streams_served = 0
        self.connections = 0

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._started = time.time()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        with contextlib.suppress(asyncio.CancelledError):
            await self._server.serve_forever()

    async def shutdown(self, drain: bool = True) -> dict:
        """Stop accepting submissions; drain (or cancel) the queue.

        With *drain* every queued/running job runs to a terminal state
        before the listener closes -- no accepted work is lost.
        Without it, outstanding jobs are cancelled.
        """
        self._accepting = False
        tasks = [job.task for job in self.jobs.values()
                 if job.task is not None and not job.task.done()]
        if not drain:
            for task in tasks:
                task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        return {"drained": len(tasks) if drain else 0,
                "cancelled": 0 if drain else len(tasks),
                "jobs": {job.id: job.state
                         for job in self.jobs.values()}}

    # -- submission and lifecycle ---------------------------------------------

    async def submit(self, spec: JobSpec) -> Tuple[Job, bool]:
        """Register *spec*; returns (job, coalesced).

        Equal job keys coalesce onto the same in-flight (or completed)
        job; a key whose previous job failed or was cancelled gets a
        fresh run.  Raises :class:`ServeError` (503 while shutting
        down, 400 for specs that cannot be resolved).
        """
        if not self._accepting:
            raise ServeError(503, "server is shutting down")
        loop = asyncio.get_running_loop()
        try:
            sim_key, key = await loop.run_in_executor(
                None, job_key, spec)
        except Exception as exc:
            raise ServeError(400, f"cannot resolve job: {exc}") \
                from None
        self.submissions += 1
        existing = self._by_key.get(key)
        if existing is not None:
            existing.subscribers += 1
            self.coalesced += 1
            return existing, True
        seq = self._key_seq[key] = self._key_seq.get(key, 0) + 1
        job = Job(f"{key[:12]}-{seq}", key, sim_key, spec)
        self.jobs[job.id] = job
        self._by_key[key] = job
        self._emit(job, {"event": "queued", "state": QUEUED,
                         "key": key})
        job.task = asyncio.ensure_future(self._run_job(job))
        return job, False

    async def _run_job(self, job: Job) -> None:
        timeout = (job.spec.timeout if job.spec.timeout is not None
                   else self.job_timeout)
        pool_job = PoolJob(name=job.id, func=execute_job,
                           args=(job.spec, self._cache_root),
                           timeout=timeout)
        if self.cache is not None:
            sim_lock = self._sim_locks.setdefault(job.sim_key,
                                                  asyncio.Lock())
        else:
            # Without a cache, same-key jobs cannot share a trace, so
            # serializing them would only lose parallelism.
            sim_lock = contextlib.AsyncExitStack()  # no-op context
        try:
            async with sim_lock:
                outcome = await self.pool.run(
                    pool_job,
                    on_start=lambda attempt: self._on_start(job, attempt),
                    on_retry=lambda attempt, failure:
                        self._on_retry(job, attempt, failure))
        except PoolError as exc:
            failure = exc.failure
            self._finish(job, ERROR, error={
                "kind": failure.kind, "message": failure.message,
                "attempts": failure.attempts})
            return
        except asyncio.CancelledError:
            self._finish(job, CANCELLED)
            raise
        if "error" in outcome:
            self._finish(job, ERROR, error=dict(outcome["error"]))
            return
        job.report = outcome["report"]
        job.payload = outcome.get("payload")
        job.warnings = list(outcome.get("warnings", ()))
        if job.report.get("cached"):
            self.cache_hits += 1
        else:
            self.simulations += 1
        core_stats = job.report.get("stats") or {}
        self.steady_state_iterations += int(
            core_stats.get("steady_state_iterations", 0))
        self.steady_state_cycles += int(
            core_stats.get("steady_state_cycles", 0))
        self._finish(job, DONE)

    def _on_start(self, job: Job, attempt: int) -> None:
        job.attempts = attempt + 1
        job.state = RUNNING
        self._emit(job, {"event": "running", "state": RUNNING,
                         "attempt": attempt + 1})

    def _on_retry(self, job: Job, attempt: int,
                  failure: JobFailure) -> None:
        self._emit(job, {"event": "retry", "state": job.state,
                         "attempt": attempt + 1, "cause": failure.kind,
                         "message": failure.message})

    def _finish(self, job: Job, state: str,
                error: Optional[dict] = None) -> None:
        job.state = state
        job.error = error
        job.finished = time.time()
        event = {"event": state, "state": state}
        if state == DONE:
            self.completed += 1
            event["cached"] = bool(job.report
                                   and job.report.get("cached"))
        else:
            # Failed/cancelled keys may be resubmitted for a fresh run.
            if self._by_key.get(job.key) is job:
                del self._by_key[job.key]
            if state == ERROR:
                self.failed += 1
                event.update(error or {})
            else:
                self.cancelled_jobs += 1
        self._emit(job, event)

    def _emit(self, job: Job, event: dict) -> None:
        event["seq"] = len(job.events)
        event["job"] = job.id
        event["t"] = round(time.time(), 6)
        job.events.append(event)
        signal, job.signal = job.signal, asyncio.Event()
        signal.set()

    async def _next_event(self, job: Job, index: int) -> dict:
        while len(job.events) <= index:
            signal = job.signal
            if len(job.events) > index:
                break
            await signal.wait()
        return job.events[index]

    async def wait_terminal(self, job: Job,
                            timeout: Optional[float] = None) -> bool:
        """Await a terminal state; False if *timeout* expired first."""

        async def _until_terminal() -> None:
            while not job.terminal:
                signal = job.signal
                if job.terminal:
                    break
                await signal.wait()

        try:
            await asyncio.wait_for(_until_terminal(), timeout)
        except asyncio.TimeoutError:
            return False
        return True

    def cancel(self, job: Job) -> bool:
        """Request cancellation; False if the job already finished."""
        if job.terminal or job.task is None:
            return False
        job.task.cancel()
        return True

    # -- views ----------------------------------------------------------------

    def describe(self, job: Job, report: bool = False,
                 payload: bool = False, spec: bool = False) -> dict:
        info = {
            "job": job.id, "key": job.key, "sim_key": job.sim_key,
            "state": job.state, "attempts": job.attempts,
            "subscribers": job.subscribers, "events": len(job.events),
            "created": job.created, "finished": job.finished,
            "warnings": job.warnings,
        }
        if job.error is not None:
            info["error"] = job.error
        if report and job.report is not None:
            info["report"] = job.report
        if payload and job.payload is not None:
            info["payload"] = base64.b64encode(
                pickle.dumps(job.payload)).decode("ascii")
        if spec:
            info["spec"] = job.spec.to_dict()
        return info

    def stats(self) -> dict:
        states = {state: 0 for state in
                  (QUEUED, RUNNING, DONE, ERROR, CANCELLED)}
        for job in self.jobs.values():
            states[job.state] += 1
        cache_info = {"enabled": self.cache is not None,
                      "hits": self.cache_hits,
                      "simulations": self.simulations}
        if self.cache is not None:
            try:
                cache_info.update(self.cache.stats())
            except OSError:
                pass
        return {
            "server": {
                "host": self.host, "port": self.port,
                "accepting": self._accepting,
                "uptime_s": (time.time() - self._started
                             if self._started is not None else 0.0),
            },
            "jobs": dict(states, total=len(self.jobs),
                         queue_depth=self.pool.queued),
            "dedup": {"submissions": self.submissions,
                      "coalesced": self.coalesced,
                      "distinct_keys": len(self._by_key)},
            "cache": cache_info,
            "pool": self.pool.health(),
            "steady_state": {
                "iterations": self.steady_state_iterations,
                "cycles": self.steady_state_cycles},
            "streams": {"open": self.streams_open,
                        "served": self.streams_served},
            "connections": {"open": self.connections},
        }

    # -- HTTP -----------------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        try:
            try:
                request = await read_request(reader)
            except BadRequest as exc:
                writer.write(json_response(400, {"error": str(exc)}))
                await writer.drain()
                return
            if request is None:
                return
            try:
                await self._dispatch(request, reader, writer)
            except ServeError as exc:
                writer.write(json_response(exc.status,
                                           {"error": str(exc)}))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; jobs are unaffected
        finally:
            self.connections -= 1
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(self, request: Request,
                        reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter) -> None:
        method, path = request.method, request.path.rstrip("/")
        if path == "/healthz" and method == "GET":
            writer.write(json_response(200, {"ok": True}))
        elif path == "/stats" and method == "GET":
            writer.write(json_response(200, self.stats()))
        elif path == "/shutdown" and method == "POST":
            drain = request.query.get("drain", "1") not in ("0", "no")
            summary = await self.shutdown(drain=drain)
            writer.write(json_response(200, summary))
        elif path == "/jobs" and method == "POST":
            await self._http_submit(request, writer)
        elif path == "/jobs" and method == "GET":
            writer.write(json_response(200, {
                "jobs": [self.describe(job)
                         for job in self.jobs.values()]}))
        elif path.startswith("/jobs/"):
            await self._http_job(request, path, reader, writer)
        else:
            raise ServeError(404 if method == "GET" else 405,
                             f"no route for {method} {request.path}")
        await writer.drain()

    async def _http_submit(self, request: Request,
                           writer: asyncio.StreamWriter) -> None:
        try:
            spec = JobSpec.from_dict(request.json())
        except ValueError as exc:
            raise ServeError(400, str(exc)) from None
        job, coalesced = await self.submit(spec)
        writer.write(json_response(202, {
            "job": job.id, "key": job.key, "state": job.state,
            "coalesced": coalesced}))

    async def _http_job(self, request: Request, path: str,
                        reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter) -> None:
        parts = path.split("/")  # '', 'jobs', <id>[, verb]
        job = self.jobs.get(parts[2])
        if job is None:
            raise ServeError(404, f"unknown job {parts[2]!r}")
        verb = parts[3] if len(parts) > 3 else None
        flag = (lambda name: request.query.get(name)
                not in (None, "0", "no"))
        if verb is None and request.method == "GET":
            writer.write(json_response(200, self.describe(
                job, report=flag("report") or job.terminal,
                payload=flag("payload"), spec=flag("spec"))))
        elif verb == "wait" and request.method == "GET":
            timeout = request.query.get("timeout")
            finished = await self.wait_terminal(
                job, float(timeout) if timeout is not None else None)
            info = self.describe(job, report=True,
                                 payload=flag("payload"))
            info["timed_out"] = not finished
            writer.write(json_response(200 if finished else 408, info))
        elif verb == "cancel" and request.method == "POST":
            cancelled = self.cancel(job)
            if cancelled:
                await self.wait_terminal(job)
            writer.write(json_response(200, {
                "job": job.id, "state": job.state,
                "cancelled": cancelled}))
        elif verb == "events" and request.method == "GET":
            await self._http_stream(request, reader, writer, job)
        else:
            raise ServeError(404, f"no route for {request.method} "
                                  f"{request.path}")

    async def _http_stream(self, request: Request,
                           reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter,
                           job: Job) -> None:
        """NDJSON event stream: full history, then live, until the
        terminal event.  A disconnecting client ends the stream without
        touching the job."""
        try:
            index = int(request.query.get("after", "-1")) + 1
        except ValueError:
            raise ServeError(400, "bad 'after' parameter") from None
        writer.write(stream_head())
        await writer.drain()
        self.streams_open += 1
        disconnect = asyncio.ensure_future(reader.read(1))
        try:
            while True:
                waiter = asyncio.ensure_future(
                    self._next_event(job, index))
                done, _pending = await asyncio.wait(
                    {waiter, disconnect},
                    return_when=asyncio.FIRST_COMPLETED)
                if waiter not in done:
                    waiter.cancel()
                    break  # client hung up (EOF or stray bytes)
                event = waiter.result()
                writer.write(ndjson_line(event))
                await writer.drain()
                index += 1
                if event.get("state") in TERMINAL_STATES:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # mid-stream disconnect: the job is unaffected
        finally:
            disconnect.cancel()
            with contextlib.suppress(asyncio.CancelledError,
                                     Exception):
                await disconnect
            self.streams_open -= 1
            self.streams_served += 1
