"""Profiling-as-a-service: an asyncio job server over the worker pool.

The CLI-only harness re-spawns everything per run; ``repro.serve``
turns it into a long-running daemon (``repro serve``) that accepts
program + config + schedule submissions over HTTP/JSON, coalesces
duplicates by :mod:`~repro.simfast` content key, queues misses onto
per-job worker processes with timeout/retry/cancel, and streams NDJSON
progress events and final reports to many concurrent clients -- the
backbone every sweep, diff and CI scenario plugs into as a client
(``repro submit``, :class:`ServeClient`,
``run_suite(server="host:port")``).

Layers (see ``docs/serve.md``):

* :mod:`~repro.serve.apool` -- the async process pool;
* :mod:`~repro.serve.jobs` -- job specs, content keys, the worker
  entry, the canonical :func:`profile_report`;
* :mod:`~repro.serve.server` -- the HTTP daemon;
* :mod:`~repro.serve.client` -- the blocking client library;
* :mod:`~repro.serve.testing` -- fault injection
  (:class:`~repro.serve.testing.FaultyPool`) and the in-process
  server fixture the daemon's test harness is built on.
"""

from .apool import AsyncPool, PoolError
from .client import (ClientError, JobCancelled, JobFailed, ServeClient,
                     run_suite_via_server)
from .jobs import (JobSpec, execute_job, job_key, profile_report,
                   resolve_program, result_payload)
from .server import Job, ProfileServer, ServeError

__all__ = [
    "AsyncPool", "ClientError", "Job", "JobCancelled", "JobFailed",
    "JobSpec", "PoolError", "ProfileServer", "ServeClient",
    "ServeError", "execute_job", "job_key", "profile_report",
    "resolve_program", "result_payload", "run_suite_via_server",
]
