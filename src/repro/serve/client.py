"""Synchronous client library for the profiling job server.

``ServeClient`` wraps the server's HTTP/JSON protocol in a small
submit/wait/cancel/stream abstraction (the scheduler/client split):
every call opens one connection (the server closes it after the
response), so a client object is trivially shareable across threads.

``run_suite_via_server`` turns a whole suite run into server clients:
named benchmarks are submitted as jobs (with the worker payload
requested, so full ``ExperimentResult`` objects are rebuilt exactly
like the parallel suite runner does) and anything the server cannot
rebuild by name runs locally.  Payload rebuilding unpickles data from
the server -- only point a payload-requesting client at a server you
trust (for this repo: your own localhost daemon).
"""

from __future__ import annotations

import base64
import http.client
import json
import pickle
import socket
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .jobs import TERMINAL_STATES, JobSpec

#: Default client-side timeout for one HTTP call (seconds).  ``wait``
#: calls add the server-side wait budget on top.
DEFAULT_HTTP_TIMEOUT = 30.0


class ClientError(Exception):
    """The server refused a request (4xx/5xx) or sent garbage."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class JobFailed(Exception):
    """A waited-on job reached a terminal error state."""

    def __init__(self, job: str, error: dict):
        kind = error.get("kind", "error")
        message = error.get("message", "")
        super().__init__(f"job {job} failed: {kind}: {message}")
        self.job = job
        self.error = error


class JobCancelled(JobFailed):
    """A waited-on job was cancelled."""

    def __init__(self, job: str):
        Exception.__init__(self, f"job {job} was cancelled")
        self.job = job
        self.error = {"kind": "cancelled"}


class ServeClient:
    """Blocking client for one server address."""

    def __init__(self, host: str, port: int,
                 timeout: float = DEFAULT_HTTP_TIMEOUT):
        self.host = host
        self.port = int(port)
        self.timeout = timeout

    @classmethod
    def from_address(cls, address: str,
                     timeout: float = DEFAULT_HTTP_TIMEOUT
                     ) -> "ServeClient":
        """Parse ``host:port`` (or ``http://host:port``)."""
        address = address.strip()
        for prefix in ("http://", "https://"):
            if address.startswith(prefix):
                address = address[len(prefix):]
        address = address.rstrip("/")
        host, sep, port = address.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(
                f"server address must be host:port, got {address!r}")
        return cls(host or "127.0.0.1", int(port), timeout=timeout)

    # -- low-level ------------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None,
                 timeout: Optional[float] = None) -> dict:
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout)
        try:
            payload = (json.dumps(body).encode("utf-8")
                       if body is not None else None)
            conn.request(method, path, body=payload,
                         headers={"Content-Type": "application/json"}
                         if payload else {})
            response = conn.getresponse()
            data = response.read()
            try:
                decoded = json.loads(data.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                raise ClientError(response.status,
                                  "non-JSON response") from None
            if response.status >= 400 and response.status != 408:
                raise ClientError(
                    response.status,
                    decoded.get("error", data.decode("utf-8", "replace"))
                    if isinstance(decoded, dict) else str(decoded))
            return decoded
        finally:
            conn.close()

    # -- job API --------------------------------------------------------------

    def submit(self, spec: JobSpec) -> Tuple[str, bool]:
        """Submit; returns (job id, coalesced-onto-existing-run)."""
        reply = self._request("POST", "/jobs", body=spec.to_dict())
        return reply["job"], bool(reply.get("coalesced"))

    def status(self, job: str, payload: bool = False) -> dict:
        query = "?payload=1" if payload else ""
        return self._request("GET", f"/jobs/{job}{query}")

    def wait(self, job: str, timeout: Optional[float] = None,
             payload: bool = False) -> dict:
        """Block until *job* finishes; return its full description.

        Raises :class:`TimeoutError` if *timeout* expires,
        :class:`JobFailed`/:class:`JobCancelled` on terminal failures.
        """
        query = "?payload=1" if payload else "?payload=0"
        if timeout is not None:
            query += f"&timeout={timeout}"
        info = self._request(
            "GET", f"/jobs/{job}/wait{query}",
            timeout=(self.timeout + timeout
                     if timeout is not None else None))
        if info.get("timed_out"):
            raise TimeoutError(f"job {job} still "
                               f"{info.get('state')} after {timeout}s")
        if info.get("state") == "error":
            raise JobFailed(job, info.get("error", {}))
        if info.get("state") == "cancelled":
            raise JobCancelled(job)
        return info

    def report(self, job: str, timeout: Optional[float] = None) -> dict:
        """Wait and return just the profile report."""
        return self.wait(job, timeout=timeout)["report"]

    def result_payload(self, info: dict) -> dict:
        """Unpickle the worker payload from a ``payload=True`` wait.

        Trust required: unpickling executes arbitrary callables from
        the server.  Only use against servers you control.
        """
        return pickle.loads(base64.b64decode(info["payload"]))

    def cancel(self, job: str) -> dict:
        return self._request("POST", f"/jobs/{job}/cancel")

    def submit_and_wait(self, spec: JobSpec,
                        timeout: Optional[float] = None,
                        payload: bool = False) -> dict:
        job, _coalesced = self.submit(spec)
        return self.wait(job, timeout=timeout, payload=payload)

    def stream(self, job: str,
               after: int = -1) -> Iterator[dict]:
        """Yield NDJSON events until the job's terminal event.

        Closing the generator (or abandoning it) closes the
        connection; the server keeps running the job either way.
        """
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/jobs/{job}/events?after={after}")
            response = conn.getresponse()
            if response.status >= 400:
                body = response.read().decode("utf-8", "replace")
                try:
                    message = json.loads(body).get("error", body)
                except ValueError:
                    message = body
                raise ClientError(response.status, message)
            while True:
                line = response.readline()
                if not line:
                    return
                event = json.loads(line.decode("utf-8"))
                yield event
                if event.get("state") in TERMINAL_STATES:
                    return
        finally:
            conn.close()

    # -- server API -----------------------------------------------------------

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def healthy(self) -> bool:
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except (ClientError, OSError, socket.timeout):
            return False

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> dict:
        return self._request(
            "POST", f"/shutdown?drain={'1' if drain else '0'}",
            timeout=timeout)


def run_suite_via_server(workloads, profilers, server: str,
                         scale: float = 1.0,
                         max_cycles: int = 10_000_000,
                         sanitize: bool = False,
                         timeout: Optional[float] = None,
                         sim: str = "fast",
                         verbose: bool = False):
    """Run a suite as clients of *server* (``host:port``).

    Named suite benchmarks become job submissions (duplicates coalesce
    server-side and hit the simulation cache); workloads the server
    cannot rebuild by name run locally, exactly like the parallel
    runner's serial fallback.  Returns a
    :class:`~repro.harness.runner.SuiteResult` bit-identical to a local
    run.
    """
    from ..cpu.core import MaxCyclesExceeded
    from ..harness.runner import SuiteResult, run_workload
    from ..parallel.pool import JobFailure
    from ..parallel.shard import ProgramSpec
    from ..parallel.suite import rebuild_result
    from ..workloads.suite import BENCHMARKS

    client = ServeClient.from_address(server)
    configs = tuple(profilers)
    submitted: List[Tuple[str, str]] = []  # (benchmark, job id)
    local = []
    for workload in workloads:
        if workload.name not in BENCHMARKS:
            local.append(workload)
            continue
        spec = JobSpec(
            program=ProgramSpec(kind="workload", source=workload.name,
                                name=workload.name, scale=scale),
            profilers=configs, max_cycles=max_cycles,
            sanitize=sanitize, sim=sim, timeout=timeout)
        job, coalesced = client.submit(spec)
        if verbose:
            note = " (coalesced)" if coalesced else ""
            print(f"[suite] {workload.name} -> job {job}{note}",
                  flush=True)
        submitted.append((workload.name, job))

    results: Dict[str, object] = {}
    failures: Dict[str, JobFailure] = {}
    by_name = {workload.name: workload for workload in workloads}
    for name, job in submitted:
        try:
            info = client.wait(job, timeout=timeout, payload=True)
        except JobFailed as exc:
            failures[name] = JobFailure(
                name, exc.error.get("kind", "error"),
                exc.error.get("attempts", 1),
                exc.error.get("message", ""))
            continue
        payload = client.result_payload(info)
        results[name] = rebuild_result(by_name[name], configs, payload)
    for workload in local:
        if verbose:
            print(f"[suite] running {workload.name} locally ...",
                  flush=True)
        try:
            results[workload.name] = run_workload(
                workload, configs, max_cycles, sanitize=sanitize,
                sim=sim)
        except MaxCyclesExceeded as exc:
            failures[workload.name] = JobFailure(
                workload.name, "max-cycles", 1, str(exc))
    ordered = {workload.name: results[workload.name]
               for workload in workloads if workload.name in results}
    return SuiteResult(ordered, failures=failures)
