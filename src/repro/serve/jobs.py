"""Job specifications, content keys and the worker entry point.

A *job* is one profiling run: a program (assembly source, named suite
benchmark, or the imagick case study -- reusing
:class:`~repro.parallel.shard.ProgramSpec`), the profiler line-up, and
the simulation budget.  Jobs are content-addressed: the **simulation
key** is the existing :func:`~repro.simfast.cache.simulation_key` (the
``SimCache`` key of the run's trace), and the **job key** extends it
with the replay-side parameters that shape the report.  Two submissions
with equal job keys are the same work; the server coalesces them onto
one in-flight future, and distinct jobs sharing a simulation key still
share the simulated trace through the cache.

:func:`execute_job` is the picklable worker entry: it resolves the
program, runs the standard :func:`~repro.harness.run_experiment` path
(the exact code a direct ``run_workload`` call uses, so reports are
bit-identical), and returns a wire-ready payload.
:func:`profile_report` is the canonical JSON report both the server and
direct runs share.
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional, Tuple

from ..analysis.symbols import Granularity
from ..harness.experiment import (ALL_POLICIES, ExperimentResult,
                                  ProfilerConfig, run_experiment)
from ..isa.program import Program
from ..parallel.shard import ProgramSpec

#: Default sampling period for served jobs (see harness.runner).
DEFAULT_PERIOD = 97

#: Default per-job wall-clock budget (seconds) on the server.
DEFAULT_JOB_TIMEOUT = 600.0

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
ERROR = "error"
CANCELLED = "cancelled"
TERMINAL_STATES = (DONE, ERROR, CANCELLED)


@dataclass(frozen=True)
class JobSpec:
    """Everything that determines one profiling run and its report."""

    program: ProgramSpec
    profilers: Tuple[ProfilerConfig, ...] = field(default_factory=tuple)
    max_cycles: int = 10_000_000
    sim: str = "fast"
    sanitize: bool = False
    #: Per-job wall-clock budget; ``None`` uses the server default.
    #: Not part of the job key -- coalesced duplicates share the first
    #: submission's budget.
    timeout: Optional[float] = None

    # -- construction ---------------------------------------------------------

    @classmethod
    def for_source(cls, source: str, name: str = "program.s",
                   premap_all: bool = False, **kwargs) -> "JobSpec":
        """A job over literal assembly source."""
        return cls(program=ProgramSpec(kind="asm", source=source,
                                       name=name, premap_all=premap_all),
                   profilers=_default_profilers(**kwargs))

    @classmethod
    def for_benchmark(cls, name: str, scale: float = 0.5,
                      **kwargs) -> "JobSpec":
        """A job over a named suite benchmark."""
        return cls(program=ProgramSpec(kind="workload", source=name,
                                       name=name, scale=scale),
                   profilers=_default_profilers(**kwargs))

    # -- wire format ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "program": asdict(self.program),
            "profilers": [asdict(config) for config in self.profilers],
            "max_cycles": self.max_cycles,
            "sim": self.sim,
            "sanitize": self.sanitize,
            "timeout": self.timeout,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        """Parse and validate a wire spec; raises ValueError."""
        if not isinstance(payload, dict):
            raise ValueError("job spec must be a JSON object")
        program = payload.get("program")
        if not isinstance(program, dict):
            raise ValueError("job spec needs a 'program' object")
        program_spec = _dataclass_from(ProgramSpec, program, "program")
        if program_spec.kind not in ("asm", "workload", "imagick"):
            raise ValueError(
                f"unknown program kind {program_spec.kind!r}")
        raw_profilers = payload.get("profilers") or []
        if not isinstance(raw_profilers, list) or not raw_profilers:
            raise ValueError("job spec needs a non-empty "
                             "'profilers' list")
        profilers = tuple(
            _dataclass_from(ProfilerConfig, config, f"profilers[{i}]")
            for i, config in enumerate(raw_profilers))
        seen = set()
        for config in profilers:
            if config.name in seen:
                raise ValueError(
                    f"duplicate profiler label {config.name!r}")
            seen.add(config.name)
        spec = cls(program=program_spec, profilers=profilers,
                   max_cycles=int(payload.get("max_cycles",
                                              10_000_000)),
                   sim=payload.get("sim", "fast"),
                   sanitize=bool(payload.get("sanitize", False)),
                   timeout=payload.get("timeout"))
        if spec.sim not in ("fast", "step"):
            raise ValueError(f"unknown sim mode {spec.sim!r}")
        if spec.max_cycles < 1:
            raise ValueError("max_cycles must be >= 1")
        if spec.timeout is not None and float(spec.timeout) <= 0:
            raise ValueError("timeout must be positive")
        return spec


def _default_profilers(period: int = DEFAULT_PERIOD,
                       mode: str = "periodic", seed: int = 0,
                       policies: Tuple[str, ...] = ALL_POLICIES
                       ) -> Tuple[ProfilerConfig, ...]:
    return tuple(ProfilerConfig(policy, period, mode, seed)
                 for policy in policies)


def _dataclass_from(cls, payload: dict, where: str):
    if not isinstance(payload, dict):
        raise ValueError(f"{where} must be a JSON object")
    allowed = {f.name for f in fields(cls)}
    unknown = set(payload) - allowed
    if unknown:
        raise ValueError(
            f"{where}: unknown field(s) {sorted(unknown)}")
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ValueError(f"{where}: {exc}") from None


# -- content keys -------------------------------------------------------------

def resolve_program(spec: ProgramSpec
                    ) -> Tuple[Program, Optional[List[Tuple[int, int]]]]:
    """(program, premapped ranges) exactly as ``run_workload`` sees
    them.  Raises ValueError for unknown benchmarks, AssemblerError for
    bad source."""
    if spec.kind == "asm":
        from ..isa import assemble
        program = assemble(spec.source, name=spec.name)
        premapped = [(0, 1 << 28)] if spec.premap_all else None
        return program, premapped
    if spec.kind == "workload":
        from ..workloads.suite import BENCHMARKS, build
        if spec.source not in BENCHMARKS:
            raise ValueError(f"unknown benchmark {spec.source!r}")
        workload = build(spec.source, spec.scale)
        return workload.program, workload.premapped
    if spec.kind == "imagick":
        from ..workloads.imagick import build_imagick
        workload = build_imagick(optimized=spec.optimized)
        return workload.program, workload.premapped
    raise ValueError(f"unknown program spec kind {spec.kind!r}")


def job_key(spec: JobSpec) -> Tuple[str, str]:
    """(simulation key, job key) of *spec*.

    The simulation key is exactly the ``SimCache`` key the run will
    look up, so the server's dedup accounting lines up with the cache's:
    it never simulates more than once per distinct simulation key.  The
    job key folds in everything else that shapes the report.
    """
    from ..cpu.machine import Machine
    from ..simfast.cache import simulation_key
    program, premapped = resolve_program(spec.program)
    machine = Machine(program, None, premapped)
    sim_key = simulation_key(machine.image, machine.config, premapped)
    h = hashlib.sha256(sim_key.encode())
    h.update(repr(("profilers",
                   tuple((c.policy, c.period, c.mode, c.seed, c.name)
                         for c in spec.profilers))).encode())
    h.update(repr(("max_cycles", spec.max_cycles)).encode())
    h.update(repr(("sanitize", spec.sanitize)).encode())
    return sim_key, h.hexdigest()


# -- reports ------------------------------------------------------------------

def profile_report(result: ExperimentResult) -> dict:
    """Canonical JSON-ready report of an experiment.

    The server's responses and a direct :func:`~repro.harness.runner.
    run_workload` run produce byte-identical reports for equal inputs
    (``json.dumps(..., sort_keys=True)`` equality), floating point
    included -- both paths run the same simulation and replay code.
    """
    names = sorted(result.profilers)
    report = {
        "program": result.program.name or "",
        "cached": bool(result.cached),
        "stats": (result.stats.to_dict()
                  if result.stats is not None else None),
        "ipc": (result.stats.ipc
                if result.stats is not None else None),
        "errors": {granularity.value:
                   {name: result.error(name, granularity)
                    for name in names}
                   for granularity in Granularity},
        "profiles": {name: _json_profile(result.profile(name))
                     for name in names},
        "oracle": _json_profile(result.oracle_profile()),
        "samples": {name: len(result.profilers[name].samples)
                    for name in names},
    }
    if result.sanitizer is not None:
        report["sanitizer"] = result.sanitizer.summary()
    return report


def _json_profile(profile: Dict) -> Dict[str, float]:
    return {str(key): value for key, value in
            sorted(profile.items(), key=lambda item: str(item[0]))}


def result_payload(result: ExperimentResult) -> dict:
    """Picklable payload for rebuilding a full ExperimentResult
    client-side (same shape the parallel suite workers ship)."""
    return {
        "oracle": result.oracle,
        "stats": result.stats,
        "cached": result.cached,
        "profilers": {label: profiler.snapshot()
                      for label, profiler in result.profilers.items()},
        "sanitizer": (result.sanitizer.snapshot()
                      if result.sanitizer is not None else None),
    }


def execute_job(spec: JobSpec,
                cache_dir: Optional[str] = None) -> dict:
    """Worker entry: run one job; always returns a picklable dict.

    Success: ``{"report", "payload", "warnings"}``.  Deterministic
    failures (budget exhaustion, sanitizer violations) come back as
    ``{"error": {"kind", "message"}}`` so the server reports them
    without retrying.  Unexpected exceptions propagate and surface as
    pool "exception" failures (which are retried).
    """
    from ..cpu.core import MaxCyclesExceeded
    from ..lint.sanitizer import TraceInvariantError
    program, premapped = resolve_program(spec.program)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        try:
            result = run_experiment(program, list(spec.profilers),
                                    premapped_data=premapped,
                                    max_cycles=spec.max_cycles,
                                    sanitize=spec.sanitize,
                                    sim=spec.sim, cache=cache_dir)
        except MaxCyclesExceeded as exc:
            return {"error": {"kind": "max-cycles",
                              "message": str(exc)}}
        except TraceInvariantError as exc:
            return {"error": {"kind": "invariant",
                              "message": str(exc)}}
    return {
        "report": profile_report(result),
        "payload": result_payload(result),
        "warnings": [str(entry.message) for entry in caught],
    }
