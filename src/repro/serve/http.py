"""Minimal HTTP/1.1 plumbing over asyncio streams (stdlib only).

The job server speaks just enough HTTP for its JSON endpoints and the
NDJSON event stream: one request per connection (``Connection: close``),
bodies delimited by ``Content-Length``, streams delimited by EOF.  This
keeps the parser ~50 lines and the failure modes obvious; clients are
``http.client`` or anything speaking HTTP/1.0+.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional
from urllib.parse import parse_qsl, urlsplit

#: Cap on request bodies (a job spec with a large program source).
MAX_BODY_BYTES = 16 << 20

#: Cap on the request line + each header line.
MAX_LINE_BYTES = 64 << 10

STATUS_TEXT = {
    200: "OK", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    408: "Request Timeout", 409: "Conflict",
    413: "Payload Too Large", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class BadRequest(ValueError):
    """The client sent something we refuse to parse."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        if not self.body:
            return None
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise BadRequest(f"invalid JSON body: {exc}") from None


async def read_request(reader: asyncio.StreamReader
                       ) -> Optional[Request]:
    """Parse one request; ``None`` on a cleanly closed connection."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise BadRequest("request line too long")
    parts = line.decode("latin-1").split()
    if len(parts) < 2:
        raise BadRequest("malformed request line")
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        if len(header) > MAX_LINE_BYTES:
            raise BadRequest("header line too long")
        name, sep, value = header.decode("latin-1").partition(":")
        if not sep:
            raise BadRequest(f"malformed header {name.strip()!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise BadRequest("bad Content-Length") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise BadRequest("unacceptable Content-Length")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise BadRequest("truncated request body") from None
    split = urlsplit(target)
    query = dict(parse_qsl(split.query))
    return Request(method=method, path=split.path, query=query,
                   headers=headers, body=body)


def response_bytes(status: int, body: bytes,
                   content_type: str = "application/json") -> bytes:
    """A complete Content-Length-delimited response."""
    head = (f"HTTP/1.1 {status} {STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("latin-1") + body


def json_response(status: int, payload) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return response_bytes(status, body)


def stream_head(status: int = 200,
                content_type: str = "application/x-ndjson") -> bytes:
    """Headers for an EOF-delimited stream (no Content-Length)."""
    return (f"HTTP/1.1 {status} {STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Connection: close\r\n\r\n").encode("latin-1")


def ndjson_line(event: dict) -> bytes:
    return (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
