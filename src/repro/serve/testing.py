"""Test harness for the job server: fault injection + an in-process
server fixture.

A daemon is only trustworthy with a harness that can break it on
purpose.  :class:`FaultyPool` wraps :class:`~repro.serve.apool.
AsyncPool` with declarative :class:`Fault` rules that make selected
attempts crash (worker dies), hang (until the job timeout kills it),
raise, or start slowly -- reusing the injection hooks the synchronous
pool already ships.  :func:`running_server` runs a real
:class:`~repro.serve.server.ProfileServer` on a background thread with
its own event loop, so ordinary blocking clients (and many of them,
concurrently) can exercise the full HTTP surface from a test.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import threading
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from ..parallel.pool import PoolJob
from .apool import AsyncPool
from .client import ServeClient
from .server import ProfileServer

#: Injection kinds a Fault understands.
FAULT_KINDS = ("crash", "hang", "raise", "slow-start")

#: Map fault kinds onto the worker wrapper's injection hooks.
_INJECT_FOR = {"crash": "die", "hang": "hang", "raise": "raise"}


@dataclass(frozen=True)
class Fault:
    """One injection rule: which jobs/attempts fail, and how."""

    kind: str  # one of FAULT_KINDS
    #: Substring of the job name (the job id); ``""`` matches all.
    match: str = ""
    #: Attempts (0-based) the fault applies to; ``None`` = all.
    attempts: Optional[frozenset] = None
    #: Extra startup latency for ``slow-start`` faults (seconds).
    delay: float = 0.25

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def applies(self, job: PoolJob, attempt: int) -> bool:
        if self.match and self.match not in job.name:
            return False
        return self.attempts is None or attempt in self.attempts


class FaultyPool(AsyncPool):
    """An AsyncPool that injects faults into matching attempts."""

    def __init__(self, *args, faults: Tuple[Fault, ...] = (),
                 **kwargs):
        super().__init__(*args, **kwargs)
        self.faults = list(faults)
        #: (job name, attempt, kind) of every injection performed.
        self.injected = []

    def add_fault(self, fault: Fault) -> None:
        self.faults.append(fault)

    async def _attempt_process(self, job: PoolJob,
                               attempt: int) -> Tuple[str, object]:
        for fault in self.faults:
            if not fault.applies(job, attempt):
                continue
            self.injected.append((job.name, attempt, fault.kind))
            if fault.kind == "slow-start":
                await asyncio.sleep(fault.delay)
                continue
            job = dataclasses.replace(
                job, inject=_INJECT_FOR[fault.kind],
                inject_attempts=frozenset({attempt}))
        return await super()._attempt_process(job, attempt)


class ServerHandle:
    """A running background-thread server, addressable from tests."""

    def __init__(self, server: ProfileServer,
                 loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.host, self.server.port

    @property
    def address_str(self) -> str:
        return f"{self.server.host}:{self.server.port}"

    def client(self, timeout: float = 30.0) -> ServeClient:
        return ServeClient(self.server.host, self.server.port,
                           timeout=timeout)

    def call(self, coro, timeout: float = 60.0):
        """Run a coroutine on the server loop; return its result."""
        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        return future.result(timeout)

    def shutdown(self, drain: bool = True, timeout: float = 60.0):
        return self.call(self.server.shutdown(drain=drain),
                         timeout=timeout)


@contextlib.contextmanager
def running_server(pool: Optional[AsyncPool] = None,
                   start_timeout: float = 30.0,
                   **server_kwargs) -> Iterator[ServerHandle]:
    """Context manager: a ProfileServer on its own thread + loop.

    The server binds an ephemeral port on 127.0.0.1 by default.  On
    exit, outstanding jobs are cancelled (tests that verify draining
    call ``handle.shutdown(drain=True)`` themselves first) and the
    loop and thread are torn down.  *pool* may be an
    :class:`AsyncPool`/:class:`FaultyPool` constructed on any thread --
    its loop primitives bind lazily to the server's loop.
    """
    loop = asyncio.new_event_loop()
    started = threading.Event()
    boxed = {}

    def _main() -> None:
        asyncio.set_event_loop(loop)
        server = ProfileServer(pool=pool, **server_kwargs)
        try:
            loop.run_until_complete(server.start())
        except Exception as exc:  # pragma: no cover - bind failure
            boxed["error"] = exc
            started.set()
            return
        boxed["server"] = server
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(target=_main, name="repro-serve",
                              daemon=True)
    thread.start()
    if not started.wait(start_timeout):  # pragma: no cover
        raise RuntimeError("server failed to start in time")
    if "error" in boxed:  # pragma: no cover
        raise boxed["error"]
    handle = ServerHandle(boxed["server"], loop, thread)
    try:
        yield handle
    finally:
        with contextlib.suppress(Exception):
            handle.shutdown(drain=False)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=start_timeout)
