"""Suite runner: the full evaluation pipeline over many benchmarks.

One simulation per benchmark drives all requested profiler configurations
out-of-band (up to 19 in the paper; unlimited here), exactly like the
paper's FireSim + CPU-side trace-processing setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis.cyclestacks import CycleStack
from ..analysis.symbols import Granularity
from ..cpu.core import MaxCyclesExceeded
from ..parallel.pool import JobFailure
from ..workloads.generator import Workload
from ..workloads.suite import build_suite
from .experiment import (ALL_POLICIES, ExperimentResult, ProfilerConfig,
                         default_profilers, run_experiment)

#: Default sampling period for suite runs.  The paper's 4 kHz on 3.2 GHz
#: is one sample per 800k cycles; our runs are ~10^4x shorter, so a
#: period of 97 cycles yields a comparable number of samples per run.
#: (Prime, so periodic sampling does not lock onto loop periods more than
#: it would in reality.)
DEFAULT_PERIOD = 97


@dataclass
class SuiteResult:
    """Results for every benchmark in a run of the suite."""

    results: Dict[str, ExperimentResult]
    #: Benchmarks whose worker failed after retries (parallel runs).
    failures: Dict[str, JobFailure] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def errors(self, granularity: Granularity,
               policies: Optional[Sequence[str]] = None
               ) -> Dict[str, Dict[str, float]]:
        """benchmark -> policy -> error."""
        out: Dict[str, Dict[str, float]] = {}
        for name, result in self.results.items():
            errors = result.errors(granularity)
            if policies is not None:
                errors = {p: errors[p] for p in policies}
            out[name] = errors
        return out

    def average_errors(self, granularity: Granularity,
                       policies: Optional[Sequence[str]] = None
                       ) -> Dict[str, float]:
        """policy -> arithmetic-mean error over benchmarks."""
        table = self.errors(granularity, policies)
        if not table:
            return {}
        policies = list(next(iter(table.values())))
        count = len(table)
        return {p: sum(row[p] for row in table.values()) / count
                for p in policies}

    def cycle_stacks(self) -> Dict[str, CycleStack]:
        return {name: result.cycle_stack()
                for name, result in self.results.items()}

    def sanitizer_summaries(self) -> Dict[str, str]:
        """benchmark -> sanitizer summary line (sanitized runs only)."""
        return {name: result.sanitizer.summary()
                for name, result in self.results.items()
                if result.sanitizer is not None}

    def __getitem__(self, name: str) -> ExperimentResult:
        return self.results[name]


def run_workload(workload: Workload,
                 profilers: Sequence[ProfilerConfig],
                 max_cycles: int = 10_000_000,
                 sanitize: bool = False,
                 engine: str = "cycle",
                 sim: str = "step",
                 paranoid: bool = False,
                 cache=None) -> ExperimentResult:
    """Run one workload with the given profiler configurations.

    *sim*, *paranoid* and *cache* select the simulation fast path and
    the content-addressed result cache (see
    :func:`~repro.harness.experiment.run_experiment`).
    """
    return run_experiment(workload.program, profilers,
                          premapped_data=workload.premapped,
                          max_cycles=max_cycles, sanitize=sanitize,
                          engine=engine, sim=sim, paranoid=paranoid,
                          cache=cache)


def run_suite(workloads: Optional[Sequence[Workload]] = None,
              profilers: Optional[Sequence[ProfilerConfig]] = None,
              period: int = DEFAULT_PERIOD,
              policies: Sequence[str] = ALL_POLICIES,
              scale: float = 1.0,
              max_cycles: int = 10_000_000,
              verbose: bool = False,
              sanitize: bool = False,
              jobs: int = 1,
              timeout: Optional[float] = None,
              retries: int = 1,
              engine: str = "cycle",
              sim: str = "step",
              paranoid: bool = False,
              cache=None,
              server: Optional[str] = None) -> SuiteResult:
    """Run the whole suite (or the given workloads).

    *engine* selects how serially-run profilers consume the live trace
    (``"block"`` batches it through a
    :class:`~repro.fastpath.BlockAssembler`); parallel suite workers
    currently always use the cycle engine.

    *sanitize* attaches a commit-trace sanitizer to every simulation and
    fails fast on the first invariant violation.

    *jobs* > 1 simulates named suite benchmarks in parallel worker
    processes (:mod:`repro.parallel.suite`); *scale* must then match the
    scale the workloads were built with, because workers rebuild them by
    name.  *timeout* bounds each benchmark's wall clock and *retries*
    caps re-runs of a failed worker; exhausted benchmarks land in
    ``SuiteResult.failures``.

    *sim*, *paranoid* and *cache* select the simulation fast path and
    the content-addressed result cache.  A workload that exhausts
    *max_cycles* is recorded as a ``"max-cycles"``
    :class:`~repro.parallel.pool.JobFailure` instead of aborting the
    whole suite (and is never cached).

    *server* (``"host:port"``) routes named benchmarks through a
    running ``repro serve`` daemon instead of simulating locally:
    the sweep becomes a set of job-server clients, duplicate work
    coalesces server-side, and results are bit-identical to a local
    run (:func:`repro.serve.run_suite_via_server`).
    """
    if workloads is None:
        workloads = build_suite(scale=scale)
    if profilers is None:
        profilers = default_profilers(period, policies=policies)
    if server is not None:
        from ..serve.client import run_suite_via_server
        return run_suite_via_server(
            workloads, profilers, server, scale=scale,
            max_cycles=max_cycles, sanitize=sanitize,
            timeout=timeout, sim=sim, verbose=verbose)
    if jobs > 1:
        from ..parallel.suite import (DEFAULT_JOB_TIMEOUT,
                                      run_suite_parallel)
        from ..simfast.cache import resolve_cache
        sim_cache = resolve_cache(cache)
        return run_suite_parallel(
            workloads, profilers, jobs, scale=scale,
            max_cycles=max_cycles, sanitize=sanitize,
            timeout=DEFAULT_JOB_TIMEOUT if timeout is None else timeout,
            retries=retries, verbose=verbose, sim=sim,
            cache_dir=None if sim_cache is None else sim_cache.root)
    results: Dict[str, ExperimentResult] = {}
    failures: Dict[str, JobFailure] = {}
    for workload in workloads:
        if verbose:
            print(f"[suite] running {workload.name} ...", flush=True)
        try:
            results[workload.name] = run_workload(
                workload, profilers, max_cycles, sanitize=sanitize,
                engine=engine, sim=sim, paranoid=paranoid, cache=cache)
        except MaxCyclesExceeded as exc:
            failures[workload.name] = JobFailure(
                workload.name, "max-cycles", 1, str(exc))
            if verbose:
                print(f"[suite] {workload.name}: {exc}", flush=True)
    return SuiteResult(results, failures)
