"""Experiment driver: one simulation, many out-of-band profilers.

Exactly like the paper's methodology, a single simulation run drives the
Oracle plus any number of practical profiler configurations.  All
profilers constructed with equal sampling parameters fire on the *exact
same cycles*, so error differences between them are purely systematic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..analysis.cyclestacks import CycleStack, cycle_stack, per_symbol_stacks
from ..analysis.error import profile_error
from ..analysis.profiles import build_profile, normalize, oracle_profile
from ..analysis.symbols import Granularity, Symbolizer
from ..core.baselines import (DispatchProfiler, LciProfiler, NciIlpProfiler,
                              NciProfiler, SoftwareProfiler)
from ..core.oracle import OracleProfiler, OracleReport
from ..core.profiler import SamplingProfiler
from ..core.sampling import SampleSchedule
from ..core.tip import TipIlpProfiler, TipProfiler
from ..cpu.config import CoreConfig
from ..cpu.core import CoreStats
from ..cpu.machine import Machine
from ..isa.program import Program
from ..lint.sanitizer import TraceInvariantError, TraceSanitizer

#: Policy name -> constructor(schedule, program).
POLICIES = {
    "Software": lambda schedule, program: SoftwareProfiler(schedule),
    "Dispatch": lambda schedule, program: DispatchProfiler(schedule),
    "LCI": lambda schedule, program: LciProfiler(schedule),
    "NCI": lambda schedule, program: NciProfiler(schedule),
    "NCI+ILP": lambda schedule, program: NciIlpProfiler(schedule),
    "TIP-ILP": TipIlpProfiler,
    "TIP": TipProfiler,
}

#: The profiler line-up of the paper's Section 5 comparison.
ALL_POLICIES = ("Software", "Dispatch", "LCI", "NCI", "TIP-ILP", "TIP")


@dataclass(frozen=True)
class ProfilerConfig:
    """One profiler configuration attached to an experiment."""

    policy: str
    period: int
    mode: str = "periodic"
    seed: int = 0
    label: Optional[str] = None

    @property
    def name(self) -> str:
        return self.label or self.policy

    def build(self, program: Program) -> SamplingProfiler:
        if self.policy not in POLICIES:
            raise ValueError(f"unknown profiler policy {self.policy!r}")
        schedule = SampleSchedule(self.period, self.mode, self.seed)
        return POLICIES[self.policy](schedule, program)

    def schedule_clone(self) -> SampleSchedule:
        return SampleSchedule(self.period, self.mode, self.seed)


class ExperimentResult:
    """Profilers, Oracle report and statistics of one run."""

    def __init__(self, program: Program, oracle: OracleReport,
                 profilers: Dict[str, SamplingProfiler],
                 stats: Optional[CoreStats],
                 sanitizer: Optional["TraceSanitizer"] = None):
        self.program = program
        self.oracle = oracle
        self.profilers = profilers
        #: Simulation statistics; ``None`` for trace replays (the
        #: simulator never ran).
        self.stats = stats
        #: The trace sanitizer attached to the run (``sanitize=True``).
        self.sanitizer = sanitizer
        #: True when the profilers were fed from a simulation-cache hit
        #: (block-engine replay of the cached trace) instead of a live
        #: simulation.  Results are bit-identical either way.
        self.cached = False
        self.symbolizer = Symbolizer(program)

    # -- errors -------------------------------------------------------------------

    def error(self, name: str,
              granularity: Granularity = Granularity.INSTRUCTION) -> float:
        profiler = self.profilers[name]
        return profile_error(profiler, self.oracle, self.symbolizer,
                             granularity)

    def errors(self, granularity: Granularity = Granularity.INSTRUCTION
               ) -> Dict[str, float]:
        return {name: self.error(name, granularity)
                for name in self.profilers}

    # -- profiles ------------------------------------------------------------------

    def profile(self, name: str,
                granularity: Granularity = Granularity.INSTRUCTION,
                normalized: bool = True) -> Dict[Hashable, float]:
        profiler = self.profilers[name]
        profile = build_profile(profiler.samples, self.symbolizer,
                                granularity)
        return normalize(profile) if normalized else profile

    def oracle_profile(self,
                       granularity: Granularity = Granularity.INSTRUCTION,
                       normalized: bool = True) -> Dict[Hashable, float]:
        profile = oracle_profile(self.oracle, self.symbolizer, granularity)
        return normalize(profile) if normalized else profile

    # -- cycle stacks ---------------------------------------------------------------

    def cycle_stack(self) -> CycleStack:
        return cycle_stack(self.oracle)

    def function_stacks(self) -> Dict[Hashable, CycleStack]:
        return per_symbol_stacks(self.oracle, self.symbolizer,
                                 Granularity.FUNCTION)


def run_experiment(program: Program,
                   profilers: Sequence[ProfilerConfig],
                   config: Optional[CoreConfig] = None,
                   premapped_data: Optional[List[Tuple[int, int]]] = None,
                   max_cycles: int = 10_000_000,
                   sanitize: bool = False,
                   engine: str = "cycle",
                   sim: str = "step",
                   paranoid: bool = False,
                   cache=None) -> ExperimentResult:
    """Simulate *program* once with all *profilers* attached out-of-band.

    With *sanitize* a :class:`~repro.lint.TraceSanitizer` validates the
    commit trace against the invariants every profiler depends on,
    raising :class:`~repro.lint.TraceInvariantError` on the first
    violation.

    With ``engine="block"`` the sampling profilers are fed through a
    :class:`~repro.fastpath.BlockAssembler` that batches the live
    record stream into columnar blocks (one core-side call per cycle
    instead of one per profiler).  The Oracle and the sanitizer stay
    attached directly: the Oracle needs per-cycle watch-schedule
    bookkeeping and the sanitizer's fail-fast diagnostics should point
    at the violating cycle, not a block boundary.  Profiles are
    bit-identical either way.

    ``sim="fast"`` turns on the event-driven stall fast-forward inside
    the core (*paranoid* cross-checks every fast-forwarded region
    against single-stepping); *cache* enables the content-addressed
    simulation cache (``True`` for the default root, a path, or a
    :class:`~repro.simfast.SimCache`).  On a hit the profilers replay
    the cached columnar (v3) trace zero-copy through the block engine
    and ``result.cached`` is set; on a miss the run records into the
    cache.
    Traces, reports and stats are bit-identical across all paths.

    Raises :class:`~repro.cpu.core.MaxCyclesExceeded` when the budget
    runs out; such runs are never cached.
    """
    from ..fastpath.engine import (BLOCK_ENGINE, BlockAssembler,
                                   replay_with_engine, validate_engine)
    from ..simfast.cache import resolve_cache
    validate_engine(engine)
    machine = Machine(program, config, premapped_data)
    image = machine.image

    sanitizer = None
    if sanitize:
        sanitizer = TraceSanitizer.for_machine(machine)
        machine.attach(sanitizer)

    # Oracle watches the union of all distinct sampling schedules so the
    # error metric can compare every sample against golden attribution.
    distinct = {(p.period, p.mode, p.seed): p for p in profilers}
    oracle = OracleProfiler(
        image, watch_schedules=[p.schedule_clone()
                                for p in distinct.values()])

    built: Dict[str, SamplingProfiler] = {}
    for profiler_config in profilers:
        if profiler_config.name in built:
            raise ValueError(
                f"duplicate profiler label {profiler_config.name!r}")
        built[profiler_config.name] = profiler_config.build(image)

    sim_cache = resolve_cache(cache)
    key = None
    if sim_cache is not None:
        key = sim_cache.key_for(image, machine.config,
                                premapped=premapped_data)
        hit = sim_cache.lookup(key, max_cycles)
        if hit is not None:
            observers = ([sanitizer] if sanitizer is not None else []) \
                + [oracle] + list(built.values())
            try:
                replay_with_engine(hit.trace_path, observers,
                                   engine=BLOCK_ENGINE)
            except (TraceInvariantError, MemoryError):
                raise
            except Exception as exc:
                # The entry passed its checksum but does not decode
                # (foreign producer, consistent tampering, or the entry
                # was swapped underneath us after verification).  Evict
                # it, warn, and fall back to a fresh simulation with
                # pristine observers -- never a bare traceback.
                import warnings

                from ..simfast.cache import CacheCorruptionWarning
                sim_cache.evict(key)
                warnings.warn(
                    f"evicted corrupt simulation-cache entry "
                    f"{key[:12]}... ({exc}); re-simulating",
                    CacheCorruptionWarning, stacklevel=2)
                return run_experiment(
                    program, profilers, config=config,
                    premapped_data=premapped_data,
                    max_cycles=max_cycles, sanitize=sanitize,
                    engine=engine, sim=sim, paranoid=paranoid,
                    cache=sim_cache)
            # Replay reports the last record's cycle; the simulator
            # reports the cycle after it (same fixup as replay_serial).
            oracle.report.total_cycles = hit.stats.cycles
            result = ExperimentResult(image, oracle.report, built,
                                      hit.stats, sanitizer=sanitizer)
            result.cached = True
            return result

    machine.attach(oracle)
    if engine == BLOCK_ENGINE and built:
        machine.attach(BlockAssembler(built.values(),
                                      machine.config.rob_banks))
    else:
        for profiler in built.values():
            machine.attach(profiler)

    writer = None
    if sim_cache is not None:
        writer = sim_cache.open_writer(key, machine.config.rob_banks)
        machine.attach(writer)
    try:
        stats = machine.run(max_cycles, sim=sim, paranoid=paranoid)
    except BaseException:
        if writer is not None:
            writer.abort()  # incomplete runs are never cached
        raise
    if writer is not None:
        sim_cache.commit(key, stats, program_name=image.name or "")
    return ExperimentResult(image, oracle.report, built, stats,
                            sanitizer=sanitizer)


def replay_experiment(trace, image: Program,
                      profilers: Sequence[ProfilerConfig],
                      sanitize: bool = False,
                      jobs: int = 1,
                      spec=None,
                      timeout: Optional[float] = None,
                      retries: int = 1,
                      verbose: bool = False,
                      engine: str = "block") -> ExperimentResult:
    """Re-profile a recorded trace out-of-band (no re-simulation).

    The trace is read **once** no matter how many profilers are
    configured: every profiler, the Oracle and (with *sanitize*) a
    single :class:`~repro.lint.TraceSanitizer` observe the same pass.
    Attaching the sanitizer per profiler pass would both re-read the
    trace N times and multiply its cycle counts by N; ``cycles_checked``
    equals the trace length exactly.

    With *jobs* > 1 and a :class:`~repro.parallel.shard.ProgramSpec`
    (*spec*) the replay is sharded across worker processes
    (chunk-indexed v2/v3 traces only) with bit-identical profiler
    samples; anything non-shardable silently falls back to this serial
    path.

    *engine* selects how the trace is consumed: ``"block"`` (default)
    decodes each chunk into a columnar
    :class:`~repro.fastpath.CycleBlock` that every observer shares
    (degrading automatically to record-at-a-time for v1 traces), and
    ``"cycle"`` forces the classic per-record replay.  Both engines
    produce bit-identical profiles.

    ``result.stats`` is ``None`` -- the simulator never ran.  The
    underlying :class:`~repro.parallel.shard.ReplayOutcome` is exposed
    as ``result.replay`` (mode, shard count, engine, fallback reason).
    """
    from ..parallel.shard import replay_serial, replay_sharded
    configs = tuple(profilers)
    watch_keys = tuple(sorted({(p.period, p.mode, p.seed)
                               for p in configs}))
    if jobs > 1 and spec is not None:
        outcome = replay_sharded(trace, spec, configs, jobs,
                                 watch_keys=watch_keys,
                                 sanitize=sanitize, image=image,
                                 timeout=timeout, retries=retries,
                                 verbose=verbose, engine=engine)
    else:
        outcome = replay_serial(trace, image, configs, watch_keys,
                                sanitize, engine)
    result = ExperimentResult(image, outcome.oracle, outcome.profilers,
                              stats=None, sanitizer=outcome.sanitizer)
    result.replay = outcome
    return result


def default_profilers(period: int, mode: str = "periodic", seed: int = 0,
                      policies: Sequence[str] = ALL_POLICIES
                      ) -> List[ProfilerConfig]:
    """The standard line-up, all sampling on the same cycles."""
    return [ProfilerConfig(policy, period, mode, seed)
            for policy in policies]
