"""Experiment harness: single-run experiments and suite-wide sweeps."""

from .experiment import (ALL_POLICIES, POLICIES, ExperimentResult,
                         ProfilerConfig, default_profilers,
                         replay_experiment, run_experiment)
from .multicore import CoreSession, MulticoreSession
from .runner import (DEFAULT_PERIOD, SuiteResult, run_suite, run_workload)

__all__ = [
    "ALL_POLICIES", "POLICIES", "ExperimentResult", "ProfilerConfig",
    "default_profilers", "replay_experiment", "run_experiment",
    "CoreSession", "MulticoreSession", "DEFAULT_PERIOD", "SuiteResult",
    "run_suite", "run_workload",
]
