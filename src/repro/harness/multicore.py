"""Multi-core profiling sessions (Section 3.2, "Multi-threading").

The paper notes that TIP extends to multi-threaded systems without
changes to the attribution policy: perf tags every sample with core,
process and thread identifiers, and each physical core carries its own
TIP unit.  This module models exactly that: one :class:`CoreSession`
per simulated core (its own machine, Oracle and TIP), and a
:class:`MulticoreSession` that merges the per-core sample streams into
system-wide profiles keyed by ``(core, symbol)`` or aggregated across
cores for shared binaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..analysis.profiles import normalize
from ..analysis.symbols import Granularity, Symbolizer
from ..core.oracle import OracleProfiler
from ..core.sampling import SampleSchedule
from ..core.tip import TipProfiler
from ..cpu.config import CoreConfig
from ..cpu.machine import Machine
from ..workloads.generator import Workload


@dataclass
class CoreSession:
    """One core's run: machine, TIP profiler and Oracle reference."""

    core_id: int
    workload: Workload
    machine: Machine
    tip: TipProfiler
    oracle: OracleProfiler

    @property
    def cycles(self) -> int:
        return self.machine.stats.cycles


class MulticoreSession:
    """Profile several cores, each running its own workload.

    Every core gets a private TIP unit (as the paper requires) sampling
    on the same schedule parameters; the merged profile weights each
    core's samples by the time they represent, so a system-wide profile
    falls out exactly like merging per-CPU perf buffers.
    """

    def __init__(self, workloads: Sequence[Workload], period: int = 97,
                 config: Optional[CoreConfig] = None,
                 mode: str = "periodic", seed: int = 0):
        if not workloads:
            raise ValueError("need at least one core workload")
        self.period = period
        self.sessions: List[CoreSession] = []
        for core_id, workload in enumerate(workloads):
            machine = Machine(workload.program, config,
                              premapped_data=workload.premapped)
            tip = TipProfiler(SampleSchedule(period, mode, seed),
                              machine.image)
            oracle = OracleProfiler(machine.image)
            machine.attach(oracle)
            machine.attach(tip)
            self.sessions.append(
                CoreSession(core_id, workload, machine, tip, oracle))

    def run(self, max_cycles: int = 10_000_000) -> "MulticoreSession":
        for session in self.sessions:
            session.machine.run(max_cycles)
        return self

    # -- merged views ---------------------------------------------------------

    def per_core_profiles(self, granularity: Granularity =
                          Granularity.FUNCTION
                          ) -> Dict[int, Dict[Hashable, float]]:
        """core id -> normalised profile of that core."""
        out = {}
        for session in self.sessions:
            symbolizer = Symbolizer(session.machine.image)
            profile: Dict[Hashable, float] = {}
            for sample in session.tip.samples:
                for addr, fraction in sample.weights:
                    sym = symbolizer.symbol(addr, granularity)
                    profile[sym] = profile.get(sym, 0.0) \
                        + sample.interval * fraction
            out[session.core_id] = normalize(profile)
        return out

    def system_profile(self, granularity: Granularity =
                       Granularity.FUNCTION,
                       tag_core: bool = True
                       ) -> Dict[Hashable, float]:
        """System-wide normalised profile.

        With *tag_core* symbols are ``(core, symbol)`` pairs (distinct
        processes); without it equal symbols merge across cores (shared
        binary / multi-threaded process).
        """
        profile: Dict[Hashable, float] = {}
        for session in self.sessions:
            symbolizer = Symbolizer(session.machine.image)
            for sample in session.tip.samples:
                for addr, fraction in sample.weights:
                    sym = symbolizer.symbol(addr, granularity)
                    key = (session.core_id, sym) if tag_core else sym
                    profile[key] = profile.get(key, 0.0) \
                        + sample.interval * fraction
        return normalize(profile)

    @property
    def total_cycles(self) -> int:
        return sum(session.cycles for session in self.sessions)
