"""repro: a reproduction of "TIP: Time-Proportional Instruction Profiling"
(Gottschall, Eeckhout, Jahre -- MICRO 2021).

The package provides:

* ``repro.isa`` -- a compact RISC-V-flavoured ISA with an assembler;
* ``repro.cpu`` -- a cycle-level 4-wide out-of-order core (BOOM-style)
  that emits a per-cycle commit-stage trace;
* ``repro.mem`` -- caches, TLBs, page tables, DRAM;
* ``repro.kernel`` -- a miniature OS (page-fault handling);
* ``repro.core`` -- the paper's contribution: the Oracle golden-reference
  profiler, TIP, and the Software/Dispatch/LCI/NCI baselines;
* ``repro.analysis`` -- symbolization, the profile error metric, cycle
  stacks, and report rendering;
* ``repro.workloads`` -- 27 synthetic SPEC/PARSEC stand-ins plus the
  Imagick case study;
* ``repro.harness`` -- single-simulation multi-profiler experiments;
* ``repro.lint`` -- the static linter, dataflow engine, observer
  contracts and commit-trace sanitizer;
* ``repro.opt`` -- the profile-guided optimizer: dataflow-proven
  rewrites with certificates, differential verification and measured
  speedups (``repro optimize``).

Quickstart::

    from repro import run_experiment, default_profilers
    from repro.workloads import build
    wl = build("lbm")
    result = run_experiment(wl.program, default_profilers(97),
                            premapped_data=wl.premapped)
    print(result.errors())
"""

from .analysis import (CycleStack, Granularity, Symbolizer, cycle_stack,
                       profile_error)
from .core import (Category, OracleProfiler, SampleSchedule, TipProfiler)
from .cpu import CoreConfig, Machine
from .harness import (ALL_POLICIES, ExperimentResult, ProfilerConfig,
                      SuiteResult, default_profilers, run_experiment,
                      run_suite, run_workload)
from .isa import Program, assemble

__version__ = "1.1.0"

__all__ = [
    "CycleStack", "Granularity", "Symbolizer", "cycle_stack",
    "profile_error", "Category", "OracleProfiler", "SampleSchedule",
    "TipProfiler", "CoreConfig", "Machine", "ALL_POLICIES",
    "ExperimentResult", "ProfilerConfig", "SuiteResult",
    "default_profilers", "run_experiment", "run_suite", "run_workload",
    "Program", "assemble", "__version__",
]
