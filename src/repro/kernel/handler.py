"""The page-fault handler program.

A miniature OS handler: it saves the registers it clobbers to a kernel
save area, walks a few page-table entries in kernel memory (so handler
time scales realistically and touches the caches), updates the PTE, then
restores registers and returns with ``sret``.  The handler is ordinary
code in the merged program image, so -- exactly as the paper's Oracle
specifies -- handler instructions are profiled like application code once
they dispatch.
"""

from __future__ import annotations

from ..isa.assembler import assemble
from ..isa.program import KERNEL_TEXT_BASE, Program

#: Kernel data region (save area + fake page-table pages).
KERNEL_DATA_BASE = 0x9_0000
KERNEL_DATA_SIZE = 0x4000

_HANDLER_SOURCE = f"""
# Page-fault handler. Clobbers x28-x31 only, after saving them.
.entry __pf_handler
.func __pf_handler
__pf_handler:
    sd   x28, {KERNEL_DATA_BASE:#x}(x0)
    sd   x29, {KERNEL_DATA_BASE + 8:#x}(x0)
    sd   x30, {KERNEL_DATA_BASE + 16:#x}(x0)
    sd   x31, {KERNEL_DATA_BASE + 24:#x}(x0)
    # Walk eight fake page-table entries.
    addi x28, x0, {KERNEL_DATA_BASE + 0x100}
    addi x29, x0, 8
    addi x31, x0, 0
__pf_walk:
    ld   x30, 0(x28)
    add  x31, x31, x30
    addi x28, x28, 8
    addi x29, x29, -1
    bne  x29, x0, __pf_walk
    # Install the "PTE" and publish the update.
    sd   x31, {KERNEL_DATA_BASE + 0x200:#x}(x0)
    fence
    # Restore and return to the faulting instruction.
    ld   x28, {KERNEL_DATA_BASE:#x}(x0)
    ld   x29, {KERNEL_DATA_BASE + 8:#x}(x0)
    ld   x30, {KERNEL_DATA_BASE + 16:#x}(x0)
    ld   x31, {KERNEL_DATA_BASE + 24:#x}(x0)
    sret
"""


def build_handler_program(base: int = KERNEL_TEXT_BASE) -> Program:
    """Assemble the page-fault handler at *base*."""
    program = assemble(_HANDLER_SOURCE, base=base, name="kernel")
    for offset in range(0, 0x140, 8):
        program.data.setdefault(KERNEL_DATA_BASE + offset, 1)
    return program
