"""The perf sample-collection interrupt handler (Section 3.2).

When TIP signals a fresh sample, perf's interrupt handler copies the
profiler's CSRs plus kernel metadata into a memory buffer.  This module
generates that handler as a real program: per sample it stores
``metadata_words + payload_words`` 64-bit words to the perf buffer and
advances the buffer pointer, so the *runtime cost of profiling itself*
can be measured on the simulated core (the paper measures 1.0% for
PEBS-sized samples and 1.1% for TIP-sized samples on an i7-4770).

The handler clobbers only x26/x27 (saved and restored through the
kernel save area) and returns with ``sret``.
"""

from __future__ import annotations

from ..isa.assembler import assemble
from ..isa.program import Program

#: Where the generated handler lives (above the page-fault handler).
PERF_HANDLER_BASE = 0xA_0000
#: Scratch area for saved registers.
PERF_SAVE_BASE = 0xB_0000
#: The perf sample ring buffer.
PERF_BUFFER_BASE = 0xC_0000
PERF_BUFFER_BYTES = 0x1_0000

#: perf metadata per sample: 40 B = five 64-bit words (Section 3.2).
METADATA_WORDS = 5


def build_perf_handler(payload_words: int,
                       base: int = PERF_HANDLER_BASE) -> Program:
    """Build a sample-collection handler storing *payload_words* CSRs.

    TIP's payload is 6 words (4 addresses + cycles + flags: 48 B);
    non-ILP profilers store 2 words (address + cycles: 16 B).
    """
    if payload_words < 1:
        raise ValueError("payload_words must be >= 1")
    total_words = METADATA_WORDS + payload_words
    stores = "\n".join(
        f"    sd   x27, {PERF_BUFFER_BASE + 8 * i}(x26)"
        for i in range(total_words))
    source = f"""
.entry __perf_handler
.func __perf_handler
__perf_handler:
    sd   x26, {PERF_SAVE_BASE:#x}(x0)
    sd   x27, {PERF_SAVE_BASE + 8:#x}(x0)
    # Load the buffer cursor (byte offset) and "read" the sample.
    ld   x26, {PERF_SAVE_BASE + 16:#x}(x0)
    addi x27, x26, 1
{stores}
    # Advance and wrap the cursor offset.
    addi x26, x26, {8 * total_words}
    andi x26, x26, {PERF_BUFFER_BYTES - 1}
    sd   x26, {PERF_SAVE_BASE + 16:#x}(x0)
    ld   x26, {PERF_SAVE_BASE:#x}(x0)
    ld   x27, {PERF_SAVE_BASE + 8:#x}(x0)
    sret
"""
    program = assemble(source, base=base, name="perf-handler")
    program.data[PERF_SAVE_BASE + 16] = 0
    return program
