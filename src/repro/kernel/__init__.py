"""Miniature OS model: page tables, fault handler, exception return."""

from .handler import (KERNEL_DATA_BASE, KERNEL_DATA_SIZE,
                      build_handler_program)
from .kernel import Kernel
from .perf_handler import (METADATA_WORDS, PERF_BUFFER_BASE,
                           PERF_BUFFER_BYTES, PERF_HANDLER_BASE,
                           PERF_SAVE_BASE, build_perf_handler)

__all__ = ["KERNEL_DATA_BASE", "KERNEL_DATA_SIZE", "build_handler_program",
           "Kernel", "METADATA_WORDS", "PERF_BUFFER_BASE",
           "PERF_BUFFER_BYTES", "PERF_HANDLER_BASE", "PERF_SAVE_BASE",
           "build_perf_handler"]
