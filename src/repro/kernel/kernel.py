"""The miniature kernel: page table ownership and fault handling."""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..isa.program import KERNEL_TEXT_BASE, Program
from ..mem.tlb import PAGE_SIZE, PageTable, vpn_of
from .handler import KERNEL_DATA_BASE, KERNEL_DATA_SIZE, build_handler_program


class Kernel:
    """Owns the page table and services page faults.

    The timing cost of a fault is paid by the handler *program* executing
    on the core; this object only performs the architectural effect
    (installing the page) and reports where the handler lives.
    """

    def __init__(self, page_table: Optional[PageTable] = None,
                 handler_base: int = KERNEL_TEXT_BASE):
        self.page_table = page_table or PageTable()
        self.handler_program = build_handler_program(handler_base)
        self.handler_entry = self.handler_program.entry
        #: (vpn, cycle) log of serviced faults.
        self.faults: List[Tuple[int, int]] = []

    # -- boot-time setup --------------------------------------------------------

    def boot(self, app: Program,
             premapped_data: Optional[List[Tuple[int, int]]] = None) -> Program:
        """Merge *app* with the kernel image and map boot-time pages.

        *premapped_data* is a list of ``(lo, hi)`` data address ranges that
        are resident at boot; everything else data-wise faults on first
        touch.  Text and kernel memory are always mapped.
        """
        image = app.merged_with(self.handler_program)
        self.page_table.map_range(app.text_lo, app.text_hi)
        self.page_table.map_range(self.handler_program.text_lo,
                                  self.handler_program.text_hi)
        self.page_table.map_range(KERNEL_DATA_BASE,
                                  KERNEL_DATA_BASE + KERNEL_DATA_SIZE)
        for addr in image.data:
            self.page_table.map_page(vpn_of(addr))
        for lo, hi in premapped_data or ():
            self.page_table.map_range(lo, hi)
        return image

    # -- runtime ------------------------------------------------------------------

    def on_page_fault(self, vpn: int, cycle: int) -> int:
        """Install the missing page and return the handler entry address."""
        self.page_table.map_page(vpn)
        self.faults.append((vpn, cycle))
        return self.handler_entry
