"""Opcode definitions for the RISC-V-flavoured ISA used by the simulator.

The paper evaluates TIP on a RISC-V BOOM core.  We model a compact subset
of RV64IMAFD plus the CSR instructions the Imagick case study hinges on
(``frflags``/``fsflags``).  Each opcode carries static metadata: which
execution unit it needs, its execution latency, and behavioural flags
(branch, memory, serializing, flush-on-commit) that the out-of-order core
and the profilers consult.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Unit(enum.Enum):
    """Execution unit classes, matching the BOOM issue queues of Table 1."""

    INT = "int"
    MEM = "mem"
    FP = "fp"
    BRANCH = "branch"
    SYSTEM = "system"


class Kind(enum.Enum):
    """Coarse behavioural class of an opcode."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    CALL = "call"
    RETURN = "return"
    FP_ALU = "fp_alu"
    FP_DIV = "fp_div"
    CSR = "csr"
    FENCE = "fence"
    ATOMIC = "atomic"
    NOP = "nop"
    HALT = "halt"
    SRET = "sret"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static metadata attached to every opcode."""

    mnemonic: str
    unit: Unit
    kind: Kind
    latency: int
    #: Instruction flushes the pipeline when it commits (e.g. CSR writes on
    #: BOOM, which does not rename status registers -- see Section 6).
    flushes_on_commit: bool = False
    #: Instruction requires the ROB to drain before dispatch and blocks
    #: dispatch until it commits (fences, atomics -- see Section 2.2).
    serializing: bool = False
    #: Number of register sources consumed (for operand decoding).
    num_sources: int = 2
    #: Writes an integer destination register.
    writes_int: bool = False
    #: Writes a floating-point destination register.
    writes_fp: bool = False


class Op(enum.Enum):
    """All opcodes understood by the assembler and the core."""

    # Integer ALU.
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SLT = "slt"
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLLI = "slli"
    SRLI = "srli"
    SLTI = "slti"
    LUI = "lui"
    MUL = "mul"
    DIV = "div"
    REM = "rem"

    # Floating point.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FMADD = "fmadd"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    FMIN = "fmin"
    FMAX = "fmax"
    FEQ = "feq"
    FLT = "flt"
    FLE = "fle"
    FCVT_W_D = "fcvt.w.d"
    FCVT_D_W = "fcvt.d.w"
    FMV = "fmv"

    # Memory.
    LW = "lw"
    LD = "ld"
    FLD = "fld"
    SW = "sw"
    SD = "sd"
    FSD = "fsd"

    # Control flow.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    JAL = "jal"
    JALR = "jalr"

    # CSR accesses (flush-on-commit on BOOM).
    FRFLAGS = "frflags"
    FSFLAGS = "fsflags"
    CSRRW = "csrrw"

    # Serializing.
    FENCE = "fence"
    AMOADD = "amoadd"

    # System.
    NOP = "nop"
    HALT = "halt"
    SRET = "sret"
    ECALL = "ecall"


def _info(mnemonic, unit, kind, latency, **kwargs):
    return OpcodeInfo(mnemonic, unit, kind, latency, **kwargs)


#: Latencies follow common BOOM functional-unit configurations: single-cycle
#: integer ALU, pipelined 3-cycle multiply, unpipelined ~16-cycle divide,
#: 4-cycle pipelined FP, long-latency FP divide/sqrt.
OPCODE_TABLE: dict = {
    Op.ADD: _info("add", Unit.INT, Kind.ALU, 1, writes_int=True),
    Op.SUB: _info("sub", Unit.INT, Kind.ALU, 1, writes_int=True),
    Op.AND: _info("and", Unit.INT, Kind.ALU, 1, writes_int=True),
    Op.OR: _info("or", Unit.INT, Kind.ALU, 1, writes_int=True),
    Op.XOR: _info("xor", Unit.INT, Kind.ALU, 1, writes_int=True),
    Op.SLL: _info("sll", Unit.INT, Kind.ALU, 1, writes_int=True),
    Op.SRL: _info("srl", Unit.INT, Kind.ALU, 1, writes_int=True),
    Op.SLT: _info("slt", Unit.INT, Kind.ALU, 1, writes_int=True),
    Op.ADDI: _info("addi", Unit.INT, Kind.ALU, 1, num_sources=1, writes_int=True),
    Op.ANDI: _info("andi", Unit.INT, Kind.ALU, 1, num_sources=1, writes_int=True),
    Op.ORI: _info("ori", Unit.INT, Kind.ALU, 1, num_sources=1, writes_int=True),
    Op.XORI: _info("xori", Unit.INT, Kind.ALU, 1, num_sources=1, writes_int=True),
    Op.SLLI: _info("slli", Unit.INT, Kind.ALU, 1, num_sources=1, writes_int=True),
    Op.SRLI: _info("srli", Unit.INT, Kind.ALU, 1, num_sources=1, writes_int=True),
    Op.SLTI: _info("slti", Unit.INT, Kind.ALU, 1, num_sources=1, writes_int=True),
    Op.LUI: _info("lui", Unit.INT, Kind.ALU, 1, num_sources=0, writes_int=True),
    Op.MUL: _info("mul", Unit.INT, Kind.MUL, 3, writes_int=True),
    Op.DIV: _info("div", Unit.INT, Kind.DIV, 16, writes_int=True),
    Op.REM: _info("rem", Unit.INT, Kind.DIV, 16, writes_int=True),

    Op.FADD: _info("fadd", Unit.FP, Kind.FP_ALU, 4, writes_fp=True),
    Op.FSUB: _info("fsub", Unit.FP, Kind.FP_ALU, 4, writes_fp=True),
    Op.FMUL: _info("fmul", Unit.FP, Kind.FP_ALU, 4, writes_fp=True),
    Op.FMADD: _info("fmadd", Unit.FP, Kind.FP_ALU, 4, num_sources=3, writes_fp=True),
    Op.FDIV: _info("fdiv", Unit.FP, Kind.FP_DIV, 13, writes_fp=True),
    Op.FSQRT: _info("fsqrt", Unit.FP, Kind.FP_DIV, 20, num_sources=1, writes_fp=True),
    Op.FMIN: _info("fmin", Unit.FP, Kind.FP_ALU, 2, writes_fp=True),
    Op.FMAX: _info("fmax", Unit.FP, Kind.FP_ALU, 2, writes_fp=True),
    Op.FEQ: _info("feq", Unit.FP, Kind.FP_ALU, 2, writes_int=True),
    Op.FLT: _info("flt", Unit.FP, Kind.FP_ALU, 2, writes_int=True),
    Op.FLE: _info("fle", Unit.FP, Kind.FP_ALU, 2, writes_int=True),
    Op.FCVT_W_D: _info("fcvt.w.d", Unit.FP, Kind.FP_ALU, 2, num_sources=1, writes_int=True),
    Op.FCVT_D_W: _info("fcvt.d.w", Unit.FP, Kind.FP_ALU, 2, num_sources=1, writes_fp=True),
    Op.FMV: _info("fmv", Unit.FP, Kind.FP_ALU, 1, num_sources=1, writes_fp=True),

    Op.LW: _info("lw", Unit.MEM, Kind.LOAD, 1, num_sources=1, writes_int=True),
    Op.LD: _info("ld", Unit.MEM, Kind.LOAD, 1, num_sources=1, writes_int=True),
    Op.FLD: _info("fld", Unit.MEM, Kind.LOAD, 1, num_sources=1, writes_fp=True),
    Op.SW: _info("sw", Unit.MEM, Kind.STORE, 1, num_sources=2),
    Op.SD: _info("sd", Unit.MEM, Kind.STORE, 1, num_sources=2),
    Op.FSD: _info("fsd", Unit.MEM, Kind.STORE, 1, num_sources=2),

    Op.BEQ: _info("beq", Unit.BRANCH, Kind.BRANCH, 1),
    Op.BNE: _info("bne", Unit.BRANCH, Kind.BRANCH, 1),
    Op.BLT: _info("blt", Unit.BRANCH, Kind.BRANCH, 1),
    Op.BGE: _info("bge", Unit.BRANCH, Kind.BRANCH, 1),
    Op.JAL: _info("jal", Unit.BRANCH, Kind.CALL, 1, num_sources=0, writes_int=True),
    Op.JALR: _info("jalr", Unit.BRANCH, Kind.RETURN, 1, num_sources=1, writes_int=True),

    Op.FRFLAGS: _info("frflags", Unit.SYSTEM, Kind.CSR, 1, num_sources=0,
                      writes_int=True, flushes_on_commit=True),
    Op.FSFLAGS: _info("fsflags", Unit.SYSTEM, Kind.CSR, 1, num_sources=1,
                      flushes_on_commit=True),
    Op.CSRRW: _info("csrrw", Unit.SYSTEM, Kind.CSR, 1, num_sources=1,
                    writes_int=True, flushes_on_commit=True),

    Op.FENCE: _info("fence", Unit.SYSTEM, Kind.FENCE, 1, num_sources=0,
                    serializing=True),
    Op.AMOADD: _info("amoadd", Unit.MEM, Kind.ATOMIC, 1, num_sources=2,
                     writes_int=True, serializing=True),

    Op.NOP: _info("nop", Unit.INT, Kind.NOP, 1, num_sources=0),
    Op.HALT: _info("halt", Unit.SYSTEM, Kind.HALT, 1, num_sources=0),
    Op.SRET: _info("sret", Unit.SYSTEM, Kind.SRET, 1, num_sources=0,
                   flushes_on_commit=True),
    Op.ECALL: _info("ecall", Unit.SYSTEM, Kind.CSR, 1, num_sources=0,
                    flushes_on_commit=True),
}

#: Mnemonic -> opcode, used by the assembler.
MNEMONICS: dict = {info.mnemonic: op for op, info in OPCODE_TABLE.items()}

#: Kinds that terminate a basic block.
CONTROL_KINDS = frozenset({
    Kind.BRANCH, Kind.JUMP, Kind.CALL, Kind.RETURN, Kind.HALT, Kind.SRET,
})


def info_for(op: Op) -> OpcodeInfo:
    """Return the :class:`OpcodeInfo` for *op*."""
    return OPCODE_TABLE[op]
