"""Program rewriting: replace, delete and insert instructions.

The :class:`ProgramEditor` is the mechanical half of ``repro.opt``: it
applies a batch of edits to a :class:`~repro.isa.program.Program` and
rebuilds a consistent image -- addresses re-packed, branch and ``jal``
immediates re-resolved through an old->new address map, function symbol
ranges re-derived, labels and source-line info carried over.  Legality
of the edits is the *caller's* problem (``repro.opt.legality`` proves
it from dataflow facts); the editor only guarantees the rebuilt program
is structurally well-formed.

Address mapping rules:

* a surviving instruction maps to its new (re-packed) address;
* a deleted instruction maps to the next surviving instruction at or
  after it, so branches into deleted code fall through to what follows;
* with an insertion before address ``H``, references to ``H`` split:
  instructions listed in *internal_addrs* (a hoisted loop's body) keep
  targeting ``H`` itself, while every other reference -- and the entry
  point and labels -- retargets to the start of the inserted sequence.
  This is exactly the preheader discipline: back edges re-enter the
  loop header, outside entries run the preheader first.

After remapping, every control target that lacks a label gets a
synthesized one so the rebuilt program still round-trips through the
disassembler and assembler.
"""

from __future__ import annotations

import bisect
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .instruction import INSTRUCTION_BYTES, Instruction
from .opcodes import Op
from .program import FunctionSymbol, Program


class RewriteError(ValueError):
    """Raised when an edit batch cannot produce a well-formed program."""


def nop() -> Instruction:
    """A fresh ``nop`` replacement instruction (address assigned later)."""
    return Instruction(Op.NOP)


class ProgramEditor:
    """Accumulate edits against one program, then :meth:`build`.

    Supported edits (any mix, applied in one rebuild):

    * :meth:`replace` -- substitute the instruction at an address
      in place (same slot; control replacements carry their target in
      the *old* address space and are remapped like originals);
    * :meth:`delete` -- remove the instruction at an address;
    * :meth:`insert_before` -- insert a sequence of non-control
      instructions before an address (at most one insertion per build).
    """

    def __init__(self, program: Program):
        self.program = program
        self._replacements: Dict[int, Instruction] = {}
        self._deletions: Set[int] = set()
        self._insert_at: Optional[int] = None
        self._inserted: List[Instruction] = []
        self._internal: FrozenSet[int] = frozenset()
        self._insert_line: Optional[int] = None

    # -- edit recording ------------------------------------------------------

    def _check_addr(self, addr: int) -> None:
        if addr not in self.program:
            raise RewriteError(f"no instruction at {addr:#x}")
        if addr in self._replacements or addr in self._deletions:
            raise RewriteError(f"conflicting edits at {addr:#x}")

    def replace(self, addr: int, inst: Instruction) -> "ProgramEditor":
        """Replace the instruction at *addr* with *inst* (addr ignored;
        a control *inst* carries its target in old-address space)."""
        self._check_addr(addr)
        self._replacements[addr] = inst
        return self

    def delete(self, addr: int) -> "ProgramEditor":
        """Delete the instruction at *addr*."""
        self._check_addr(addr)
        self._deletions.add(addr)
        return self

    def insert_before(self, addr: int, instructions: Sequence[Instruction],
                      internal_addrs: FrozenSet[int] = frozenset(),
                      line: Optional[int] = None) -> "ProgramEditor":
        """Insert *instructions* before the instruction at *addr*.

        References to *addr* from instructions whose (old) address is in
        *internal_addrs* keep targeting *addr*; all others -- including
        the entry point and labels -- retarget to the inserted sequence.
        *line* tags the inserted instructions in the source-line map.
        """
        if self._insert_at is not None:
            raise RewriteError("only one insertion per build")
        if addr not in self.program:
            raise RewriteError(f"no instruction at {addr:#x}")
        if any(inst.static_targets() for inst in instructions):
            raise RewriteError("inserted instructions must not be "
                               "control transfers")
        self._insert_at = addr
        self._inserted = list(instructions)
        self._internal = frozenset(internal_addrs)
        self._insert_line = line
        return self

    # -- rebuild -------------------------------------------------------------

    def build(self, name: Optional[str] = None) -> Program:
        """Apply the recorded edits and return the rebuilt program."""
        program = self.program
        base = program.text_lo
        # 1. The output sequence: (instruction, originating old addr).
        out: List[Tuple[Instruction, Optional[int]]] = []
        insert_index: Optional[int] = None
        for inst in program.instructions:
            if inst.addr == self._insert_at:
                insert_index = len(out)
                out.extend((ins, None) for ins in self._inserted)
            if inst.addr in self._deletions:
                continue
            out.append((self._replacements.get(inst.addr, inst),
                        inst.addr))
        if not out:
            raise RewriteError("edits would delete every instruction")

        # 2. Old->new maps.  int_map: a deleted address maps to the next
        # surviving instruction; ext_map additionally diverts the
        # insertion point to the start of the inserted sequence.
        new_addr = [base + i * INSTRUCTION_BYTES for i in range(len(out))]
        int_map: Dict[int, int] = {}
        for i, (_inst, old) in enumerate(out):
            if old is not None:
                int_map[old] = new_addr[i]
        survivors = sorted(int_map)
        for old in sorted(self._deletions):
            pos = bisect.bisect_left(survivors, old)
            if pos < len(survivors):
                int_map[old] = int_map[survivors[pos]]
        ext_map = dict(int_map)
        if insert_index is not None and self._insert_at is not None:
            ext_map[self._insert_at] = new_addr[insert_index]

        def remap(old_target: int, source_old: Optional[int]) -> int:
            use_internal = (self._insert_at is not None
                            and old_target == self._insert_at
                            and source_old in self._internal)
            table = int_map if use_internal else ext_map
            if old_target in program:
                mapped = table.get(old_target)
                if mapped is None:
                    raise RewriteError(
                        f"target {old_target:#x} was deleted with no "
                        f"following instruction")
                return mapped
            return old_target  # outside this text segment (e.g. kernel)

        # 3. Materialize instructions at their new addresses, with
        # control targets remapped.
        instructions: List[Instruction] = []
        for i, (inst, old) in enumerate(out):
            imm = inst.imm
            if inst.static_targets():
                imm = remap(inst.imm, old)
            instructions.append(Instruction(inst.op, inst.rd, inst.sources,
                                            imm, new_addr[i]))

        # 4. Function symbols from the surviving instructions' homes;
        # inserted instructions belong to the insertion point's function.
        owner: List[Optional[FunctionSymbol]] = []
        for _inst, old in out:
            home = old if old is not None else self._insert_at
            owner.append(program.function_of(home)
                         if home is not None else None)
        spans: Dict[str, Tuple[int, int]] = {}
        for i, func in enumerate(owner):
            if func is None:
                continue
            lo, hi = spans.get(func.name, (new_addr[i], new_addr[i]))
            spans[func.name] = (min(lo, new_addr[i]),
                                max(hi, new_addr[i]))
        functions = [FunctionSymbol(fname, lo, hi + INSTRUCTION_BYTES)
                     for fname, (lo, hi) in spans.items()]

        # 5. Entry, labels, lines, ignores via the external map.
        entry = ext_map.get(program.entry)
        if entry is None:
            raise RewriteError("the entry point was deleted")
        labels: Dict[str, int] = {}
        for lname, old in program.labels.items():
            mapped = ext_map.get(old)
            if mapped is not None:
                labels[lname] = mapped
        labeled = set(labels.values())
        for inst in instructions:
            for target in inst.static_targets():
                if target not in labeled \
                        and any(target == n.addr for n in instructions):
                    fresh = f"opt_{target:x}"
                    while fresh in labels:
                        fresh += "_"
                    labels[fresh] = target
                    labeled.add(target)
        lines: Dict[int, int] = {}
        ignores: Dict[int, FrozenSet[str]] = {}
        for i, (_inst, old) in enumerate(out):
            source = old
            if source is None:
                if self._insert_line is not None:
                    lines[new_addr[i]] = self._insert_line
                continue
            line = program.lines.get(source)
            if line is not None:
                lines[new_addr[i]] = line
            ignore = program.ignores.get(source)
            if ignore is not None:
                ignores[new_addr[i]] = ignore

        return Program(instructions, functions, entry, labels,
                       dict(program.data), name or program.name, lines,
                       ignores)
