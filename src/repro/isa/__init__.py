"""A compact RISC-V-flavoured ISA: opcodes, programs, assembler, semantics."""

from .assembler import Assembler, AssemblerError, assemble
from .disasm import disassemble, format_instruction
from .instruction import INSTRUCTION_BYTES, Instruction, Register
from .interpreter import Interpreter, InterpreterError, run_reference
from .opcodes import Kind, Op, OpcodeInfo, Unit, info_for
from .program import (FunctionSymbol, KERNEL_TEXT_BASE, Program,
                      ProgramBuilder, TEXT_BASE)
from .rewrite import ProgramEditor, RewriteError
from .semantics import ExecResult, evaluate

__all__ = [
    "Assembler", "AssemblerError", "assemble",
    "disassemble", "format_instruction",
    "INSTRUCTION_BYTES", "Instruction", "Register",
    "Interpreter", "InterpreterError", "run_reference",
    "Kind", "Op", "OpcodeInfo", "Unit", "info_for",
    "FunctionSymbol", "KERNEL_TEXT_BASE", "Program", "ProgramBuilder",
    "TEXT_BASE",
    "ProgramEditor", "RewriteError",
    "ExecResult", "evaluate",
]
