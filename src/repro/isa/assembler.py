"""A small two-pass assembler for the simulator's ISA.

The assembly dialect mirrors RISC-V conventions::

    .entry main
    .func  main
    main:
        addi  x1, x0, 16
    loop:
        lw    x2, 0(x1)
        add   x3, x3, x2
        addi  x1, x1, -4
        bne   x1, x0, loop
        halt
    .data  0x2000 3.5

Directives: ``.func NAME`` opens a function symbol, ``.entry LABEL`` sets
the entry point, ``.data ADDR VALUE`` initialises a data word.  Labels end
with ``:``.  Comments start with ``#`` or ``;``.

A comment of the form ``# lint: ignore[L001]`` (or ``# lint: ignore``
for every rule; several ids may be comma-separated) suppresses lint
diagnostics for the instructions assembled from that line.  The linter
honours the pragma unless run with ``--no-ignores``.
"""

from __future__ import annotations

import re
from typing import FrozenSet, List, Optional, Tuple

from .instruction import Register
from .opcodes import Kind, MNEMONICS, Op, info_for
from .program import Program, ProgramBuilder, TEXT_BASE


class AssemblerError(ValueError):
    """Raised on malformed assembly input."""

    def __init__(self, message: str, line_no: Optional[int] = None):
        prefix = f"line {line_no}: " if line_no is not None else ""
        super().__init__(prefix + message)
        self.line_no = line_no


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


#: ``# lint: ignore`` / ``# lint: ignore[L001, L012]`` in a comment.
_IGNORE_PRAGMA = re.compile(
    r"[#;]\s*lint:\s*ignore(?:\[([A-Za-z0-9_,\s]*)\])?")


def _lint_ignores(raw: str) -> Optional[FrozenSet[str]]:
    """Suppressed rule ids from a raw source line, or ``None``.

    A bare ``ignore`` (or an empty bracket list) suppresses every rule,
    encoded as the ``"*"`` wildcard.
    """
    match = _IGNORE_PRAGMA.search(raw)
    if match is None:
        return None
    listed = match.group(1)
    if listed is None:
        return frozenset({"*"})
    rules = frozenset(part.strip() for part in listed.split(",")
                      if part.strip())
    return rules or frozenset({"*"})


def _parse_int(text: str) -> int:
    return int(text, 0)


def _split_operands(rest: str) -> List[str]:
    return [part.strip() for part in rest.split(",") if part.strip()]


def _parse_mem_operand(text: str) -> Tuple[int, int]:
    """Parse ``imm(reg)`` and return ``(imm, reg)``."""
    open_paren = text.find("(")
    if open_paren < 0 or not text.endswith(")"):
        raise ValueError(f"expected imm(reg), got {text!r}")
    imm_text = text[:open_paren].strip() or "0"
    reg_text = text[open_paren + 1:-1].strip()
    return _parse_int(imm_text), Register.parse(reg_text)


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self, base: int = TEXT_BASE, name: str = "program"):
        self.base = base
        self.name = name

    def assemble(self, source: str) -> Program:
        builder = ProgramBuilder(self.base, self.name)
        for line_no, raw in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw)
            if not line:
                continue
            builder.set_line(line_no)
            builder.set_ignores(_lint_ignores(raw))
            try:
                self._assemble_line(builder, line)
            except AssemblerError:
                raise
            except ValueError as exc:
                raise AssemblerError(str(exc), line_no) from exc
        return builder.build()

    # -- per-line handling ----------------------------------------------------

    def _assemble_line(self, builder: ProgramBuilder, line: str) -> None:
        if line.startswith("."):
            self._directive(builder, line)
            return
        while ":" in line:
            label, _, line = line.partition(":")
            builder.label(label.strip())
            line = line.strip()
        if line:
            self._instruction(builder, line)

    def _directive(self, builder: ProgramBuilder, line: str) -> None:
        parts = line.split()
        directive, args = parts[0], parts[1:]
        if directive == ".func":
            if len(args) != 1:
                raise ValueError(".func takes exactly one name")
            builder.func(args[0])
        elif directive == ".entry":
            if len(args) != 1:
                raise ValueError(".entry takes exactly one label")
            builder.entry(args[0])
        elif directive == ".data":
            if len(args) != 2:
                raise ValueError(".data takes ADDR VALUE")
            builder.word(_parse_int(args[0]), float(args[1]))
        else:
            raise ValueError(f"unknown directive {directive!r}")

    def _instruction(self, builder: ProgramBuilder, line: str) -> None:
        mnemonic, _, rest = line.partition(" ")
        mnemonic = mnemonic.strip().lower()
        if mnemonic not in MNEMONICS:
            raise ValueError(f"unknown mnemonic {mnemonic!r}")
        op = MNEMONICS[mnemonic]
        operands = _split_operands(rest)
        kind = info_for(op).kind
        if kind is Kind.LOAD and op is not Op.AMOADD:
            self._load(builder, op, operands)
        elif kind is Kind.STORE:
            self._store(builder, op, operands)
        elif kind is Kind.BRANCH:
            self._branch(builder, op, operands)
        elif kind is Kind.CALL:
            self._jal(builder, op, operands)
        elif kind is Kind.RETURN:
            self._jalr(builder, op, operands)
        elif kind is Kind.ATOMIC:
            self._amo(builder, op, operands)
        else:
            self._generic(builder, op, operands)

    def _load(self, builder, op, operands) -> None:
        if len(operands) != 2:
            raise ValueError(f"{op.value} takes rd, imm(rs1)")
        rd = Register.parse(operands[0])
        imm, base = _parse_mem_operand(operands[1])
        builder.emit(op, rd, (base,), imm)

    def _store(self, builder, op, operands) -> None:
        if len(operands) != 2:
            raise ValueError(f"{op.value} takes rs2, imm(rs1)")
        data = Register.parse(operands[0])
        imm, base = _parse_mem_operand(operands[1])
        builder.emit(op, None, (base, data), imm)

    def _branch(self, builder, op, operands) -> None:
        if len(operands) != 3:
            raise ValueError(f"{op.value} takes rs1, rs2, label")
        rs1 = Register.parse(operands[0])
        rs2 = Register.parse(operands[1])
        builder.emit(op, None, (rs1, rs2), target=operands[2])

    def _jal(self, builder, op, operands) -> None:
        if len(operands) != 2:
            raise ValueError("jal takes rd, label")
        rd = Register.parse(operands[0])
        builder.emit(op, rd, (), target=operands[1])

    def _jalr(self, builder, op, operands) -> None:
        if len(operands) != 3:
            raise ValueError("jalr takes rd, rs1, imm")
        rd = Register.parse(operands[0])
        rs1 = Register.parse(operands[1])
        builder.emit(op, rd, (rs1,), _parse_int(operands[2]))

    def _amo(self, builder, op, operands) -> None:
        if len(operands) != 3:
            raise ValueError("amoadd takes rd, rs2, (rs1)")
        rd = Register.parse(operands[0])
        data = Register.parse(operands[1])
        imm, base = _parse_mem_operand(operands[2])
        builder.emit(op, rd, (base, data), imm)

    def _generic(self, builder, op, operands) -> None:
        info = info_for(op)
        writes = info.writes_int or info.writes_fp
        expected = info.num_sources + (1 if writes else 0)
        has_imm = op in _IMMEDIATE_OPS
        if has_imm:
            expected += 1
        if len(operands) != expected:
            raise ValueError(
                f"{op.value} takes {expected} operands, got {len(operands)}")
        pos = 0
        rd = None
        if writes:
            rd = Register.parse(operands[pos])
            pos += 1
        sources = tuple(Register.parse(operands[pos + i])
                        for i in range(info.num_sources))
        pos += info.num_sources
        imm = _parse_int(operands[pos]) if has_imm else 0
        builder.emit(op, rd, sources, imm)


#: Opcodes whose final operand is an immediate.
_IMMEDIATE_OPS = frozenset({
    Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLLI, Op.SRLI, Op.SLTI, Op.LUI,
})


def assemble(source: str, base: int = TEXT_BASE,
             name: str = "program") -> Program:
    """Assemble *source* text into a :class:`Program`."""
    return Assembler(base, name).assemble(source)
