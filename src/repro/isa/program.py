"""Program container and builder.

A :class:`Program` is the unit the simulator executes and the profilers
symbolise: a text segment of static instructions, a function symbol table,
an entry point, and initial data memory.  The :class:`ProgramBuilder` is
the programmatic construction API used by both the assembler and the
synthetic workload generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional

from .instruction import INSTRUCTION_BYTES, Instruction
from .opcodes import Op, info_for

#: Default base address of application text.
TEXT_BASE = 0x1_0000
#: Base address of kernel (exception handler) text; used by ``repro.kernel``.
KERNEL_TEXT_BASE = 0x8_0000


@dataclass(frozen=True)
class FunctionSymbol:
    """A named function covering the half-open address range [lo, hi)."""

    name: str
    lo: int
    hi: int

    def contains(self, addr: int) -> bool:
        return self.lo <= addr < self.hi


class Program:
    """An executable program image."""

    def __init__(self, instructions: List[Instruction],
                 functions: List[FunctionSymbol], entry: int,
                 labels: Optional[Dict[str, int]] = None,
                 data: Optional[Dict[int, float]] = None,
                 name: str = "program",
                 lines: Optional[Dict[int, int]] = None,
                 ignores: Optional[Dict[int, FrozenSet[str]]] = None):
        if not instructions:
            raise ValueError("a program needs at least one instruction")
        self.name = name
        self.instructions = instructions
        self.functions = sorted(functions, key=lambda f: f.lo)
        self.entry = entry
        self.labels = dict(labels or {})
        #: Initial data memory contents (word address -> value).
        self.data = dict(data or {})
        #: Source line numbers (instruction address -> 1-based line),
        #: populated by the assembler; empty for generated programs.
        self.lines = dict(lines or {})
        #: Per-instruction lint suppressions (``# lint: ignore[RULE]``
        #: pragmas): instruction address -> rule ids, with ``"*"``
        #: meaning every rule.
        self.ignores = dict(ignores or {})
        self._by_addr: Dict[int, Instruction] = {
            inst.addr: inst for inst in instructions
        }
        if len(self._by_addr) != len(instructions):
            raise ValueError("duplicate instruction addresses in program")
        if entry not in self._by_addr:
            raise ValueError(f"entry point {entry:#x} is not an instruction")

    # -- lookups -------------------------------------------------------------

    def fetch(self, addr: int) -> Optional[Instruction]:
        """Return the instruction at *addr*, or ``None`` if out of text."""
        return self._by_addr.get(addr)

    def __contains__(self, addr: int) -> bool:
        return addr in self._by_addr

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def text_lo(self) -> int:
        return self.instructions[0].addr

    @property
    def text_hi(self) -> int:
        return self.instructions[-1].addr + INSTRUCTION_BYTES

    def function_of(self, addr: int) -> Optional[FunctionSymbol]:
        """Return the function containing *addr* (linear ranges, few funcs)."""
        for func in self.functions:
            if func.contains(addr):
                return func
        return None

    def addresses(self) -> Iterable[int]:
        return self._by_addr.keys()

    def merged_with(self, other: "Program") -> "Program":
        """Return a new program combining this text with *other*'s.

        Used to link the kernel's exception-handler text into an
        application image.  Address ranges must not overlap.
        """
        overlap = set(self._by_addr) & set(other._by_addr)
        if overlap:
            raise ValueError("programs overlap at "
                             + ", ".join(hex(a) for a in sorted(overlap)))
        data = dict(self.data)
        data.update(other.data)
        return Program(self.instructions + other.instructions,
                       self.functions + other.functions, self.entry,
                       {**self.labels, **other.labels}, data, self.name,
                       {**self.lines, **other.lines},
                       {**self.ignores, **other.ignores})

    def __repr__(self) -> str:
        return (f"<Program {self.name!r}: {len(self.instructions)} insts, "
                f"{len(self.functions)} funcs, entry={self.entry:#x}>")


@dataclass
class _PendingBranch:
    index: int
    label: str


class ProgramBuilder:
    """Incrementally build a :class:`Program`.

    Branch and jump targets may be given as label strings; they are
    resolved when :meth:`build` is called, so forward references work.
    """

    def __init__(self, base: int = TEXT_BASE, name: str = "program"):
        self.base = base
        self.name = name
        self._insts: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._pending: List[_PendingBranch] = []
        self._functions: List[dict] = []
        self._data: Dict[int, float] = {}
        self._entry_label: Optional[str] = None
        self._lines: Dict[int, int] = {}
        self._line: Optional[int] = None
        self._ignores: Dict[int, FrozenSet[str]] = {}
        self._ignore: Optional[FrozenSet[str]] = None

    # -- construction --------------------------------------------------------

    @property
    def next_addr(self) -> int:
        return self.base + len(self._insts) * INSTRUCTION_BYTES

    def label(self, name: str) -> "ProgramBuilder":
        if name in self._labels:
            if self._labels[name] == self.next_addr:
                return self  # e.g. ``.func f`` directly followed by ``f:``
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = self.next_addr
        return self

    def func(self, name: str) -> "ProgramBuilder":
        """Open a function; it spans until the next ``func`` or ``build``."""
        self._close_function()
        self._functions.append({"name": name, "lo": self.next_addr})
        if name not in self._labels:
            self.label(name)
        return self

    def _close_function(self) -> None:
        if self._functions and "hi" not in self._functions[-1]:
            self._functions[-1]["hi"] = self.next_addr

    def entry(self, label: str) -> "ProgramBuilder":
        self._entry_label = label
        return self

    def word(self, addr: int, value: float) -> "ProgramBuilder":
        """Set an initial data-memory word."""
        self._data[addr] = value
        return self

    def set_line(self, line_no: Optional[int]) -> "ProgramBuilder":
        """Tag subsequently emitted instructions with a source line."""
        self._line = line_no
        return self

    def set_ignores(self,
                    rules: Optional[FrozenSet[str]]) -> "ProgramBuilder":
        """Tag subsequently emitted instructions with lint suppressions
        (rule ids; ``"*"`` suppresses every rule).  ``None`` clears."""
        self._ignore = rules
        return self

    def emit(self, op: Op, rd: Optional[int] = None,
             sources: tuple = (), imm: int = 0,
             target: Optional[str] = None) -> Instruction:
        """Append an instruction; *target* is a label for control flow."""
        inst = Instruction(op, rd, tuple(sources), imm, self.next_addr)
        self._insts.append(inst)
        if self._line is not None:
            # Keyed by address: the pending-branch rebuild in build()
            # replaces instructions in place at the same address.
            self._lines[inst.addr] = self._line
        if self._ignore is not None:
            self._ignores[inst.addr] = self._ignore
        if target is not None:
            self._pending.append(_PendingBranch(len(self._insts) - 1, target))
        return inst

    # -- finalisation ----------------------------------------------------------

    def build(self) -> Program:
        self._close_function()
        for pending in self._pending:
            if pending.label not in self._labels:
                raise ValueError(f"undefined label {pending.label!r}")
            inst = self._insts[pending.index]
            self._insts[pending.index] = Instruction(
                inst.op, inst.rd, inst.sources,
                self._labels[pending.label], inst.addr)
        self._pending.clear()
        functions = [FunctionSymbol(f["name"], f["lo"], f["hi"])
                     for f in self._functions]
        if self._entry_label is not None:
            entry = self._labels[self._entry_label]
        elif functions:
            entry = functions[0].lo
        else:
            entry = self.base
        return Program(list(self._insts), functions, entry,
                       dict(self._labels), dict(self._data), self.name,
                       dict(self._lines), dict(self._ignores))
