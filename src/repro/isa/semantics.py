"""Functional semantics of the ISA.

The out-of-order core is *execute-at-execute*: when a dynamic instruction
reaches its functional unit, :func:`evaluate` computes its architectural
effect (result value, branch outcome, effective address) from the operand
values.  Keeping semantics separate from timing keeps both sides simple
and independently testable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from .instruction import Instruction
from .opcodes import Op

_MASK64 = (1 << 64) - 1

#: Signed 64-bit result range.  The abstract interpreter
#: (:mod:`repro.lint.absint`) shares these with :func:`to_signed` so
#: its overflow handling can never drift from the concrete wrapping
#: below.
INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1


def _to_signed(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


def to_signed(value: int) -> int:
    """Wrap an integer to the signed 64-bit range (public alias used by
    the abstract interpreter's transfer functions)."""
    return _to_signed(value)


@dataclass
class ExecResult:
    """Outcome of functionally executing one instruction."""

    #: Result value to write to the destination register (if any).
    value: Optional[float] = None
    #: For control-flow instructions: was the branch taken?
    taken: bool = False
    #: For taken control flow: the target address.
    target: Optional[int] = None
    #: For memory instructions: the effective address.
    eff_addr: Optional[int] = None
    #: For stores/atomics: the value to write to memory.
    store_value: Optional[float] = None


_INT_ALU: dict = {
    Op.ADD: lambda a, b: a + b,
    Op.SUB: lambda a, b: a - b,
    Op.AND: lambda a, b: int(a) & int(b),
    Op.OR: lambda a, b: int(a) | int(b),
    Op.XOR: lambda a, b: int(a) ^ int(b),
    Op.SLL: lambda a, b: int(a) << (int(b) & 63),
    Op.SRL: lambda a, b: (int(a) & _MASK64) >> (int(b) & 63),
    Op.SLT: lambda a, b: int(a < b),
    Op.MUL: lambda a, b: int(a) * int(b),
}

_INT_IMM: dict = {
    Op.ADDI: lambda a, imm: a + imm,
    Op.ANDI: lambda a, imm: int(a) & imm,
    Op.ORI: lambda a, imm: int(a) | imm,
    Op.XORI: lambda a, imm: int(a) ^ imm,
    Op.SLLI: lambda a, imm: int(a) << (imm & 63),
    Op.SRLI: lambda a, imm: (int(a) & _MASK64) >> (imm & 63),
    Op.SLTI: lambda a, imm: int(a < imm),
}

_FP_ALU: dict = {
    Op.FADD: lambda a, b: a + b,
    Op.FSUB: lambda a, b: a - b,
    Op.FMUL: lambda a, b: a * b,
    Op.FMIN: lambda a, b: min(a, b),
    Op.FMAX: lambda a, b: max(a, b),
    Op.FEQ: lambda a, b: int(a == b),
    Op.FLT: lambda a, b: int(a < b),
    Op.FLE: lambda a, b: int(a <= b),
}

_BRANCH_COND: dict = {
    Op.BEQ: lambda a, b: a == b,
    Op.BNE: lambda a, b: a != b,
    Op.BLT: lambda a, b: a < b,
    Op.BGE: lambda a, b: a >= b,
}


def evaluate(inst: Instruction, operands: tuple,
             fflags: int = 0) -> ExecResult:
    """Functionally execute *inst* given its source *operands*.

    *operands* are the values of ``inst.sources`` in order.  *fflags* is
    the current floating-point status CSR value (read by ``frflags``).
    """
    op = inst.op

    if op in _INT_ALU:
        return ExecResult(value=_to_signed(int(_INT_ALU[op](*operands))))
    if op in _INT_IMM:
        return ExecResult(value=_to_signed(int(_INT_IMM[op](operands[0],
                                                            inst.imm))))
    if op is Op.LUI:
        return ExecResult(value=_to_signed(inst.imm << 12))
    if op in (Op.DIV, Op.REM):
        a, b = int(operands[0]), int(operands[1])
        if b == 0:
            return ExecResult(value=-1 if op is Op.DIV else a)
        quotient = int(a / b)  # trunc toward zero, as RISC-V requires
        if op is Op.DIV:
            return ExecResult(value=quotient)
        return ExecResult(value=a - b * quotient)

    if op in _FP_ALU:
        return ExecResult(value=_FP_ALU[op](*operands))
    if op is Op.FMADD:
        return ExecResult(value=operands[0] * operands[1] + operands[2])
    if op is Op.FDIV:
        divisor = operands[1]
        if divisor == 0:
            return ExecResult(value=math.inf if operands[0] >= 0
                              else -math.inf)
        return ExecResult(value=operands[0] / divisor)
    if op is Op.FSQRT:
        return ExecResult(value=math.sqrt(max(operands[0], 0.0)))
    if op is Op.FCVT_W_D:
        return ExecResult(value=int(operands[0]))
    if op is Op.FCVT_D_W:
        return ExecResult(value=float(operands[0]))
    if op is Op.FMV:
        return ExecResult(value=operands[0])

    if op in (Op.LW, Op.LD, Op.FLD):
        return ExecResult(eff_addr=int(operands[0]) + inst.imm)
    if op in (Op.SW, Op.SD, Op.FSD):
        return ExecResult(eff_addr=int(operands[0]) + inst.imm,
                          store_value=operands[1])
    if op is Op.AMOADD:
        return ExecResult(eff_addr=int(operands[0]) + inst.imm,
                          store_value=operands[1])

    if op in _BRANCH_COND:
        taken = bool(_BRANCH_COND[op](*operands))
        return ExecResult(taken=taken,
                          target=inst.imm if taken else inst.next_addr)
    if op is Op.JAL:
        return ExecResult(value=inst.next_addr, taken=True, target=inst.imm)
    if op is Op.JALR:
        return ExecResult(value=inst.next_addr, taken=True,
                          target=(int(operands[0]) + inst.imm) & ~1)

    if op is Op.FRFLAGS:
        return ExecResult(value=fflags)
    if op in (Op.FSFLAGS, Op.CSRRW):
        return ExecResult(value=fflags)

    # NOP, HALT, FENCE, SRET, ECALL: no architectural result here.
    return ExecResult()
