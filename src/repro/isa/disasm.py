"""Disassembler: render instructions back to assembly text.

The inverse of the assembler, used by reports (annotated profiles) and
by the round-trip property tests.  ``disassemble(assemble(text))``
re-assembles to an identical program.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .instruction import Instruction, Register
from .opcodes import Kind, Op, info_for
from .program import Program

_IMMEDIATE_OPS = frozenset({
    Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLLI, Op.SRLI, Op.SLTI, Op.LUI,
})


def format_instruction(inst: Instruction,
                       labels: Optional[Dict[int, str]] = None) -> str:
    """One instruction as assembly text (without its address)."""
    op = inst.op
    info = inst.info
    mnemonic = info.mnemonic
    labels = labels or {}

    def target() -> str:
        return labels.get(inst.imm, f"{inst.imm:#x}")

    if inst.kind is Kind.ATOMIC:
        return (f"{mnemonic} {Register.name(inst.rd)}, "
                f"{Register.name(inst.sources[1])}, "
                f"{inst.imm}({Register.name(inst.sources[0])})")
    if inst.is_load:
        return (f"{mnemonic} {Register.name(inst.rd)}, "
                f"{inst.imm}({Register.name(inst.sources[0])})")
    if inst.is_store:
        return (f"{mnemonic} {Register.name(inst.sources[1])}, "
                f"{inst.imm}({Register.name(inst.sources[0])})")
    if inst.is_branch:
        return (f"{mnemonic} {Register.name(inst.sources[0])}, "
                f"{Register.name(inst.sources[1])}, {target()}")
    if inst.kind is Kind.CALL:
        return f"{mnemonic} {Register.name(inst.rd)}, {target()}"
    if inst.kind is Kind.RETURN:
        return (f"{mnemonic} {Register.name(inst.rd)}, "
                f"{Register.name(inst.sources[0])}, {inst.imm}")

    parts: List[str] = []
    if info.writes_int or info.writes_fp:
        parts.append(Register.name(inst.rd))
    parts.extend(Register.name(reg) for reg in inst.sources)
    if op in _IMMEDIATE_OPS:
        parts.append(str(inst.imm))
    operands = ", ".join(parts)
    return f"{mnemonic} {operands}" if operands else mnemonic


def disassemble(program: Program, with_addresses: bool = False) -> str:
    """The whole program as assembly text.

    The output re-assembles (at the same base address) into a program
    with identical instructions, functions, labels, entry point and
    data.
    """
    addr_labels: Dict[int, str] = {}
    for name, addr in program.labels.items():
        addr_labels.setdefault(addr, name)

    func_starts = {f.lo: f.name for f in program.functions}
    entry_label = addr_labels.get(program.entry)
    lines: List[str] = []
    if entry_label:
        lines.append(f".entry {entry_label}")
    for inst in program.instructions:
        if inst.addr in func_starts:
            lines.append(f".func {func_starts[inst.addr]}")
        if inst.addr in addr_labels:
            lines.append(f"{addr_labels[inst.addr]}:")
        text = format_instruction(inst, addr_labels)
        prefix = f"{inst.addr:#08x}:  " if with_addresses else "    "
        lines.append(prefix + text)
    for addr in sorted(program.data):
        lines.append(f".data {addr:#x} {program.data[addr]}")
    return "\n".join(lines) + "\n"
