"""A simple sequential reference interpreter.

Executes a program one instruction at a time with no timing model.  Its
final architectural state (registers, memory, fflags) is the golden
reference the out-of-order core must match: the differential tests run
randomly generated programs through both and compare.  `frflags`,
`fsflags` and `fence` are architecturally transparent here (they only
have timing effects on the core), and unmapped memory reads return 0 --
matching a machine whose kernel installs zero-filled pages on demand.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .instruction import Register
from .program import Program
from .semantics import evaluate


class InterpreterError(RuntimeError):
    """Raised when the interpreted program misbehaves."""


class Interpreter:
    """Architectural-level executor for a :class:`Program`."""

    def __init__(self, program: Program):
        self.program = program
        self.regs: List = [0] * Register.TOTAL
        self.memory: Dict[int, float] = dict(program.data)
        self.fflags = 0
        self.pc = program.entry
        self.halted = False
        self.instructions_executed = 0

    def _read(self, reg: int):
        return 0 if reg == 0 else self.regs[reg]

    def step(self) -> None:
        inst = self.program.fetch(self.pc)
        if inst is None:
            raise InterpreterError(f"fell off text at {self.pc:#x}")
        operands = tuple(self._read(reg) for reg in inst.sources)
        result = evaluate(inst, operands, self.fflags)
        self.instructions_executed += 1

        if inst.is_halt:
            self.halted = True
            return
        if inst.op.value == "fsflags":
            self.fflags = int(operands[0])

        if inst.is_load and not inst.is_store:  # plain load
            value = self.memory.get(result.eff_addr, 0)
            if inst.rd is not None and inst.rd != 0:
                self.regs[inst.rd] = value
        elif inst.is_store and not inst.is_load:  # plain store
            self.memory[result.eff_addr] = result.store_value
        elif inst.is_load and inst.is_store:  # atomic
            old = self.memory.get(result.eff_addr, 0)
            self.memory[result.eff_addr] = old + operands[1]
            if inst.rd is not None and inst.rd != 0:
                self.regs[inst.rd] = old
        elif inst.rd is not None and inst.rd != 0 and \
                result.value is not None:
            self.regs[inst.rd] = result.value

        if inst.is_control and result.taken:
            self.pc = result.target
        else:
            self.pc = inst.next_addr

    def run(self, max_instructions: int = 1_000_000) -> "Interpreter":
        while not self.halted:
            if self.instructions_executed >= max_instructions:
                raise InterpreterError(
                    f"did not halt within {max_instructions} instructions")
            self.step()
        return self


def run_reference(program: Program,
                  max_instructions: int = 1_000_000) -> Interpreter:
    """Run *program* to completion on the reference interpreter."""
    return Interpreter(program).run(max_instructions)
