"""Static instruction model.

A :class:`Instruction` is one *static* instruction at a fixed address in a
program.  The out-of-order core creates lightweight *dynamic* instances
(micro-ops) that reference back to the static instruction; profilers always
attribute time to static instruction addresses, exactly as a hardware
profiler reports PC values.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .opcodes import Kind, Op, OpcodeInfo, Unit, info_for

#: Byte size of every instruction (RV64 without the C extension).
INSTRUCTION_BYTES = 4


class Register:
    """Architectural register name helpers.

    Registers are encoded as small integers: ``0..31`` are the integer
    registers ``x0..x31`` (with ``x0`` hard-wired to zero) and ``32..63``
    are the floating-point registers ``f0..f31``.
    """

    NUM_INT = 32
    NUM_FP = 32
    TOTAL = NUM_INT + NUM_FP

    @staticmethod
    def x(index: int) -> int:
        if not 0 <= index < Register.NUM_INT:
            raise ValueError(f"integer register index out of range: {index}")
        return index

    @staticmethod
    def f(index: int) -> int:
        if not 0 <= index < Register.NUM_FP:
            raise ValueError(f"fp register index out of range: {index}")
        return Register.NUM_INT + index

    @staticmethod
    def is_fp(reg: int) -> bool:
        return reg >= Register.NUM_INT

    @staticmethod
    def name(reg: int) -> str:
        if reg < Register.NUM_INT:
            return f"x{reg}"
        return f"f{reg - Register.NUM_INT}"

    @staticmethod
    def parse(text: str) -> int:
        text = text.strip().lower()
        if len(text) < 2 or text[0] not in "xf":
            raise ValueError(f"bad register name: {text!r}")
        index = int(text[1:])
        return Register.x(index) if text[0] == "x" else Register.f(index)


class Instruction:
    """One static instruction.

    Parameters
    ----------
    op:
        The opcode.
    rd:
        Destination register (encoded), or ``None``.
    sources:
        Tuple of encoded source registers.
    imm:
        Immediate value; for loads/stores this is the address offset, for
        branches/jumps the *resolved* target address (the assembler
        resolves labels before constructing instructions).
    addr:
        The instruction's address in the text segment.
    """

    __slots__ = ("op", "rd", "sources", "imm", "addr", "_info")

    def __init__(self, op: Op, rd: Optional[int] = None,
                 sources: Tuple[int, ...] = (), imm: int = 0,
                 addr: int = 0):
        self.op = op
        self.rd = rd
        self.sources = sources
        self.imm = imm
        self.addr = addr
        self._info = info_for(op)

    # -- metadata accessors -------------------------------------------------

    @property
    def info(self) -> OpcodeInfo:
        return self._info

    @property
    def unit(self) -> Unit:
        return self._info.unit

    @property
    def kind(self) -> Kind:
        return self._info.kind

    @property
    def latency(self) -> int:
        return self._info.latency

    @property
    def is_load(self) -> bool:
        return self._info.kind is Kind.LOAD or self._info.kind is Kind.ATOMIC

    @property
    def is_store(self) -> bool:
        return self._info.kind is Kind.STORE or self._info.kind is Kind.ATOMIC

    @property
    def is_mem(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_branch(self) -> bool:
        """Conditional branch."""
        return self._info.kind is Kind.BRANCH

    @property
    def is_control(self) -> bool:
        """Any instruction that can change control flow."""
        return self._info.kind in (Kind.BRANCH, Kind.JUMP, Kind.CALL,
                                   Kind.RETURN, Kind.SRET)

    @property
    def is_call(self) -> bool:
        return self._info.kind is Kind.CALL

    @property
    def is_return(self) -> bool:
        return self._info.kind is Kind.RETURN

    @property
    def is_jump(self) -> bool:
        """Unconditional direct jump (``jal`` with a discarded link)."""
        if self._info.kind is Kind.JUMP:
            return True
        return self._info.kind is Kind.CALL and (self.rd is None
                                                 or self.rd == 0)

    @property
    def can_fall_through(self) -> bool:
        """May execution continue at ``next_addr`` past this instruction?

        True for straight-line code, conditional branches (not-taken
        path) and calls (the callee eventually returns here); false for
        unconditional jumps, returns, ``halt`` and ``sret``.
        """
        kind = self._info.kind
        if kind in (Kind.HALT, Kind.SRET, Kind.JUMP):
            return False
        if kind is Kind.CALL:
            return not self.is_jump
        if kind is Kind.RETURN:
            # ``jalr`` with a live link register is an indirect call and
            # resumes here; ``jalr x0, ...`` is a return and does not.
            return self.rd is not None and self.rd != 0
        return True

    def static_targets(self) -> Tuple[int, ...]:
        """Statically-known control-transfer targets.

        Branch and ``jal`` targets are label immediates resolved by the
        assembler; indirect jumps (``jalr``) have none.
        """
        if self._info.kind in (Kind.BRANCH, Kind.JUMP, Kind.CALL):
            return (self.imm,)
        return ()

    @property
    def is_serializing(self) -> bool:
        return self._info.serializing

    @property
    def flushes_on_commit(self) -> bool:
        return self._info.flushes_on_commit

    @property
    def is_halt(self) -> bool:
        return self._info.kind is Kind.HALT

    @property
    def next_addr(self) -> int:
        return self.addr + INSTRUCTION_BYTES

    # -- misc ----------------------------------------------------------------

    def __repr__(self) -> str:
        ops = ", ".join(Register.name(s) for s in self.sources)
        rd = Register.name(self.rd) if self.rd is not None else "-"
        return (f"<{self.addr:#x}: {self.op.value} rd={rd} src=({ops}) "
                f"imm={self.imm}>")
