"""Dynamic instruction (micro-op) state.

A :class:`MicroOp` is one in-flight instance of a static instruction.  The
core allocates one per fetched instruction and threads it through the
fetch buffer, ROB, issue queues and LSU.  Plain attribute access on a
``__slots__`` class keeps the hot simulation loop fast.
"""

from __future__ import annotations

from typing import Optional

from ..isa.instruction import Instruction

_NOT_DONE = 1 << 60


class MicroOp:
    """One dynamic instruction."""

    __slots__ = (
        "inst", "seq", "fetch_cycle", "visible_cycle", "dispatch_cycle",
        "issue_cycle", "done_cycle", "commit_cycle", "bank",
        "executed", "issued", "result", "eff_addr", "store_value",
        "predicted_taken", "predicted_target", "actual_taken",
        "actual_target", "mispredicted", "fault_vpn", "order_violation",
        "squashed", "src_uops", "prediction", "draining",
    )

    def __init__(self, inst: Instruction, seq: int, fetch_cycle: int,
                 visible_cycle: int):
        self.inst = inst
        self.stamp(seq, fetch_cycle, visible_cycle)

    def stamp(self, seq: int, fetch_cycle: int,
              visible_cycle: int) -> None:
        """(Re-)initialize all dynamic state for a fresh fetch.

        The static ``inst`` reference is kept, which is what lets the
        core recycle retired uops from a per-PC free list
        (:class:`MicroOpPool`) instead of re-constructing them.
        """
        self.seq = seq
        self.fetch_cycle = fetch_cycle
        #: Cycle at which the decoded uop becomes visible to dispatch.
        self.visible_cycle = visible_cycle
        self.dispatch_cycle = -1
        self.issue_cycle = -1
        self.done_cycle = _NOT_DONE
        self.commit_cycle = -1
        self.bank = -1
        self.executed = False
        self.issued = False
        self.result: Optional[float] = None
        self.eff_addr: Optional[int] = None
        self.store_value: Optional[float] = None
        self.predicted_taken = False
        self.predicted_target: Optional[int] = None
        self.actual_taken = False
        self.actual_target: Optional[int] = None
        self.mispredicted = False
        #: Set when address translation faulted (page fault VPN).
        self.fault_vpn: Optional[int] = None
        #: Load executed before an older, conflicting store (mini-exception).
        self.order_violation = False
        self.squashed = False
        #: Per-source producer uops (``None`` = value from the register file).
        self.src_uops: tuple = ()
        #: The TAGE prediction object (for training at commit).
        self.prediction = None
        #: Committed store still draining through the write buffer; such
        #: a uop may not be recycled until the drain completes.
        self.draining = False

    @property
    def addr(self) -> int:
        return self.inst.addr

    def done_by(self, cycle: int) -> bool:
        """Has this uop finished execution by *cycle* (inclusive)?"""
        return self.executed and self.done_cycle <= cycle

    def __repr__(self) -> str:
        return (f"<uop #{self.seq} {self.inst.op.value}@{self.inst.addr:#x} "
                f"{'done' if self.executed else 'pending'}>")


class MicroOpPool:
    """Per-PC free lists of retired :class:`MicroOp` objects.

    Constructing a uop pays an allocation plus ~20 attribute stores;
    re-stamping a recycled one for the same PC keeps the static
    ``inst`` reference and skips the allocation.  The core releases
    uops once nothing can reference them any more (squashed uops
    immediately, committed uops once every older in-flight consumer
    has left the ROB) and acquires from the free list at fetch.
    """

    __slots__ = ("_free",)

    def __init__(self):
        self._free: dict = {}

    def acquire(self, inst: Instruction, seq: int, fetch_cycle: int,
                visible_cycle: int) -> MicroOp:
        free = self._free.get(inst.addr)
        if free:
            uop = free.pop()
            uop.stamp(seq, fetch_cycle, visible_cycle)
            return uop
        return MicroOp(inst, seq, fetch_cycle, visible_cycle)

    def release(self, uop: MicroOp) -> None:
        self._free.setdefault(uop.inst.addr, []).append(uop)
