"""Out-of-order core substrate (BOOM-style, Table 1 configuration)."""

from .branch import BranchTargetBuffer, Prediction, ReturnAddressStack, \
    TagePredictor
from .config import CoreConfig
from .core import (FAST_SIM, SIM_MODES, STEP_SIM, Core, CoreStats,
                   MaxCyclesExceeded, SimFastError, SimulationError)
from .machine import Machine
from .trace import (CommittedInst, CycleRecord, HeadEntry, TraceCollector,
                    TraceObserver, replay, shifted_record)
from .tracefile import (ChunkCarry, ChunkInfo, DEFAULT_CHUNK_CYCLES,
                        TraceIndex, TraceReaderV2, TraceReaderV3,
                        TraceWriter, TraceWriterV2, TraceWriterV3,
                        convert_trace, convert_v1_to_v2, open_reader,
                        read_chunk, read_index, read_trace,
                        replay_trace)
from .uop import MicroOp, MicroOpPool

__all__ = [
    "BranchTargetBuffer", "Prediction", "ReturnAddressStack",
    "TagePredictor", "CoreConfig", "Core", "CoreStats", "SimulationError",
    "MaxCyclesExceeded", "SimFastError", "STEP_SIM", "FAST_SIM",
    "SIM_MODES",
    "Machine", "CommittedInst", "CycleRecord", "HeadEntry",
    "TraceCollector", "TraceObserver", "replay", "MicroOp", "MicroOpPool",
    "ChunkCarry", "ChunkInfo", "DEFAULT_CHUNK_CYCLES", "TraceIndex",
    "TraceReaderV2", "TraceReaderV3", "TraceWriter", "TraceWriterV2",
    "TraceWriterV3", "convert_trace", "convert_v1_to_v2", "open_reader",
    "read_chunk", "read_index", "read_trace", "replay_trace",
    "shifted_record",
]
