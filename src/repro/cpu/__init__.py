"""Out-of-order core substrate (BOOM-style, Table 1 configuration)."""

from .branch import BranchTargetBuffer, Prediction, ReturnAddressStack, \
    TagePredictor
from .config import CoreConfig
from .core import Core, CoreStats, SimulationError
from .machine import Machine
from .trace import (CommittedInst, CycleRecord, HeadEntry, TraceCollector,
                    TraceObserver, replay)
from .tracefile import (ChunkCarry, ChunkInfo, DEFAULT_CHUNK_CYCLES,
                        TraceIndex, TraceReaderV2, TraceWriter,
                        TraceWriterV2, convert_v1_to_v2, read_chunk,
                        read_index, read_trace, replay_trace)
from .uop import MicroOp

__all__ = [
    "BranchTargetBuffer", "Prediction", "ReturnAddressStack",
    "TagePredictor", "CoreConfig", "Core", "CoreStats", "SimulationError",
    "Machine", "CommittedInst", "CycleRecord", "HeadEntry",
    "TraceCollector", "TraceObserver", "replay", "MicroOp",
    "ChunkCarry", "ChunkInfo", "DEFAULT_CHUNK_CYCLES", "TraceIndex",
    "TraceReaderV2", "TraceWriter", "TraceWriterV2", "convert_v1_to_v2",
    "read_chunk", "read_index", "read_trace", "replay_trace",
]
