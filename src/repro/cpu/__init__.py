"""Out-of-order core substrate (BOOM-style, Table 1 configuration)."""

from .branch import BranchTargetBuffer, Prediction, ReturnAddressStack, \
    TagePredictor
from .config import CoreConfig
from .core import Core, CoreStats, SimulationError
from .machine import Machine
from .trace import (CommittedInst, CycleRecord, HeadEntry, TraceCollector,
                    TraceObserver, replay)
from .tracefile import TraceWriter, read_trace, replay_trace
from .uop import MicroOp

__all__ = [
    "BranchTargetBuffer", "Prediction", "ReturnAddressStack",
    "TagePredictor", "CoreConfig", "Core", "CoreStats", "SimulationError",
    "Machine", "CommittedInst", "CycleRecord", "HeadEntry",
    "TraceCollector", "TraceObserver", "replay", "MicroOp",
    "TraceWriter", "read_trace", "replay_trace",
]
