"""Binary serialization of the commit-stage trace.

The paper's methodology streams a per-cycle trace out of FireSim and
processes it on the CPU side; re-running a new profiler configuration
does not require re-simulating.  This module provides the same record/
replay split for our simulator: :class:`TraceWriter` is a trace observer
that encodes every :class:`~repro.cpu.trace.CycleRecord` into a compact
binary stream, and :func:`read_trace` / :func:`replay_trace` reconstruct
the records and drive any set of observers over them.

Format (little-endian), one record per cycle:

* header byte: bit0 rob_empty, bit1 has_exception, bit2 ordering,
  bit3 has_dispatch_pc, bit4 has_rob_head;
* counts byte: low nibble = #committed, high nibble = #dispatched;
* u8 oldest_bank;
* u64 fetch_pc;
* optional u64 rob_head, u64 exception, u64 dispatch_pc;
* per committed entry: u64 addr, u8 (bank | mispredicted<<6 |
  flushes<<7);
* per dispatched entry: u64 addr.

Cycle numbers are implicit (records are dense from cycle 0), which is
what keeps the format compact.  A small file header records magic,
version and the ROB bank count.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Iterable, Iterator, List, Optional, Union

from .trace import CommittedInst, CycleRecord, HeadEntry, TraceObserver

MAGIC = b"TIPTRC01"

_U64 = struct.Struct("<Q")
_HDR = struct.Struct("<BBB")

_F_EMPTY = 1 << 0
_F_EXC = 1 << 1
_F_ORD = 1 << 2
_F_DISP_PC = 1 << 3
_F_HEAD = 1 << 4


class TraceWriter(TraceObserver):
    """Observer that serializes the trace to a binary stream."""

    def __init__(self, stream: BinaryIO, banks: int = 4):
        self.stream = stream
        self.banks = banks
        self.records_written = 0
        stream.write(MAGIC)
        stream.write(struct.pack("<B", banks))

    def on_cycle(self, record: CycleRecord) -> None:
        flags = 0
        if record.rob_empty:
            flags |= _F_EMPTY
        if record.exception is not None:
            flags |= _F_EXC
        if record.exception_is_ordering:
            flags |= _F_ORD
        if record.dispatch_pc is not None:
            flags |= _F_DISP_PC
        if record.rob_head is not None:
            flags |= _F_HEAD
        counts = (len(record.committed) & 0xF) | \
            ((len(record.dispatched) & 0xF) << 4)
        out = self.stream
        out.write(_HDR.pack(flags, counts, record.oldest_bank))
        out.write(_U64.pack(record.fetch_pc))
        if record.rob_head is not None:
            out.write(_U64.pack(record.rob_head))
        if record.exception is not None:
            out.write(_U64.pack(record.exception))
        if record.dispatch_pc is not None:
            out.write(_U64.pack(record.dispatch_pc))
        for commit in record.committed:
            out.write(_U64.pack(commit.addr))
            out.write(struct.pack(
                "<B", (commit.bank & 0x3F)
                | (0x40 if commit.mispredicted else 0)
                | (0x80 if commit.flushes else 0)))
        for addr in record.dispatched:
            out.write(_U64.pack(addr))
        self.records_written += 1

    def on_finish(self, final_cycle: int) -> None:
        self.stream.flush()


def read_trace(stream: BinaryIO) -> Iterator[CycleRecord]:
    """Iterate over the records of a serialized trace."""
    magic = stream.read(len(MAGIC))
    if magic != MAGIC:
        raise ValueError("not a TIP trace stream")
    banks = struct.unpack("<B", stream.read(1))[0]
    cycle = 0
    while True:
        header = stream.read(_HDR.size)
        if not header:
            return
        if len(header) < _HDR.size:
            raise ValueError("truncated trace record header")
        flags, counts, oldest_bank = _HDR.unpack(header)
        fetch_pc = _U64.unpack(stream.read(8))[0]
        rob_head = (_U64.unpack(stream.read(8))[0]
                    if flags & _F_HEAD else None)
        exception = (_U64.unpack(stream.read(8))[0]
                     if flags & _F_EXC else None)
        dispatch_pc = (_U64.unpack(stream.read(8))[0]
                       if flags & _F_DISP_PC else None)
        committed = []
        for _ in range(counts & 0xF):
            addr = _U64.unpack(stream.read(8))[0]
            meta = stream.read(1)[0]
            committed.append(CommittedInst(
                addr, meta & 0x3F, bool(meta & 0x40), bool(meta & 0x80)))
        dispatched = tuple(_U64.unpack(stream.read(8))[0]
                           for _ in range(counts >> 4))
        head_banks: List[Optional[HeadEntry]] = [None] * banks
        if rob_head is not None:
            head_banks[oldest_bank] = HeadEntry(rob_head, False)
        yield CycleRecord(
            cycle=cycle, committed=tuple(committed), rob_head=rob_head,
            rob_empty=bool(flags & _F_EMPTY), exception=exception,
            exception_is_ordering=bool(flags & _F_ORD),
            dispatched=dispatched, dispatch_pc=dispatch_pc,
            fetch_pc=fetch_pc, head_banks=tuple(head_banks),
            oldest_bank=oldest_bank)
        cycle += 1


def replay_trace(source: Union[BinaryIO, bytes, str],
                 *observers: TraceObserver) -> int:
    """Replay a serialized trace through *observers*; returns cycles."""
    if isinstance(source, (bytes, bytearray)):
        stream: BinaryIO = io.BytesIO(source)
    elif isinstance(source, str):
        stream = open(source, "rb")
    else:
        stream = source
    final_cycle = 0
    try:
        for record in read_trace(stream):
            final_cycle = record.cycle
            for observer in observers:
                observer.on_cycle(record)
    finally:
        if isinstance(source, str):
            stream.close()
    for observer in observers:
        observer.on_finish(final_cycle)
    return final_cycle + 1
