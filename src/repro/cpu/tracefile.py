"""Binary serialization of the commit-stage trace.

The paper's methodology streams a per-cycle trace out of FireSim and
processes it on the CPU side; re-running a new profiler configuration
does not require re-simulating.  This module provides the same record/
replay split for our simulator: :class:`TraceWriter` (format v1) and
:class:`TraceWriterV2` are trace observers that encode every
:class:`~repro.cpu.trace.CycleRecord` into a compact binary stream, and
:func:`read_trace` / :func:`replay_trace` reconstruct the records and
drive any set of observers over them.  :func:`read_trace` dispatches on
the version byte in the magic, so both formats replay transparently.

Per-record encoding (shared by both formats, little-endian):

* header byte: bit0 rob_empty, bit1 has_exception, bit2 ordering,
  bit3 has_dispatch_pc, bit4 has_rob_head;
* counts byte: low nibble = #committed, high nibble = #dispatched;
* u8 oldest_bank;
* u64 fetch_pc;
* optional u64 rob_head, u64 exception, u64 dispatch_pc;
* per committed entry: u64 addr, u8 (bank | mispredicted<<6 |
  flushes<<7);
* per dispatched entry: u64 addr.

Cycle numbers are implicit (records are dense), which is what keeps the
format compact.

Format v1 (``TIPTRC01``) is a flat stream: magic, banks byte, then one
record per cycle from cycle 0.

Format v2 (``TIPTRC02``) is *chunk-indexed* so a trace can be replayed
out-of-band by parallel workers (see :mod:`repro.parallel`):

* file header: magic, u8 banks, u8 flags (bit0: zlib-compressed
  payloads), u32 chunk_cycles (records per full chunk);
* a sequence of chunks, each ``CHUNK_HEADER`` (start cycle, record
  count, payload sizes, carried machine state) followed by the encoded
  records of ``chunk_cycles`` consecutive cycles (optionally zlib).

The carried state (:class:`ChunkCarry`) is everything a profiler needs
to *cold-start* at a chunk boundary exactly as if it had consumed the
whole prefix: the Offending Instruction Register mirror (address, flag,
flush kind), the last committed address, and whether the previous cycle
flushed (for the sanitizer's drain check).  All of it is derivable from
the trace prefix, so it is computed once at record time.

Format v3 (``TIPTRC03``) is *zero-copy columnar*: each chunk's payload
is the raw :class:`~repro.fastpath.block.CycleBlock` columns themselves
(flags bytes, oldest-bank bytes, ``array('I')`` prefix-sum bases,
packed-u64 optional/commit/dispatch columns and the commit-meta bytes),
each column 8-byte aligned with a per-column offset table in the chunk
header.  Decoding a v3 chunk is therefore a handful of ``memoryview``
casts over an ``mmap`` of the trace file -- no per-record Python loop
-- and forked shard workers that map the same file share its pages.
Everything is little-endian on disk; on big-endian hosts the reader
falls back to ``array.byteswap`` copies.  zlib compression stays
available as an opt-out that falls back to buffer copies.

:func:`convert_v1_to_v2` upgrades existing v1 traces losslessly;
:func:`convert_trace` re-encodes any version into any other (v1/v2/v3
round trips are byte-identical for matching chunk parameters).
"""

from __future__ import annotations

import io
import mmap
import os
import struct
import sys
import zlib
from array import array
from dataclasses import dataclass
from typing import (Any, BinaryIO, Iterator, List, Optional, Sequence,
                    Tuple, Union)

from .trace import CommittedInst, CycleRecord, HeadEntry, TraceObserver

MAGIC = b"TIPTRC01"
MAGIC_V2 = b"TIPTRC02"
MAGIC_V3 = b"TIPTRC03"

_LITTLE = sys.byteorder == "little"

#: Records per chunk in format v2 (one record per cycle).
DEFAULT_CHUNK_CYCLES = 4096

_U64 = struct.Struct("<Q")
_HDR = struct.Struct("<BBB")
#: v2 file header after the magic: banks, flags, chunk_cycles.
_FILE_HDR_V2 = struct.Struct("<BBI")
#: v2 chunk header: start_cycle, n_records, payload bytes, raw bytes,
#: carry flags, oir_flag, oir_kind, oir_addr, last_committed.
_CHUNK_HDR = struct.Struct("<QIIIBBBQQ")
#: v3 file header is the v2 header plus 2 pad bytes, so the first
#: chunk header lands on an 8-byte boundary (16 bytes with the magic).
_FILE_PAD_V3 = b"\x00\x00"
#: v3 chunk header (96 bytes, 8-aligned): start_cycle, n_records,
#: payload bytes (stored size), raw bytes (column-buffer size), carry
#: flags, oir_flag, oir_kind, pad, oir_addr, last_committed, then the
#: flattened column lengths (n_opt, n_commit, n_disp) and the 10
#: per-column byte offsets within the payload (see ``_COL_*``).
_CHUNK_HDR_V3 = struct.Struct("<QIIIBBBBQQ3I10I4x")

#: v3 column order inside a chunk payload.  u64 columns first, then
#: the u32 prefix-sum bases, then the byte columns; every column start
#: is padded to an 8-byte boundary.
(_COL_FETCH_PC, _COL_OPT_VALS, _COL_COMMIT_ADDR, _COL_DISP_ADDR,
 _COL_OPT_BASE, _COL_COMMIT_BASE, _COL_DISP_BASE, _COL_FLAGS,
 _COL_OLDEST, _COL_COMMIT_META) = range(10)

_F_EMPTY = 1 << 0
_F_EXC = 1 << 1
_F_ORD = 1 << 2
_F_DISP_PC = 1 << 3
_F_HEAD = 1 << 4

#: v2 file-header flags.
_FILE_F_ZLIB = 1 << 0

#: Carry flags.
_C_HAS_OIR = 1 << 0
_C_HAS_LAST = 1 << 1
_C_DRAIN = 1 << 2

#: OIR flag values carried per chunk (mirror the profilers' OIR flags).
OIR_NONE = 0
OIR_MISPREDICT = 1
OIR_FLUSH = 2
OIR_EXCEPTION = 3

#: OIR flush-kind codes (0 = none); map to
#: :class:`repro.core.samples.FlushKind` on the profiler side.
KIND_NONE = 0
KIND_MISPREDICT = 1
KIND_CSR = 2
KIND_EXCEPTION = 3
KIND_ORDERING = 4


@dataclass
class ChunkCarry:
    """Machine state carried into a chunk boundary.

    Restoring this state lets any profiler start consuming records at
    the chunk's first cycle with bit-identical behaviour to a serial
    replay of the whole prefix.
    """

    #: OIR mirror: youngest committing/excepting instruction address.
    oir_addr: Optional[int] = None
    #: OIR flag (``OIR_*``).
    oir_flag: int = OIR_NONE
    #: OIR flush kind (``KIND_*``).
    oir_kind: int = KIND_NONE
    #: Address of the last committed instruction (LCI state).
    last_committed: Optional[int] = None
    #: The record before the boundary flushed or excepted (the next
    #: cycle must commit nothing -- sanitizer invariant S005/S006).
    drain_pending: bool = False

    def update(self, record: CycleRecord) -> None:
        """Advance the carry past *record* (the OIR update unit)."""
        if record.committed:
            youngest = record.committed[-1]
            self.last_committed = youngest.addr
            self.oir_addr = youngest.addr
            if youngest.mispredicted:
                self.oir_flag = OIR_MISPREDICT
                self.oir_kind = KIND_MISPREDICT
            elif youngest.flushes:
                self.oir_flag = OIR_FLUSH
                self.oir_kind = KIND_CSR
            else:
                self.oir_flag = OIR_NONE
                self.oir_kind = KIND_NONE
        if record.exception is not None:
            self.oir_addr = record.exception
            self.oir_flag = OIR_EXCEPTION
            self.oir_kind = (KIND_ORDERING if record.exception_is_ordering
                             else KIND_EXCEPTION)
        self.drain_pending = (record.exception is not None
                              or any(c.flushes for c in record.committed))

    def copy(self) -> "ChunkCarry":
        return ChunkCarry(self.oir_addr, self.oir_flag, self.oir_kind,
                          self.last_committed, self.drain_pending)


def _carry_snapshots(carry: "ChunkCarry", records: Sequence[CycleRecord]
                     ) -> Optional[Tuple[List["ChunkCarry"],
                                         List["ChunkCarry"]]]:
    """Per-record carry snapshots for a periodic batch of *records*.

    Returns ``(transient, steady)`` -- the carry after record ``i`` of
    the first repeat (starting from *carry*) and of every later repeat
    -- or ``None`` when the carry does not reach a fixpoint after one
    period (possible only for a template with no commits, which the
    memoizer never emits); callers then fall back to per-cycle updates.
    """
    c = carry.copy()
    transient = []
    for record in records:
        c.update(record)
        transient.append(c.copy())
    steady = []
    for record in records:
        c.update(record)
        steady.append(c.copy())
    if steady[-1] != transient[-1]:
        return None
    return transient, steady


@dataclass
class ChunkInfo:
    """Location and metadata of one v2/v3 chunk."""

    start_cycle: int
    n_records: int
    #: File offset of the chunk payload (past the chunk header).
    offset: int
    payload_bytes: int
    raw_bytes: int
    carry: ChunkCarry
    #: v3 only: flattened column lengths ``(n_opt, n_commit, n_disp)``.
    counts: Optional[Tuple[int, int, int]] = None
    #: v3 only: per-column byte offsets within the raw payload, in
    #: ``_COL_*`` order.
    columns: Optional[Tuple[int, ...]] = None


@dataclass
class TraceIndex:
    """File-level metadata and the chunk directory of a v2/v3 trace."""

    banks: int
    compressed: bool
    chunk_cycles: int
    chunks: List[ChunkInfo]
    version: int = 2

    @property
    def total_records(self) -> int:
        return sum(chunk.n_records for chunk in self.chunks)


# -- per-record encoding (shared) ----------------------------------------------


def _encode_record(record: CycleRecord) -> bytes:
    flags = 0
    if record.rob_empty:
        flags |= _F_EMPTY
    if record.exception is not None:
        flags |= _F_EXC
    if record.exception_is_ordering:
        flags |= _F_ORD
    if record.dispatch_pc is not None:
        flags |= _F_DISP_PC
    if record.rob_head is not None:
        flags |= _F_HEAD
    counts = (len(record.committed) & 0xF) | \
        ((len(record.dispatched) & 0xF) << 4)
    parts = [_HDR.pack(flags, counts, record.oldest_bank),
             _U64.pack(record.fetch_pc)]
    if record.rob_head is not None:
        parts.append(_U64.pack(record.rob_head))
    if record.exception is not None:
        parts.append(_U64.pack(record.exception))
    if record.dispatch_pc is not None:
        parts.append(_U64.pack(record.dispatch_pc))
    for commit in record.committed:
        parts.append(_U64.pack(commit.addr))
        parts.append(struct.pack(
            "<B", (commit.bank & 0x3F)
            | (0x40 if commit.mispredicted else 0)
            | (0x80 if commit.flushes else 0)))
    for addr in record.dispatched:
        parts.append(_U64.pack(addr))
    return b"".join(parts)


def _decode_record(buf: bytes, pos: int, cycle: int,
                   banks: int) -> Tuple[CycleRecord, int]:
    """Decode one record from *buf* at *pos*; returns (record, new pos)."""
    end = pos + _HDR.size
    if end > len(buf):
        raise ValueError("truncated trace record header")
    flags, counts, oldest_bank = _HDR.unpack_from(buf, pos)
    pos = end

    def u64() -> int:
        nonlocal pos
        if pos + 8 > len(buf):
            raise ValueError("truncated trace record")
        value = _U64.unpack_from(buf, pos)[0]
        pos += 8
        return value

    fetch_pc = u64()
    rob_head = u64() if flags & _F_HEAD else None
    exception = u64() if flags & _F_EXC else None
    dispatch_pc = u64() if flags & _F_DISP_PC else None
    committed = []
    for _ in range(counts & 0xF):
        addr = u64()
        if pos >= len(buf):
            raise ValueError("truncated trace record")
        meta = buf[pos]
        pos += 1
        committed.append(CommittedInst(
            addr, meta & 0x3F, bool(meta & 0x40), bool(meta & 0x80)))
    dispatched = tuple(u64() for _ in range(counts >> 4))
    head_banks: List[Optional[HeadEntry]] = [None] * banks
    if rob_head is not None:
        head_banks[oldest_bank] = HeadEntry(rob_head, False)
    record = CycleRecord(
        cycle=cycle, committed=tuple(committed), rob_head=rob_head,
        rob_empty=bool(flags & _F_EMPTY), exception=exception,
        exception_is_ordering=bool(flags & _F_ORD),
        dispatched=dispatched, dispatch_pc=dispatch_pc,
        fetch_pc=fetch_pc, head_banks=tuple(head_banks),
        oldest_bank=oldest_bank)
    return record, pos


# -- format v1 ------------------------------------------------------------------


class TraceWriter(TraceObserver):
    """Observer that serializes the trace in the flat v1 format."""

    def __init__(self, stream: BinaryIO, banks: int = 4):
        self.stream = stream
        self.banks = banks
        self.records_written = 0
        stream.write(MAGIC)
        stream.write(struct.pack("<B", banks))

    def on_cycle(self, record: CycleRecord) -> None:
        self.stream.write(_encode_record(record))
        self.records_written += 1

    def on_stall_run(self, record: CycleRecord, count: int) -> None:
        # Encoded records carry no cycle number, so a stall run is
        # *count* copies of the same bytes.
        self.stream.write(_encode_record(record) * count)
        self.records_written += count

    def on_cycle_run(self, records: Sequence[CycleRecord],
                     repeats: int) -> None:
        # Cycle numbers are implicit, so every repeat of the period
        # serializes to the same bytes: encode once, multiply.
        if not records or repeats <= 0:
            return
        period = b"".join(_encode_record(r) for r in records)
        self.stream.write(period * repeats)
        self.records_written += len(records) * repeats

    def on_finish(self, final_cycle: int) -> None:
        self.stream.flush()


def _read_trace_v1(stream: BinaryIO, banks: int) -> Iterator[CycleRecord]:
    cycle = 0
    while True:
        header = stream.read(_HDR.size)
        if not header:
            return
        if len(header) < _HDR.size:
            raise ValueError("truncated trace record header")
        flags, counts, oldest_bank = _HDR.unpack(header)
        fetch_pc = _U64.unpack(stream.read(8))[0]
        rob_head = (_U64.unpack(stream.read(8))[0]
                    if flags & _F_HEAD else None)
        exception = (_U64.unpack(stream.read(8))[0]
                     if flags & _F_EXC else None)
        dispatch_pc = (_U64.unpack(stream.read(8))[0]
                       if flags & _F_DISP_PC else None)
        committed = []
        for _ in range(counts & 0xF):
            addr = _U64.unpack(stream.read(8))[0]
            meta = stream.read(1)[0]
            committed.append(CommittedInst(
                addr, meta & 0x3F, bool(meta & 0x40), bool(meta & 0x80)))
        dispatched = tuple(_U64.unpack(stream.read(8))[0]
                           for _ in range(counts >> 4))
        head_banks: List[Optional[HeadEntry]] = [None] * banks
        if rob_head is not None:
            head_banks[oldest_bank] = HeadEntry(rob_head, False)
        yield CycleRecord(
            cycle=cycle, committed=tuple(committed), rob_head=rob_head,
            rob_empty=bool(flags & _F_EMPTY), exception=exception,
            exception_is_ordering=bool(flags & _F_ORD),
            dispatched=dispatched, dispatch_pc=dispatch_pc,
            fetch_pc=fetch_pc, head_banks=tuple(head_banks),
            oldest_bank=oldest_bank)
        cycle += 1


# -- format v2 ------------------------------------------------------------------


class _AtomicWriterMixin:
    """Path-mode atomicity shared by the chunked trace writers.

    In path mode the writer targets a unique ``*.tmp`` sibling and only
    fsyncs + renames it over the destination on finish, so a killed
    ``repro record`` or cache fill never leaves a truncated trace at
    the destination path -- which readers would otherwise silently
    accept, because truncation at a chunk boundary is indistinguishable
    from end-of-trace.  Call :meth:`abort` to discard a partial
    path-mode write explicitly.
    """

    _path: Optional[str]
    _tmp_path: Optional[str]
    _closed: bool
    stream: BinaryIO

    def _open_dest(self, stream: Union[BinaryIO, str, "os.PathLike[str]"]
                   ) -> BinaryIO:
        self._path = None
        self._tmp_path = None
        self._closed = False
        if isinstance(stream, (str, os.PathLike)):
            self._path = os.fspath(stream)
            self._tmp_path = f"{self._path}.{os.getpid()}.tmp"
            stream = open(self._tmp_path, "wb")
        return stream

    def _finalize(self) -> None:
        self.stream.flush()
        if self._path is not None and not self._closed:
            self._closed = True
            os.fsync(self.stream.fileno())
            self.stream.close()
            os.replace(self._tmp_path, self._path)
            _fsync_dir(os.path.dirname(self._path))

    def abort(self) -> None:
        """Discard a partially-written path-mode trace.

        Closes and unlinks the temporary file; the destination path is
        never touched.  No-op in stream mode or after finishing.
        """
        if self._path is None or self._closed:
            return
        self._closed = True
        try:
            self.stream.close()
        finally:
            try:
                os.unlink(self._tmp_path)
            except OSError:
                pass


class TraceWriterV2(_AtomicWriterMixin, TraceObserver):
    """Observer that serializes the trace in the chunk-indexed v2 format.

    Records are buffered and flushed as chunks of *chunk_cycles*
    records; each chunk header stores the cycle range and the machine
    state carried into the chunk, so parallel workers can decode and
    replay any chunk range independently (:mod:`repro.parallel.shard`).

    *stream* may be an open binary stream or a filesystem path.  In
    path mode the writer is **atomic**: it writes to a unique ``*.tmp``
    sibling and only fsyncs + renames it over the destination in
    :meth:`on_finish`.  A killed ``repro record`` or cache fill
    therefore never leaves a truncated trace at the destination path --
    which readers would otherwise silently accept, because truncation
    at a chunk boundary is indistinguishable from end-of-trace.  Call
    :meth:`abort` to discard a partial path-mode write explicitly.
    """

    def __init__(self, stream: Union[BinaryIO, str, "os.PathLike[str]"],
                 banks: int = 4,
                 chunk_cycles: int = DEFAULT_CHUNK_CYCLES,
                 compress: bool = False):
        if chunk_cycles < 1:
            raise ValueError("chunk_cycles must be >= 1")
        self.stream = self._open_dest(stream)
        stream = self.stream
        self.banks = banks
        self.chunk_cycles = chunk_cycles
        self.compress = compress
        self.records_written = 0
        self.chunks_written = 0
        self._buffer: List[bytes] = []
        self._chunk_start = 0
        #: Carry as of the start of the buffered chunk.
        self._chunk_carry = ChunkCarry()
        #: Carry advanced past every record seen so far.
        self._carry = ChunkCarry()
        stream.write(MAGIC_V2)
        stream.write(_FILE_HDR_V2.pack(
            banks, _FILE_F_ZLIB if compress else 0, chunk_cycles))

    def on_cycle(self, record: CycleRecord) -> None:
        self._buffer.append(_encode_record(record))
        self._carry.update(record)
        self.records_written += 1
        if len(self._buffer) >= self.chunk_cycles:
            self._flush_chunk()

    def on_stall_run(self, record: CycleRecord, count: int) -> None:
        # One encode for the whole run: records carry no cycle number,
        # so every cycle of the run serializes to the same bytes, and
        # the carry update is idempotent for stall records (no commits,
        # no exception).
        encoded = _encode_record(record)
        self._carry.update(record)
        self.records_written += count
        buffer = self._buffer
        while count:
            space = self.chunk_cycles - len(buffer)
            take = count if count < space else space
            buffer.extend([encoded] * take)
            count -= take
            if len(buffer) >= self.chunk_cycles:
                self._flush_chunk()
                buffer = self._buffer

    def on_cycle_run(self, records: Sequence[CycleRecord],
                     repeats: int) -> None:
        # Encode each template record once and append byte strings by
        # whole periods; the chunk carry is restored from precomputed
        # snapshots at every chunk boundary the run crosses.
        n = len(records)
        if not n or repeats <= 0:
            return
        snapshots = _carry_snapshots(self._carry, records)
        if snapshots is None:
            super().on_cycle_run(records, repeats)
            return
        transient, steady = snapshots
        encoded = [_encode_record(r) for r in records]
        total = n * repeats
        buffer = self._buffer
        t = 0
        while t < total:
            space = self.chunk_cycles - len(buffer)
            take = min(space, total - t)
            i = t % n
            done = 0
            if i:
                done = min(take, n - i)
                buffer.extend(encoded[i:i + done])
            whole, tail = divmod(take - done, n)
            if whole:
                buffer.extend(encoded * whole)
            if tail:
                buffer.extend(encoded[:tail])
            t += take
            if len(buffer) >= self.chunk_cycles:
                last = t - 1
                snap = transient[last] if last < n else steady[last % n]
                self._carry = snap.copy()
                self._flush_chunk()
                buffer = self._buffer
        last = total - 1
        self._carry = (transient[last] if last < n
                       else steady[last % n]).copy()
        self.records_written += total

    def on_finish(self, final_cycle: int) -> None:
        if self._buffer:
            self._flush_chunk()
        self._finalize()

    def _flush_chunk(self) -> None:
        raw = b"".join(self._buffer)
        payload = zlib.compress(raw) if self.compress else raw
        carry = self._chunk_carry
        flags = 0
        if carry.oir_addr is not None:
            flags |= _C_HAS_OIR
        if carry.last_committed is not None:
            flags |= _C_HAS_LAST
        if carry.drain_pending:
            flags |= _C_DRAIN
        self.stream.write(_CHUNK_HDR.pack(
            self._chunk_start, len(self._buffer), len(payload), len(raw),
            flags, carry.oir_flag, carry.oir_kind,
            carry.oir_addr or 0, carry.last_committed or 0))
        self.stream.write(payload)
        self._chunk_start += len(self._buffer)
        self._buffer = []
        self._chunk_carry = self._carry.copy()
        self.chunks_written += 1


def _fsync_dir(dirname: str) -> None:
    """Fsync a directory so a rename into it survives a crash."""
    try:
        fd = os.open(dirname or ".", os.O_RDONLY)
    except OSError:
        return  # e.g. platforms without directory fds
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# -- format v3 ------------------------------------------------------------------


def _pack_u64(values: Sequence[int]) -> bytes:
    """Pack a sequence of u64s little-endian (column wire form)."""
    arr = array("Q", values)
    if not _LITTLE:
        arr.byteswap()
    if arr.itemsize != 8:  # pragma: no cover - exotic platforms
        return struct.pack("<%dQ" % len(values), *values)
    return arr.tobytes()


def _pack_u32(values: Sequence[int]) -> bytes:
    """Pack a sequence of u32s little-endian (prefix-base wire form)."""
    if isinstance(values, array) and values.typecode == "I" and _LITTLE \
            and values.itemsize == 4:
        return values.tobytes()
    arr = array("I", values)
    if not _LITTLE:
        arr.byteswap()
    if arr.itemsize != 4:  # pragma: no cover - exotic platforms
        return struct.pack("<%dI" % len(values), *values)
    return arr.tobytes()


def _cast_u64(view: memoryview, offset: int, count: int) -> Sequence[int]:
    """A u64 column as a zero-copy cast (byteswap copy on big-endian)."""
    sub = view[offset:offset + 8 * count]
    if len(sub) != 8 * count:
        raise ValueError("v3 column out of bounds")
    if _LITTLE:
        return sub.cast("Q")
    arr = array("Q")  # pragma: no cover - big-endian fallback
    arr.frombytes(sub.tobytes())
    arr.byteswap()
    return arr


def _cast_u32(view: memoryview, offset: int, count: int) -> Sequence[int]:
    """A u32 column as a zero-copy cast (byteswap copy on big-endian)."""
    sub = view[offset:offset + 4 * count]
    if len(sub) != 4 * count:
        raise ValueError("v3 column out of bounds")
    if _LITTLE:
        return sub.cast("I")
    arr = array("I")  # pragma: no cover - big-endian fallback
    arr.frombytes(sub.tobytes())
    arr.byteswap()
    return arr


def _serialize_block_columns(block: Any
                             ) -> Tuple[bytes, Tuple[int, ...],
                                        Tuple[int, int, int]]:
    """Serialize a :class:`CycleBlock`'s columns into one v3 payload.

    Returns ``(payload, column_offsets, (n_opt, n_commit, n_disp))``;
    every column start (and the total size) is padded to an 8-byte
    boundary so the payload can be decoded by pointer casts when the
    file offset itself is 8-aligned (which the v3 framing guarantees).
    """
    parts: List[bytes] = []
    offsets: List[int] = []
    pos = 0

    def add(data: bytes) -> None:
        nonlocal pos
        pad = -pos % 8
        if pad:
            parts.append(b"\x00" * pad)
            pos += pad
        offsets.append(pos)
        parts.append(data)
        pos += len(data)

    add(_pack_u64(block.fetch_pc))
    add(_pack_u64(block.opt_vals))
    add(_pack_u64(block.commit_addr))
    add(_pack_u64(block.disp_addr))
    add(_pack_u32(block.opt_base))
    add(_pack_u32(block.commit_base))
    add(_pack_u32(block.disp_base))
    add(bytes(block.flags))
    add(bytes(block.oldest_bank))
    add(bytes(block.commit_meta))
    pad = -pos % 8
    if pad:
        parts.append(b"\x00" * pad)
    return (b"".join(parts), tuple(offsets),
            (len(block.opt_vals), len(block.commit_addr),
             len(block.disp_addr)))


def _block_from_columns(view: memoryview, start_cycle: int,
                        n_records: int, banks: int,
                        counts: Tuple[int, int, int],
                        columns: Tuple[int, ...]) -> Any:
    """Build a :class:`CycleBlock` over a v3 column buffer, zero-copy."""
    from ..fastpath.block import CycleBlock
    n_opt, n_commit, n_disp = counts
    n = n_records
    total = len(view)
    for off in columns:
        if off > total:
            raise ValueError("v3 column out of bounds")
    flags = view[columns[_COL_FLAGS]:columns[_COL_FLAGS] + n]
    oldest = view[columns[_COL_OLDEST]:columns[_COL_OLDEST] + n]
    meta = view[columns[_COL_COMMIT_META]:
                columns[_COL_COMMIT_META] + n_commit]
    if len(flags) != n or len(oldest) != n or len(meta) != n_commit:
        raise ValueError("v3 column out of bounds")
    return CycleBlock(
        start_cycle, n, banks, flags, oldest,
        _cast_u64(view, columns[_COL_FETCH_PC], n),
        _cast_u64(view, columns[_COL_OPT_VALS], n_opt),
        _cast_u32(view, columns[_COL_OPT_BASE], n + 1),
        _cast_u32(view, columns[_COL_COMMIT_BASE], n + 1),
        _cast_u64(view, columns[_COL_COMMIT_ADDR], n_commit), meta,
        _cast_u32(view, columns[_COL_DISP_BASE], n + 1),
        _cast_u64(view, columns[_COL_DISP_ADDR], n_disp))


class TraceWriterV3(_AtomicWriterMixin, TraceObserver):
    """Observer that serializes the trace in the columnar v3 format.

    Buffers ``(record, count)`` runs and flushes chunks of
    *chunk_cycles* records whose payload **is** the chunk's
    :class:`~repro.fastpath.block.CycleBlock` columns, 8-byte aligned
    behind a per-column offset table, so readers decode by casting an
    ``mmap`` of the file instead of looping over records.  Carry state
    and atomic path-mode semantics match :class:`TraceWriterV2`.
    """

    def __init__(self, stream: Union[BinaryIO, str, "os.PathLike[str]"],
                 banks: int = 4,
                 chunk_cycles: int = DEFAULT_CHUNK_CYCLES,
                 compress: bool = False):
        if chunk_cycles < 1:
            raise ValueError("chunk_cycles must be >= 1")
        self.stream = self._open_dest(stream)
        self.banks = banks
        self.chunk_cycles = chunk_cycles
        self.compress = compress
        self.records_written = 0
        self.chunks_written = 0
        self._runs: List[Tuple[CycleRecord, int]] = []
        self._buffered = 0
        self._chunk_start = 0
        #: Carry as of the start of the buffered chunk.
        self._chunk_carry = ChunkCarry()
        #: Carry advanced past every record seen so far.
        self._carry = ChunkCarry()
        self.stream.write(MAGIC_V3)
        self.stream.write(_FILE_HDR_V2.pack(
            banks, _FILE_F_ZLIB if compress else 0, chunk_cycles))
        self.stream.write(_FILE_PAD_V3)

    def on_cycle(self, record: CycleRecord) -> None:
        self._runs.append((record, 1))
        self._buffered += 1
        self._carry.update(record)
        self.records_written += 1
        if self._buffered >= self.chunk_cycles:
            self._flush_chunk()

    def on_stall_run(self, record: CycleRecord, count: int) -> None:
        # One run entry per chunk the stall spans: columnarization
        # expands it by C-speed sequence multiplication.
        self._carry.update(record)
        self.records_written += count
        while count:
            space = self.chunk_cycles - self._buffered
            take = count if count < space else space
            self._runs.append((record, take))
            self._buffered += take
            count -= take
            if self._buffered >= self.chunk_cycles:
                self._flush_chunk()

    def on_cycle_run(self, records: Sequence[CycleRecord],
                     repeats: int) -> None:
        # The serialized columns carry no cycle numbers (the chunk
        # header provides the start cycle), so template records are
        # appended as-is, whole periods at a time via C-level list
        # multiplication; the chunk carry is restored from precomputed
        # snapshots at every chunk boundary the run crosses.
        n = len(records)
        if not n or repeats <= 0:
            return
        snapshots = _carry_snapshots(self._carry, records)
        if snapshots is None:
            super().on_cycle_run(records, repeats)
            return
        transient, steady = snapshots
        template = [(r, 1) for r in records]
        total = n * repeats
        t = 0
        while t < total:
            space = self.chunk_cycles - self._buffered
            take = min(space, total - t)
            i = t % n
            done = 0
            if i:
                done = min(take, n - i)
                self._runs.extend(template[i:i + done])
            whole, tail = divmod(take - done, n)
            if whole:
                self._runs.extend(template * whole)
            if tail:
                self._runs.extend(template[:tail])
            self._buffered += take
            t += take
            if self._buffered >= self.chunk_cycles:
                last = t - 1
                snap = transient[last] if last < n else steady[last % n]
                self._carry = snap.copy()
                self._flush_chunk()
        last = total - 1
        self._carry = (transient[last] if last < n
                       else steady[last % n]).copy()
        self.records_written += total

    def on_finish(self, final_cycle: int) -> None:
        if self._runs:
            self._flush_chunk()
        self._finalize()

    def _flush_chunk(self) -> None:
        from ..fastpath.block import CycleBlock
        block = CycleBlock.from_runs(self._runs, self.banks)
        raw, offsets, (n_opt, n_commit, n_disp) = \
            _serialize_block_columns(block)
        payload = zlib.compress(raw) if self.compress else raw
        carry = self._chunk_carry
        flags = 0
        if carry.oir_addr is not None:
            flags |= _C_HAS_OIR
        if carry.last_committed is not None:
            flags |= _C_HAS_LAST
        if carry.drain_pending:
            flags |= _C_DRAIN
        self.stream.write(_CHUNK_HDR_V3.pack(
            self._chunk_start, self._buffered, len(payload), len(raw),
            flags, carry.oir_flag, carry.oir_kind, 0,
            carry.oir_addr or 0, carry.last_committed or 0,
            n_opt, n_commit, n_disp, *offsets))
        self.stream.write(payload)
        pad = -len(payload) % 8
        if pad:
            # Keep the next chunk header 8-aligned even when zlib
            # produced an odd-sized payload.
            self.stream.write(b"\x00" * pad)
        self._chunk_start += self._buffered
        self._runs = []
        self._buffered = 0
        self._chunk_carry = self._carry.copy()
        self.chunks_written += 1


def _read_file_header(stream: BinaryIO):
    """Read the magic and header; returns (version, banks, compressed,
    chunk_cycles)."""
    magic = stream.read(len(MAGIC))
    if magic == MAGIC:
        banks = struct.unpack("<B", stream.read(1))[0]
        return 1, banks, False, 0
    if magic in (MAGIC_V2, MAGIC_V3):
        version = 2 if magic == MAGIC_V2 else 3
        size = _FILE_HDR_V2.size + (len(_FILE_PAD_V3) if version == 3
                                    else 0)
        header = stream.read(size)
        if len(header) < size:
            raise ValueError(f"truncated v{version} trace header")
        banks, flags, chunk_cycles = _FILE_HDR_V2.unpack_from(header)
        return version, banks, bool(flags & _FILE_F_ZLIB), chunk_cycles
    raise ValueError("not a TIP trace stream")


def _unpack_chunk_header(header: bytes) -> Tuple[int, int, int, int,
                                                 ChunkCarry]:
    (start_cycle, n_records, payload_bytes, raw_bytes, flags,
     oir_flag, oir_kind, oir_addr, last_committed) = \
        _CHUNK_HDR.unpack(header)
    carry = ChunkCarry(
        oir_addr=oir_addr if flags & _C_HAS_OIR else None,
        oir_flag=oir_flag, oir_kind=oir_kind,
        last_committed=last_committed if flags & _C_HAS_LAST else None,
        drain_pending=bool(flags & _C_DRAIN))
    return start_cycle, n_records, payload_bytes, raw_bytes, carry


def _unpack_chunk_header_v3(buf, pos: int = 0
                            ) -> Tuple[int, int, int, int, ChunkCarry,
                                       Tuple[int, int, int],
                                       Tuple[int, ...]]:
    fields = _CHUNK_HDR_V3.unpack_from(buf, pos)
    (start_cycle, n_records, payload_bytes, raw_bytes, flags,
     oir_flag, oir_kind, _pad, oir_addr, last_committed) = fields[:10]
    counts = fields[10:13]
    columns = fields[13:23]
    carry = ChunkCarry(
        oir_addr=oir_addr if flags & _C_HAS_OIR else None,
        oir_flag=oir_flag, oir_kind=oir_kind,
        last_committed=last_committed if flags & _C_HAS_LAST else None,
        drain_pending=bool(flags & _C_DRAIN))
    return (start_cycle, n_records, payload_bytes, raw_bytes, carry,
            counts, columns)


def _decode_chunk(payload: bytes, compressed: bool, raw_bytes: int,
                  start_cycle: int, n_records: int,
                  banks: int) -> List[CycleRecord]:
    raw = zlib.decompress(payload) if compressed else payload
    if len(raw) != raw_bytes:
        raise ValueError("chunk payload size mismatch")
    records = []
    pos = 0
    for i in range(n_records):
        record, pos = _decode_record(raw, pos, start_cycle + i, banks)
        records.append(record)
    if pos != len(raw):
        raise ValueError("trailing bytes in trace chunk")
    return records


def _read_trace_v2(stream: BinaryIO, banks: int, compressed: bool
                   ) -> Iterator[CycleRecord]:
    while True:
        header = stream.read(_CHUNK_HDR.size)
        if not header:
            return
        if len(header) < _CHUNK_HDR.size:
            raise ValueError("truncated chunk header")
        start_cycle, n_records, payload_bytes, raw_bytes, _carry = \
            _unpack_chunk_header(header)
        payload = stream.read(payload_bytes)
        if len(payload) < payload_bytes:
            raise ValueError("truncated chunk payload")
        for record in _decode_chunk(payload, compressed, raw_bytes,
                                    start_cycle, n_records, banks):
            yield record


def _read_trace_v3(stream: BinaryIO, banks: int, compressed: bool
                   ) -> Iterator[CycleRecord]:
    while True:
        header = stream.read(_CHUNK_HDR_V3.size)
        if not header:
            return
        if len(header) < _CHUNK_HDR_V3.size:
            raise ValueError("truncated chunk header")
        (start_cycle, n_records, payload_bytes, raw_bytes, _carry,
         counts, columns) = _unpack_chunk_header_v3(header)
        stored = payload_bytes + (-payload_bytes % 8)
        payload = stream.read(stored)
        if len(payload) < stored:
            raise ValueError("truncated chunk payload")
        raw = (zlib.decompress(payload[:payload_bytes]) if compressed
               else payload)
        if len(raw) != raw_bytes:
            raise ValueError("chunk payload size mismatch")
        block = _block_from_columns(memoryview(raw), start_cycle,
                                    n_records, banks, counts, columns)
        for record in block.records():
            yield record


# -- readers ---------------------------------------------------------------------


def _open_source(source: Union[BinaryIO, bytes, str]
                 ) -> Tuple[BinaryIO, bool]:
    """Returns (stream, owns) for bytes / path / stream sources."""
    if isinstance(source, (bytes, bytearray)):
        return io.BytesIO(source), True
    if isinstance(source, str):
        return open(source, "rb"), True
    return source, False


def read_trace(stream: BinaryIO) -> Iterator[CycleRecord]:
    """Iterate over the records of a serialized trace (v1, v2 or v3)."""
    version, banks, compressed, _chunk_cycles = _read_file_header(stream)
    if version == 1:
        return _read_trace_v1(stream, banks)
    if version == 2:
        return _read_trace_v2(stream, banks, compressed)
    return _read_trace_v3(stream, banks, compressed)


def _scan_index(stream: BinaryIO) -> TraceIndex:
    """Scan an open v2/v3 stream (positioned at 0) for its chunk
    directory.

    Only chunk headers are read; payloads are skipped, so indexing a
    large trace is cheap.  Raises :class:`ValueError` for v1 traces
    (convert them with :func:`convert_trace` first).
    """
    version, banks, compressed, chunk_cycles = _read_file_header(stream)
    if version == 1:
        raise ValueError(
            "trace is format v1: no chunk index (convert with "
            "convert_trace / `repro convert-trace`)")
    hdr = _CHUNK_HDR if version == 2 else _CHUNK_HDR_V3
    chunks: List[ChunkInfo] = []
    while True:
        header = stream.read(hdr.size)
        if not header:
            break
        if len(header) < hdr.size:
            raise ValueError("truncated chunk header")
        counts: Optional[Tuple[int, int, int]] = None
        columns: Optional[Tuple[int, ...]] = None
        if version == 2:
            start_cycle, n_records, payload_bytes, raw_bytes, carry = \
                _unpack_chunk_header(header)
            stored = payload_bytes
        else:
            (start_cycle, n_records, payload_bytes, raw_bytes, carry,
             counts, columns) = _unpack_chunk_header_v3(header)
            stored = payload_bytes + (-payload_bytes % 8)
        offset = stream.tell()
        chunks.append(ChunkInfo(start_cycle, n_records, offset,
                                payload_bytes, raw_bytes, carry,
                                counts, columns))
        stream.seek(stored, io.SEEK_CUR)
    return TraceIndex(banks, compressed, chunk_cycles, chunks, version)


def _scan_index_buffer(buf: memoryview) -> TraceIndex:
    """Scan an in-memory v3 trace buffer for its chunk directory."""
    if bytes(buf[:len(MAGIC_V3)]) != MAGIC_V3:
        raise ValueError("not a v3 TIP trace")
    banks, flags, chunk_cycles = _FILE_HDR_V2.unpack_from(buf,
                                                          len(MAGIC_V3))
    compressed = bool(flags & _FILE_F_ZLIB)
    pos = len(MAGIC_V3) + _FILE_HDR_V2.size + len(_FILE_PAD_V3)
    total = len(buf)
    chunks: List[ChunkInfo] = []
    while pos < total:
        if pos + _CHUNK_HDR_V3.size > total:
            raise ValueError("truncated chunk header")
        (start_cycle, n_records, payload_bytes, raw_bytes, carry,
         counts, columns) = _unpack_chunk_header_v3(buf, pos)
        offset = pos + _CHUNK_HDR_V3.size
        if offset + payload_bytes > total:
            raise ValueError("truncated chunk payload")
        chunks.append(ChunkInfo(start_cycle, n_records, offset,
                                payload_bytes, raw_bytes, carry,
                                counts, columns))
        pos = offset + payload_bytes + (-payload_bytes % 8)
    return TraceIndex(banks, compressed, chunk_cycles, chunks, 3)


def read_index(source: Union[BinaryIO, bytes, str]) -> TraceIndex:
    """Scan a v2/v3 trace and return its chunk directory."""
    stream, owns = _open_source(source)
    try:
        return _scan_index(stream)
    finally:
        if owns:
            stream.close()


class TraceReaderV2:
    """Open-once random-access reader over a chunk-indexed v2 trace.

    Opens the source a single time, scans the chunk directory, and
    serves chunk reads by seeking within the same open stream.  This is
    what shard workers use: the earlier :func:`read_chunk` helper
    reopens the trace file on *every* chunk read, which costs one
    ``open``/``close`` syscall pair per chunk and defeats OS readahead;
    a reader amortizes the open over the whole shard.

    Usable as a context manager::

        with TraceReaderV2(path) as reader:
            for chunk in reader.index.chunks:
                records = reader.chunk_records(chunk)
    """

    def __init__(self, source: Union[BinaryIO, bytes, str]):
        self._stream, self._owns = _open_source(source)
        try:
            # A caller (or a fork parent) may have consumed the stream
            # already; the chunk directory scan needs position 0 and
            # all later reads seek absolutely anyway.
            if not self._owns and self._stream.seekable():
                self._stream.seek(0)
            self.index = _scan_index(self._stream)
        except Exception:
            self.close()
            raise

    @property
    def banks(self) -> int:
        return self.index.banks

    def chunk_payload(self, chunk: ChunkInfo) -> bytes:
        """The raw (decompressed) record bytes of one chunk."""
        self._stream.seek(chunk.offset)
        payload = self._stream.read(chunk.payload_bytes)
        if len(payload) < chunk.payload_bytes:
            raise ValueError("truncated chunk payload")
        raw = zlib.decompress(payload) if self.index.compressed \
            else payload
        if len(raw) != chunk.raw_bytes:
            raise ValueError("chunk payload size mismatch")
        return raw

    def chunk_records(self, chunk: ChunkInfo) -> List[CycleRecord]:
        """Decode the records of one chunk."""
        raw = self.chunk_payload(chunk)
        records = []
        pos = 0
        for i in range(chunk.n_records):
            record, pos = _decode_record(raw, pos,
                                         chunk.start_cycle + i,
                                         self.index.banks)
            records.append(record)
        if pos != len(raw):
            raise ValueError("trailing bytes in trace chunk")
        return records

    def chunk_block(self, chunk: ChunkInfo) -> Any:
        """Decode one chunk into a columnar ``CycleBlock``."""
        from ..fastpath.block import decode_block
        return decode_block(self.chunk_payload(chunk), chunk.start_cycle,
                            chunk.n_records, self.index.banks)

    def records(self) -> Iterator[CycleRecord]:
        """Iterate over every record of the trace in cycle order."""
        for chunk in self.index.chunks:
            for record in self.chunk_records(chunk):
                yield record

    def close(self) -> None:
        if self._owns:
            self._stream.close()

    def __enter__(self) -> "TraceReaderV2":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class TraceReaderV3:
    """Zero-copy random-access reader over a columnar v3 trace.

    Path sources are ``mmap``-ed read-only: decoding a chunk is then a
    set of ``memoryview`` casts straight over the mapping -- the OS
    page cache is the only copy, and forked shard workers that open the
    same path share those pages.  ``bytes`` sources are viewed in
    place; stream sources are read into one buffer.  zlib-compressed
    traces fall back to one decompress-copy per chunk.

    Interface-compatible with :class:`TraceReaderV2` (``index``,
    ``banks``, ``chunk_records``, ``records``, context manager) plus
    :meth:`chunk_block` for columnar replay.
    """

    def __init__(self, source: Union[BinaryIO, bytes, str]):
        self._file: Optional[BinaryIO] = None
        self._mmap: Optional[mmap.mmap] = None
        self._closed = False
        if isinstance(source, str):
            self._file = open(source, "rb")
            try:
                self._mmap = mmap.mmap(self._file.fileno(), 0,
                                       access=mmap.ACCESS_READ)
                buffer: Union[mmap.mmap, bytes] = self._mmap
            except (ValueError, OSError):
                # Empty or unmappable file: fall back to a read copy.
                self._file.seek(0)
                buffer = self._file.read()
        elif isinstance(source, (bytes, bytearray)):
            buffer = bytes(source)
        else:
            if source.seekable():
                source.seek(0)
            buffer = source.read()
        self._view = memoryview(buffer)
        try:
            self.index = _scan_index_buffer(self._view)
        except Exception:
            self.close()
            raise

    @property
    def banks(self) -> int:
        return self.index.banks

    def chunk_raw(self, chunk: ChunkInfo) -> memoryview:
        """The chunk's raw column buffer (zero-copy when uncompressed)."""
        data = self._view[chunk.offset:chunk.offset + chunk.payload_bytes]
        if len(data) != chunk.payload_bytes:
            raise ValueError("truncated chunk payload")
        if self.index.compressed:
            raw = zlib.decompress(data)
            if len(raw) != chunk.raw_bytes:
                raise ValueError("chunk payload size mismatch")
            return memoryview(raw)
        if chunk.payload_bytes != chunk.raw_bytes:
            raise ValueError("chunk payload size mismatch")
        return data

    def chunk_block(self, chunk: ChunkInfo) -> Any:
        """The chunk as a columnar ``CycleBlock`` over the mapping."""
        assert chunk.counts is not None and chunk.columns is not None
        return _block_from_columns(self.chunk_raw(chunk),
                                   chunk.start_cycle, chunk.n_records,
                                   self.index.banks, chunk.counts,
                                   chunk.columns)

    def chunk_records(self, chunk: ChunkInfo) -> List[CycleRecord]:
        """Decode the records of one chunk."""
        block = self.chunk_block(chunk)
        return [block.record(i) for i in range(chunk.n_records)]

    def records(self) -> Iterator[CycleRecord]:
        """Iterate over every record of the trace in cycle order."""
        for chunk in self.index.chunks:
            for record in self.chunk_records(chunk):
                yield record

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._view.release()
        except BufferError:  # pragma: no cover - defensive
            pass
        if self._mmap is not None:
            try:
                self._mmap.close()
            except BufferError:
                # Live block views still reference the mapping; it is
                # unmapped when they are dropped.  The fd below closes
                # regardless (the mapping survives fd close).
                pass
        if self._file is not None:
            self._file.close()

    def __enter__(self) -> "TraceReaderV3":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


TraceReader = Union[TraceReaderV2, TraceReaderV3]


def open_reader(source: Union[BinaryIO, bytes, str]) -> TraceReader:
    """Open a random-access chunk reader, dispatching on the magic.

    Returns :class:`TraceReaderV3` for v3 traces and
    :class:`TraceReaderV2` for v2; raises :class:`ValueError` for v1
    (no chunk index -- callers fall back to the record stream).
    """
    if isinstance(source, (bytes, bytearray)):
        magic = bytes(source[:len(MAGIC)])
    elif isinstance(source, str):
        with open(source, "rb") as handle:
            magic = handle.read(len(MAGIC))
    else:
        if source.seekable():
            source.seek(0)
        magic = source.read(len(MAGIC))
        if source.seekable():
            source.seek(0)
    if magic == MAGIC_V3:
        return TraceReaderV3(source)
    return TraceReaderV2(source)


def read_chunk(source: Union[BinaryIO, bytes, str], index: TraceIndex,
               chunk: ChunkInfo) -> List[CycleRecord]:
    """Decode the records of one chunk located via *index*."""
    stream, owns = _open_source(source)
    try:
        stream.seek(chunk.offset)
        payload = stream.read(chunk.payload_bytes)
        if len(payload) < chunk.payload_bytes:
            raise ValueError("truncated chunk payload")
        return _decode_chunk(payload, index.compressed, chunk.raw_bytes,
                             chunk.start_cycle, chunk.n_records,
                             index.banks)
    finally:
        if owns:
            stream.close()


def replay_trace(source: Union[BinaryIO, bytes, str],
                 *observers: TraceObserver) -> int:
    """Replay a serialized trace through *observers*; returns cycles."""
    stream, owns = _open_source(source)
    final_cycle = 0
    try:
        for record in read_trace(stream):
            final_cycle = record.cycle
            for observer in observers:
                observer.on_cycle(record)
    finally:
        if owns:
            stream.close()
    for observer in observers:
        observer.on_finish(final_cycle)
    return final_cycle + 1


def convert_trace(source: Union[BinaryIO, bytes, str],
                  dest: Union[BinaryIO, str],
                  version: int = 3,
                  chunk_cycles: int = DEFAULT_CHUNK_CYCLES,
                  compress: bool = False) -> int:
    """Re-encode a trace of any version as format *version*.

    Every record is preserved losslessly, so conversion round trips
    (v2 -> v3 -> v2 with the same chunk parameters) are byte-identical:
    records are dense from cycle 0, which pins the chunking, and the
    carry state is recomputed deterministically.  Returns the number of
    records converted.
    """
    if version not in (1, 2, 3):
        raise ValueError(f"unknown trace format version: {version}")
    in_stream, owns_in = _open_source(source)
    out_stream: BinaryIO
    owns_out = False
    if isinstance(dest, str):
        out_stream = open(dest, "wb")
        owns_out = True
    else:
        out_stream = dest
    try:
        src_version, banks, src_compressed, _cc = \
            _read_file_header(in_stream)
        if src_version == 1:
            records = _read_trace_v1(in_stream, banks)
        elif src_version == 2:
            records = _read_trace_v2(in_stream, banks, src_compressed)
        else:
            records = _read_trace_v3(in_stream, banks, src_compressed)
        writer: TraceObserver
        if version == 1:
            writer = TraceWriter(out_stream, banks=banks)
        elif version == 2:
            writer = TraceWriterV2(out_stream, banks=banks,
                                   chunk_cycles=chunk_cycles,
                                   compress=compress)
        else:
            writer = TraceWriterV3(out_stream, banks=banks,
                                   chunk_cycles=chunk_cycles,
                                   compress=compress)
        final_cycle = 0
        for record in records:
            writer.on_cycle(record)
            final_cycle = record.cycle
        writer.on_finish(final_cycle)
        return writer.records_written
    finally:
        if owns_in:
            in_stream.close()
        if owns_out:
            out_stream.close()


def convert_v1_to_v2(source: Union[BinaryIO, bytes, str],
                     dest: Union[BinaryIO, str],
                     chunk_cycles: int = DEFAULT_CHUNK_CYCLES,
                     compress: bool = False) -> int:
    """Re-encode a v1 trace in the chunk-indexed v2 format.

    Kept for compatibility; :func:`convert_trace` is the generic form.
    """
    in_stream, owns_in = _open_source(source)
    try:
        magic = in_stream.read(len(MAGIC))
        if magic != MAGIC:
            raise ValueError("source trace is not format v1")
        if in_stream.seekable():
            in_stream.seek(0)
        else:  # pragma: no cover - non-seekable v1 sources
            raise ValueError("v1 source stream must be seekable")
        return convert_trace(in_stream, dest, version=2,
                             chunk_cycles=chunk_cycles,
                             compress=compress)
    finally:
        if owns_in:
            in_stream.close()
