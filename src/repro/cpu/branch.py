"""Branch prediction: a TAGE-style predictor, BTB and return-address stack.

The paper's BOOM core uses a 28 KB TAGE predictor.  We implement a compact
TAGE with a bimodal base table and three tagged tables with geometric
history lengths -- enough to predict loop-closing and correlated branches
well while genuinely mispredicting data-dependent branches, which is what
drives the Flushed-state behaviour the profilers must attribute.
"""

from __future__ import annotations

from typing import List, Optional


def _fold(value: int, bits: int) -> int:
    folded = 0
    mask = (1 << bits) - 1
    while value:
        folded ^= value & mask
        value >>= bits
    return folded


class _TaggedTable:
    """One TAGE component: tagged 3-bit counters with 2-bit usefulness."""

    def __init__(self, entries: int, history_length: int, tag_bits: int = 8):
        self.entries = entries
        self.history_length = history_length
        self.tag_bits = tag_bits
        self.tags: List[int] = [0] * entries
        self.counters: List[int] = [4] * entries  # 0..7, >=4 means taken
        self.useful: List[int] = [0] * entries
        self.valid: List[bool] = [False] * entries

    def index(self, pc: int, history: int) -> int:
        hist = history & ((1 << self.history_length) - 1)
        bits = max(self.entries.bit_length() - 1, 1)
        return (_fold(hist, bits) ^ (pc >> 2) ^ (pc >> 7)) % self.entries

    def tag(self, pc: int, history: int) -> int:
        hist = history & ((1 << self.history_length) - 1)
        return (_fold(hist, self.tag_bits) ^ (pc >> 2)) & \
            ((1 << self.tag_bits) - 1)


class Prediction:
    """One TAGE lookup result (allocated once per fetched branch)."""

    __slots__ = ("taken", "provider", "history")

    def __init__(self, taken: bool, provider: int, history: int = 0):
        self.taken = taken
        #: Which table provided the prediction (-1 = bimodal base).
        self.provider = provider
        #: Global history at prediction time (checkpointed so the
        #: update indexes the same table entries the lookup used).
        self.history = history

    def __repr__(self) -> str:
        return (f"Prediction(taken={self.taken}, "
                f"provider={self.provider}, history={self.history})")


class TagePredictor:
    """TAGE with a bimodal base and geometrically longer tagged tables."""

    HISTORY_LENGTHS = (5, 15, 44)

    def __init__(self, base_entries: int = 4096, tagged_entries: int = 1024):
        self.base: List[int] = [1] * base_entries  # 2-bit, >=2 taken
        self.tables = [_TaggedTable(tagged_entries, length)
                       for length in self.HISTORY_LENGTHS]
        self.history = 0
        self.lookups = 0
        self.mispredicts = 0

    # -- prediction ------------------------------------------------------------

    def predict(self, pc: int) -> Prediction:
        self.lookups += 1
        provider = -1
        taken = self.base[(pc >> 2) % len(self.base)] >= 2
        for i, table in enumerate(self.tables):
            idx = table.index(pc, self.history)
            if table.valid[idx] and table.tags[idx] == table.tag(pc, self.history):
                taken = table.counters[idx] >= 4
                provider = i
        return Prediction(taken, provider, self.history)

    # -- update ----------------------------------------------------------------

    def update(self, pc: int, taken: bool, prediction: Prediction) -> None:
        correct = prediction.taken == taken
        if not correct:
            self.mispredicts += 1

        history = prediction.history
        base_idx = (pc >> 2) % len(self.base)
        if prediction.provider >= 0:
            table = self.tables[prediction.provider]
            idx = table.index(pc, history)
            ctr = table.counters[idx]
            table.counters[idx] = min(ctr + 1, 7) if taken else max(ctr - 1, 0)
            if correct:
                table.useful[idx] = min(table.useful[idx] + 1, 3)
        else:
            ctr = self.base[base_idx]
            self.base[base_idx] = min(ctr + 1, 3) if taken else max(ctr - 1, 0)

        if not correct:
            self._allocate(pc, taken, prediction.provider, history)

        self.history = ((self.history << 1) | int(taken)) & ((1 << 64) - 1)

    def _allocate(self, pc: int, taken: bool, provider: int,
                  history: int) -> None:
        """On a mispredict, allocate in a longer-history table."""
        for i in range(provider + 1, len(self.tables)):
            table = self.tables[i]
            idx = table.index(pc, history)
            if not table.valid[idx] or table.useful[idx] == 0:
                table.valid[idx] = True
                table.tags[idx] = table.tag(pc, history)
                table.counters[idx] = 4 if taken else 3
                table.useful[idx] = 0
                return
            table.useful[idx] -= 1

    @property
    def accuracy(self) -> float:
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredicts / self.lookups


class BranchTargetBuffer:
    """Direct-mapped BTB with simple tag matching."""

    def __init__(self, entries: int = 512):
        self.entries = entries
        self._table: dict = {}

    def lookup(self, pc: int) -> Optional[int]:
        slot = self._table.get((pc >> 2) % self.entries)
        if slot is not None and slot[0] == pc:
            return slot[1]
        return None

    def insert(self, pc: int, target: int) -> None:
        self._table[(pc >> 2) % self.entries] = (pc, target)


class ReturnAddressStack:
    """A bounded return-address stack."""

    def __init__(self, entries: int = 16):
        self.entries = entries
        self._stack: List[int] = []

    def push(self, addr: int) -> None:
        if len(self._stack) >= self.entries:
            self._stack.pop(0)
        self._stack.append(addr)

    def pop(self) -> Optional[int]:
        return self._stack.pop() if self._stack else None

    def __len__(self) -> int:
        return len(self._stack)
