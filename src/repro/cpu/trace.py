"""Per-cycle commit-stage trace.

The paper modified FireSim to "trace out the instruction address and the
valid, commit, exception, flush, and mispredicted flags of the head
ROB-entry in each ROB bank every cycle" and modelled all profilers
out-of-band on that trace.  :class:`CycleRecord` is our equivalent.  The
core produces one record per cycle and hands it to every attached
:class:`TraceObserver`; records are transient, so arbitrarily long runs
need no trace storage.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class CommittedInst:
    """One instruction committed in a cycle, in program order."""

    __slots__ = ("addr", "bank", "mispredicted", "flushes")

    def __init__(self, addr: int, bank: int, mispredicted: bool,
                 flushes: bool):
        self.addr = addr
        self.bank = bank
        #: The instruction was a mispredicted branch.
        self.mispredicted = mispredicted
        #: The instruction flushed the pipeline at commit (CSR, sret).
        self.flushes = flushes

    def __repr__(self) -> str:
        flags = ("M" if self.mispredicted else "") + \
            ("F" if self.flushes else "")
        return f"<commit {self.addr:#x} bank={self.bank} {flags}>"


class HeadEntry:
    """Head-of-bank ROB entry as seen by TIP's sample-selection unit."""

    __slots__ = ("addr", "committing")

    def __init__(self, addr: int, committing: bool):
        self.addr = addr
        self.committing = committing


class CycleRecord:
    """Everything the profilers may observe about one clock cycle."""

    __slots__ = (
        "cycle", "committed", "rob_head", "rob_empty", "exception",
        "exception_is_ordering", "dispatched", "dispatch_pc", "fetch_pc",
        "head_banks", "oldest_bank",
    )

    def __init__(self, cycle: int,
                 committed: Sequence[CommittedInst],
                 rob_head: Optional[int],
                 rob_empty: bool,
                 exception: Optional[int],
                 exception_is_ordering: bool,
                 dispatched: Sequence[int],
                 dispatch_pc: Optional[int],
                 fetch_pc: int,
                 head_banks: Sequence[Optional[HeadEntry]],
                 oldest_bank: int):
        self.cycle = cycle
        #: Instructions committed this cycle, oldest first.
        self.committed = committed
        #: Address of the oldest in-flight instruction after commit.
        self.rob_head = rob_head
        #: ROB is empty at the end of this cycle.
        self.rob_empty = rob_empty
        #: Address of an instruction taking a precise exception this cycle.
        self.exception = exception
        #: The "exception" is a memory-ordering mini-exception (misc flush).
        self.exception_is_ordering = exception_is_ordering
        #: Addresses entering the ROB this cycle, oldest first.
        self.dispatched = dispatched
        #: Address at the dispatch stage (head of the fetch buffer).
        self.dispatch_pc = dispatch_pc
        #: The front-end's next fetch PC (what a software sample observes).
        self.fetch_pc = fetch_pc
        #: Per-bank head ROB entries (index = bank id), ``None`` if invalid.
        self.head_banks = head_banks
        #: Bank holding the oldest in-flight instruction.
        self.oldest_bank = oldest_bank

    def __repr__(self) -> str:
        return (f"<cycle {self.cycle}: commits={len(self.committed)} "
                f"head={self.rob_head and hex(self.rob_head)} "
                f"empty={self.rob_empty}>")


def shifted_record(record: CycleRecord, offset: int) -> CycleRecord:
    """A copy of *record* at ``record.cycle + offset``.

    All content fields are shared -- stall records carry only immutable
    tuples and ints -- so rematerializing a fast-forwarded run is one
    object allocation per cycle.
    """
    return CycleRecord(
        cycle=record.cycle + offset, committed=record.committed,
        rob_head=record.rob_head, rob_empty=record.rob_empty,
        exception=record.exception,
        exception_is_ordering=record.exception_is_ordering,
        dispatched=record.dispatched, dispatch_pc=record.dispatch_pc,
        fetch_pc=record.fetch_pc, head_banks=record.head_banks,
        oldest_bank=record.oldest_bank)


class TraceObserver:
    """Interface for out-of-band trace consumers (profilers, collectors)."""

    def on_cycle(self, record: CycleRecord) -> None:
        raise NotImplementedError

    def on_stall_run(self, record: CycleRecord, count: int) -> None:
        """Consume *count* consecutive cycles identical to *record*.

        The simulator's event-driven fast path (:mod:`repro.simfast`)
        emits whole stall regions -- cycles during which no pipeline
        stage makes progress -- as one call instead of *count*
        ``on_cycle`` calls.  *record* is the first cycle of the run;
        cycles ``record.cycle .. record.cycle + count - 1`` differ only
        in their cycle number.  The default rematerializes each cycle
        and falls back to :meth:`on_cycle`, so observers that never opt
        in behave identically; observers with a batch fast path (trace
        writers, the block assembler, the Oracle) override this.
        """
        self.on_cycle(record)
        for offset in range(1, count):
            self.on_cycle(shifted_record(record, offset))

    def on_cycle_run(self, records: Sequence[CycleRecord],
                     repeats: int) -> None:
        """Consume *repeats* periods identical to the *records* template.

        The steady-state loop memoizer (:mod:`repro.cpu.memo`) emits
        whole memoized loop iterations as one call instead of
        ``repeats * len(records)`` ``on_cycle`` calls.  *records* is one
        full period of consecutive cycles (dense: record ``j`` is at
        ``records[0].cycle + j``); repeat ``r`` covers cycles
        ``records[0].cycle + r*P .. records[0].cycle + (r+1)*P - 1``
        (``P = len(records)``), each cycle differing from its template
        record only in the cycle number.  The first repeat is the
        template itself, unshifted.  The default rematerializes every
        cycle and falls back to :meth:`on_cycle`, so observers that
        never opt in behave identically; observers with a batch fast
        path (trace writers, the block assembler, the Oracle, the
        sanitizer) override this.
        """
        period = len(records)
        for repeat in range(repeats):
            offset = repeat * period
            if offset:
                for record in records:
                    self.on_cycle(shifted_record(record, offset))
            else:
                for record in records:
                    self.on_cycle(record)

    def on_block(self, block) -> None:
        """Consume a :class:`~repro.fastpath.CycleBlock` of records.

        The block engine (:mod:`repro.fastpath`) hands observers whole
        chunks of consecutive cycles at once.  The default implementation
        materializes each record and falls back to :meth:`on_cycle`, so
        observers that never opt in behave identically under either
        engine; observers with a columnar fast path override this.
        """
        for record in block.records():
            self.on_cycle(record)

    def on_finish(self, final_cycle: int) -> None:
        """Called once when the simulation ends."""


class TraceCollector(TraceObserver):
    """Stores every record in memory -- for tests and small programs only."""

    def __init__(self):
        self.records: List[CycleRecord] = []
        self.final_cycle: Optional[int] = None

    def on_cycle(self, record: CycleRecord) -> None:
        self.records.append(record)

    def on_finish(self, final_cycle: int) -> None:
        self.final_cycle = final_cycle

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


def replay(records: Sequence[CycleRecord], *observers: TraceObserver) -> None:
    """Feed stored *records* through *observers* (testing helper)."""
    for record in records:
        for observer in observers:
            observer.on_cycle(record)
    final = records[-1].cycle if records else 0
    for observer in observers:
        observer.on_finish(final)
