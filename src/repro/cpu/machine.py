"""Machine: core + memory hierarchy + kernel, booted and ready to run.

This is the top-level simulation entry point::

    machine = Machine(program)
    machine.attach(profiler)
    stats = machine.run()
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..isa.program import Program
from ..kernel import Kernel
from ..mem.hierarchy import MemoryHierarchy
from .config import CoreConfig
from .core import STEP_SIM, Core, CoreStats, SimulationError
from .trace import TraceObserver


class Machine:
    """A booted single-core machine running *program* to completion.

    *perf_sampling* optionally enables real interrupt-driven sample
    collection (the Section 3.2 overhead experiment): a ``(period,
    payload_words)`` pair makes the core trap every *period* cycles to a
    generated handler that stores ``40 B + 8 * payload_words`` to the
    perf buffer and returns.
    """

    def __init__(self, program: Program,
                 config: Optional[CoreConfig] = None,
                 premapped_data: Optional[List[Tuple[int, int]]] = None,
                 perf_sampling: Optional[Tuple[int, int]] = None):
        self.config = config or CoreConfig.boom_4wide()
        self.kernel = Kernel()
        image = self.kernel.boot(program, premapped_data)

        perf_handler = None
        if perf_sampling is not None:
            from ..kernel.perf_handler import (PERF_BUFFER_BASE,
                                               PERF_BUFFER_BYTES,
                                               PERF_SAVE_BASE,
                                               build_perf_handler)
            period, payload_words = perf_sampling
            perf_handler = build_perf_handler(payload_words)
            image = image.merged_with(perf_handler)
            table = self.kernel.page_table
            table.map_range(perf_handler.text_lo, perf_handler.text_hi)
            table.map_range(PERF_SAVE_BASE, PERF_SAVE_BASE + 0x100)
            table.map_range(PERF_BUFFER_BASE,
                            PERF_BUFFER_BASE + PERF_BUFFER_BYTES)

        self.image = image
        self.hierarchy = MemoryHierarchy(self.config.memory,
                                         self.kernel.page_table)
        self.core = Core(self.image, self.config, self.hierarchy,
                         self.kernel)
        if perf_sampling is not None:
            from ..core.sampling import SampleSchedule
            self.core.sampling_schedule = SampleSchedule(perf_sampling[0])
            self.core.sampling_handler_entry = perf_handler.entry

    def attach(self, observer: TraceObserver) -> None:
        self.core.attach(observer)

    def run(self, max_cycles: int = 10_000_000, sim: str = STEP_SIM,
            paranoid: bool = False) -> CoreStats:
        return self.core.run(max_cycles, sim=sim, paranoid=paranoid)

    @property
    def stats(self) -> CoreStats:
        return self.core.stats
