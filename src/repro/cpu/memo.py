"""Steady-state loop memoization for the simulator cold path.

The event-driven stall fast-forward (:meth:`Core._quiet_until`) only
wins when the pipeline is provably idle, which leaves compute-bound
workloads -- tight loops that commit every cycle -- at step-simulation
speed.  This module closes that gap: when the *full* pipeline state
becomes periodic with period ``P`` cycles, whole loop iterations are
skipped at once while keeping the emitted trace, the profiles and the
core statistics bit-identical to single stepping.

The scheme has four phases:

1. **Detection.**  A rolling ring of the last stepped
   :class:`~repro.cpu.trace.CycleRecord` objects is scanned (throttled
   with exponential backoff) for the smallest period ``P`` such that
   the last two ``P``-cycle windows are identical record-by-record.

2. **Confirmation.**  A full microarchitectural fingerprint ``F1`` is
   taken -- every in-flight uop with *relative* timing fields but
   *absolute* effective addresses, queue occupancy shapes, the rename
   map, fetch state, and the complete branch-predictor/BTB/RAS
   contents -- then ``P`` further cycles are stepped, each checked
   against the template, and a second fingerprint ``F2`` is taken.
   ``F1 == F2`` proves the machine is on a limit cycle: the predictor
   and front end are at a fixpoint, and because the confirm window was
   hits-only (gated below), the cache/TLB recency state is too.

3. **Projection.**  The committed-instruction stream of one period is
   re-executed *functionally* (program order, via
   :func:`~repro.isa.semantics.evaluate`) from the architectural state
   at the end of confirmation, iterating forward iteration by
   iteration.  Every control-flow decision and every memory effective
   address is guarded against the template; the first mismatch is the
   data-dependent divergence point (e.g. the loop-closing branch
   finally falling through).  The number of safely skippable
   iterations ``K`` is then the divergence point minus a safety
   margin, further capped so the skip never crosses the next sampling
   interrupt or the ``max_cycles`` budget.

4. **Skip.**  The ``K`` iterations are emitted to observers as one
   batched :meth:`~repro.cpu.trace.TraceObserver.on_cycle_run` call,
   the architectural state (registers, memory) jumps to the projected
   values, the frozen in-flight uops are re-interpreted as their
   ``K``-iterations-later instances (results and future-relative
   timing fields patched), and all statistics counters advance by
   ``K`` times the measured per-period delta.

Soundness rests on counter gating at confirmation: zero exceptions,
flushes, cache/TLB misses, DRAM accesses and page walks in the window,
no live MSHRs, no draining stores, and no unissued uop reading a
committed producer.  Branch mispredicts *are* allowed as long as they
are part of the limit cycle -- a loop whose predictor mispredicts the
same internal branch every N iterations repeats its squash/refetch
machinery exactly once per period, which the record-by-record
confirmation and the fingerprint both verify; the mispredict counters
then advance by a fixed per-period delta like ``committed`` does.
Anything time-dependent that survives those gates is covered by the
fingerprint.  ``--paranoid`` replaces
the skip with single-stepping every cycle, checking each record
against the template and the final architectural state against the
projection, raising :class:`~repro.cpu.core.SimFastError` on any
divergence.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..isa.opcodes import Kind
from ..isa.semantics import evaluate
from .core import SimFastError
from .trace import CycleRecord, shifted_record
from .uop import _NOT_DONE

#: Longest period (in cycles) the detector will consider.
MAX_PERIOD = 512
#: Detection ring size: two full periods plus slack.
RING_SIZE = 2 * MAX_PERIOD + 8
#: Attempt throttle bounds (cycles between detection attempts).
MIN_BACKOFF = 64
MAX_BACKOFF = 8192
#: When a period *was* found but the instant was ineligible (wrong-path
#: uops in flight around a periodic mispredict, a draining store, ...),
#: the state is periodic and a clean instant exists somewhere in the
#: cycle: retry on the very next cycle -- each stepped cycle shifts the
#: phase by one -- until every phase of the period has been tried once
#: (bounded below), then fall back to exponential backoff.
MAX_PHASE_RETRIES = 128
#: Hard bound on functionally projected positions per attempt.
PROJECT_CAP = 1 << 20


def _rel(value: int, now: int) -> int:
    """Clamp a cycle field to skip-invariant form: past -> 0, the
    not-done sentinel preserved, future -> offset from *now*."""
    if value <= now:
        return 0
    if value >= _NOT_DONE:
        return -1
    return value - now


def _val_eq(a, b) -> bool:
    """Equality that treats NaN as equal to NaN (exact otherwise)."""
    return a == b or (a != a and b != b)


def _records_equal(a: CycleRecord, b: CycleRecord) -> bool:
    """Full content equality of two records, ignoring cycle numbers."""
    if (a.rob_head != b.rob_head or a.rob_empty != b.rob_empty
            or a.fetch_pc != b.fetch_pc
            or a.dispatch_pc != b.dispatch_pc
            or a.oldest_bank != b.oldest_bank
            or a.exception is not None or b.exception is not None
            or a.dispatched != b.dispatched
            or len(a.committed) != len(b.committed)):
        return False
    for x, y in zip(a.committed, b.committed):
        if (x.addr != y.addr or x.bank != y.bank
                or x.mispredicted != y.mispredicted
                or x.flushes != y.flushes):
            return False
    ha, hb = a.head_banks, b.head_banks
    if len(ha) != len(hb):
        return False
    for x, y in zip(ha, hb):
        if (x is None) != (y is None):
            return False
        if x is not None and (x.addr != y.addr
                              or x.committing != y.committing):
            return False
    return True


class LoopMemoizer:
    """Per-run steady-state detector and iteration skipper.

    Driven by :meth:`Core.run` in ``sim="fast"`` mode: ``after_step``
    is called after every single-stepped cycle, ``note_break`` whenever
    the stall fast-forward (or any other discontinuity) makes the ring
    non-contiguous.
    """

    def __init__(self, core, max_cycles: int, paranoid: bool = False):
        self.core = core
        self.max_cycles = max_cycles
        self.paranoid = paranoid
        self._ring: Deque[CycleRecord] = deque(maxlen=RING_SIZE)
        self._next_attempt = 0
        self._backoff = MIN_BACKOFF
        #: Smallest period worth trying: record-level periodicity can
        #: be a divisor of true state-level periodicity (e.g. a loop
        #: whose records repeat every iteration but whose predictor
        #: phase repeats every four), so fingerprint failures ratchet
        #: this up until the full period is found.
        self._min_period = 1
        self._phase_retries = 0
        self._confirming = False
        self._expected: List[CycleRecord] = []
        self._idx = 0
        self._t0 = 0
        self._f1 = None
        self._commits: List[tuple] = []
        self._stats0: Optional[tuple] = None
        self._hier0: Optional[list] = None

    # -- driver hooks ------------------------------------------------------------

    def note_break(self) -> None:
        """The cycle stream is discontinuous (stall fast-forward ran)."""
        self._reset_region()

    def _reset_region(self) -> None:
        self._ring.clear()
        self._min_period = 1
        self._phase_retries = 0
        self._backoff = MIN_BACKOFF  # new region: fresh chances
        if self._confirming:
            self._abort_confirm()

    def after_step(self) -> None:
        """Feed the record just stepped; may detect, confirm or skip."""
        record = self.core._last_record
        if record.exception is not None:
            self._reset_region()
            return
        self._ring.append(record)
        if self._confirming:
            self._confirm_step(record)
        elif self.core.cycle >= self._next_attempt:
            self._attempt()

    # -- phase 1: detection ------------------------------------------------------

    def _fail(self, ratchet_period: int = 0,
              phase_period: int = 0) -> None:
        if self._confirming:
            self._abort_confirm()
        if ratchet_period:
            self._min_period = ratchet_period + 1
        if phase_period and self._phase_retries < min(
                phase_period + 8, MAX_PHASE_RETRIES):
            # A period exists; only the sampled instant was ineligible.
            # Retry next cycle -- stepping shifts the phase by one, so
            # this sweeps every phase of the period for a clean instant
            # at the cost of one ring scan per cycle, far cheaper than
            # the simulation cycles a missed skip would step.
            self._phase_retries += 1
            self._next_attempt = self.core.cycle + 1
            return
        self._phase_retries = 0
        self._next_attempt = self.core.cycle + self._backoff
        self._backoff = min(self._backoff * 2, MAX_BACKOFF)

    def _abort_confirm(self) -> None:
        self._confirming = False
        self.core._commit_probe = None
        self._expected = []
        self._commits = []
        self._f1 = None

    def _attempt(self) -> None:
        seq = list(self._ring)
        period = self._find_period(seq)
        if period is None:
            self._fail()
            return
        expected = seq[-period:]
        commits = 0
        for rec in expected:
            for c in rec.committed:
                # Periodic mispredicted commits are part of the limit
                # cycle and fine; commit-time flushes redirect into the
                # kernel and are not.
                if c.flushes:
                    self._fail()
                    return
            commits += len(rec.committed)
        if commits == 0:
            self._fail()
            return
        fingerprint = self._fingerprint()
        if fingerprint is None:
            self._fail(phase_period=period)
            return
        # Enter confirmation: step one more full period, record by
        # record, with a commit probe capturing architectural effects.
        self._confirming = True
        self._expected = expected
        self._idx = 0
        self._t0 = self.core.cycle
        self._f1 = fingerprint
        self._commits = []
        self.core._commit_probe = self._probe_commit
        self._stats0 = self._stats_tuple()
        self._hier0 = self._hier_counters()

    def _find_period(self, seq: List[CycleRecord]) -> Optional[int]:
        n = len(seq)
        limit = min(MAX_PERIOD, (n - 1) // 2)
        last = seq[-1]
        for p in range(max(self._min_period, 1), limit + 1):
            cand = seq[-1 - p]
            if (cand.rob_head != last.rob_head
                    or cand.fetch_pc != last.fetch_pc
                    or len(cand.committed) != len(last.committed)):
                continue
            if all(_records_equal(seq[-i], seq[-i - p])
                   for i in range(1, p + 1)):
                return p
        return None

    # -- phase 2: confirmation ---------------------------------------------------

    def _probe_commit(self, uop) -> None:
        self._commits.append((uop.inst, uop.result, uop.eff_addr,
                              uop.store_value, uop.actual_taken))

    def _confirm_step(self, record: CycleRecord) -> None:
        expected = self._expected[self._idx]
        if record.cycle != self._t0 + self._idx or \
                not _records_equal(record, expected):
            self._fail()
            return
        self._idx += 1
        if self._idx == len(self._expected):
            self._finalize()

    def _stats_tuple(self) -> tuple:
        st = self.core.stats
        return (st.committed, st.fetched, st.branch_mispredicts,
                st.csr_flushes, st.exceptions, st.ordering_flushes,
                st.sampling_interrupts, tuple(st.commit_hist))

    def _hier_counters(self) -> list:
        """Snapshot every memory-side counter as (kind, obj, attr, val).

        ``zero`` counters must not move across the confirm window (any
        delta means time-dependent machinery was active and the window
        is not skippable); ``bump`` counters advance by a fixed amount
        per period and are multiplied out on a skip.
        """
        h = self.core.hierarchy
        out = []
        for cache in (h.l1i, h.l1d, h.l2, h.llc):
            s = cache.stats
            out.append(("bump", s, "accesses", s.accesses))
            out.append(("bump", s, "hits", s.hits))
            out.append(("zero", s, "misses", s.misses))
            out.append(("zero", s, "coalesced", s.coalesced))
            out.append(("zero", s, "mshr_stall_cycles",
                        s.mshr_stall_cycles))
            out.append(("zero", s, "prefetches", s.prefetches))
        out.append(("zero", h.dram, "accesses", h.dram.accesses))
        for tlbs in (h.itlb, h.dtlb):
            out.append(("bump", tlbs.l1, "hits", tlbs.l1.hits))
            out.append(("zero", tlbs.l1, "misses", tlbs.l1.misses))
            out.append(("zero", tlbs.l2, "hits", tlbs.l2.hits))
            out.append(("zero", tlbs.l2, "misses", tlbs.l2.misses))
        out.append(("zero", h.walker, "walks", h.walker.walks))
        predictor = self.core.predictor
        out.append(("bump", predictor, "lookups", predictor.lookups))
        out.append(("bump", predictor, "mispredicts",
                    predictor.mispredicts))
        return out

    def _fingerprint(self) -> Optional[tuple]:
        """The complete skip-relevant machine state, or ``None`` if the
        current state is ineligible for memoization.

        Architectural *values* (registers, memory, results) are
        deliberately excluded -- they advance every iteration and are
        handled by projection; everything else that can influence
        future timing or control must be here.
        """
        core = self.core
        if (core._interrupt_pending or core._in_trap or core.halted
                or core.serialize_uop is not None or core._store_drains):
            return None
        rob = core.rob
        if not rob:
            return None
        for uop in core.store_queue:
            if uop.commit_cycle >= 0:
                return None  # committed store awaiting drain
        inflight = list(rob) + list(core.fetch_buffer)
        now = core.cycle
        pos = {}
        items: List[tuple] = []
        for i, uop in enumerate(inflight):
            pos[id(uop)] = i
        for i, uop in enumerate(inflight):
            if (uop.squashed or uop.mispredicted or uop.order_violation
                    or uop.fault_vpn is not None
                    or uop.inst.kind is Kind.ATOMIC):
                return None
            if not uop.executed:
                for producer in uop.src_uops:
                    if producer is not None and \
                            producer.commit_cycle >= 0:
                        # Would read a committed value the skip cannot
                        # re-interpret; rare outside pipeline warm-up.
                        return None
            prediction = uop.prediction
            items.append((
                uop.inst.addr, uop.bank, uop.executed, uop.issued,
                _rel(uop.fetch_cycle, now), _rel(uop.visible_cycle, now),
                _rel(uop.dispatch_cycle, now),
                _rel(uop.issue_cycle, now), _rel(uop.done_cycle, now),
                uop.predicted_taken, uop.predicted_target,
                uop.actual_taken, uop.actual_target, uop.eff_addr,
                None if prediction is None else
                (prediction.taken, prediction.provider,
                 prediction.history),
                tuple(-1 if p is None else pos.get(id(p), -2)
                      for p in uop.src_uops),
            ))
        for queue in (core.int_iq, core.mem_iq, core.fp_iq,
                      core.load_queue, core.store_queue,
                      core._resolve_queue):
            shape = []
            for uop in queue:
                p = pos.get(id(uop))
                if p is None:
                    return None
                shape.append(p)
            items.append(tuple(shape))
        producers = []
        for reg, uop in core.producers.items():
            p = pos.get(id(uop))
            if p is None:
                return None
            producers.append((reg, p))
        producers.sort()
        predictor = core.predictor
        tables = tuple(
            (tuple(t.tags), tuple(t.counters), tuple(t.useful),
             tuple(t.valid)) for t in predictor.tables)
        return (
            len(rob), len(core.fetch_buffer), tuple(items),
            tuple(producers), core.fetch_pc,
            _rel(core.fetch_ready_cycle, now), core._last_fetch_block,
            core._next_bank, core.outstanding_branches, core.fflags,
            tuple(predictor.base), tables, predictor.history,
            tuple(sorted(core.btb._table.items())),
            tuple(core.ras._stack),
        )

    # -- phase 3+4: finalize (gate, project, skip) -------------------------------

    def _finalize(self) -> None:
        core = self.core
        core._commit_probe = None
        self._confirming = False
        period = len(self._expected)

        fingerprint = self._fingerprint()
        if fingerprint is None or fingerprint != self._f1:
            self._fail(ratchet_period=period)
            return

        stats1 = self._stats_tuple()
        stats0 = self._stats0
        # committed/fetched/mispredicts advance per period; every
        # flush-like counter must not move at all.
        if any(stats1[i] != stats0[i] for i in range(3, 7)):
            self._fail()
            return
        d_committed = stats1[0] - stats0[0]
        d_fetched = stats1[1] - stats0[1]
        d_mispredicts = stats1[2] - stats0[2]
        d_hist = [b - a for a, b in zip(stats0[7], stats1[7])]

        bumps = []
        for kind, obj, attr, before in self._hier0:
            delta = getattr(obj, attr) - before
            if kind == "zero":
                if delta:
                    self._fail()
                    return
            elif delta:
                bumps.append((obj, attr, delta))
        now = core.cycle
        hierarchy = core.hierarchy
        for cache in (hierarchy.l1i, hierarchy.l1d, hierarchy.l2,
                      hierarchy.llc):
            for mshr in cache._mshrs:
                if mshr.ready > now:
                    self._fail()
                    return
        if hierarchy.dram._next_free > now:
            self._fail()
            return

        commits = self._commits
        if len(commits) != d_committed or d_committed == 0:
            self._fail()
            return
        flat = 0
        for rec in self._expected:
            for c in rec.committed:
                if commits[flat][0].addr != c.addr:
                    self._fail()
                    return
                flat += 1

        allowed_k = self._allowed_k(period, len(commits))
        if allowed_k < 1:
            self._fail()
            return
        inflight = list(core.rob) + list(core.fetch_buffer)
        plan = self._project(commits, inflight, allowed_k)
        if plan is None or plan["k"] < 1:
            self._fail(phase_period=period)
            return

        if self.paranoid:
            self._paranoid_skip(plan, period, d_committed, d_fetched,
                                d_mispredicts, d_hist)
        else:
            self._apply_skip(plan, period, inflight, d_committed,
                             d_fetched, d_mispredicts, d_hist, bumps)

        # Re-arm immediately: the machine is still (briefly) periodic,
        # so seed the ring with the last two skipped periods and retry
        # without backoff.
        k, expected = plan["k"], self._expected
        self._ring.clear()
        for rec in expected:
            self._ring.append(shifted_record(rec, k * period))
        for rec in expected:
            self._ring.append(shifted_record(rec, (k + 1) * period))
        self._backoff = MIN_BACKOFF
        self._next_attempt = core.cycle
        self._min_period = period
        self._phase_retries = 0
        self._abort_confirm()

    def _allowed_k(self, period: int, length: int) -> int:
        core = self.core
        now = core.cycle
        k = (self.max_cycles - now) // period
        schedule = core.sampling_schedule
        if schedule is not None:
            k = min(k, (schedule.next_sample - now) // period)
        k = min(k, (PROJECT_CAP - len(core.rob)
                    - len(core.fetch_buffer)) // length)
        return k

    # -- functional projection ---------------------------------------------------

    def _project(self, commits: List[tuple], inflight: list,
                 allowed_k: int) -> Optional[dict]:
        """Re-execute the periodic commit stream functionally.

        Returns the skip plan (iteration count ``k``, the register
        file and memory overlay after ``k`` periods, and the per-
        position value window for patching in-flight uops) or ``None``
        when the window cannot be skipped safely.
        """
        core = self.core
        length = len(commits)
        n_inflight = len(inflight)
        insts = [c[0] for c in commits]
        addrs = [inst.addr for inst in insts]
        exp_taken = [c[4] for c in commits]
        exp_eff = [c[2] for c in commits]

        exp_succ: List[Optional[int]] = []
        for j, inst in enumerate(insts):
            nxt = addrs[(j + 1) % length]
            if inst.is_halt or inst.kind is Kind.ATOMIC:
                return None
            if inst.is_control:
                exp_succ.append(nxt)
            else:
                if inst.next_addr != nxt:
                    return None
                exp_succ.append(None)
        for i, uop in enumerate(inflight):
            if uop.inst.addr != addrs[i % length]:
                return None

        target = allowed_k * length + n_inflight
        regs = list(core.regs)
        fflags = core.fflags
        mem_get = core.memory.get
        overlay: dict = {}
        undo: Deque[tuple] = deque()
        window = n_inflight + 2 * length + 2
        values: List[Optional[tuple]] = [None] * window
        snapshots: dict = {}
        diverged = None
        j = 0
        while j < target:
            mod = j % length
            if mod == 0:
                snapshots[j] = regs[:]
                snapshots.pop(j - 2 * (window + length), None)
                old = j - window
                while undo and undo[0][0] < old:
                    undo.popleft()
            inst = insts[mod]
            result = evaluate(
                inst,
                tuple(regs[r] if r else 0 for r in inst.sources),
                fflags)
            value = result.value
            store_value = None
            if inst.is_control:
                if result.taken != exp_taken[mod] or \
                        result.target != exp_succ[mod]:
                    diverged = j
                    break
            if inst.is_mem:
                eff = result.eff_addr
                if eff != exp_eff[mod]:
                    diverged = j
                    break
                if inst.is_store:
                    undo.append((j, eff, eff in overlay,
                                 overlay.get(eff)))
                    overlay[eff] = result.store_value
                    store_value = result.store_value
                else:
                    value = overlay[eff] if eff in overlay \
                        else mem_get(eff, 0)
            if j < n_inflight:
                uop = inflight[j]
                if uop.executed and not (
                        _val_eq(uop.result, value)
                        and _val_eq(uop.store_value, store_value)
                        and (not inst.is_mem
                             or uop.eff_addr == exp_eff[mod])):
                    # The functional model disagrees with the machine
                    # about state it can directly see: never skip.
                    if self.paranoid:
                        raise SimFastError(
                            f"memoization projection diverges from "
                            f"in-flight uop at position {j} "
                            f"({inst.op.value}@{inst.addr:#x})")
                    return None
            values[j % window] = (value, store_value)
            rd = inst.rd
            if rd is not None and rd != 0:
                regs[rd] = value
            j += 1

        if diverged is not None:
            k = (diverged - n_inflight) // length - 1
            if k > allowed_k:
                k = allowed_k
        else:
            k = allowed_k
        if k < 1:
            return None
        boundary = k * length
        final_regs = snapshots.get(boundary)
        if final_regs is None:
            return None
        while undo and undo[-1][0] >= boundary:
            _, addr, had, old_value = undo.pop()
            if had:
                overlay[addr] = old_value
            else:
                overlay.pop(addr, None)
        return {"k": k, "boundary": boundary, "regs": final_regs,
                "overlay": overlay, "values": values, "window": window}

    # -- the skip ----------------------------------------------------------------

    def _emit(self, period: int, repeats: int) -> None:
        # The template records cover ``[t0 - P, t0)`` and confirmation
        # stepped (and emitted) ``[t0, t0 + P)``, so the batch starts
        # two periods past the template base.
        rebased = [shifted_record(r, 2 * period) for r in self._expected]
        for observer in self.core.observers:
            observer.on_cycle_run(rebased, repeats)

    def _apply_skip(self, plan: dict, period: int, inflight: list,
                    d_committed: int, d_fetched: int,
                    d_mispredicts: int, d_hist: List[int],
                    bumps: list) -> None:
        core = self.core
        k = plan["k"]
        skip = k * period
        now = core.cycle

        self._emit(period, k)

        core.regs[:] = plan["regs"]
        core.memory.update(plan["overlay"])

        boundary, values, window = \
            plan["boundary"], plan["values"], plan["window"]
        for i, uop in enumerate(inflight):
            if uop.executed:
                value, store_value = values[(boundary + i) % window]
                uop.result = value
                if uop.inst.is_store:
                    uop.store_value = store_value
            for attr in ("fetch_cycle", "visible_cycle",
                         "dispatch_cycle", "issue_cycle", "done_cycle"):
                v = getattr(uop, attr)
                if now < v < _NOT_DONE:
                    setattr(uop, attr, v + skip)
        if core.fetch_ready_cycle > now:
            core.fetch_ready_cycle += skip

        core.cycle = now + skip
        core._last_record = shifted_record(self._expected[-1],
                                           skip + period)

        stats = core.stats
        stats.committed += k * d_committed
        stats.fetched += k * d_fetched
        stats.branch_mispredicts += k * d_mispredicts
        hist = stats.commit_hist
        for i, d in enumerate(d_hist):
            if d:
                hist[i] += k * d
        stats.fast_forwarded += skip
        stats.steady_state_cycles += skip
        stats.steady_state_iterations += k
        for obj, attr, delta in bumps:
            setattr(obj, attr, getattr(obj, attr) + k * delta)

    def _paranoid_skip(self, plan: dict, period: int,
                       d_committed: int, d_fetched: int,
                       d_mispredicts: int, d_hist: List[int]) -> None:
        """Single-step the whole planned skip, checking everything."""
        core = self.core
        k = plan["k"]
        start = core.cycle
        stats0 = self._stats_tuple()
        for repeat in range(1, k + 1):
            for offset, template in enumerate(self._expected):
                expected_cycle = start + (repeat - 1) * period + offset
                core.step()
                record = core._last_record
                if record.cycle != expected_cycle or \
                        not _records_equal(record, template):
                    raise SimFastError(
                        f"steady-state divergence at cycle "
                        f"{expected_cycle} (iteration {repeat}/{k}): "
                        f"expected {template!r}, stepped to {record!r}")
        stats1 = self._stats_tuple()
        if (stats1[0] - stats0[0] != k * d_committed
                or stats1[1] - stats0[1] != k * d_fetched
                or stats1[2] - stats0[2] != k * d_mispredicts
                or any(stats1[i] != stats0[i] for i in range(3, 7))
                or any(b - a != k * d for a, b, d in
                       zip(stats0[7], stats1[7], d_hist))):
            raise SimFastError(
                "steady-state skip statistics diverge from the "
                f"per-period delta over {k} iterations")
        for reg, value in enumerate(plan["regs"]):
            if not _val_eq(core.regs[reg], value):
                raise SimFastError(
                    f"steady-state skip register divergence: x{reg} "
                    f"is {core.regs[reg]!r}, projected {value!r}")
        for addr, value in plan["overlay"].items():
            if not _val_eq(core.memory.get(addr, 0), value):
                raise SimFastError(
                    f"steady-state skip memory divergence at "
                    f"{addr:#x}: {core.memory.get(addr, 0)!r} != "
                    f"projected {value!r}")
        stats = core.stats
        stats.fast_forwarded += k * period
        stats.steady_state_cycles += k * period
        stats.steady_state_iterations += k
