"""Core configuration (Table 1 of the paper).

:meth:`CoreConfig.boom_4wide` reproduces the simulated BOOM configuration
the paper evaluates; :meth:`CoreConfig.tiny` is a scaled-down core used by
unit tests where tiny structures make the interesting corner cases (full
ROB, full issue queues, drains) easy to trigger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..mem.hierarchy import MemoryConfig


@dataclass
class CoreConfig:
    """Parameters of the out-of-order core."""

    # Front-end.
    fetch_width: int = 8
    fetch_buffer_entries: int = 32
    decode_width: int = 4
    frontend_latency: int = 3
    btb_entries: int = 512
    btb_miss_penalty: int = 2
    ras_entries: int = 16
    max_outstanding_branches: int = 20

    # Back-end.
    rob_entries: int = 128
    commit_width: int = 4
    int_iq_entries: int = 40
    int_issue_width: int = 4
    mem_iq_entries: int = 24
    mem_issue_width: int = 2
    fp_iq_entries: int = 32
    fp_issue_width: int = 2

    # LSU.
    load_queue_entries: int = 16
    store_queue_entries: int = 16
    store_forward_latency: int = 2
    #: Committed stores draining to the cache concurrently; a full buffer
    #: stalls further stores at the head of the ROB.
    store_buffer_entries: int = 8

    # Behavioural knobs.
    enable_ordering_violations: bool = True
    agu_latency: int = 1
    #: Extra front-end refill cycles after a full pipeline flush (CSR
    #: commit, sret, exception, memory-ordering replay).  Mispredict
    #: recovery resteers earlier and does not pay this.
    flush_refill_penalty: int = 4

    # Memory system.
    memory: MemoryConfig = field(default_factory=MemoryConfig)

    def __post_init__(self) -> None:
        if self.commit_width != self.decode_width:
            raise ValueError("ROB banking requires commit width == "
                             "decode width")
        if self.rob_entries % self.commit_width != 0:
            raise ValueError("ROB entries must be a multiple of the "
                             "commit width")

    @property
    def rob_banks(self) -> int:
        """Number of ROB banks (equals the commit width on BOOM)."""
        return self.commit_width

    @classmethod
    def boom_4wide(cls) -> "CoreConfig":
        """The paper's 4-wide BOOM configuration (Table 1)."""
        return cls()

    @classmethod
    def tiny(cls) -> "CoreConfig":
        """A 2-wide core with small structures, for unit tests."""
        return cls(fetch_width=4, fetch_buffer_entries=8, decode_width=2,
                   commit_width=2, frontend_latency=2, rob_entries=16,
                   int_iq_entries=8, int_issue_width=2, mem_iq_entries=6,
                   mem_issue_width=1, fp_iq_entries=6, fp_issue_width=1,
                   load_queue_entries=4, store_queue_entries=4,
                   max_outstanding_branches=8)
