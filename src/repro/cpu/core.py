"""The out-of-order core.

A cycle-driven model of a BOOM-style superscalar processor: in-order
front-end (fetch with branch prediction, decode, dispatch), out-of-order
issue and execution, and in-order commit through a banked ROB.  Every
cycle the core emits a :class:`~repro.cpu.trace.CycleRecord` to its
attached trace observers -- the commit-stage trace that the Oracle, TIP
and all baseline profilers consume out-of-band, exactly mirroring the
paper's FireSim methodology.

The model is a *timing* simulator with embedded functional execution:
instruction semantics run when a uop issues, architectural state (register
file, memory, fflags) is updated at commit, and squashes discard the
speculative results that were carried on the uops.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..isa.instruction import Instruction, Register
from ..isa.opcodes import Kind, Op, Unit
from ..isa.program import Program
from ..isa.semantics import evaluate
from ..mem.hierarchy import MemoryHierarchy
from ..mem.tlb import vpn_of
from .branch import BranchTargetBuffer, ReturnAddressStack, TagePredictor
from .config import CoreConfig
from .trace import CommittedInst, CycleRecord, HeadEntry, TraceObserver
from .uop import MicroOp, MicroOpPool

_WORD_SHIFT = 3  # conflict detection at 8-byte granularity


class SimulationError(RuntimeError):
    """Raised when the simulated program does something unsupported."""


class MaxCyclesExceeded(SimulationError):
    """The program did not halt within the ``max_cycles`` budget.

    A distinct outcome (not normal completion): callers surface it and
    the simulation cache never stores such a truncated run.
    """

    def __init__(self, max_cycles: int):
        super().__init__(
            f"program did not halt within {max_cycles} cycles")
        self.max_cycles = max_cycles


class SimFastError(SimulationError):
    """Paranoid fast-forward cross-check failed.

    Raised when a region the quiescence detector claimed was a uniform
    stall produced a different record under single-stepping -- i.e. a
    bug in :meth:`Core._quiet_until`, never in the program.
    """


#: ``Core.run`` simulation modes.
STEP_SIM = "step"
FAST_SIM = "fast"
SIM_MODES = (STEP_SIM, FAST_SIM)


class CoreStats:
    """Aggregate statistics of one simulation run."""

    __slots__ = ("cycles", "committed", "fetched",
                 "branch_mispredicts", "csr_flushes", "exceptions",
                 "ordering_flushes", "commit_hist",
                 "sampling_interrupts", "fast_forwarded",
                 "steady_state_iterations", "steady_state_cycles")

    #: Fields persisted by the simulation cache (everything needed to
    #: reconstruct the stats of a cached run).
    FIELDS = ("cycles", "committed", "fetched", "branch_mispredicts",
              "csr_flushes", "exceptions", "ordering_flushes",
              "commit_hist", "sampling_interrupts", "fast_forwarded",
              "steady_state_iterations", "steady_state_cycles")

    #: Fields describing how the run was *driven* rather than what the
    #: program did: they legitimately differ between ``sim="step"`` and
    #: ``sim="fast"`` runs of the same program, so bit-identity checks
    #: (the bench checksum gate, the fast-vs-step tests) exclude them.
    DRIVER_FIELDS = ("fast_forwarded", "steady_state_iterations",
                     "steady_state_cycles")

    def __init__(self):
        self.cycles = 0
        self.committed = 0
        self.fetched = 0
        self.branch_mispredicts = 0
        self.csr_flushes = 0
        self.exceptions = 0
        self.ordering_flushes = 0
        self.commit_hist = [0] * 16
        self.sampling_interrupts = 0
        #: Cycles emitted by the event-driven stall fast-forward or the
        #: steady-state loop memoizer (0 in ``sim="step"`` runs; the
        #: trace is identical either way).
        self.fast_forwarded = 0
        #: Whole loop iterations skipped by the steady-state memoizer.
        self.steady_state_iterations = 0
        #: Cycles covered by memoized loop iterations (a subset of
        #: ``fast_forwarded``).
        self.steady_state_cycles = 0

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.FIELDS}

    @classmethod
    def from_dict(cls, payload: dict) -> "CoreStats":
        stats = cls()
        for name in cls.FIELDS:
            if name in payload:
                setattr(stats, name, payload[name])
        return stats

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    def __repr__(self) -> str:
        return (f"<stats cycles={self.cycles} insts={self.committed} "
                f"ipc={self.ipc:.2f} mispredicts={self.branch_mispredicts}>")


class Core:
    """A single out-of-order core executing one program."""

    def __init__(self, program: Program, config: Optional[CoreConfig] = None,
                 hierarchy: Optional[MemoryHierarchy] = None,
                 kernel=None):
        self.config = config or CoreConfig.boom_4wide()
        self.program = program
        self.hierarchy = hierarchy or MemoryHierarchy(self.config.memory)
        #: Kernel model providing ``handler_entry`` and ``on_page_fault``.
        self.kernel = kernel

        # Architectural state.
        self.regs: List = [0] * Register.TOTAL
        self.memory: Dict[int, float] = dict(program.data)
        self.fflags = 0
        self.epc = 0

        # Front-end state.
        self.fetch_pc = program.entry
        self.fetch_ready_cycle = 0
        self._last_fetch_block: Optional[int] = None
        self.fetch_buffer: Deque[MicroOp] = deque()
        self.predictor = TagePredictor()
        self.btb = BranchTargetBuffer(self.config.btb_entries)
        self.ras = ReturnAddressStack(self.config.ras_entries)
        self.outstanding_branches = 0

        # Back-end state.
        self.rob: Deque[MicroOp] = deque()
        self.int_iq: List[MicroOp] = []
        self.mem_iq: List[MicroOp] = []
        self.fp_iq: List[MicroOp] = []
        self.load_queue: List[MicroOp] = []
        self.store_queue: List[MicroOp] = []
        self._store_drains: List[Tuple[int, MicroOp]] = []
        self.producers: Dict[int, MicroOp] = {}
        self.serialize_uop: Optional[MicroOp] = None
        self._resolve_queue: List[MicroOp] = []
        self._next_bank = 0
        self._next_seq = 0

        self.cycle = 0
        self.halted = False
        self.stats = CoreStats()
        self.observers: List[TraceObserver] = []

        # Sampling-interrupt support (Section 3.2 overhead experiment):
        # when a schedule fires, the core traps to a perf handler that
        # copies the sample to memory, then resumes via sret.
        self.sampling_schedule = None
        self.sampling_handler_entry: Optional[int] = None
        self._interrupt_pending = False
        self._in_trap = False

        # Per-cycle scratch (rebuilt each cycle).
        self._committed_now: List[CommittedInst] = []
        self._dispatched_now: List[int] = []
        self._exception_now: Optional[int] = None
        self._exception_ordering = False
        #: The record emitted for the most recent cycle.
        self._last_record: Optional[CycleRecord] = None
        #: Steady-state memoizer hook: when set, called with each uop
        #: at the moment it commits (after its architectural effects).
        self._commit_probe: Optional[Callable[[MicroOp], None]] = None

        # Micro-op recycling: fetch stamps pre-decoded per-PC templates
        # from a free list instead of constructing fresh MicroOps.
        # Committed uops park in ``_retired`` until every older
        # in-flight uop has left the ROB (nothing can then hold a
        # ``src_uops`` reference to them); squashed uops recycle
        # immediately (the squash severs all references).
        self._uop_pool = MicroOpPool()
        self._retired: Deque[Tuple[int, MicroOp]] = deque()

    # -- public API -------------------------------------------------------------

    def attach(self, observer: TraceObserver) -> None:
        self.observers.append(observer)

    def run(self, max_cycles: int = 10_000_000, sim: str = STEP_SIM,
            paranoid: bool = False) -> CoreStats:
        """Run until the program halts (or *max_cycles* elapse).

        ``sim="fast"`` enables the event-driven stall fast-forward:
        whenever :meth:`_quiet_until` proves that no pipeline stage can
        make progress before a known future event, the intervening
        identical stall records are emitted as one batch
        (``on_stall_run``) instead of ticking cycle by cycle.  It also
        enables the steady-state loop memoizer
        (:class:`~repro.cpu.memo.LoopMemoizer`): once the full pipeline
        state is proven periodic, whole loop iterations are skipped and
        emitted as one batch (``on_cycle_run``).  The emitted trace and
        all observer results are bit-identical to ``sim="step"``.
        *paranoid* cross-checks every fast-forwarded region and every
        memoized skip against single-stepping (raising
        :class:`SimFastError` on divergence) at single-step speed.

        Raises :class:`MaxCyclesExceeded` (a distinct
        :class:`SimulationError`) when the budget runs out.
        """
        if sim not in SIM_MODES:
            raise ValueError(f"unknown sim mode {sim!r} "
                             f"(expected one of {SIM_MODES})")
        fast = sim == FAST_SIM
        memo = None
        if fast:
            from .memo import LoopMemoizer  # local: avoids import cycle
            memo = LoopMemoizer(self, max_cycles, paranoid)
        while not self.halted:
            if self.cycle >= max_cycles:
                raise MaxCyclesExceeded(max_cycles)
            # Only pay for the quiescence scan once the pipeline shows
            # signs of stalling (the previous cycle neither committed
            # nor dispatched); at worst this single-steps the first
            # cycle of a stall region before batching the rest.
            last = self._last_record
            if fast and (last is None
                         or (not last.committed and not last.dispatched)):
                target = self._quiet_until()
                if target is not None:
                    n = min(target, max_cycles) - self.cycle
                    if n > 0:
                        if paranoid:
                            self._paranoid_forward(n)
                        else:
                            self._fast_forward(n)
                        self.stats.fast_forwarded += n
                        memo.note_break()
                        continue
            self.step()
            if memo is not None and not self.halted:
                memo.after_step()
        self.stats.cycles = self.cycle
        for observer in self.observers:
            observer.on_finish(self.cycle)
        return self.stats

    def step(self) -> None:
        """Advance the core by one clock cycle."""
        cycle = self.cycle
        self._committed_now = []
        self._dispatched_now = []
        self._exception_now = None
        self._exception_ordering = False

        if self.sampling_schedule is not None and \
                self.sampling_schedule.is_sample(cycle):
            self._interrupt_pending = True

        self._resolve_branches(cycle)
        self._commit_stage(cycle)
        self._drain_stores(cycle)
        self._issue_stage(cycle)
        self._dispatch_stage(cycle)
        self._fetch_stage(cycle)
        self._emit_record(cycle)
        self.cycle = cycle + 1

    # -- event-driven stall fast-forward (repro.simfast) -------------------------------

    def _quiet_until(self) -> Optional[int]:
        """Next-event cycle if the whole pipeline is provably stalled.

        Returns the earliest future cycle at which any stage could make
        progress, or ``None`` when some stage can act *this* cycle (or
        no future event is known; the caller then single-steps).  Every
        time-dependent blockage contributes an event (FU writebacks,
        cache fills via ``done_cycle``/``fetch_ready_cycle``, store
        drains, decode latency, the next sampling interrupt); purely
        structural blockages (full queues, wrong-path fetch, serialize
        barriers) are bounded transitively by the events of whatever
        must drain them.  Between now and the returned cycle every
        ``step()`` would be a no-op emitting the identical stall
        record -- the invariant ``--paranoid`` re-checks by stepping.
        """
        cycle = self.cycle
        if self._interrupt_pending:
            return None
        events: List[int] = []
        schedule = self.sampling_schedule
        if schedule is not None:
            next_sample = schedule.next_sample
            if next_sample <= cycle:
                return None
            events.append(next_sample)

        # Branch resolution: any resolvable branch acts this cycle.
        for uop in self._resolve_queue:
            if uop.squashed:
                continue
            if uop.done_cycle <= cycle:
                return None
            events.append(uop.done_cycle)

        # Commit: a done head commits/excepts/flushes, unless it is a
        # store stalled on a full write buffer (bounded by the drains).
        rob = self.rob
        if rob:
            head = rob[0]
            if head.done_by(cycle):
                if head.fault_vpn is not None or head.order_violation \
                        or not head.inst.is_store or \
                        len(self._store_drains) < \
                        self.config.store_buffer_entries:
                    return None
            elif head.executed:
                events.append(head.done_cycle)

        # Store drains: completion frees the SQ entry.
        for done, _uop in self._store_drains:
            if done <= cycle:
                return None
            events.append(done)

        # Issue: a uop whose producers have all broadcast issues this
        # cycle -- except a load waiting on store-forward data.
        for iq in (self.int_iq, self.mem_iq, self.fp_iq):
            for uop in iq:
                ready: Optional[int] = cycle
                for producer in uop.src_uops:
                    if producer is None:
                        continue
                    if not producer.executed or \
                            producer.fault_vpn is not None:
                        # Bounded transitively: the producer is itself
                        # in an issue queue, or awaiting its exception.
                        ready = None
                        break
                    if producer.done_cycle > ready:
                        ready = producer.done_cycle
                if ready is None:
                    continue
                if ready > cycle:
                    events.append(ready)
                    continue
                inst = uop.inst
                if inst.is_load and inst.kind is not Kind.ATOMIC:
                    # Pure re-check of the forward-wait condition.
                    result = evaluate(inst, self._operands(uop),
                                      self.fflags)
                    if self._try_forward(uop, result.eff_addr) \
                            is _FORWARD_WAIT:
                        continue  # behind a dataless older store
                return None

        # Dispatch: the fetch-buffer head enters the ROB unless gated.
        cfg = self.config
        if self.fetch_buffer and self.serialize_uop is None:
            uop = self.fetch_buffer[0]
            if uop.visible_cycle > cycle:
                events.append(uop.visible_cycle)
            else:
                inst = uop.inst
                iq, capacity = self._iq_for(inst)
                blocked = (
                    (inst.is_serializing
                     and (rob or self.store_queue))
                    or len(rob) >= cfg.rob_entries
                    or len(iq) >= capacity
                    or (inst.is_load and len(self.load_queue)
                        >= cfg.load_queue_entries)
                    or (inst.is_store and len(self.store_queue)
                        >= cfg.store_queue_entries))
                if not blocked:
                    return None

        # Fetch: the front-end advances (touching the I-cache) unless
        # waiting on a fill, a full buffer, the in-flight branch cap,
        # or a wrong-path PC outside the text segment.
        if cycle < self.fetch_ready_cycle:
            events.append(self.fetch_ready_cycle)
        elif len(self.fetch_buffer) < cfg.fetch_buffer_entries and \
                self.outstanding_branches < \
                cfg.max_outstanding_branches and \
                self.program.fetch(self.fetch_pc) is not None:
            return None

        if not events:
            return None  # total deadlock; stepping will hit max_cycles
        target = min(events)
        return target if target > cycle else None

    def _stall_record(self, cycle: int) -> CycleRecord:
        """The record every cycle of a quiescent region emits."""
        banks = self.config.rob_banks
        head_banks: List[Optional[HeadEntry]] = [None] * banks
        rob = self.rob
        for i in range(min(banks, len(rob))):
            uop = rob[i]
            head_banks[uop.bank] = HeadEntry(uop.inst.addr, False)
        return CycleRecord(
            cycle=cycle,
            committed=(),
            rob_head=rob[0].inst.addr if rob else None,
            rob_empty=not rob,
            exception=None,
            exception_is_ordering=False,
            dispatched=(),
            dispatch_pc=(self.fetch_buffer[0].inst.addr
                         if self.fetch_buffer else None),
            fetch_pc=self.fetch_pc,
            head_banks=tuple(head_banks),
            oldest_bank=rob[0].bank if rob else 0,
        )

    def _fast_forward(self, count: int) -> None:
        """Emit *count* identical stall cycles in one batch."""
        record = self._stall_record(self.cycle)
        for observer in self.observers:
            observer.on_stall_run(record, count)
        self.cycle += count

    def _paranoid_forward(self, count: int) -> None:
        """Single-step a claimed stall region, checking every record."""
        template = self._stall_record(self.cycle)
        end = self.cycle + count
        while self.cycle < end:
            expected_cycle = self.cycle
            self.step()
            record = self._last_record
            if record is None or \
                    not _stall_equal(record, template, expected_cycle):
                raise SimFastError(
                    f"fast-forward divergence at cycle "
                    f"{expected_cycle}: expected uniform stall "
                    f"{template!r}, stepped to {record!r}")

    # -- branch resolution ---------------------------------------------------------

    def _resolve_branches(self, cycle: int) -> None:
        if not self._resolve_queue:
            return
        pending = sorted((u for u in self._resolve_queue), key=lambda u: u.seq)
        self._resolve_queue = []
        for uop in pending:
            if uop.squashed:
                continue
            if uop.done_cycle > cycle:
                self._resolve_queue.append(uop)
                continue
            self.outstanding_branches = max(0, self.outstanding_branches - 1)
            if uop.mispredicted:
                self.stats.branch_mispredicts += 1
                self._squash_after(uop.seq, uop.actual_target, cycle)

    # -- commit ------------------------------------------------------------------

    def _commit_stage(self, cycle: int) -> None:
        if self._interrupt_pending and not self._in_trap and self.rob \
                and self.rob[0].fault_vpn is None:
            self._take_sampling_interrupt(cycle)
            return
        width = self.config.commit_width
        while self.rob and len(self._committed_now) < width:
            head = self.rob[0]
            if not head.done_by(cycle):
                break

            if head.fault_vpn is not None:
                if self._committed_now:
                    break  # the exception fires alone, next cycle
                self._take_exception(head, cycle)
                break

            if head.order_violation:
                if self._committed_now:
                    break
                self._take_ordering_flush(head, cycle)
                break

            # Stores need a free write-buffer slot to commit; a full
            # buffer of in-flight drains stalls the store at the ROB head.
            if head.inst.is_store and \
                    len(self._store_drains) >= \
                    self.config.store_buffer_entries:
                break

            self._commit_one(head, cycle)

            if head.inst.flushes_on_commit:
                self._flush_after_commit(head, cycle)
                break
            if head.inst.is_halt:
                self.halted = True
                break

    def _commit_one(self, uop: MicroOp, cycle: int) -> None:
        inst = uop.inst
        self.rob.popleft()
        uop.commit_cycle = cycle
        self.stats.committed += 1

        # Architectural register update.
        if inst.rd is not None and inst.rd != 0:
            self.regs[inst.rd] = uop.result
        if self.producers.get(inst.rd) is uop:
            del self.producers[inst.rd]

        # Memory update and store-drain initiation.
        if inst.is_store:
            self.memory[uop.eff_addr] = uop.store_value
            outcome = self.hierarchy.data_access(uop.eff_addr, cycle,
                                                 is_write=True)
            self._store_drains.append((cycle + outcome.latency, uop))
        if uop in self.load_queue:
            self.load_queue.remove(uop)

        # CSR side effects.
        if inst.op is Op.FSFLAGS:
            self.fflags = int(self._operand_value(uop, 0))
            self.stats.csr_flushes += 1
        elif inst.op in (Op.FRFLAGS, Op.CSRRW, Op.ECALL):
            self.stats.csr_flushes += 1

        # Predictor training.
        if inst.is_branch and uop.prediction is not None:
            self.predictor.update(inst.addr, uop.actual_taken, uop.prediction)
        if uop.actual_taken and uop.actual_target is not None and \
                inst.is_control:
            self.btb.insert(inst.addr, uop.actual_target)

        if self.serialize_uop is uop:
            self.serialize_uop = None

        # Queue the uop for recycling.  It may still be referenced as a
        # source by younger in-flight consumers (``src_uops``), so it is
        # only released once every uop that could hold such a reference
        # has itself left the ROB -- see :meth:`_harvest_retired`.
        uop.draining = inst.is_store
        self._retired.append((self._next_seq, uop))

        if self._commit_probe is not None:
            self._commit_probe(uop)
        self._committed_now.append(
            CommittedInst(inst.addr, uop.bank, uop.mispredicted,
                          inst.flushes_on_commit))

    def _flush_after_commit(self, uop: MicroOp, cycle: int) -> None:
        """Pipeline flush triggered by a committing CSR/sret instruction."""
        if uop.inst.op is Op.SRET:
            target = self.epc
            self._in_trap = False
        else:
            target = uop.inst.next_addr
        self._squash_after(uop.seq, target, cycle)
        self.fetch_ready_cycle += self.config.flush_refill_penalty

    def _take_exception(self, uop: MicroOp, cycle: int) -> None:
        """A precise page-fault exception at the head of the ROB."""
        if self.kernel is None:
            raise SimulationError(
                f"page fault at {uop.addr:#x} (vpn {uop.fault_vpn:#x}) "
                "but no kernel is attached")
        self.stats.exceptions += 1
        self._in_trap = True
        self.epc = uop.addr
        handler_entry = self.kernel.on_page_fault(uop.fault_vpn, cycle)
        self._exception_now = uop.addr
        self._exception_ordering = False
        self._squash_from(uop.seq, handler_entry, cycle)
        self.fetch_ready_cycle += self.config.flush_refill_penalty

    def _take_sampling_interrupt(self, cycle: int) -> None:
        """Trap to the perf sample-collection handler.

        The oldest in-flight instruction becomes the resume point; the
        handler copies the sample to the perf buffer and returns with
        ``sret``, after which execution re-fetches from the EPC.
        """
        self.stats.sampling_interrupts += 1
        self._interrupt_pending = False
        self._in_trap = True
        head = self.rob[0]
        self.epc = head.addr
        self._squash_from(head.seq, self.sampling_handler_entry, cycle)
        self.fetch_ready_cycle += self.config.flush_refill_penalty

    def _take_ordering_flush(self, uop: MicroOp, cycle: int) -> None:
        """Memory-ordering mini-exception: replay from the offending load."""
        self.stats.ordering_flushes += 1
        self._exception_now = uop.addr
        self._exception_ordering = True
        self._squash_from(uop.seq, uop.addr, cycle)
        self.fetch_ready_cycle += self.config.flush_refill_penalty

    # -- squash ----------------------------------------------------------------

    def _squash_after(self, seq: int, refetch_pc: int, cycle: int) -> None:
        self._squash_from(seq + 1, refetch_pc, cycle)

    def _squash_from(self, seq: int, refetch_pc: int, cycle: int) -> None:
        """Discard every uop with sequence number >= *seq* and redirect."""
        def keep(items):
            return [u for u in items if u.seq < seq]

        squashed: List[MicroOp] = []
        for uop in self.rob:
            if uop.seq >= seq:
                uop.squashed = True
        while self.rob and self.rob[-1].seq >= seq:
            squashed.append(self.rob.pop())
        self.int_iq = keep(self.int_iq)
        self.mem_iq = keep(self.mem_iq)
        self.fp_iq = keep(self.fp_iq)
        self.load_queue = keep(self.load_queue)
        self.store_queue = [u for u in self.store_queue
                            if u.seq < seq or u.commit_cycle >= 0]
        for uop in self.fetch_buffer:
            uop.squashed = True
            squashed.append(uop)
        self.fetch_buffer.clear()
        self._resolve_queue = keep(self._resolve_queue)

        # Rebuild the rename map from the surviving in-flight uops.
        self.producers.clear()
        for uop in self.rob:
            rd = uop.inst.rd
            if rd is not None and rd != 0:
                self.producers[rd] = uop

        if self.serialize_uop is not None and self.serialize_uop.seq >= seq:
            self.serialize_uop = None
        self.outstanding_branches = sum(
            1 for u in self.rob
            if (u.inst.is_branch or u.inst.is_return) and not u.executed)

        self._next_bank = ((self.rob[-1].bank + 1) % self.config.rob_banks
                           if self.rob else 0)
        self.fetch_pc = refetch_pc
        # A redirect cancels any in-progress fetch stall; the new target
        # performs its own I-cache access.
        self.fetch_ready_cycle = cycle + 1
        self._last_fetch_block = None

        # Squashing severed every reference to the discarded uops (any
        # consumer holding them in ``src_uops`` is strictly younger and
        # was discarded too), so they recycle immediately.
        pool = self._uop_pool
        for uop in squashed:
            pool.release(uop)

    def _harvest_retired(self) -> None:
        """Recycle committed uops no in-flight consumer can reference.

        A committed uop may still be read through ``src_uops`` by any
        uop that was in flight when it committed (operand reads at
        issue, the FSFLAGS operand read at commit).  Each retired entry
        therefore carries a snapshot of ``_next_seq`` taken at commit;
        once the ROB head's sequence number reaches that snapshot (or
        the ROB empties), every possible consumer has itself committed
        or been squashed.  Committed stores additionally wait for their
        write-buffer drain (``draining``) because ``_store_drains`` and
        the store queue still hold them.
        """
        retired = self._retired
        rob = self.rob
        min_seq = rob[0].seq if rob else self._next_seq
        pool = self._uop_pool
        while retired:
            snapshot, uop = retired[0]
            if snapshot > min_seq or uop.draining:
                break
            retired.popleft()
            pool.release(uop)

    # -- stores draining to memory ---------------------------------------------------

    def _drain_stores(self, cycle: int) -> None:
        if not self._store_drains:
            return
        remaining = []
        for done, uop in self._store_drains:
            if done <= cycle:
                if uop in self.store_queue:
                    self.store_queue.remove(uop)
                uop.draining = False
            else:
                remaining.append((done, uop))
        self._store_drains = remaining

    # -- issue / execute -----------------------------------------------------------

    def _issue_stage(self, cycle: int) -> None:
        self._issue_from(self.int_iq, self.config.int_issue_width, cycle)
        self._issue_from(self.mem_iq, self.config.mem_issue_width, cycle)
        self._issue_from(self.fp_iq, self.config.fp_issue_width, cycle)

    def _issue_from(self, iq: List[MicroOp], width: int, cycle: int) -> None:
        issued: List[MicroOp] = []
        for uop in iq:
            if len(issued) >= width:
                break
            if not self._sources_ready(uop, cycle):
                continue
            if uop.inst.is_mem:
                if not self._issue_mem(uop, cycle):
                    continue
            else:
                self._issue_alu(uop, cycle)
            issued.append(uop)
        for uop in issued:
            iq.remove(uop)

    def _sources_ready(self, uop: MicroOp, cycle: int) -> bool:
        for producer in uop.src_uops:
            if producer is None:
                continue
            if not producer.done_by(cycle):
                return False
            if producer.fault_vpn is not None:
                # A faulting producer never broadcasts a result; its
                # consumers wait and are squashed when the exception
                # fires at the head of the ROB.
                return False
        return True

    def _operand_value(self, uop: MicroOp, index: int):
        producer = uop.src_uops[index]
        if producer is not None:
            return producer.result
        reg = uop.inst.sources[index]
        return 0 if reg == 0 else self.regs[reg]

    def _operands(self, uop: MicroOp) -> tuple:
        return tuple(self._operand_value(uop, i)
                     for i in range(len(uop.inst.sources)))

    def _issue_alu(self, uop: MicroOp, cycle: int) -> None:
        inst = uop.inst
        result = evaluate(inst, self._operands(uop), self.fflags)
        uop.result = result.value
        uop.issued = True
        uop.issue_cycle = cycle
        uop.executed = True
        uop.done_cycle = cycle + inst.latency
        if inst.is_control:
            uop.actual_taken = result.taken
            uop.actual_target = (result.target if result.taken
                                 else inst.next_addr)
            uop.mispredicted = uop.actual_target != uop.predicted_target
            if inst.is_branch or inst.is_return:
                self._resolve_queue.append(uop)

    def _issue_mem(self, uop: MicroOp, cycle: int) -> bool:
        inst = uop.inst
        result = evaluate(inst, self._operands(uop), self.fflags)
        eff_addr = result.eff_addr
        agu = self.config.agu_latency

        if inst.kind is Kind.ATOMIC:
            old = self.memory.get(eff_addr, 0)
            outcome = self.hierarchy.data_access(eff_addr, cycle + agu)
            if outcome.fault:
                return self._mem_fault(uop, eff_addr, cycle, agu, outcome)
            uop.eff_addr = eff_addr
            uop.result = old
            uop.store_value = old + result.store_value
            uop.issued = uop.executed = True
            uop.issue_cycle = cycle
            uop.done_cycle = cycle + agu + outcome.latency + 1
            return True

        if inst.is_store:
            # Translate and prefetch-for-ownership at execute; the store
            # itself completes once its address and data are known, and the
            # data drains to the cache after commit.
            outcome = self.hierarchy.data_access(eff_addr, cycle + agu)
            if outcome.fault:
                return self._mem_fault(uop, eff_addr, cycle, agu, outcome)
            uop.eff_addr = eff_addr
            uop.store_value = result.store_value
            uop.issued = uop.executed = True
            uop.issue_cycle = cycle
            uop.done_cycle = cycle + agu
            if self.config.enable_ordering_violations:
                self._check_ordering(uop)
            return True

        # Loads: try store-to-load forwarding first.
        forwarded = self._try_forward(uop, eff_addr)
        if forwarded is _FORWARD_WAIT:
            return False
        uop.eff_addr = eff_addr
        uop.issued = True
        uop.issue_cycle = cycle
        if forwarded is not _NO_FORWARD:
            uop.result = forwarded
            uop.executed = True
            uop.done_cycle = cycle + agu + self.config.store_forward_latency
            return True

        outcome = self.hierarchy.data_access(eff_addr, cycle + agu)
        if outcome.fault:
            return self._mem_fault(uop, eff_addr, cycle, agu, outcome)
        uop.result = self.memory.get(eff_addr, 0)
        uop.executed = True
        uop.done_cycle = cycle + agu + outcome.latency
        return True

    def _mem_fault(self, uop: MicroOp, eff_addr: int, cycle: int,
                   agu: int, outcome) -> bool:
        uop.eff_addr = eff_addr
        uop.fault_vpn = vpn_of(eff_addr)
        uop.issued = uop.executed = True
        uop.issue_cycle = cycle
        uop.done_cycle = cycle + agu + outcome.latency
        return True

    def _try_forward(self, load: MicroOp, eff_addr: int):
        """Scan older stores in the SQ; youngest conflicting one wins."""
        word = eff_addr >> _WORD_SHIFT
        for store in reversed(self.store_queue):
            if store.seq >= load.seq:
                continue
            if not store.executed:
                continue  # unknown address: speculate past it
            if store.eff_addr is not None and \
                    (store.eff_addr >> _WORD_SHIFT) == word:
                if store.store_value is None:
                    return _FORWARD_WAIT
                return store.store_value
        return _NO_FORWARD

    def _check_ordering(self, store: MicroOp) -> None:
        """Flag younger, already-executed loads to the same word."""
        word = store.eff_addr >> _WORD_SHIFT
        for load in self.load_queue:
            if load.seq > store.seq and load.executed and \
                    load.eff_addr is not None and \
                    (load.eff_addr >> _WORD_SHIFT) == word and \
                    load.fault_vpn is None:
                load.order_violation = True

    # -- dispatch ---------------------------------------------------------------

    def _iq_for(self, inst: Instruction):
        unit = inst.unit
        if unit is Unit.MEM:
            return self.mem_iq, self.config.mem_iq_entries
        if unit is Unit.FP:
            return self.fp_iq, self.config.fp_iq_entries
        return self.int_iq, self.config.int_iq_entries

    def _dispatch_stage(self, cycle: int) -> None:
        cfg = self.config
        count = 0
        while count < cfg.decode_width and self.fetch_buffer:
            if self.serialize_uop is not None:
                break
            uop = self.fetch_buffer[0]
            if uop.visible_cycle > cycle:
                break
            inst = uop.inst
            if inst.is_serializing and (self.rob or self.store_queue):
                break
            if len(self.rob) >= cfg.rob_entries:
                break
            iq, capacity = self._iq_for(inst)
            if len(iq) >= capacity:
                break
            if inst.is_load and \
                    len(self.load_queue) >= cfg.load_queue_entries:
                break
            if inst.is_store and \
                    len(self.store_queue) >= cfg.store_queue_entries:
                break

            self.fetch_buffer.popleft()
            uop.dispatch_cycle = cycle
            uop.bank = self._next_bank
            self._next_bank = (self._next_bank + 1) % cfg.rob_banks
            uop.src_uops = tuple(
                self.producers.get(reg) if reg != 0 else None
                for reg in inst.sources)
            if inst.rd is not None and inst.rd != 0:
                self.producers[inst.rd] = uop
            self.rob.append(uop)
            iq.append(uop)
            if inst.is_load and inst.kind is not Kind.ATOMIC:
                self.load_queue.append(uop)
            if inst.is_store:
                self.store_queue.append(uop)
            self._dispatched_now.append(inst.addr)
            count += 1
            if inst.is_serializing:
                self.serialize_uop = uop
                break

    # -- fetch ------------------------------------------------------------------

    def _fetch_stage(self, cycle: int) -> None:
        if self._retired:
            self._harvest_retired()
        if self.halted or cycle < self.fetch_ready_cycle:
            return
        cfg = self.config
        block_size = cfg.memory.block_size
        budget = cfg.fetch_width
        while budget > 0 and len(self.fetch_buffer) < cfg.fetch_buffer_entries:
            if self.outstanding_branches >= cfg.max_outstanding_branches:
                break
            inst = self.program.fetch(self.fetch_pc)
            if inst is None:
                break  # off the text segment (wrong path); wait for redirect

            block = self.fetch_pc // block_size
            if block != self._last_fetch_block:
                outcome = self.hierarchy.inst_fetch(self.fetch_pc, cycle)
                self._last_fetch_block = block
                if outcome.latency > cfg.memory.l1i_latency + 1:
                    self.fetch_ready_cycle = cycle + outcome.latency
                    break

            uop = self._uop_pool.acquire(inst, self._next_seq, cycle,
                                         cycle + cfg.frontend_latency)
            self._next_seq += 1
            self.stats.fetched += 1
            redirected = self._predict(uop, cycle)
            self.fetch_buffer.append(uop)
            budget -= 1
            if redirected:
                break

    def _predict(self, uop: MicroOp, cycle: int) -> bool:
        """Predict control flow for a fetched uop; returns True on redirect."""
        inst = uop.inst
        if inst.is_branch:
            prediction = self.predictor.predict(inst.addr)
            uop.prediction = prediction
            self.outstanding_branches += 1
            if prediction.taken:
                uop.predicted_taken = True
                uop.predicted_target = inst.imm
                if self.btb.lookup(inst.addr) is None:
                    # Target resolved at decode: short front-end bubble.
                    self.fetch_ready_cycle = \
                        cycle + self.config.btb_miss_penalty
                self.fetch_pc = inst.imm
                return True
            uop.predicted_target = inst.next_addr
            self.fetch_pc = inst.next_addr
            return False

        if inst.is_call:
            if inst.rd in (Register.x(1), Register.x(2)):
                self.ras.push(inst.next_addr)
            uop.predicted_taken = True
            uop.predicted_target = inst.imm
            self.fetch_pc = inst.imm
            return True

        if inst.is_return:
            looks_like_return = (inst.rd == 0 and inst.sources[0] in
                                 (Register.x(1), Register.x(2)))
            target = self.ras.pop() if looks_like_return else None
            if target is None:
                target = self.btb.lookup(inst.addr)
            if target is None:
                target = inst.next_addr  # will almost surely mispredict
            uop.predicted_taken = True
            uop.predicted_target = target
            self.outstanding_branches += 1
            self.fetch_pc = target
            return target != inst.next_addr

        uop.predicted_target = inst.next_addr
        self.fetch_pc = inst.next_addr
        return False

    # -- trace emission --------------------------------------------------------------

    def _emit_record(self, cycle: int) -> None:
        if self._committed_now:
            self.stats.commit_hist[len(self._committed_now)] += 1
        banks = self.config.rob_banks
        head_banks: List[Optional[HeadEntry]] = [None] * banks
        rob = self.rob
        for i in range(min(banks, len(rob))):
            uop = rob[i]
            head_banks[uop.bank] = HeadEntry(uop.inst.addr, False)
        record = CycleRecord(
            cycle=cycle,
            committed=tuple(self._committed_now),
            rob_head=rob[0].inst.addr if rob else None,
            rob_empty=not rob,
            exception=self._exception_now,
            exception_is_ordering=self._exception_ordering,
            dispatched=tuple(self._dispatched_now),
            dispatch_pc=(self.fetch_buffer[0].inst.addr
                         if self.fetch_buffer else None),
            fetch_pc=self.fetch_pc,
            head_banks=tuple(head_banks),
            oldest_bank=rob[0].bank if rob else 0,
        )
        self._last_record = record
        for observer in self.observers:
            observer.on_cycle(record)


def _head_banks_equal(a, b) -> bool:
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if (x is None) != (y is None):
            return False
        if x is not None and (x.addr != y.addr
                              or x.committing != y.committing):
            return False
    return True


def _stall_equal(record: CycleRecord, template: CycleRecord,
                 cycle: int) -> bool:
    """Is *record* the stall *template* rematerialized at *cycle*?"""
    return (record.cycle == cycle
            and not record.committed
            and not record.dispatched
            and record.exception is None
            and record.exception_is_ordering
            == template.exception_is_ordering
            and record.rob_head == template.rob_head
            and record.rob_empty == template.rob_empty
            and record.dispatch_pc == template.dispatch_pc
            and record.fetch_pc == template.fetch_pc
            and record.oldest_bank == template.oldest_bank
            and _head_banks_equal(record.head_banks,
                                  template.head_banks))


class _ForwardSentinel:
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name


#: Load must wait: a conflicting older store has no data yet.
_FORWARD_WAIT = _ForwardSentinel("FORWARD_WAIT")
#: No conflicting older store: go to the cache.
_NO_FORWARD = _ForwardSentinel("NO_FORWARD")
