"""Structured lint diagnostics.

Every linter rule and every sanitizer invariant emits
:class:`Diagnostic` records: a stable rule id, a severity, the program
location (address + function) or trace location (cycle), a message and
an optional machine-applicable fix hint.  Rendering goes through the
toolkit-wide :func:`repro.analysis.report.format_diag` helper so lint
output, sanitizer reports and test assertions all share one format.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..analysis.report import format_diag


class Severity(enum.Enum):
    """Diagnostic severity, ordered: ERROR > WARNING > INFO."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank


@dataclass(frozen=True)
class FixHint:
    """A machine-applicable fix: what to do, where, and a rendering.

    ``action`` is the transformation family the optimizer dispatches
    on: ``"nop"`` (substitute flush instructions with ``nop``),
    ``"hoist"`` (move a loop-invariant instruction to a preheader),
    ``"delete"`` (remove a dead instruction), ``"prune"`` (remove a
    const-proven unreachable block), or ``"manual"`` (advice only).
    ``addrs`` are the instruction addresses the fix touches and
    ``header`` the loop-header address for hoists.  The legality of
    applying the hint is *not* implied -- ``repro.opt`` re-proves it
    from the dataflow facts before rewriting anything.
    """

    action: str
    text: str
    addrs: Tuple[int, ...] = ()
    header: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"action": self.action, "text": self.text}
        if self.addrs:
            out["addrs"] = [f"{addr:#x}" for addr in self.addrs]
        if self.header is not None:
            out["header"] = f"{self.header:#x}"
        return out


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule id plus location, message and fix hint."""

    rule: str
    severity: Severity
    message: str
    addr: Optional[int] = None
    function: Optional[str] = None
    cycle: Optional[int] = None
    fix_hint: Optional[str] = None
    path: Optional[str] = None
    line: Optional[int] = None
    col: Optional[int] = None
    fix: Optional[FixHint] = None

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def render(self) -> str:
        return format_diag(self.severity.value, self.rule, self.message,
                           addr=self.addr, function=self.function,
                           cycle=self.cycle, hint=self.fix_hint,
                           path=self.path, line=self.line, col=self.col)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (for ``repro lint --format json`` and CI)."""
        out: Dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.path is not None:
            out["path"] = self.path
        if self.line is not None:
            out["line"] = self.line
        if self.col is not None:
            out["col"] = self.col
        if self.addr is not None:
            out["addr"] = f"{self.addr:#x}"
        if self.function is not None:
            out["function"] = self.function
        if self.cycle is not None:
            out["cycle"] = self.cycle
        if self.fix_hint is not None:
            out["fix_hint"] = self.fix_hint
        if self.fix is not None:
            out["fix"] = self.fix.to_dict()
        return out

    def __str__(self) -> str:
        return self.render()
