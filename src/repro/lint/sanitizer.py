"""Commit-trace sanitizer: invariant checks over the CycleRecord stream.

Every profiler in this repo silently assumes the per-cycle commit trace
is well-formed: commits arrive in program order, cycle numbers are
dense, a pipeline flush actually drains the machine, banks rotate
round-robin.  gem5 catches whole bug classes with built-in sanity
checkers; :class:`TraceSanitizer` is the equivalent for our trace --
attach it to a :class:`~repro.cpu.machine.Machine` (or a trace replay)
and it validates every :class:`~repro.cpu.trace.CycleRecord` against
the commit-stage invariants, failing fast with a cycle-numbered report.

Invariants (rule ids used in reports and tests):

* ``S001 monotone-cycle``      -- cycle numbers increase by exactly 1;
* ``S002 commit-width``        -- at most commit-width commits/cycle;
* ``S003 program-order``       -- within a cycle, each committed
  instruction's successor is consistent with its semantics (fall-through
  +4, branch target or fall-through, jump target); committed addresses
  must be in the program text; ``halt`` commits last;
* ``S004 bank-rotation``       -- committed ROB banks rotate round-robin;
* ``S005 flush-drain``         -- a flush-on-commit instruction is the
  last commit of its cycle, leaves the ROB empty, and the next cycle
  commits nothing (the pipeline is drained);
* ``S006 exception-exclusive`` -- an exception cycle commits nothing,
  leaves the ROB empty, and is followed by a drained cycle; the
  ordering-flush flag implies an exception address;
* ``S007 head-consistency``    -- ``rob_head``/``rob_empty``/
  ``head_banks[oldest_bank]`` agree;
* ``S008 flag-consistency``    -- the mispredict flag only on control
  instructions, the flush flag exactly on flush-on-commit opcodes.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.report import format_diag
from ..isa.opcodes import Kind
from ..isa.program import Program
from ..cpu.trace import (CommittedInst, CycleRecord, TraceObserver,
                         shifted_record)
from .diagnostics import Diagnostic, Severity


class TraceInvariantError(RuntimeError):
    """A commit-trace invariant was violated (fail-fast mode)."""

    def __init__(self, diagnostic: Diagnostic):
        super().__init__(diagnostic.render())
        self.diagnostic = diagnostic


class TraceSanitizer(TraceObserver):
    """Validates the commit-stage trace cycle by cycle.

    Parameters
    ----------
    program:
        The *booted image* being executed (application plus kernel
        text), enabling the program-aware checks (S003, S008).  ``None``
        restricts the sanitizer to the structural invariants.
    commit_width:
        Maximum commits per cycle; defaults to the bank count.
    banks:
        Number of ROB banks; inferred from the first record if ``None``.
    fail_fast:
        Raise :class:`TraceInvariantError` on the first violation
        (default).  Otherwise violations accumulate in ``violations``.
    """

    def __init__(self, program: Optional[Program] = None,
                 commit_width: Optional[int] = None,
                 banks: Optional[int] = None,
                 fail_fast: bool = True):
        self.program = program
        self.commit_width = commit_width
        self.banks = banks
        self.fail_fast = fail_fast
        self.violations: List[Diagnostic] = []
        self.cycles_checked = 0
        self.commits_checked = 0
        self._last_cycle: Optional[int] = None
        #: A flush or exception last cycle: this cycle must commit nothing.
        self._drain_pending = False
        self._finished = False

    @classmethod
    def for_machine(cls, machine: "object",
                    fail_fast: bool = True) -> "TraceSanitizer":
        """Build a sanitizer matching a Machine's image and config."""
        return cls(program=machine.image,  # type: ignore[attr-defined]
                   commit_width=machine.config.commit_width,  # type: ignore[attr-defined]
                   banks=machine.config.rob_banks,  # type: ignore[attr-defined]
                   fail_fast=fail_fast)

    # -- observer interface ------------------------------------------------------

    def on_cycle(self, record: CycleRecord) -> None:
        if self.banks is None:
            self.banks = len(record.head_banks) or None
        if self.commit_width is None:
            self.commit_width = self.banks

        self._check_monotone(record)
        self._check_width(record)
        self._check_drain(record)
        self._check_exception(record)
        self._check_head(record)
        self._check_commits(record)

        self._drain_pending = (record.exception is not None
                               or any(c.flushes for c in record.committed))
        self._last_cycle = record.cycle
        self.cycles_checked += 1
        self.commits_checked += len(record.committed)

    def on_stall_run(self, record: CycleRecord, count: int) -> None:
        """Check a run of *count* identical stall cycles in O(1).

        The batched engines (``--sim fast``, ``--engine block``)
        deliver run-length-compressed stall regions here.  A pure
        stall record (no commits, no exception) passes or fails every
        invariant identically at each cycle of the run -- the only
        cycle-dependent check, S001 monotonicity, holds inside the run
        by construction -- so checking the first cycle covers all of
        them.  Records that commit or fault take the per-cycle path.
        """
        if record.committed or record.exception is not None:
            TraceObserver.on_stall_run(self, record, count)
            return
        self.on_cycle(record)
        if count > 1:
            self.cycles_checked += count - 1
            self._last_cycle = record.cycle + count - 1

    def on_cycle_run(self, records, repeats: int) -> None:
        """Check *repeats* memoized loop periods in O(period).

        The first two repeats run per-cycle.  After one full period
        every piece of checker state is content-determined -- the
        drain flag depends only on the period's last record and cycle
        density holds inside the batch by construction -- so repeat 2
        onward would reproduce repeat 1's checks verbatim; they are
        counted without re-running (matching ``on_stall_run``'s
        first-cycle-covers-all semantics for uniform runs).
        """
        n = len(records)
        if not n or repeats <= 0:
            return
        checked = min(repeats, 2)
        for repeat in range(checked):
            offset = repeat * n
            for record in records:
                self.on_cycle(record if not offset
                              else shifted_record(record, offset))
        rest = repeats - checked
        if rest > 0:
            self.cycles_checked += rest * n
            self.commits_checked += \
                rest * sum(len(r.committed) for r in records)
            self._last_cycle = records[0].cycle + repeats * n - 1

    def on_finish(self, final_cycle: int) -> None:
        self._finished = True

    # -- sharded replay (snapshot/merge protocol) ----------------------------------

    def begin_shard(self, start_cycle: int, carry) -> None:
        """Resume checking mid-stream from carried chunk state."""
        self._last_cycle = start_cycle - 1 if start_cycle > 0 else None
        self._drain_pending = carry.drain_pending

    def shard_settled(self) -> bool:
        return True

    def resolve_only(self, record: CycleRecord) -> bool:
        return True

    def snapshot(self) -> dict:
        """Picklable capture of this shard's checking results."""
        return {
            "cycles_checked": self.cycles_checked,
            "commits_checked": self.commits_checked,
            "violations": list(self.violations),
        }

    def absorb(self, snapshots) -> None:
        """Fold ordered shard snapshots into this sanitizer."""
        for snap in snapshots:
            self.cycles_checked += snap["cycles_checked"]
            self.commits_checked += snap["commits_checked"]
            self.violations.extend(snap["violations"])

    # -- individual invariants -----------------------------------------------------

    def _check_monotone(self, record: CycleRecord) -> None:
        if self._last_cycle is None:
            return
        if record.cycle != self._last_cycle + 1:
            self._report(
                "S001", record.cycle,
                f"cycle numbers must be dense: {self._last_cycle} was "
                f"followed by {record.cycle}")

    def _check_width(self, record: CycleRecord) -> None:
        width = self.commit_width
        if width is not None and len(record.committed) > width:
            self._report(
                "S002", record.cycle,
                f"{len(record.committed)} commits in one cycle exceeds "
                f"the commit width {width}")

    def _check_drain(self, record: CycleRecord) -> None:
        if self._drain_pending and record.committed:
            self._report(
                "S005", record.cycle,
                f"pipeline must be drained the cycle after a flush or "
                f"exception, but {len(record.committed)} instruction(s) "
                f"committed", addr=record.committed[0].addr)

    def _check_exception(self, record: CycleRecord) -> None:
        if record.exception_is_ordering and record.exception is None:
            self._report(
                "S006", record.cycle,
                "ordering-flush flag set without an exception address")
        if record.exception is None:
            return
        if record.committed:
            self._report(
                "S006", record.cycle,
                f"exception at {record.exception:#x} must fire alone, "
                f"but {len(record.committed)} instruction(s) committed",
                addr=record.exception)
        if not record.rob_empty:
            self._report(
                "S006", record.cycle,
                f"exception at {record.exception:#x} must squash the "
                f"ROB, but it is not empty", addr=record.exception)

    def _check_head(self, record: CycleRecord) -> None:
        if self.banks is not None and len(record.head_banks) != self.banks:
            self._report(
                "S007", record.cycle,
                f"{len(record.head_banks)} head banks reported, "
                f"expected {self.banks}")
            return
        if record.rob_empty != (record.rob_head is None):
            self._report(
                "S007", record.cycle,
                f"rob_empty={record.rob_empty} disagrees with "
                f"rob_head="
                f"{record.rob_head if record.rob_head is None else hex(record.rob_head)}")
            return
        if record.rob_head is None:
            return
        if not 0 <= record.oldest_bank < len(record.head_banks):
            self._report(
                "S007", record.cycle,
                f"oldest_bank {record.oldest_bank} out of range")
            return
        head = record.head_banks[record.oldest_bank]
        if head is None or head.addr != record.rob_head:
            seen = None if head is None else hex(head.addr)
            self._report(
                "S007", record.cycle,
                f"head bank {record.oldest_bank} holds {seen}, but "
                f"rob_head is {record.rob_head:#x}",
                addr=record.rob_head)

    def _check_commits(self, record: CycleRecord) -> None:
        committed = record.committed
        for i, commit in enumerate(committed):
            if i > 0:
                expected = (committed[i - 1].bank + 1) % (self.banks or 1)
                if self.banks and commit.bank != expected:
                    self._report(
                        "S004", record.cycle,
                        f"commit banks must rotate round-robin: bank "
                        f"{committed[i - 1].bank} followed by bank "
                        f"{commit.bank}", addr=commit.addr)
            if commit.flushes and i != len(committed) - 1:
                self._report(
                    "S005", record.cycle,
                    f"flushing instruction {commit.addr:#x} must be the "
                    f"last commit of its cycle", addr=commit.addr)
            if self.program is not None:
                self._check_commit_semantics(record, committed, i)
        if committed and committed[-1].flushes and not record.rob_empty:
            self._report(
                "S005", record.cycle,
                f"flush at {committed[-1].addr:#x} must leave the ROB "
                f"empty", addr=committed[-1].addr)

    def _check_commit_semantics(self, record: CycleRecord,
                                committed: "tuple", i: int) -> None:
        """Program-aware S003/S008 checks for committed[i]."""
        assert self.program is not None
        commit: CommittedInst = committed[i]
        inst = self.program.fetch(commit.addr)
        if inst is None:
            self._report(
                "S003", record.cycle,
                f"committed address {commit.addr:#x} is outside the "
                f"program text", addr=commit.addr)
            return
        if commit.mispredicted and not inst.is_control:
            self._report(
                "S008", record.cycle,
                f"{inst.op.value} at {commit.addr:#x} carries the "
                f"mispredict flag but is not a control instruction",
                addr=commit.addr)
        if commit.flushes != inst.flushes_on_commit:
            self._report(
                "S008", record.cycle,
                f"{inst.op.value} at {commit.addr:#x} has flush flag "
                f"{commit.flushes}, but the opcode "
                f"{'does' if inst.flushes_on_commit else 'does not'} "
                f"flush on commit", addr=commit.addr)
        if i + 1 >= len(committed):
            return
        nxt = committed[i + 1].addr
        if inst.kind is Kind.HALT:
            self._report(
                "S003", record.cycle,
                f"halt at {commit.addr:#x} must be the final commit, "
                f"but {nxt:#x} committed after it", addr=commit.addr)
            return
        if commit.flushes:
            return  # S005 already rejects non-final flushes
        allowed = self._allowed_successors(inst)
        if allowed is not None and nxt not in allowed:
            names = ", ".join(hex(a) for a in sorted(allowed))
            self._report(
                "S003", record.cycle,
                f"{inst.op.value} at {commit.addr:#x} was followed by "
                f"{nxt:#x}, expected one of [{names}] (program order)",
                addr=commit.addr)

    @staticmethod
    def _allowed_successors(inst) -> Optional[set]:
        """Dynamic successors of *inst*, or None when unconstrained."""
        kind = inst.kind
        if kind is Kind.BRANCH:
            return {inst.imm, inst.next_addr}
        if kind in (Kind.CALL, Kind.JUMP):
            return {inst.imm}
        if kind in (Kind.RETURN, Kind.SRET):
            return None  # indirect target: not statically known
        return {inst.next_addr}

    # -- reporting -----------------------------------------------------------------

    def _report(self, rule: str, cycle: int, message: str,
                addr: Optional[int] = None) -> None:
        function = None
        if addr is not None and self.program is not None:
            func = self.program.function_of(addr)
            function = func.name if func is not None else None
        diagnostic = Diagnostic(rule, Severity.ERROR, message,
                                addr=addr, function=function, cycle=cycle)
        self.violations.append(diagnostic)
        if self.fail_fast:
            raise TraceInvariantError(diagnostic)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        """One line for CLI output: cycles/commits checked, violations."""
        state = ("clean" if self.ok
                 else f"{len(self.violations)} violation(s)")
        return (f"sanitizer: {self.cycles_checked} cycles, "
                f"{self.commits_checked} commits checked, {state}")

    def report(self) -> str:
        """Full multi-line report (summary plus every violation)."""
        lines = [self.summary()]
        lines.extend(d.render() for d in self.violations)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<TraceSanitizer cycles={self.cycles_checked} "
                f"violations={len(self.violations)}>")


def sanitize_trace(records, program: Optional[Program] = None,
                   fail_fast: bool = True) -> TraceSanitizer:
    """Run the sanitizer over an iterable of records; returns it."""
    sanitizer = TraceSanitizer(program=program, fail_fast=fail_fast)
    final = 0
    for record in records:
        sanitizer.on_cycle(record)
        final = record.cycle
    sanitizer.on_finish(final)
    return sanitizer


__all__ = ["TraceInvariantError", "TraceSanitizer", "sanitize_trace",
           "format_diag"]
