"""Control-flow graph construction over :class:`~repro.isa.program.Program` text.

The linter's static layer: the program text is partitioned into basic
blocks per function region, intra-function edges follow branch/jump
semantics (conditional branches fork, ``jal`` is a call with a
fall-through return site, ``jalr x0`` is a return), and on top of the
graph we compute interprocedural reachability from the entry point,
dominators, and natural loops via back edges.  The Imagick anti-pattern
(Section 6 of the paper) needs one interprocedural refinement: ``ceil``
itself is loop-free, so a function counts as *hot* when it is called --
transitively -- from inside a natural loop.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..isa.instruction import Instruction
from ..isa.opcodes import CONTROL_KINDS, Kind
from ..isa.program import Program


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions within one function."""

    index: int
    function: str
    instructions: List[Instruction]
    #: Intra-function CFG edges (block indices).
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)
    #: Addresses this block transfers to as calls (direct ``jal`` targets,
    #: including tail jumps that leave the function).
    call_targets: List[int] = field(default_factory=list)
    #: The block ends by falling past the last instruction of its
    #: function (no in-function fall-through successor exists).
    falls_off: bool = False

    @property
    def start(self) -> int:
        return self.instructions[0].addr

    @property
    def end(self) -> int:
        """One past the last instruction (half-open, like FunctionSymbol)."""
        return self.instructions[-1].next_addr

    @property
    def terminator(self) -> Instruction:
        return self.instructions[-1]

    def __repr__(self) -> str:
        return (f"<block #{self.index} {self.start:#x}..{self.end:#x} "
                f"{self.function} -> {self.successors}>")


@dataclass(frozen=True)
class Loop:
    """A natural loop: back edge *tail* -> *header*, and its body."""

    function: str
    header: int
    back_edge: Tuple[int, int]
    body: FrozenSet[int]

    def __contains__(self, block_index: int) -> bool:
        return block_index in self.body


class ControlFlowGraph:
    """Basic blocks, edges, reachability, dominators and natural loops."""

    def __init__(self, program: Program):
        self.program = program
        self.blocks: List[BasicBlock] = []
        #: function name -> block indices, in address order.
        self.functions: Dict[str, List[int]] = {}
        self._starts: List[int] = []
        self._build_blocks()
        self._build_edges()
        self.entry_block = self.block_index_of(program.entry)
        self.reachable = self._compute_reachable()
        self.loops = self._find_loops()
        self.loop_called = self._loop_called_functions()

    # -- block construction ----------------------------------------------------

    def _region_name(self, inst: Instruction, anon_start: int) -> str:
        func = self.program.function_of(inst.addr)
        return func.name if func is not None else f"<text:{anon_start:#x}>"

    def _build_blocks(self) -> None:
        program = self.program
        insts = sorted(program.instructions, key=lambda i: i.addr)
        targets: Set[int] = set()
        for inst in insts:
            targets.update(t for t in inst.static_targets() if t in program)
        targets.add(program.entry)
        for func in program.functions:
            if func.lo in program:
                targets.add(func.lo)

        current: List[Instruction] = []
        current_region: Optional[str] = None
        anon_start = insts[0].addr

        def flush() -> None:
            if current:
                block = BasicBlock(len(self.blocks), current_region or "?",
                                   list(current))
                self.blocks.append(block)
                self.functions.setdefault(block.function, []).append(
                    block.index)
                current.clear()

        prev: Optional[Instruction] = None
        for inst in insts:
            if not self.program.function_of(inst.addr):
                if prev is None or self.program.function_of(prev.addr):
                    anon_start = inst.addr
            region = self._region_name(inst, anon_start)
            is_leader = (inst.addr in targets
                         or region != current_region
                         or (prev is not None
                             and (prev.kind in CONTROL_KINDS
                                  or prev.next_addr != inst.addr)))
            if is_leader:
                flush()
                current_region = region
            current.append(inst)
            prev = inst
        flush()
        self._starts = [b.start for b in self.blocks]

    def _build_edges(self) -> None:
        for block in self.blocks:
            self._add_edges_for(block)
        for block in self.blocks:
            for succ in block.successors:
                self.blocks[succ].predecessors.append(block.index)

    def _add_edges_for(self, block: BasicBlock) -> None:
        term = block.terminator
        kind = term.kind

        if kind is Kind.BRANCH:
            target = self._intra_successor(block, term.imm)
            if target is not None:
                self._link(block, target)
            else:
                block.call_targets.append(term.imm)
            self._fall_through(block)
        elif kind in (Kind.CALL, Kind.JUMP):
            if term.is_jump:
                target = self._intra_successor(block, term.imm)
                if target is not None:
                    self._link(block, target)
                else:  # tail jump out of the function
                    block.call_targets.append(term.imm)
            else:
                block.call_targets.append(term.imm)
                self._fall_through(block)
        elif kind is Kind.RETURN:
            if term.can_fall_through:  # jalr as indirect call
                self._fall_through(block)
            # a true return has no static successors
        elif kind in (Kind.HALT, Kind.SRET):
            pass
        else:  # straight-line block split by a leader
            self._fall_through(block)

    def _fall_through(self, block: BasicBlock) -> None:
        next_block = self._intra_successor(block, block.end)
        if next_block is not None:
            self._link(block, next_block)
        else:
            block.falls_off = True

    def _intra_successor(self, block: BasicBlock,
                         addr: int) -> Optional[int]:
        """Block index at *addr* if it belongs to the same function."""
        index = self.block_index_of(addr)
        if index is None:
            return None
        if self.blocks[index].function != block.function:
            return None
        return index

    @staticmethod
    def _link(src: BasicBlock, dst_index: int) -> None:
        if dst_index not in src.successors:
            src.successors.append(dst_index)

    # -- lookups ----------------------------------------------------------------

    def block_index_of(self, addr: int) -> Optional[int]:
        """Index of the block containing *addr*, or ``None``."""
        pos = bisect.bisect_right(self._starts, addr) - 1
        if pos < 0:
            return None
        block = self.blocks[pos]
        if not block.start <= addr < block.end:
            return None
        if addr not in self.program:
            return None
        return pos

    def block_of(self, addr: int) -> Optional[BasicBlock]:
        index = self.block_index_of(addr)
        return self.blocks[index] if index is not None else None

    # -- reachability ------------------------------------------------------------

    def _compute_reachable(self) -> Set[int]:
        """Blocks reachable from the entry, following calls and assuming
        every callee returns to the call's fall-through."""
        if self.entry_block is None:
            return set()
        seen: Set[int] = set()
        work = [self.entry_block]
        while work:
            index = work.pop()
            if index in seen:
                continue
            seen.add(index)
            block = self.blocks[index]
            work.extend(block.successors)
            for target in block.call_targets:
                callee = self.block_index_of(target)
                if callee is not None:
                    work.append(callee)
            if block.falls_off:
                # Execution continues into the next function (if any).
                nxt = self.block_index_of(block.end)
                if nxt is not None:
                    work.append(nxt)
        return seen

    # -- dominators and loops ------------------------------------------------------

    def dominators(self, function: str) -> Dict[int, Set[int]]:
        """Iterative dominator sets over one function's intra-CFG.

        The root is the function's first block; blocks unreachable from
        it within the function are omitted.
        """
        indices = self.functions.get(function, [])
        if not indices:
            return {}
        root = indices[0]
        local: Set[int] = set()
        work = [root]
        while work:
            index = work.pop()
            if index in local:
                continue
            local.add(index)
            work.extend(self.blocks[index].successors)

        dom: Dict[int, Set[int]] = {root: {root}}
        for index in local - {root}:
            dom[index] = set(local)
        changed = True
        while changed:
            changed = False
            for index in local:
                if index == root:
                    continue
                preds = [p for p in self.blocks[index].predecessors
                         if p in local]
                if not preds:
                    continue
                new = set.intersection(*[dom[p] for p in preds]) | {index}
                if new != dom[index]:
                    dom[index] = new
                    changed = True
        return dom

    def _find_loops(self) -> List[Loop]:
        loops: List[Loop] = []
        for function in self.functions:
            dom = self.dominators(function)
            for index in dom:
                block = self.blocks[index]
                for succ in block.successors:
                    if succ in dom.get(index, ()):  # back edge index->succ
                        loops.append(Loop(
                            function, succ, (index, succ),
                            self._natural_loop(succ, index)))
        return loops

    def _natural_loop(self, header: int, tail: int) -> FrozenSet[int]:
        """All blocks that reach *tail* without passing through *header*.

        The header is seeded into the body so the backwards walk stops
        at it -- in particular, a self-loop (tail == header) must not
        pull the header's own predecessors in.
        """
        body: Set[int] = {header}
        work = [] if tail in body else [tail]
        body.add(tail)
        while work:
            index = work.pop()
            for pred in self.blocks[index].predecessors:
                if pred not in body:
                    body.add(pred)
                    work.append(pred)
        return frozenset(body)

    def _loop_called_functions(self) -> Dict[str, int]:
        """Functions called (transitively) from inside a natural loop.

        Maps the function name to the address of the loop-header block
        it is (transitively) called from, for diagnostics.
        """
        called: Dict[str, int] = {}
        work: List[Tuple[str, int]] = []
        for loop in self.loops:
            header_addr = self.blocks[loop.header].start
            for index in loop.body:
                if index not in self.reachable:
                    continue
                for target in self.blocks[index].call_targets:
                    callee = self.block_of(target)
                    if callee is not None:
                        work.append((callee.function, header_addr))
        while work:
            name, header_addr = work.pop()
            if name in called:
                continue
            called[name] = header_addr
            for index in self.functions.get(name, []):
                if index not in self.reachable:
                    continue
                for target in self.blocks[index].call_targets:
                    callee = self.block_of(target)
                    if callee is not None:
                        work.append((callee.function, header_addr))
        return called

    # -- queries used by rules ------------------------------------------------------

    def innermost_loop(self, addr: int) -> Optional[Loop]:
        """The smallest natural loop whose body contains *addr*."""
        index = self.block_index_of(addr)
        if index is None:
            return None
        best: Optional[Loop] = None
        for loop in self.loops:
            if index in loop.body:
                if best is None or len(loop.body) < len(best.body):
                    best = loop
        return best

    def hot_context(self, addr: int) -> Optional[Tuple[str, int]]:
        """Why *addr* executes repeatedly, or ``None`` if it does not.

        Returns ``("loop", header_addr)`` when the address sits inside a
        natural loop, or ``("called-from-loop", header_addr)`` when its
        function is transitively called from one.
        """
        loop = self.innermost_loop(addr)
        if loop is not None:
            return ("loop", self.blocks[loop.header].start)
        block = self.block_of(addr)
        if block is not None and block.function in self.loop_called:
            return ("called-from-loop", self.loop_called[block.function])
        return None

    def __repr__(self) -> str:
        return (f"<CFG {self.program.name!r}: {len(self.blocks)} blocks, "
                f"{len(self.functions)} functions, {len(self.loops)} loops>")


def build_cfg(program: Program) -> ControlFlowGraph:
    """Build the control-flow graph of *program*."""
    return ControlFlowGraph(program)
