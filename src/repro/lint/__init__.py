"""Static program linter and dynamic commit-trace sanitizer.

Three analysis layers over the same invariants the profilers depend on:

* :mod:`repro.lint.cfg` + :mod:`repro.lint.dataflow` +
  :mod:`repro.lint.rules` -- a control-flow graph over
  :class:`~repro.isa.program.Program` text, a worklist dataflow engine
  (reaching definitions, liveness, definite assignment, conditional
  constants, dominators/loop nesting) and rule-based static checks: the
  syntactic Imagick flush-in-loop anti-pattern of Section 6 (L001) and
  its semantic, dataflow-proven generalisation (L012), unreachable
  code, uninitialized reads, dead stores, loops with no time-driven
  exit, ...;
* :mod:`repro.lint.absint` -- an interprocedural abstract
  interpretation (intervals x congruence x stack tracking with
  per-function summaries) behind the memory-safety / stack-discipline
  rules L014..L019 and the static cycle-cost model of
  ``repro lint --cost`` / ``repro annotate``;
* :mod:`repro.lint.contracts` -- an AST-based conformance checker for
  the observer/profiler contracts the fast paths rely on (block-native
  hook pairing, batched-stall pairing, shard protocol completeness,
  shared-state hazards): ``repro lint --observers``;
* :mod:`repro.lint.sanitizer` -- a :class:`~repro.cpu.trace.TraceObserver`
  that validates every cycle of the commit-stage trace against the
  commit invariants (program order, commit width, flush-drain,
  bank rotation) and fails fast with a cycle-numbered report.

Entry points: :func:`lint_program`, :func:`check_observer_contracts`,
:class:`TraceSanitizer`, and the CLI (``repro lint``, ``--sanitize``).
"""

from .absint import (AbsintResult, AbsState, AbsVal,
                     AbstractInterpreter, CostReport, FunctionSummary,
                     analyze_program, static_cost_report)
from .cfg import BasicBlock, ControlFlowGraph, Loop, build_cfg
from .contracts import (CONTRACT_RULES, ContractReport,
                        check_observer_contracts)
from .dataflow import (ALL_REGS, BACKWARD, BlockState,
                       ConditionalConstants, DataflowAnalysis,
                       DefiniteAssignment, DominatorTree, ENTRY_DEF,
                       FORWARD, Liveness, LoopNest, PreheaderSite,
                       ReachingDefinitions, loop_invariant_addrs,
                       preheader_site, solve)
from .diagnostics import Diagnostic, FixHint, Severity
from .linter import Linter, LintReport, lint_program
from .rules import (ABSINT_RULE_IDS, DATAFLOW_RULE_IDS, DEFAULT_RULES,
                    LintContext, LintRule, RULES_BY_ID,
                    SELF_CHECK_RULE_IDS, STRUCTURAL_RULE_IDS)
from .sanitizer import TraceInvariantError, TraceSanitizer, sanitize_trace

__all__ = [
    "AbsintResult", "AbsState", "AbsVal", "AbstractInterpreter",
    "CostReport", "FunctionSummary", "analyze_program",
    "static_cost_report",
    "BasicBlock", "ControlFlowGraph", "Loop", "build_cfg",
    "ALL_REGS", "BACKWARD", "BlockState", "ConditionalConstants",
    "DataflowAnalysis", "DefiniteAssignment", "DominatorTree",
    "ENTRY_DEF", "FORWARD", "Liveness", "LoopNest", "PreheaderSite",
    "ReachingDefinitions", "loop_invariant_addrs", "preheader_site",
    "solve",
    "CONTRACT_RULES", "ContractReport", "check_observer_contracts",
    "Diagnostic", "FixHint", "Severity",
    "Linter", "LintReport", "lint_program",
    "ABSINT_RULE_IDS",
    "DATAFLOW_RULE_IDS", "DEFAULT_RULES", "LintContext", "LintRule",
    "RULES_BY_ID", "SELF_CHECK_RULE_IDS", "STRUCTURAL_RULE_IDS",
    "TraceInvariantError", "TraceSanitizer", "sanitize_trace",
]
