"""Static program linter and dynamic commit-trace sanitizer.

Two analysis layers over the same invariants the profilers depend on:

* :mod:`repro.lint.cfg` + :mod:`repro.lint.rules` -- a control-flow
  graph over :class:`~repro.isa.program.Program` text feeding rule-based
  static checks (the Imagick flush-in-loop anti-pattern of Section 6,
  unreachable code, fall-through off text, symbol overlaps, ...);
* :mod:`repro.lint.sanitizer` -- a :class:`~repro.cpu.trace.TraceObserver`
  that validates every cycle of the commit-stage trace against the
  commit invariants (program order, commit width, flush-drain,
  bank rotation) and fails fast with a cycle-numbered report.

Entry points: :func:`lint_program`, :class:`TraceSanitizer`, and the
CLI (``repro lint``, ``--sanitize``).
"""

from .cfg import BasicBlock, ControlFlowGraph, Loop, build_cfg
from .diagnostics import Diagnostic, Severity
from .linter import Linter, LintReport, lint_program
from .rules import (DEFAULT_RULES, LintContext, LintRule, RULES_BY_ID,
                    STRUCTURAL_RULE_IDS)
from .sanitizer import TraceInvariantError, TraceSanitizer, sanitize_trace

__all__ = [
    "BasicBlock", "ControlFlowGraph", "Loop", "build_cfg",
    "Diagnostic", "Severity",
    "Linter", "LintReport", "lint_program",
    "DEFAULT_RULES", "LintContext", "LintRule", "RULES_BY_ID",
    "STRUCTURAL_RULE_IDS",
    "TraceInvariantError", "TraceSanitizer", "sanitize_trace",
]
