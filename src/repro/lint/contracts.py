"""AST-based conformance checker for observer/profiler contracts.

The fast paths only stay equivalent to cycle-stepping because observers
keep three promises:

* **block-native pairing** (C001): a profiler advertising
  ``block_native = True`` must implement the columnar hooks the block
  engine calls (``_block_attribute``/``_block_scan_resolve``/
  ``_block_resolve_outcome``);
* **batched-stall pairing** (C002): an observer overriding ``on_block``
  processes batched input natively, so it must also override
  ``on_stall_run`` -- otherwise run-length-compressed stall regions
  fall back to the O(n) per-cycle loop (or, worse, a subclass that
  forgot the override silently disagrees with the batched path);
* **shard protocol completeness** (C003): ``begin_shard`` + ``snapshot``
  on the shard side and ``absorb``/``restore_snapshots`` on the merge
  side only make sense together -- a partial implementation deadlocks
  or silently drops state in ``--jobs N`` runs;
* **no shared mutable state** (C004): methods executed inside shards
  must not mutate module-level or class-level state; each shard runs in
  its own process or interleaving, so such writes are lost, doubled or
  raced depending on the executor;
* **batched-period pairing** (C005): an observer overriding
  ``on_cycle_run`` (the steady-state memoizer's whole-period batch leg)
  has opted into batched ``sim=fast`` input, so it must also override
  ``on_stall_run`` -- the two legs arrive interleaved from the same
  fast path, and handling only one leaves the other on the O(n)
  per-cycle fallback (or raising, for observers without ``on_cycle``).

This is a *static* companion to the dynamic hypothesis equivalence
tests: ``repro lint --observers <paths>`` parses Python sources (no
imports are executed) and reports :class:`~repro.lint.diagnostics.
Diagnostic` records with file/line/column locations.  A line can opt
out of C004 with a ``# lint: shared-ok`` comment.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from .diagnostics import Diagnostic, Severity

#: Method names that mark a class as observer-like even without a
#: recognisable base class.
HOOK_NAMES = frozenset({
    "on_cycle", "on_stall_run", "on_cycle_run", "on_block", "on_finish",
    "begin_shard", "shard_settled", "resolve_only", "snapshot",
    "restore_snapshots", "absorb",
    "_block_attribute", "_block_scan_resolve", "_block_resolve_outcome",
    "_block_update_tail",
})

_BLOCK_HOOKS = ("_block_attribute", "_block_scan_resolve",
                "_block_resolve_outcome")
_SHARD_LEGS = ("begin_shard", "snapshot")
_MERGE_LEGS = ("absorb", "restore_snapshots", "merge")

#: The framework root whose ``on_stall_run``/``on_block`` bodies are
#: per-cycle *fallbacks*: inheriting them is correct but does not count
#: as "implementing" the batched contract.
_DEFAULT_BASE = "TraceObserver"

#: Base classes that make a subclass observer-like by inheritance.
_FRAMEWORK_BASES = frozenset({"TraceObserver", "SamplingProfiler"})

#: What the framework bases provide, for targets checked without the
#: framework sources on the command line.  ``True`` = concrete
#: override, ``False`` = abstract (raises ``NotImplementedError``).
_FALLBACK_METHODS: Dict[str, Dict[str, bool]] = {
    "TraceObserver": {},  # its hooks are defaults, not overrides
    "SamplingProfiler": {
        "on_cycle": True, "on_stall_run": True, "on_finish": True,
        "begin_shard": True, "shard_settled": True,
        "resolve_only": True, "snapshot": True,
        "restore_snapshots": True,
        "_block_attribute": False, "_block_scan_resolve": False,
        "_block_resolve_outcome": False, "_block_update_tail": True,
    },
}

_FALLBACK_ATTRS: Dict[str, Dict[str, Any]] = {
    "TraceObserver": {},
    "SamplingProfiler": {"block_native": False, "shardable": False},
}

#: In-place mutator method names C004 watches for on shared objects.
_MUTATORS = frozenset({
    "append", "extend", "add", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "insert", "sort",
    "reverse", "appendleft", "extendleft",
})

#: Methods that run on the merge side (parent process), where mutating
#: shared state is the whole point.
_MERGE_SIDE = frozenset({"absorb", "restore_snapshots", "merge",
                         "__init__", "__post_init__"})

_SUPPRESS_COMMENT = "lint: shared-ok"


@dataclass
class ClassInfo:
    """One parsed class: bases, methods and class-level assignments."""

    name: str
    path: str
    lineno: int
    col: int
    bases: List[str]
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    assigns: Dict[str, ast.expr] = field(default_factory=dict)
    module_names: Set[str] = field(default_factory=set)
    module_classes: Set[str] = field(default_factory=set)


@dataclass
class ContractReport:
    """All contract findings for one checker invocation."""

    target: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    classes_checked: int = 0
    files_checked: int = 0

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def render(self, verbose: bool = True) -> str:
        lines = [f"{self.target}: {self.classes_checked} observer "
                 f"class(es) in {self.files_checked} file(s), "
                 f"{len(self.errors)} error(s), "
                 f"{len(self.warnings)} warning(s)"]
        if verbose:
            lines.extend(d.render() for d in self.diagnostics)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {"target": self.target,
                "classes_checked": self.classes_checked,
                "files_checked": self.files_checked,
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "diagnostics": [d.to_dict() for d in self.diagnostics]}


# -- parsing ----------------------------------------------------------------

def _base_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _collect_file(path: str, registry: Dict[str, ClassInfo],
                  order: List[ClassInfo]) -> None:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    tree = ast.parse(source, filename=path)
    module_names: Set[str] = set()
    module_classes: Set[str] = set()
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        elif isinstance(node, ast.ClassDef):
            module_classes.add(node.name)
        for target in targets:
            if isinstance(target, ast.Name):
                module_names.add(target.id)
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        info = ClassInfo(
            name=node.name, path=path, lineno=node.lineno,
            col=node.col_offset,
            bases=[b for b in (_base_name(base) for base in node.bases)
                   if b is not None],
            module_names=module_names,
            module_classes=module_classes)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(item, ast.FunctionDef):
                    info.methods[item.name] = item
            elif isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name):
                        info.assigns[target.id] = item.value
            elif isinstance(item, ast.AnnAssign) \
                    and isinstance(item.target, ast.Name) \
                    and item.value is not None:
                info.assigns[item.target.id] = item.value
        registry.setdefault(info.name, info)
        order.append(info)


def _is_abstract(func: ast.FunctionDef) -> bool:
    """Body is only a docstring, ``pass``, ``...`` or a
    ``raise NotImplementedError``."""
    body = list(func.body)
    if body and isinstance(body[0], ast.Expr) \
            and isinstance(body[0].value, ast.Constant) \
            and isinstance(body[0].value.value, str):
        body = body[1:]
    if not body:
        return True
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) \
                and isinstance(stmt.value, ast.Constant) \
                and stmt.value.value is Ellipsis:
            continue
        if isinstance(stmt, ast.Raise):
            exc = stmt.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name) \
                    and exc.id == "NotImplementedError":
                continue
        return False
    return True


# -- method/attribute resolution over a best-effort MRO ---------------------

class _Resolver:
    def __init__(self, registry: Dict[str, ClassInfo]):
        self.registry = registry

    def mro(self, info: ClassInfo) -> List[str]:
        order: List[str] = []
        seen: Set[str] = set()

        def visit(name: str) -> None:
            if name in seen:
                return
            seen.add(name)
            order.append(name)
            parsed = self.registry.get(name)
            if parsed is not None:
                for base in parsed.bases:
                    visit(base)

        visit(info.name)
        return order

    def incomplete(self, info: ClassInfo) -> bool:
        """Some base class is neither parsed nor a known framework
        base: method resolution would be guesswork."""
        for name in self.mro(info):
            parsed = self.registry.get(name)
            if parsed is None and name not in _FALLBACK_METHODS \
                    and name != "object":
                return True
        return False

    def find_method(self, info: ClassInfo,
                    method: str) -> Tuple[Optional[str], Optional[bool]]:
        """First MRO class defining *method*: (class name, concrete?)."""
        for name in self.mro(info):
            parsed = self.registry.get(name)
            if parsed is not None:
                func = parsed.methods.get(method)
                if func is not None:
                    return name, not _is_abstract(func)
            elif name in _FALLBACK_METHODS:
                table = _FALLBACK_METHODS[name]
                if method in table:
                    return name, table[method]
        return None, None

    def overrides(self, info: ClassInfo, method: str) -> bool:
        """Concrete definition below the framework default base."""
        name, concrete = self.find_method(info, method)
        return bool(concrete) and name != _DEFAULT_BASE

    def attr(self, info: ClassInfo, attr: str) -> Any:
        for name in self.mro(info):
            parsed = self.registry.get(name)
            if parsed is not None:
                node = parsed.assigns.get(attr)
                if node is not None:
                    if isinstance(node, ast.Constant):
                        return node.value
                    return node  # non-literal: unknown truthiness
            elif name in _FALLBACK_ATTRS:
                table = _FALLBACK_ATTRS[name]
                if attr in table:
                    return table[attr]
        return None

    def is_observer(self, info: ClassInfo) -> bool:
        mro = self.mro(info)
        if any(name in _FRAMEWORK_BASES for name in mro[1:]):
            return True
        hooks = sum(1 for name in info.methods if name in HOOK_NAMES)
        return hooks >= 2


# -- the checks -------------------------------------------------------------

def _diag(rule: str, severity: Severity, message: str, *,
          info: ClassInfo, node: Optional[ast.AST] = None,
          fix_hint: Optional[str] = None) -> Diagnostic:
    lineno = getattr(node, "lineno", info.lineno)
    col = getattr(node, "col_offset", info.col)
    return Diagnostic(rule, severity, message, fix_hint=fix_hint,
                      path=info.path, line=lineno, col=col + 1,
                      function=info.name)


def _check_block_native(info: ClassInfo,
                        resolver: _Resolver) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    native = resolver.attr(info, "block_native")
    missing = [hook for hook in _BLOCK_HOOKS
               if not resolver.find_method(info, hook)[1]]
    if native is True and missing:
        out.append(_diag(
            "C001", Severity.ERROR,
            f"{info.name} sets block_native = True but leaves "
            f"{', '.join(missing)} unimplemented; the block engine "
            f"will call them",
            info=info,
            fix_hint="implement the columnar hooks or drop the "
                     "block_native claim"))
    elif native is False and not missing \
            and any(hook in info.methods for hook in _BLOCK_HOOKS):
        out.append(_diag(
            "C001", Severity.WARNING,
            f"{info.name} implements the columnar block hooks but "
            f"block_native is not True; the block engine will ignore "
            f"them",
            info=info,
            fix_hint="set block_native = True to enable the fast path"))
    return out


def _check_stall_pairing(info: ClassInfo,
                         resolver: _Resolver) -> List[Diagnostic]:
    if info.name == _DEFAULT_BASE:
        return []  # its on_block *is* the per-cycle default
    if "on_block" not in info.methods \
            or _is_abstract(info.methods["on_block"]):
        return []
    if resolver.overrides(info, "on_stall_run"):
        return []
    has_cycle = resolver.find_method(info, "on_cycle")[1]
    severity = Severity.WARNING if has_cycle else Severity.ERROR
    consequence = ("stall runs fall back to the per-cycle loop"
                   if has_cycle else
                   "stall runs will raise NotImplementedError")
    return [_diag(
        "C002", severity,
        f"{info.name} overrides on_block but not on_stall_run; "
        f"{consequence}",
        info=info, node=info.methods["on_block"],
        fix_hint="add an on_stall_run override batching "
                 "run-length-compressed stall cycles")]


def _check_cycle_run_pairing(info: ClassInfo,
                             resolver: _Resolver) -> List[Diagnostic]:
    if info.name == _DEFAULT_BASE:
        return []  # its on_cycle_run *is* the per-cycle default
    if "on_cycle_run" not in info.methods \
            or _is_abstract(info.methods["on_cycle_run"]):
        return []
    if resolver.overrides(info, "on_stall_run"):
        return []
    has_cycle = resolver.find_method(info, "on_cycle")[1]
    severity = Severity.WARNING if has_cycle else Severity.ERROR
    consequence = ("stall runs fall back to the per-cycle loop"
                   if has_cycle else
                   "stall runs will raise NotImplementedError")
    return [_diag(
        "C005", severity,
        f"{info.name} overrides on_cycle_run but not on_stall_run; "
        f"both batch legs arrive from sim=fast, and {consequence}",
        info=info, node=info.methods["on_cycle_run"],
        fix_hint="add an on_stall_run override batching "
                 "run-length-compressed stall cycles")]


def _check_shard_protocol(info: ClassInfo,
                          resolver: _Resolver) -> List[Diagnostic]:
    local = [m for m in (_SHARD_LEGS + _MERGE_LEGS)
             if m in info.methods and not _is_abstract(info.methods[m])]
    if not local:
        return []
    missing = [leg for leg in _SHARD_LEGS
               if not resolver.overrides(info, leg)]
    if not any(resolver.overrides(info, leg) for leg in _MERGE_LEGS):
        missing.append(" or ".join(_MERGE_LEGS[:2]))
    if not missing:
        return []
    return [_diag(
        "C003", Severity.ERROR,
        f"{info.name} implements {', '.join(local)} but the shard "
        f"protocol is incomplete: missing {', '.join(missing)}",
        info=info, node=info.methods[local[0]],
        fix_hint="define begin_shard + snapshot + a merge-side method "
                 "(absorb or restore_snapshots) together")]


def _attr_chain(node: ast.expr) -> Tuple[Optional[ast.expr], List[str]]:
    """Innermost value of an attribute/subscript chain + attr names."""
    attrs: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            attrs.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            attrs.append("[]")
            node = node.value
        else:
            return node, list(reversed(attrs))


def _mutable_class_attrs(info: ClassInfo) -> Set[str]:
    """Class-body names bound to mutable literals and never rebound
    per-instance (``self.X = ...``) in any method."""
    mutable: Set[str] = set()
    for name, value in info.assigns.items():
        if isinstance(value, (ast.List, ast.Dict, ast.Set)):
            mutable.add(name)
        elif isinstance(value, ast.Call) \
                and isinstance(value.func, ast.Name) \
                and value.func.id in ("list", "dict", "set",
                                      "defaultdict", "Counter",
                                      "deque"):
            mutable.add(name)
    if not mutable:
        return mutable
    rebound: Set[str] = set()
    for func in info.methods.values():
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self":
                    rebound.add(target.attr)
    return mutable - rebound


class _HazardScanner:
    """Finds mutations of shared state inside one shard-side method."""

    def __init__(self, info: ClassInfo, func: ast.FunctionDef,
                 source_lines: List[str]):
        self.info = info
        self.func = func
        self.lines = source_lines
        self.globals_declared: Set[str] = set()
        self.mutable_attrs = _mutable_class_attrs(info)
        self.findings: List[Tuple[ast.AST, str]] = []

    def _suppressed(self, node: ast.AST) -> bool:
        lineno = getattr(node, "lineno", None)
        if lineno is None or lineno > len(self.lines):
            return False
        return _SUPPRESS_COMMENT in self.lines[lineno - 1]

    def _shared_root(self, root: Optional[ast.expr],
                     attrs: List[str]) -> Optional[str]:
        """Describe why this chain names shared state, else ``None``."""
        if isinstance(root, ast.Name):
            name = root.id
            if name == "self":
                if "__class__" in attrs:
                    return "self.__class__"
                if attrs and attrs[0] in self.mutable_attrs:
                    return (f"class-level mutable default "
                            f"{self.info.name}.{attrs[0]}")
                return None
            if name == "cls" or name in self.info.module_classes \
                    or name == self.info.name:
                return f"class attribute of {name}"
            if name in self.info.module_names:
                return f"module-level {name}"
            if name in self.globals_declared:
                return f"global {name}"
            return None
        if isinstance(root, ast.Call) \
                and isinstance(root.func, ast.Name) \
                and root.func.id == "type" and len(root.args) == 1:
            return "type(self)"
        return None

    def scan(self) -> List[Tuple[ast.AST, str]]:
        for node in ast.walk(self.func):
            if isinstance(node, ast.Global):
                self.globals_declared.update(node.names)
        for node in ast.walk(self.func):
            if isinstance(node, (ast.Assign, ast.AnnAssign,
                                 ast.AugAssign)):
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    self._scan_store(target)
            elif isinstance(node, ast.Call):
                self._scan_call(node)
        return self.findings

    def _scan_store(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._scan_store(element)
            return
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared \
                    and not self._suppressed(target):
                self.findings.append(
                    (target, f"assigns global {target.id}"))
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        root, attrs = _attr_chain(target)
        why = self._shared_root(root, attrs)
        if why is not None and not self._suppressed(target):
            self.findings.append((target, f"stores into {why}"))

    def _scan_call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) \
                or func.attr not in _MUTATORS:
            return
        root, attrs = _attr_chain(func.value)
        why = self._shared_root(root, attrs)
        if why is not None and not self._suppressed(node):
            self.findings.append(
                (node, f"calls .{func.attr}() on {why}"))


def _check_shared_state(info: ClassInfo, resolver: _Resolver,
                        source_lines: List[str]) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for name, func in sorted(info.methods.items()):
        if name in _MERGE_SIDE or _is_abstract(func):
            continue
        for node, why in _HazardScanner(info, func,
                                        source_lines).scan():
            out.append(_diag(
                "C004", Severity.ERROR,
                f"{info.name}.{name} {why}; shard-executed methods "
                f"must not mutate shared state (results are lost or "
                f"raced under --jobs N)",
                info=info, node=node,
                fix_hint="move the state onto the instance and merge "
                         "it in absorb()/restore_snapshots(), or mark "
                         "the line `# lint: shared-ok` if it is "
                         "provably shard-local"))
    return out


#: Contract rule metadata, for docs and ``--format json`` consumers.
CONTRACT_RULES: Dict[str, str] = {
    "C001": "block_native profilers must implement the columnar hooks",
    "C002": "on_block overrides must pair with on_stall_run",
    "C003": "shard protocol legs must be implemented together",
    "C004": "shard-executed methods must not mutate shared state",
    "C005": "on_cycle_run overrides must pair with on_stall_run",
}


def iter_python_files(targets: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for target in targets:
        if os.path.isdir(target):
            for root, dirs, files in os.walk(target):
                dirs[:] = sorted(d for d in dirs
                                 if d not in ("__pycache__",))
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        else:
            out.append(target)
    return out


def check_observer_contracts(targets: Iterable[str],
                             label: Optional[str] = None
                             ) -> ContractReport:
    """Run C001-C005 over the Python sources in *targets*.

    *targets* are ``.py`` files or directories (recursed).  Sources are
    parsed, never imported.  Classes that are not observer-like are
    skipped; classes with unresolvable non-framework bases skip the
    MRO-dependent checks (C001-C003) but still get the shared-state
    scan.
    """
    files = iter_python_files(targets)
    report = ContractReport(label or ", ".join(targets))
    registry: Dict[str, ClassInfo] = {}
    order: List[ClassInfo] = []
    sources: Dict[str, List[str]] = {}
    for path in files:
        try:
            _collect_file(path, registry, order)
            with open(path, "r", encoding="utf-8") as handle:
                sources[path] = handle.read().splitlines()
        except (OSError, SyntaxError) as exc:
            report.diagnostics.append(Diagnostic(
                "C000", Severity.ERROR,
                f"cannot parse {path}: {exc}", path=path))
    report.files_checked = len(sources)
    resolver = _Resolver(registry)
    for info in order:
        if not resolver.is_observer(info):
            continue
        report.classes_checked += 1
        if not resolver.incomplete(info):
            report.diagnostics.extend(
                _check_block_native(info, resolver))
            report.diagnostics.extend(
                _check_stall_pairing(info, resolver))
            report.diagnostics.extend(
                _check_cycle_run_pairing(info, resolver))
            report.diagnostics.extend(
                _check_shard_protocol(info, resolver))
        report.diagnostics.extend(_check_shared_state(
            info, resolver, sources.get(info.path, [])))
    report.diagnostics.sort(
        key=lambda d: (d.path or "", d.line or 0, d.rule))
    return report
